//! Exponential-smoothing family: SES, Holt's linear trend, and additive
//! Holt–Winters.
//!
//! Classical workhorses that complement ARIMA in the extended comparison
//! grid. All three share the interface convention of this crate: fit on a
//! slice, forecast a horizon, parameters selected by in-sample SSE grid
//! search when not provided (the "no expert knowledge" configuration).

use mc_tslib::error::{invalid_param, Result};
use mc_tslib::forecast::UnivariateForecaster;

/// Simple exponential smoothing: level only.
#[derive(Debug, Clone, Copy)]
pub struct Ses {
    /// Smoothing factor in (0, 1]; `None` = grid-search in-sample.
    pub alpha: Option<f64>,
}

/// One SES pass; returns `(final level, in-sample SSE)`.
fn ses_pass(xs: &[f64], alpha: f64) -> (f64, f64) {
    let mut level = xs[0];
    let mut sse = 0.0;
    for &x in &xs[1..] {
        let err = x - level;
        sse += err * err;
        level += alpha * err;
    }
    (level, sse)
}

impl UnivariateForecaster for Ses {
    fn name(&self) -> String {
        "SES".into()
    }

    fn forecast_univariate(&mut self, train: &[f64], horizon: usize) -> Result<Vec<f64>> {
        if train.len() < 3 {
            return Err(invalid_param("series", "SES needs at least 3 observations"));
        }
        let alpha = match self.alpha {
            Some(a) if (0.0..=1.0).contains(&a) && a > 0.0 => a,
            Some(a) => return Err(invalid_param("alpha", format!("{a} not in (0, 1]"))),
            None => {
                let mut best = (0.1, f64::MAX);
                for i in 1..=19 {
                    let a = i as f64 / 20.0;
                    let (_, sse) = ses_pass(train, a);
                    if sse < best.1 {
                        best = (a, sse);
                    }
                }
                best.0
            }
        };
        let (level, _) = ses_pass(train, alpha);
        Ok(vec![level; horizon])
    }
}

/// Holt's linear-trend method (double exponential smoothing).
#[derive(Debug, Clone, Copy)]
pub struct Holt {
    /// Level smoothing; `None` = grid search.
    pub alpha: Option<f64>,
    /// Trend smoothing; `None` = grid search.
    pub beta: Option<f64>,
}

/// One Holt pass; returns `(level, trend, SSE)`.
fn holt_pass(xs: &[f64], alpha: f64, beta: f64) -> (f64, f64, f64) {
    let mut level = xs[0];
    let mut trend = xs[1] - xs[0];
    let mut sse = 0.0;
    for &x in &xs[1..] {
        let pred = level + trend;
        let err = x - pred;
        sse += err * err;
        let new_level = pred + alpha * err;
        trend += alpha * beta * err;
        level = new_level;
    }
    (level, trend, sse)
}

impl UnivariateForecaster for Holt {
    fn name(&self) -> String {
        "Holt".into()
    }

    fn forecast_univariate(&mut self, train: &[f64], horizon: usize) -> Result<Vec<f64>> {
        if train.len() < 4 {
            return Err(invalid_param("series", "Holt needs at least 4 observations"));
        }
        let (alpha, beta) = match (self.alpha, self.beta) {
            (Some(a), Some(b)) => {
                if !(0.0 < a && a <= 1.0 && 0.0 < b && b <= 1.0) {
                    return Err(invalid_param("alpha/beta", "must be in (0, 1]"));
                }
                (a, b)
            }
            _ => {
                let mut best = (0.2, 0.1, f64::MAX);
                for i in 1..=9 {
                    for j in 1..=9 {
                        let a = i as f64 / 10.0;
                        let b = j as f64 / 10.0;
                        let (_, _, sse) = holt_pass(train, a, b);
                        if sse < best.2 {
                            best = (a, b, sse);
                        }
                    }
                }
                (best.0, best.1)
            }
        };
        let (level, trend, _) = holt_pass(train, alpha, beta);
        Ok((1..=horizon).map(|h| level + trend * h as f64).collect())
    }
}

/// Additive Holt–Winters (level + trend + seasonal).
#[derive(Debug, Clone, Copy)]
pub struct HoltWinters {
    /// Season length (must be ≥ 2 and fit twice in the training data).
    pub period: usize,
    /// Level smoothing.
    pub alpha: f64,
    /// Trend smoothing.
    pub beta: f64,
    /// Seasonal smoothing.
    pub gamma: f64,
}

impl HoltWinters {
    /// Sensible defaults for a given period.
    pub fn with_period(period: usize) -> Self {
        Self { period, alpha: 0.3, beta: 0.05, gamma: 0.3 }
    }
}

impl UnivariateForecaster for HoltWinters {
    fn name(&self) -> String {
        format!("HoltWinters(m={})", self.period)
    }

    fn forecast_univariate(&mut self, train: &[f64], horizon: usize) -> Result<Vec<f64>> {
        let m = self.period;
        if m < 2 {
            return Err(invalid_param("period", "must be >= 2"));
        }
        if train.len() < 2 * m {
            return Err(invalid_param(
                "series",
                format!("need at least two seasons ({} points), have {}", 2 * m, train.len()),
            ));
        }
        for (name, v) in [("alpha", self.alpha), ("beta", self.beta), ("gamma", self.gamma)] {
            if !(0.0 < v && v <= 1.0) {
                return Err(invalid_param("smoothing", format!("{name} = {v} not in (0, 1]")));
            }
        }
        // Initialization: first-season mean level, season-over-season
        // trend, first-season seasonal offsets.
        let season1_mean = train[..m].iter().sum::<f64>() / m as f64;
        let season2_mean = train[m..2 * m].iter().sum::<f64>() / m as f64;
        let mut level = season1_mean;
        let mut trend = (season2_mean - season1_mean) / m as f64;
        let mut seasonal: Vec<f64> = (0..m).map(|i| train[i] - season1_mean).collect();

        for (t, &x) in train.iter().enumerate().skip(m) {
            let s = seasonal[t % m];
            let pred = level + trend + s;
            let err = x - pred;
            let new_level = level + trend + self.alpha * err;
            trend += self.alpha * self.beta * err;
            seasonal[t % m] = s + self.gamma * (1.0 - self.alpha) * err;
            level = new_level;
        }
        let n = train.len();
        Ok((1..=horizon).map(|h| level + trend * h as f64 + seasonal[(n + h - 1) % m]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_datasets::generators::{linear_trend, sinusoids, white_noise};

    #[test]
    fn ses_forecast_is_flat_near_recent_level() {
        let mut xs = white_noise(100, 0.5, 1);
        for v in &mut xs {
            *v += 10.0;
        }
        let mut f = Ses { alpha: None };
        let fc = f.forecast_univariate(&xs, 5).unwrap();
        assert!(fc.windows(2).all(|w| w[0] == w[1]), "SES forecasts are constant");
        assert!((fc[0] - 10.0).abs() < 1.0, "level should be near 10: {}", fc[0]);
    }

    #[test]
    fn ses_alpha_validation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!(Ses { alpha: Some(1.5) }.forecast_univariate(&xs, 2).is_err());
        assert!(Ses { alpha: Some(0.5) }.forecast_univariate(&xs, 2).is_ok());
        assert!(Ses { alpha: None }.forecast_univariate(&[1.0], 2).is_err());
    }

    #[test]
    fn holt_follows_linear_trend() {
        let xs = linear_trend(80, 3.0, 0.7);
        let mut f = Holt { alpha: None, beta: None };
        let fc = f.forecast_univariate(&xs, 10).unwrap();
        let last = xs[79];
        for (h, &v) in fc.iter().enumerate() {
            let expected = last + 0.7 * (h + 1) as f64;
            assert!((v - expected).abs() < 0.3, "h={h}: {v} vs {expected}");
        }
    }

    #[test]
    fn holt_winters_tracks_seasonal_pattern() {
        let m = 12;
        let season = sinusoids(12 * 10, &[(5.0, m as f64, 0.0)]);
        let trend = linear_trend(120, 20.0, 0.1);
        let xs: Vec<f64> = season.iter().zip(&trend).map(|(a, b)| a + b).collect();
        let mut f = HoltWinters::with_period(m);
        let fc = f.forecast_univariate(&xs[..108], 12).unwrap();
        // Compare against the true continuation.
        let mut err = 0.0;
        for h in 0..12 {
            err += (fc[h] - xs[108 + h]).powi(2);
        }
        let rmse = (err / 12.0).sqrt();
        assert!(rmse < 1.0, "Holt-Winters should nail a clean seasonal+trend: {rmse}");
        // And it must beat trendless SES by a wide margin.
        let mut ses = Ses { alpha: None };
        let flat = ses.forecast_univariate(&xs[..108], 12).unwrap();
        let mut err_flat = 0.0;
        for h in 0..12 {
            err_flat += (flat[h] - xs[108 + h]).powi(2);
        }
        assert!(err < err_flat, "HW {err:.2} vs SES {err_flat:.2}");
    }

    #[test]
    fn holt_winters_validation() {
        let xs = sinusoids(30, &[(1.0, 10.0, 0.0)]);
        assert!(HoltWinters::with_period(1).forecast_univariate(&xs, 2).is_err());
        assert!(HoltWinters::with_period(20).forecast_univariate(&xs, 2).is_err());
        let mut bad = HoltWinters::with_period(10);
        bad.alpha = 0.0;
        assert!(bad.forecast_univariate(&xs, 2).is_err());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Ses { alpha: None }.name(), "SES");
        assert_eq!(Holt { alpha: None, beta: None }.name(), "Holt");
        assert_eq!(HoltWinters::with_period(7).name(), "HoltWinters(m=7)");
    }
}
