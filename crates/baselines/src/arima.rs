//! ARIMA(p, d, q): the paper's "most popular traditional" comparator.
//!
//! Estimation uses the **Hannan–Rissanen** two-stage procedure:
//!
//! 1. difference the series `d` times;
//! 2. fit a long autoregression by Yule–Walker (Levinson–Durbin on the
//!    sample ACF) and take its residuals as innovation estimates;
//! 3. regress `x_t` on `p` lags of `x` and `q` lags of the estimated
//!    innovations (ordinary least squares with intercept).
//!
//! Forecasting iterates the ARMA recursion with future innovations set to
//! zero, then integrates `d` times through the stored tails. Automatic
//! order selection ([`auto_arima`]) greedily differences while the series
//! variance keeps dropping, then grid-searches `(p, q)` under AIC — the
//! "no expert knowledge" configuration used by the benchmark harness.

use mc_tslib::error::{invalid_param, Result, TsError};
use mc_tslib::forecast::UnivariateForecaster;
use mc_tslib::stats::{acf, levinson_durbin, variance};
use mc_tslib::transform::{difference, integration_tail, undifference_forecast};

use crate::linalg::least_squares;

/// ARIMA order specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArimaConfig {
    /// Autoregressive order.
    pub p: usize,
    /// Differencing order.
    pub d: usize,
    /// Moving-average order.
    pub q: usize,
}

impl ArimaConfig {
    /// Convenience constructor.
    pub fn new(p: usize, d: usize, q: usize) -> Self {
        Self { p, d, q }
    }
}

/// A fitted ARIMA model.
///
/// ```
/// use mc_baselines::{ArimaConfig, ArimaModel};
/// use mc_datasets::generators::ar;
///
/// let series = ar(&[0.7], 2000, 1.0, 42);       // AR(1), phi = 0.7
/// let model = ArimaModel::fit(&series, ArimaConfig::new(1, 0, 0)).unwrap();
/// assert!((model.phi[0] - 0.7).abs() < 0.1);
/// let forecast = model.forecast(12).unwrap();
/// assert_eq!(forecast.len(), 12);
/// ```
#[derive(Debug, Clone)]
pub struct ArimaModel {
    /// The order it was fitted with.
    pub config: ArimaConfig,
    /// Intercept of the ARMA regression (on the differenced scale).
    pub intercept: f64,
    /// AR coefficients (`phi[0]` multiplies lag 1).
    pub phi: Vec<f64>,
    /// MA coefficients (`theta[0]` multiplies the lag-1 innovation).
    pub theta: Vec<f64>,
    /// Innovation variance estimate.
    pub sigma2: f64,
    /// Differenced training series (needed to seed forecasts).
    diffed: Vec<f64>,
    /// Estimated innovations aligned with `diffed`.
    innovations: Vec<f64>,
    /// Integration tails for undifferencing forecasts.
    tails: Vec<Vec<f64>>,
}

impl ArimaModel {
    /// Fits an ARIMA(p, d, q) model to `xs` by Hannan–Rissanen.
    ///
    /// # Errors
    /// If the series is too short for the requested order or the
    /// regression is degenerate.
    pub fn fit(xs: &[f64], config: ArimaConfig) -> Result<Self> {
        let ArimaConfig { p, d, q } = config;
        let min_len = d + p.max(q) + p + q + 5;
        if xs.len() < min_len {
            return Err(invalid_param(
                "series",
                format!("length {} too short for ARIMA({p},{d},{q})", xs.len()),
            ));
        }
        let (w, _) = difference(xs, d)?;
        let tails = integration_tail(xs, d)?;

        // Stage 1: long AR for innovation estimates.
        let long_order = ((w.len() as f64).ln().ceil() as usize + p + q).clamp(1, w.len() / 4);
        let innovations = long_ar_residuals(&w, long_order)?;

        // Stage 2: OLS of w_t on lags of w and lagged innovations.
        let start = p.max(q).max(long_order);
        let rows = w.len() - start;
        if rows < p + q + 2 {
            return Err(invalid_param("series", "not enough rows for the HR regression"));
        }
        let cols = 1 + p + q;
        let mut x = Vec::with_capacity(rows * cols);
        let mut y = Vec::with_capacity(rows);
        for t in start..w.len() {
            x.push(1.0);
            for i in 1..=p {
                x.push(w[t - i]);
            }
            for j in 1..=q {
                x.push(innovations[t - j]);
            }
            y.push(w[t]);
        }
        let beta = least_squares(&x, &y, cols)
            .ok_or_else(|| invalid_param("series", "singular Hannan–Rissanen regression"))?;
        let intercept = beta[0];
        let phi = beta[1..1 + p].to_vec();
        let theta = beta[1 + p..].to_vec();

        // Recompute innovations under the fitted ARMA for forecasting and
        // the variance estimate.
        let mut eps = vec![0.0; w.len()];
        for t in 0..w.len() {
            let mut pred = intercept;
            for (i, &ph) in phi.iter().enumerate() {
                if t > i {
                    pred += ph * w[t - 1 - i];
                }
            }
            for (j, &th) in theta.iter().enumerate() {
                if t > j {
                    pred += th * eps[t - 1 - j];
                }
            }
            eps[t] = w[t] - pred;
        }
        let used = &eps[start..];
        let sigma2 = used.iter().map(|e| e * e).sum::<f64>() / used.len() as f64;

        Ok(Self { config, intercept, phi, theta, sigma2, diffed: w, innovations: eps, tails })
    }

    /// Akaike information criterion of the fit.
    pub fn aic(&self) -> f64 {
        let n = self.diffed.len() as f64;
        let k = (self.config.p + self.config.q + 1) as f64;
        n * self.sigma2.max(1e-12).ln() + 2.0 * k
    }

    /// Multi-step forecast of `horizon` values on the *original* scale.
    ///
    /// # Errors
    /// When the stored integration tails are malformed (empty level) —
    /// impossible for models built by [`ArimaModel::fit`].
    pub fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        // Work on extended (history + forecast) buffers in the differenced
        // domain; future innovations are zero by construction.
        let mut w = self.diffed.clone();
        let mut eps = self.innovations.clone();
        let base = w.len();
        for h in 0..horizon {
            let t = base + h;
            let mut pred = self.intercept;
            for (i, &ph) in self.phi.iter().enumerate() {
                if t > i {
                    pred += ph * w[t - 1 - i];
                }
            }
            for (j, &th) in self.theta.iter().enumerate() {
                if t > j {
                    pred += th * eps[t - 1 - j];
                }
            }
            w.push(pred);
            eps.push(0.0);
        }
        let fc_diffed = &w[base..];
        undifference_forecast(fc_diffed, &self.tails)
    }
}

/// Residuals of a Yule–Walker AR(`order`) fit, aligned with `w`
/// (the first `order` entries are zero).
fn long_ar_residuals(w: &[f64], order: usize) -> Result<Vec<f64>> {
    if order >= w.len() {
        return Err(TsError::LengthMismatch { expected: order + 1, actual: w.len() });
    }
    let rho = acf(w, order)?;
    let (phi, _) = levinson_durbin(&rho, order)?;
    let mean = w.iter().sum::<f64>() / w.len() as f64;
    let mut eps = vec![0.0; w.len()];
    for t in order..w.len() {
        let mut pred = mean;
        for (i, &ph) in phi.iter().enumerate() {
            pred += ph * (w[t - 1 - i] - mean);
        }
        eps[t] = w[t] - pred;
    }
    Ok(eps)
}

/// Chooses `d` by greedy variance reduction (difference while it shrinks
/// the variance, up to `max_d`), then grid-searches `(p, q)` under AIC.
pub fn auto_arima(xs: &[f64], max_p: usize, max_d: usize, max_q: usize) -> Result<ArimaModel> {
    if xs.is_empty() {
        return Err(TsError::Empty);
    }
    // Pick d.
    let mut d = 0;
    let mut best_var = variance(xs)?;
    for cand in 1..=max_d {
        if xs.len() <= cand + 8 {
            break;
        }
        let (w, _) = difference(xs, cand)?;
        let v = variance(&w)?;
        if v < best_var * 0.95 {
            best_var = v;
            d = cand;
        } else {
            break;
        }
    }
    // Grid over (p, q).
    let mut best: Option<ArimaModel> = None;
    for p in 0..=max_p {
        for q in 0..=max_q {
            if p == 0 && q == 0 {
                continue;
            }
            if let Ok(m) = ArimaModel::fit(xs, ArimaConfig::new(p, d, q)) {
                if best.as_ref().is_none_or(|b| m.aic() < b.aic()) {
                    best = Some(m);
                }
            }
        }
    }
    best.ok_or_else(|| invalid_param("series", "no ARIMA order could be fitted"))
}

/// [`UnivariateForecaster`] wrapper: auto-order ARIMA per dimension, the
/// configuration the benchmark tables use.
#[derive(Debug, Clone)]
pub struct ArimaForecaster {
    /// Maximum AR order searched.
    pub max_p: usize,
    /// Maximum differencing searched.
    pub max_d: usize,
    /// Maximum MA order searched.
    pub max_q: usize,
}

impl Default for ArimaForecaster {
    fn default() -> Self {
        Self { max_p: 3, max_d: 2, max_q: 2 }
    }
}

impl UnivariateForecaster for ArimaForecaster {
    fn name(&self) -> String {
        "ARIMA".into()
    }

    fn forecast_univariate(&mut self, train: &[f64], horizon: usize) -> Result<Vec<f64>> {
        let model = auto_arima(train, self.max_p, self.max_d, self.max_q)?;
        model.forecast(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_datasets::generators::{ar, linear_trend, white_noise};

    #[test]
    fn recovers_ar2_coefficients() {
        let xs = ar(&[0.6, -0.3], 4000, 1.0, 42);
        let m = ArimaModel::fit(&xs, ArimaConfig::new(2, 0, 0)).unwrap();
        assert!((m.phi[0] - 0.6).abs() < 0.06, "phi1 = {}", m.phi[0]);
        assert!((m.phi[1] + 0.3).abs() < 0.06, "phi2 = {}", m.phi[1]);
        assert!((m.sigma2 - 1.0).abs() < 0.15, "sigma2 = {}", m.sigma2);
    }

    #[test]
    fn recovers_ma1_coefficient() {
        let xs = mc_datasets::generators::ma(&[0.7], 6000, 1.0, 7);
        let m = ArimaModel::fit(&xs, ArimaConfig::new(0, 0, 1)).unwrap();
        assert!((m.theta[0] - 0.7).abs() < 0.08, "theta1 = {}", m.theta[0]);
    }

    #[test]
    fn differencing_captures_linear_trend() {
        // Deterministic trend + small noise: ARIMA(1,1,0) forecasts should
        // keep climbing at roughly the trend slope.
        let trend = linear_trend(200, 5.0, 0.5);
        let noise = white_noise(200, 0.05, 3);
        let xs: Vec<f64> = trend.iter().zip(&noise).map(|(a, b)| a + b).collect();
        let m = ArimaModel::fit(&xs, ArimaConfig::new(1, 1, 0)).unwrap();
        let fc = m.forecast(10).unwrap();
        assert_eq!(fc.len(), 10);
        let last = xs[199];
        assert!((fc[0] - (last + 0.5)).abs() < 0.5, "first step {} vs {}", fc[0], last + 0.5);
        assert!((fc[9] - (last + 5.0)).abs() < 1.5, "tenth step {}", fc[9]);
    }

    #[test]
    fn ar1_forecast_decays_toward_mean() {
        let xs = ar(&[0.8], 3000, 1.0, 11);
        let m = ArimaModel::fit(&xs, ArimaConfig::new(1, 0, 0)).unwrap();
        let fc = m.forecast(50).unwrap();
        // Long-horizon AR(1) forecast converges to the model's unconditional
        // mean c / (1 - phi), which for this process is near 0.
        let limit = m.intercept / (1.0 - m.phi[0]);
        assert!(limit.abs() < 0.5, "unconditional mean should be near 0, got {limit}");
        assert!((fc[49] - limit).abs() < 1e-3, "fc[49]={} vs limit {limit}", fc[49]);
    }

    #[test]
    fn aic_prefers_true_order() {
        let xs = ar(&[0.6, -0.3], 3000, 1.0, 5);
        let right = ArimaModel::fit(&xs, ArimaConfig::new(2, 0, 0)).unwrap();
        let over = ArimaModel::fit(&xs, ArimaConfig::new(3, 0, 2)).unwrap();
        assert!(right.aic() <= over.aic() + 4.0, "AIC should not favour heavy overfit");
    }

    #[test]
    fn auto_arima_picks_differencing_for_trend() {
        let trend = linear_trend(300, 0.0, 1.0);
        let noise = white_noise(300, 0.1, 9);
        let xs: Vec<f64> = trend.iter().zip(&noise).map(|(a, b)| a + b).collect();
        let m = auto_arima(&xs, 3, 2, 2).unwrap();
        assert!(m.config.d >= 1, "trend requires differencing, chose {:?}", m.config);
        let fc = m.forecast(5).unwrap();
        assert!(fc[4] > xs[299], "forecast should continue the climb");
    }

    #[test]
    fn auto_arima_stationary_needs_no_differencing() {
        let xs = ar(&[0.5], 2000, 1.0, 13);
        let m = auto_arima(&xs, 3, 2, 2).unwrap();
        assert_eq!(m.config.d, 0, "stationary AR(1) should not be differenced");
    }

    #[test]
    fn too_short_series_rejected() {
        assert!(ArimaModel::fit(&[1.0, 2.0, 3.0], ArimaConfig::new(2, 1, 2)).is_err());
    }

    #[test]
    fn forecaster_trait_wrapper() {
        let mut f = ArimaForecaster::default();
        assert_eq!(mc_tslib::forecast::UnivariateForecaster::name(&f), "ARIMA");
        let xs = ar(&[0.7], 500, 1.0, 21);
        let fc = f.forecast_univariate(&xs, 12).unwrap();
        assert_eq!(fc.len(), 12);
        assert!(fc.iter().all(|v| v.is_finite()));
    }
}
