//! Reference naive forecasters.
//!
//! Not evaluated in the paper's tables, but indispensable as sanity floors:
//! any method that can't beat "repeat the last value" on a trending series
//! has a bug, and the ablation harness reports them alongside the real
//! methods.

use mc_tslib::error::{invalid_param, Result, TsError};
use mc_tslib::forecast::UnivariateForecaster;

/// Repeats the last observed value.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveForecaster;

impl UnivariateForecaster for NaiveForecaster {
    fn name(&self) -> String {
        "Naive".into()
    }

    fn forecast_univariate(&mut self, train: &[f64], horizon: usize) -> Result<Vec<f64>> {
        let last = *train.last().ok_or(TsError::Empty)?;
        Ok(vec![last; horizon])
    }
}

/// Repeats the last observed seasonal cycle.
#[derive(Debug, Clone, Copy)]
pub struct SeasonalNaiveForecaster {
    /// Season length in timestamps.
    pub period: usize,
}

impl UnivariateForecaster for SeasonalNaiveForecaster {
    fn name(&self) -> String {
        format!("SeasonalNaive(m={})", self.period)
    }

    fn forecast_univariate(&mut self, train: &[f64], horizon: usize) -> Result<Vec<f64>> {
        if self.period == 0 {
            return Err(invalid_param("period", "must be >= 1"));
        }
        if train.len() < self.period {
            return Err(invalid_param(
                "period",
                format!("{} exceeds series length {}", self.period, train.len()),
            ));
        }
        let cycle = &train[train.len() - self.period..];
        Ok((0..horizon).map(|h| cycle[h % self.period]).collect())
    }
}

/// Extends the straight line between the first and last observation
/// (the classic "drift" method).
#[derive(Debug, Clone, Copy, Default)]
pub struct DriftForecaster;

impl UnivariateForecaster for DriftForecaster {
    fn name(&self) -> String {
        "Drift".into()
    }

    fn forecast_univariate(&mut self, train: &[f64], horizon: usize) -> Result<Vec<f64>> {
        if train.len() < 2 {
            return Err(invalid_param("series", "drift needs at least 2 observations"));
        }
        let last = train[train.len() - 1];
        let slope = (last - train[0]) / (train.len() - 1) as f64;
        Ok((1..=horizon).map(|h| last + slope * h as f64).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_repeats_last() {
        let mut f = NaiveForecaster;
        assert_eq!(f.forecast_univariate(&[1.0, 2.0, 7.0], 3).unwrap(), vec![7.0, 7.0, 7.0]);
        assert!(f.forecast_univariate(&[], 2).is_err());
    }

    #[test]
    fn seasonal_naive_repeats_cycle() {
        let mut f = SeasonalNaiveForecaster { period: 3 };
        let train = [9.0, 9.0, 9.0, 1.0, 2.0, 3.0];
        assert_eq!(f.forecast_univariate(&train, 5).unwrap(), vec![1.0, 2.0, 3.0, 1.0, 2.0]);
        assert!(f.forecast_univariate(&[1.0], 2).is_err());
        let mut bad = SeasonalNaiveForecaster { period: 0 };
        assert!(bad.forecast_univariate(&train, 2).is_err());
    }

    #[test]
    fn drift_extends_line() {
        let mut f = DriftForecaster;
        // Line from 0 to 10 over 11 points → slope 1.
        let train: Vec<f64> = (0..=10).map(|t| t as f64).collect();
        assert_eq!(f.forecast_univariate(&train, 3).unwrap(), vec![11.0, 12.0, 13.0]);
        assert!(f.forecast_univariate(&[5.0], 1).is_err());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(NaiveForecaster.name(), "Naive");
        assert_eq!(SeasonalNaiveForecaster { period: 4 }.name(), "SeasonalNaive(m=4)");
        assert_eq!(DriftForecaster.name(), "Drift");
    }
}
