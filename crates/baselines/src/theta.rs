//! The Theta method (Assimakopoulos & Nikolopoulos, 2000) — winner of the
//! M3 forecasting competition in its simplified form.
//!
//! The classical decomposition: the series is split into two "theta
//! lines", `θ = 0` (the linear regression on time, pure long-run trend)
//! and `θ = 2` (curvature doubled: `2·x - line0`). The θ=2 line is
//! forecast with simple exponential smoothing and the two forecasts are
//! averaged — which works out to SES plus half the trend slope per step.
//! Despite its simplicity it is a famously strong univariate baseline,
//! included here to round out the extended comparison grid.

use mc_tslib::error::{invalid_param, Result};
use mc_tslib::forecast::UnivariateForecaster;

/// Simplified Theta(0, 2) forecaster with grid-searched SES smoothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct Theta;

/// Ordinary least squares of `xs` on `t = 0..n`: returns `(intercept, slope)`.
fn linear_fit(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let t_mean = (n - 1.0) / 2.0;
    let x_mean = xs.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (t, &x) in xs.iter().enumerate() {
        let dt = t as f64 - t_mean;
        num += dt * (x - x_mean);
        den += dt * dt;
    }
    let slope = if den > 0.0 { num / den } else { 0.0 };
    (x_mean - slope * t_mean, slope)
}

/// SES level after one pass, plus in-sample SSE (for alpha selection).
fn ses_level(xs: &[f64], alpha: f64) -> (f64, f64) {
    let mut level = xs[0];
    let mut sse = 0.0;
    for &x in &xs[1..] {
        let err = x - level;
        sse += err * err;
        level += alpha * err;
    }
    (level, sse)
}

impl UnivariateForecaster for Theta {
    fn name(&self) -> String {
        "Theta".into()
    }

    fn forecast_univariate(&mut self, train: &[f64], horizon: usize) -> Result<Vec<f64>> {
        if train.len() < 5 {
            return Err(invalid_param("series", "Theta needs at least 5 observations"));
        }
        let n = train.len();
        let (intercept, slope) = linear_fit(train);
        // θ=2 line: double the deviation from the trend line.
        let theta2: Vec<f64> = train
            .iter()
            .enumerate()
            .map(|(t, &x)| 2.0 * x - (intercept + slope * t as f64))
            .collect();
        // Grid-search the SES alpha on the θ=2 line.
        let mut best = (0.1, f64::MAX);
        for i in 1..=19 {
            let a = i as f64 / 20.0;
            let (_, sse) = ses_level(&theta2, a);
            if sse < best.1 {
                best = (a, sse);
            }
        }
        let (level, _) = ses_level(&theta2, best.0);
        // Combine: ½·θ0 extrapolation + ½·θ2 SES (flat) per step.
        Ok((1..=horizon)
            .map(|h| {
                let line0 = intercept + slope * (n - 1 + h) as f64;
                0.5 * line0 + 0.5 * level
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_datasets::generators::{add, linear_trend, sinusoids, white_noise};

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs: Vec<f64> = (0..30).map(|t| 4.0 + 0.5 * t as f64).collect();
        let (a, b) = linear_fit(&xs);
        assert!((a - 4.0).abs() < 1e-9);
        assert!((b - 0.5).abs() < 1e-9);
    }

    #[test]
    fn follows_trend_at_half_strength_plus_level() {
        // On a clean trend, theta forecasts continue climbing (half the
        // slope comes from the θ0 line, the rest is absorbed into the
        // θ2 SES level at the end of the training window).
        let xs = linear_trend(100, 10.0, 1.0);
        let fc = Theta.forecast_univariate(&xs, 5).unwrap();
        let last = xs[99];
        for (h, &v) in fc.iter().enumerate() {
            assert!(v > last, "h={h}: {v} should exceed {last}");
        }
        // The first step is within a couple of units of the true line.
        assert!((fc[0] - (last + 1.0)).abs() < 2.0, "fc0 {}", fc[0]);
    }

    #[test]
    fn competitive_with_ses_on_noisy_trend() {
        let xs = add(&linear_trend(160, 0.0, 0.4), &white_noise(160, 1.0, 7));
        let (train, test) = xs.split_at(140);
        let mut theta_err = 0.0;
        let mut ses_err = 0.0;
        let theta_fc = Theta.forecast_univariate(train, 20).unwrap();
        let ses_fc = crate::expsmooth::Ses { alpha: None }.forecast_univariate(train, 20).unwrap();
        for h in 0..20 {
            theta_err += (theta_fc[h] - test[h]).powi(2);
            ses_err += (ses_fc[h] - test[h]).powi(2);
        }
        assert!(
            theta_err < ses_err,
            "theta must beat flat SES on trending data: {theta_err:.1} vs {ses_err:.1}"
        );
    }

    #[test]
    fn stable_on_periodic_data() {
        let xs = sinusoids(120, &[(5.0, 24.0, 0.3)]);
        let fc = Theta.forecast_univariate(&xs, 10).unwrap();
        assert_eq!(fc.len(), 10);
        assert!(fc.iter().all(|v| v.is_finite() && v.abs() < 20.0));
    }

    #[test]
    fn too_short_rejected() {
        assert!(Theta.forecast_univariate(&[1.0, 2.0], 3).is_err());
    }
}
