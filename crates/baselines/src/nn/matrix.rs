//! Minimal dense matrix for the LSTM's weight tensors.
//!
//! Row-major `Vec<f64>` storage with exactly the operations BPTT needs:
//! matrix–vector products (forward), transposed products (backward), and
//! rank-1 accumulation (weight gradients). No allocation happens inside
//! the hot paths; callers pass output buffers.

use rand::rngs::StdRng;
use rand::Rng;

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major data, `data[r * cols + c]`.
    pub data: Vec<f64>,
}

impl Mat {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Xavier/Glorot-uniform initialization: `U(-a, a)` with
    /// `a = sqrt(6 / (rows + cols))`.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let a = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect();
        Self { rows, cols, data }
    }

    /// Element accessor (for tests; hot code indexes `data` directly).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// `out += A · x` (`out` has `rows` entries, `x` has `cols`).
    pub fn matvec_acc(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(out.len(), self.rows);
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *o += acc;
        }
    }

    /// `out += Aᵀ · v` (`v` has `rows` entries, `out` has `cols`).
    pub fn matvec_t_acc(&self, v: &[f64], out: &mut [f64]) {
        debug_assert_eq!(v.len(), self.rows);
        debug_assert_eq!(out.len(), self.cols);
        for (r, &vr) in v.iter().enumerate() {
            if vr == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, a) in out.iter_mut().zip(row) {
                *o += vr * a;
            }
        }
    }

    /// Rank-1 update `A += v ⊗ x` (gradient accumulation).
    pub fn add_outer(&mut self, v: &[f64], x: &[f64]) {
        debug_assert_eq!(v.len(), self.rows);
        debug_assert_eq!(x.len(), self.cols);
        for (r, &vr) in v.iter().enumerate() {
            if vr == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (a, b) in row.iter_mut().zip(x) {
                *a += vr * b;
            }
        }
    }

    /// Sets every element to zero (gradient buffers between batches).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matvec_acc_computes_product() {
        let a = Mat { rows: 2, cols: 3, data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0] };
        let mut out = vec![10.0, 20.0];
        a.matvec_acc(&[1.0, 0.0, -1.0], &mut out);
        // Row products: 1-3 = -2; 4-6 = -2. Accumulated onto 10, 20.
        assert_eq!(out, vec![8.0, 18.0]);
    }

    #[test]
    fn matvec_t_acc_is_transpose() {
        let a = Mat { rows: 2, cols: 3, data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0] };
        let mut out = vec![0.0; 3];
        a.matvec_t_acc(&[1.0, 1.0], &mut out);
        assert_eq!(out, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn add_outer_rank_one() {
        let mut a = Mat::zeros(2, 2);
        a.add_outer(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(a.data, vec![3.0, 4.0, 6.0, 8.0]);
        a.add_outer(&[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(a.data, vec![4.0, 5.0, 6.0, 8.0]);
    }

    #[test]
    fn xavier_respects_bound_and_seed() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mat::xavier(30, 20, &mut rng);
        let bound = (6.0 / 50.0_f64).sqrt();
        assert!(m.data.iter().all(|v| v.abs() < bound));
        let mut rng2 = StdRng::seed_from_u64(1);
        assert_eq!(m, Mat::xavier(30, 20, &mut rng2));
    }

    #[test]
    fn fill_zero_resets() {
        let mut a = Mat { rows: 1, cols: 2, data: vec![1.0, 2.0] };
        a.fill_zero();
        assert_eq!(a.data, vec![0.0, 0.0]);
    }
}
