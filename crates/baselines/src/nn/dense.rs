//! Fully connected output layer (`y = W·x + b`).

use rand::rngs::StdRng;

use super::matrix::Mat;

/// Dense linear layer.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weights, `out × in`.
    pub w: Mat,
    /// Bias, length `out`.
    pub b: Vec<f64>,
}

/// Gradients for a dense layer.
#[derive(Debug, Clone)]
pub struct DenseGrads {
    /// d/dW.
    pub w: Mat,
    /// d/db.
    pub b: Vec<f64>,
}

impl DenseGrads {
    /// Zero gradients matching a layer's shapes.
    pub fn zeros(layer: &Dense) -> Self {
        Self { w: Mat::zeros(layer.w.rows, layer.w.cols), b: vec![0.0; layer.b.len()] }
    }

    /// Clears all gradients.
    pub fn fill_zero(&mut self) {
        self.w.fill_zero();
        self.b.iter_mut().for_each(|v| *v = 0.0);
    }
}

impl Dense {
    /// Xavier-initialized layer.
    pub fn new(input: usize, output: usize, rng: &mut StdRng) -> Self {
        Self { w: Mat::xavier(output, input, rng), b: vec![0.0; output] }
    }

    /// Forward pass.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.b.clone();
        self.w.matvec_acc(x, &mut y);
        y
    }

    /// Backward pass: given `dy`, accumulates parameter gradients and
    /// returns `dx`.
    pub fn backward(&self, x: &[f64], dy: &[f64], grads: &mut DenseGrads) -> Vec<f64> {
        grads.w.add_outer(dy, x);
        for (gb, &d) in grads.b.iter_mut().zip(dy) {
            *gb += d;
        }
        let mut dx = vec![0.0; self.w.cols];
        self.w.matvec_t_acc(dy, &mut dx);
        dx
    }

    /// Flattened parameter/gradient pairs for the optimizer.
    pub fn params_and_grads<'a>(
        &'a mut self,
        grads: &'a DenseGrads,
    ) -> Vec<(&'a mut [f64], &'a [f64])> {
        vec![
            (self.w.data.as_mut_slice(), grads.w.data.as_slice()),
            (self.b.as_mut_slice(), grads.b.as_slice()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_is_affine() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Dense::new(2, 2, &mut rng);
        l.w.data = vec![1.0, 2.0, 3.0, 4.0];
        l.b = vec![10.0, 20.0];
        assert_eq!(l.forward(&[1.0, 1.0]), vec![13.0, 27.0]);
    }

    #[test]
    fn backward_matches_numerical() {
        let mut rng = StdRng::seed_from_u64(2);
        let l = Dense::new(3, 2, &mut rng);
        let x = [0.5, -1.0, 2.0];
        // Loss = sum(y) → dy = [1, 1].
        let loss = |l: &Dense, x: &[f64]| -> f64 { l.forward(x).iter().sum() };
        let mut grads = DenseGrads::zeros(&l);
        let dx = l.backward(&x, &[1.0, 1.0], &mut grads);
        let eps = 1e-6;
        let mut lp = l.clone();
        for idx in 0..6 {
            let orig = lp.w.data[idx];
            lp.w.data[idx] = orig + eps;
            let up = loss(&lp, &x);
            lp.w.data[idx] = orig - eps;
            let down = loss(&lp, &x);
            lp.w.data[idx] = orig;
            assert!(((up - down) / (2.0 * eps) - grads.w.data[idx]).abs() < 1e-6);
        }
        let mut xp = x;
        for idx in 0..3 {
            let orig = xp[idx];
            xp[idx] = orig + eps;
            let up = loss(&l, &xp);
            xp[idx] = orig - eps;
            let down = loss(&l, &xp);
            xp[idx] = orig;
            assert!(((up - down) / (2.0 * eps) - dx[idx]).abs() < 1e-6);
        }
    }
}
