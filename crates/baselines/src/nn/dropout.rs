//! Inverted dropout.
//!
//! The paper's LSTM grid search settled on a dropout rate of 0.2; dropout
//! here is applied to the final hidden state before the dense head.
//! Inverted scaling (`kept / (1 - rate)`) keeps expectations unchanged, so
//! inference simply skips the layer.

use rand::rngs::StdRng;
use rand::Rng;

/// Dropout layer with a fixed rate.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    /// Probability of zeroing each unit, in `[0, 1)`.
    pub rate: f64,
}

impl Dropout {
    /// Creates the layer.
    ///
    /// # Panics
    /// If `rate` is not in `[0, 1)`.
    pub fn new(rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        Self { rate }
    }

    /// Samples a mask for a vector of `n` units. Mask entries are either
    /// `0` (dropped) or `1 / (1 - rate)` (kept, inverted scaling).
    pub fn sample_mask(&self, n: usize, rng: &mut StdRng) -> Vec<f64> {
        if self.rate == 0.0 {
            return vec![1.0; n];
        }
        let keep = 1.0 - self.rate;
        (0..n).map(|_| if rng.gen::<f64>() < keep { 1.0 / keep } else { 0.0 }).collect()
    }

    /// Applies a mask in place (training-time forward).
    pub fn apply(xs: &mut [f64], mask: &[f64]) {
        debug_assert_eq!(xs.len(), mask.len());
        for (x, &m) in xs.iter_mut().zip(mask) {
            *x *= m;
        }
    }

    /// Backward: the gradient passes through the same mask.
    pub fn backward(dxs: &mut [f64], mask: &[f64]) {
        Self::apply(dxs, mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zero_rate_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Dropout::new(0.0);
        let mask = d.sample_mask(5, &mut rng);
        assert_eq!(mask, vec![1.0; 5]);
    }

    #[test]
    fn mask_preserves_expectation() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Dropout::new(0.2);
        let mut sum = 0.0;
        let n = 50_000;
        for m in d.sample_mask(n, &mut rng) {
            sum += m;
        }
        // E[mask] = keep * 1/keep = 1.
        assert!((sum / n as f64 - 1.0).abs() < 0.02);
    }

    #[test]
    fn mask_entries_are_zero_or_scaled() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Dropout::new(0.5);
        for m in d.sample_mask(1000, &mut rng) {
            assert!(m == 0.0 || (m - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_and_backward_share_mask() {
        let mask = [0.0, 2.0, 2.0];
        let mut x = [1.0, 1.0, 3.0];
        Dropout::apply(&mut x, &mask);
        assert_eq!(x, [0.0, 2.0, 6.0]);
        let mut dx = [5.0, 5.0, 5.0];
        Dropout::backward(&mut dx, &mask);
        assert_eq!(dx, [0.0, 10.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn rate_one_rejected() {
        Dropout::new(1.0);
    }
}
