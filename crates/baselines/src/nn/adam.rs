//! Adam optimizer (Kingma & Ba 2014 — the paper's ref [35]).
//!
//! One [`Adam`] instance owns first/second-moment buffers for a fixed set
//! of parameter tensors, addressed positionally; callers pass the same
//! tensor order every step (enforced by shape asserts).

/// Adam hyperparameters and per-tensor moment state.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical fuzz.
    pub eps: f64,
    /// Step counter (for bias correction).
    t: u64,
    /// First moments, one buffer per tensor.
    m: Vec<Vec<f64>>,
    /// Second moments.
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Creates an optimizer for tensors of the given sizes.
    pub fn new(lr: f64, sizes: &[usize]) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: sizes.iter().map(|&s| vec![0.0; s]).collect(),
            v: sizes.iter().map(|&s| vec![0.0; s]).collect(),
        }
    }

    /// Applies one update step to all tensors.
    ///
    /// `pairs[i]` is `(params, grads)` for tensor `i`, in the same order as
    /// construction.
    pub fn step(&mut self, pairs: &mut [(&mut [f64], &[f64])]) {
        assert_eq!(pairs.len(), self.m.len(), "tensor count mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, (params, grads)) in pairs.iter_mut().enumerate() {
            assert_eq!(params.len(), self.m[i].len(), "tensor {i} size mismatch");
            assert_eq!(params.len(), grads.len(), "tensor {i} grad size mismatch");
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            for j in 0..params.len() {
                let g = grads[j];
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g;
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g * g;
                let mhat = m[j] / bc1;
                let vhat = v[j] / bc2;
                params[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

/// Clips a set of gradient tensors to a maximum global L2 norm; returns the
/// pre-clip norm. Standard practice for RNN training stability.
pub fn clip_global_norm(grads: &mut [&mut [f64]], max_norm: f64) -> f64 {
    let norm: f64 = grads.iter().map(|g| g.iter().map(|x| x * x).sum::<f64>()).sum::<f64>().sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            for x in g.iter_mut() {
                *x *= scale;
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        // Minimize f(x) = (x - 3)², gradient 2(x - 3).
        let mut x = vec![0.0];
        let mut opt = Adam::new(0.1, &[1]);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut [(x.as_mut_slice(), g.as_slice())]);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x = {}", x[0]);
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn handles_multiple_tensors() {
        let mut a = vec![10.0, -10.0];
        let mut b = vec![5.0];
        let mut opt = Adam::new(0.5, &[2, 1]);
        for _ in 0..300 {
            let ga: Vec<f64> = a.iter().map(|&x| 2.0 * x).collect();
            let gb: Vec<f64> = b.iter().map(|&x| 2.0 * x).collect();
            opt.step(&mut [(a.as_mut_slice(), ga.as_slice()), (b.as_mut_slice(), gb.as_slice())]);
        }
        assert!(a.iter().all(|v| v.abs() < 0.05), "{a:?}");
        assert!(b.iter().all(|v| v.abs() < 0.05), "{b:?}");
    }

    #[test]
    fn clip_reduces_large_gradients() {
        let mut g1 = vec![3.0, 4.0]; // norm 5
        let mut g2 = vec![0.0];
        let norm = clip_global_norm(&mut [g1.as_mut_slice(), g2.as_mut_slice()], 1.0);
        assert!((norm - 5.0).abs() < 1e-12);
        let new_norm: f64 = g1.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((new_norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clip_leaves_small_gradients() {
        let mut g = vec![0.1, 0.1];
        let before = g.clone();
        clip_global_norm(&mut [g.as_mut_slice()], 10.0);
        assert_eq!(g, before);
    }

    #[test]
    #[should_panic(expected = "tensor count mismatch")]
    fn tensor_count_checked() {
        let mut opt = Adam::new(0.1, &[1, 1]);
        let mut x = vec![0.0];
        let g = vec![1.0];
        opt.step(&mut [(x.as_mut_slice(), g.as_slice())]);
    }
}
