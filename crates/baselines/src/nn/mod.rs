//! In-tree neural-network micro-framework.
//!
//! Just enough machinery for the paper's LSTM baseline, written from
//! scratch: a dense matrix type ([`Mat`]), Xavier initialization, the LSTM
//! cell with full backpropagation-through-time support, a dense output
//! layer, inverted dropout, and the Adam optimizer. Every gradient path is
//! validated against numerical differentiation in the tests — the only way
//! to trust a hand-written BPTT.

pub mod adam;
pub mod dense;
pub mod dropout;
pub mod lstm_cell;
pub mod matrix;

pub use adam::Adam;
pub use dense::Dense;
pub use dropout::Dropout;
pub use lstm_cell::{LstmCell, LstmState, LstmStepCache};
pub use matrix::Mat;

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::sigmoid;

    #[test]
    fn sigmoid_reference_points() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        // Symmetry: σ(-x) = 1 - σ(x).
        assert!((sigmoid(-1.3) + sigmoid(1.3) - 1.0).abs() < 1e-12);
    }
}
