//! The LSTM cell (Hochreiter & Schmidhuber 1997 — the paper's ref [32])
//! with full backpropagation-through-time support.
//!
//! Gate layout in the stacked weight matrices is `[input, forget, cell,
//! output]`, each block of `hidden` rows. The forward pass returns a
//! [`LstmStepCache`] holding every activation the backward pass needs;
//! the trainer keeps one cache per timestep and walks them in reverse.

use rand::rngs::StdRng;

use super::matrix::Mat;
use super::sigmoid;

/// LSTM cell parameters.
#[derive(Debug, Clone)]
pub struct LstmCell {
    /// Input weights, `4·hidden × input`.
    pub wx: Mat,
    /// Recurrent weights, `4·hidden × hidden`.
    pub wh: Mat,
    /// Gate biases, length `4·hidden`.
    pub b: Vec<f64>,
    /// Hidden size.
    pub hidden: usize,
    /// Input size.
    pub input: usize,
}

/// Recurrent state `(h, c)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden vector.
    pub h: Vec<f64>,
    /// Cell vector.
    pub c: Vec<f64>,
}

impl LstmState {
    /// Zero state.
    pub fn zeros(hidden: usize) -> Self {
        Self { h: vec![0.0; hidden], c: vec![0.0; hidden] }
    }
}

/// Everything the backward pass needs about one forward step.
#[derive(Debug, Clone)]
pub struct LstmStepCache {
    /// The input vector.
    pub x: Vec<f64>,
    /// Previous hidden state.
    pub h_prev: Vec<f64>,
    /// Previous cell state.
    pub c_prev: Vec<f64>,
    /// Gate activations `i, f, g, o`, each `hidden` long, concatenated.
    pub gates: Vec<f64>,
    /// New cell state.
    pub c: Vec<f64>,
    /// `tanh(c)`.
    pub tanh_c: Vec<f64>,
}

/// Gradients of the cell parameters (same shapes as the parameters).
#[derive(Debug, Clone)]
pub struct LstmGrads {
    /// d/dWx.
    pub wx: Mat,
    /// d/dWh.
    pub wh: Mat,
    /// d/db.
    pub b: Vec<f64>,
}

impl LstmGrads {
    /// Zero gradients matching a cell's shapes.
    pub fn zeros(cell: &LstmCell) -> Self {
        Self {
            wx: Mat::zeros(4 * cell.hidden, cell.input),
            wh: Mat::zeros(4 * cell.hidden, cell.hidden),
            b: vec![0.0; 4 * cell.hidden],
        }
    }

    /// Clears all gradients.
    pub fn fill_zero(&mut self) {
        self.wx.fill_zero();
        self.wh.fill_zero();
        self.b.iter_mut().for_each(|v| *v = 0.0);
    }
}

impl LstmCell {
    /// Xavier-initialized cell with the forget-gate bias set to 1
    /// (the standard trick that stabilizes early training).
    pub fn new(input: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let mut b = vec![0.0; 4 * hidden];
        for v in &mut b[hidden..2 * hidden] {
            *v = 1.0;
        }
        Self {
            wx: Mat::xavier(4 * hidden, input, rng),
            wh: Mat::xavier(4 * hidden, hidden, rng),
            b,
            hidden,
            input,
        }
    }

    /// One forward step: consumes `x` and the previous state, returns the
    /// new state and the cache for backward.
    pub fn forward(&self, x: &[f64], prev: &LstmState) -> (LstmState, LstmStepCache) {
        let h = self.hidden;
        debug_assert_eq!(x.len(), self.input);
        // Pre-activations z = Wx·x + Wh·h_prev + b.
        let mut z = self.b.clone();
        self.wx.matvec_acc(x, &mut z);
        self.wh.matvec_acc(&prev.h, &mut z);
        // Gate nonlinearities.
        let mut gates = vec![0.0; 4 * h];
        for j in 0..h {
            gates[j] = sigmoid(z[j]); // i
            gates[h + j] = sigmoid(z[h + j]); // f
            gates[2 * h + j] = z[2 * h + j].tanh(); // g
            gates[3 * h + j] = sigmoid(z[3 * h + j]); // o
        }
        let mut c = vec![0.0; h];
        let mut tanh_c = vec![0.0; h];
        let mut h_new = vec![0.0; h];
        for j in 0..h {
            c[j] = gates[h + j] * prev.c[j] + gates[j] * gates[2 * h + j];
            tanh_c[j] = c[j].tanh();
            h_new[j] = gates[3 * h + j] * tanh_c[j];
        }
        let state = LstmState { h: h_new, c: c.clone() };
        let cache = LstmStepCache {
            x: x.to_vec(),
            h_prev: prev.h.clone(),
            c_prev: prev.c.clone(),
            gates,
            c,
            tanh_c,
        };
        (state, cache)
    }

    /// One backward step. `dh` and `dc` are the gradients flowing into this
    /// step's outputs (from the loss and from the *next* step). Returns the
    /// gradients flowing to the previous state; accumulates parameter
    /// gradients into `grads` and writes the input gradient into `dx`.
    pub fn backward(
        &self,
        cache: &LstmStepCache,
        dh: &[f64],
        dc_in: &[f64],
        grads: &mut LstmGrads,
        dx: &mut [f64],
    ) -> (Vec<f64>, Vec<f64>) {
        let h = self.hidden;
        let (gi, gf, gg, go) = (
            &cache.gates[..h],
            &cache.gates[h..2 * h],
            &cache.gates[2 * h..3 * h],
            &cache.gates[3 * h..],
        );
        let mut dz = vec![0.0; 4 * h];
        let mut dc_prev = vec![0.0; h];
        for j in 0..h {
            let do_ = dh[j] * cache.tanh_c[j];
            let dc = dh[j] * go[j] * (1.0 - cache.tanh_c[j] * cache.tanh_c[j]) + dc_in[j];
            let di = dc * gg[j];
            let df = dc * cache.c_prev[j];
            let dg = dc * gi[j];
            dc_prev[j] = dc * gf[j];
            dz[j] = di * gi[j] * (1.0 - gi[j]);
            dz[h + j] = df * gf[j] * (1.0 - gf[j]);
            dz[2 * h + j] = dg * (1.0 - gg[j] * gg[j]);
            dz[3 * h + j] = do_ * go[j] * (1.0 - go[j]);
        }
        // Parameter gradients.
        grads.wx.add_outer(&dz, &cache.x);
        grads.wh.add_outer(&dz, &cache.h_prev);
        for (gb, &d) in grads.b.iter_mut().zip(&dz) {
            *gb += d;
        }
        // Gradients to inputs and previous hidden state.
        dx.iter_mut().for_each(|v| *v = 0.0);
        self.wx.matvec_t_acc(&dz, dx);
        let mut dh_prev = vec![0.0; h];
        self.wh.matvec_t_acc(&dz, &mut dh_prev);
        (dh_prev, dc_prev)
    }

    /// Flattened views of all parameter tensors, paired with matching
    /// gradient views — used by the optimizer.
    pub fn params_and_grads<'a>(
        &'a mut self,
        grads: &'a LstmGrads,
    ) -> Vec<(&'a mut [f64], &'a [f64])> {
        vec![
            (self.wx.data.as_mut_slice(), grads.wx.data.as_slice()),
            (self.wh.data.as_mut_slice(), grads.wh.data.as_slice()),
            (self.b.as_mut_slice(), grads.b.as_slice()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Numerical gradient check of the full cell: the definitive test for
    /// hand-written BPTT.
    #[test]
    fn gradients_match_numerical() {
        let mut rng = StdRng::seed_from_u64(7);
        let (input, hidden) = (3, 4);
        let cell = LstmCell::new(input, hidden, &mut rng);
        let x = [0.3, -0.7, 0.5];
        let prev = LstmState { h: vec![0.1, -0.2, 0.05, 0.3], c: vec![-0.4, 0.2, 0.6, -0.1] };
        // Scalar loss: sum of h (so dh = 1, dc = 0).
        let loss = |cell: &LstmCell| -> f64 {
            let (s, _) = cell.forward(&x, &prev);
            s.h.iter().sum()
        };
        let (_, cache) = cell.forward(&x, &prev);
        let mut grads = LstmGrads::zeros(&cell);
        let mut dx = vec![0.0; input];
        let dh = vec![1.0; hidden];
        let dc = vec![0.0; hidden];
        let (dh_prev, _dc_prev) = cell.backward(&cache, &dh, &dc, &mut grads, &mut dx);

        let eps = 1e-6;
        // Check a sample of Wx entries.
        let mut cell_pert = cell.clone();
        for &idx in &[0usize, 5, 11, 4 * 4 * 3 - 1] {
            let orig = cell_pert.wx.data[idx];
            cell_pert.wx.data[idx] = orig + eps;
            let up = loss(&cell_pert);
            cell_pert.wx.data[idx] = orig - eps;
            let down = loss(&cell_pert);
            cell_pert.wx.data[idx] = orig;
            let num = (up - down) / (2.0 * eps);
            assert!(
                (num - grads.wx.data[idx]).abs() < 1e-6,
                "Wx[{idx}]: numerical {num} vs analytic {}",
                grads.wx.data[idx]
            );
        }
        // Check Wh entries.
        for &idx in &[0usize, 7, 4 * 4 * 4 - 1] {
            let orig = cell_pert.wh.data[idx];
            cell_pert.wh.data[idx] = orig + eps;
            let up = loss(&cell_pert);
            cell_pert.wh.data[idx] = orig - eps;
            let down = loss(&cell_pert);
            cell_pert.wh.data[idx] = orig;
            let num = (up - down) / (2.0 * eps);
            assert!(
                (num - grads.wh.data[idx]).abs() < 1e-6,
                "Wh[{idx}]: numerical {num} vs analytic {}",
                grads.wh.data[idx]
            );
        }
        // Check biases.
        for &idx in &[0usize, 6, 15] {
            let orig = cell_pert.b[idx];
            cell_pert.b[idx] = orig + eps;
            let up = loss(&cell_pert);
            cell_pert.b[idx] = orig - eps;
            let down = loss(&cell_pert);
            cell_pert.b[idx] = orig;
            let num = (up - down) / (2.0 * eps);
            assert!(
                (num - grads.b[idx]).abs() < 1e-6,
                "b[{idx}]: numerical {num} vs analytic {}",
                grads.b[idx]
            );
        }
        // Check dx numerically.
        let mut x_pert = x;
        for idx in 0..input {
            let orig = x_pert[idx];
            x_pert[idx] = orig + eps;
            let up: f64 = cell.forward(&x_pert, &prev).0.h.iter().sum();
            x_pert[idx] = orig - eps;
            let down: f64 = cell.forward(&x_pert, &prev).0.h.iter().sum();
            x_pert[idx] = orig;
            let num = (up - down) / (2.0 * eps);
            assert!((num - dx[idx]).abs() < 1e-6, "dx[{idx}]");
        }
        // Check dh_prev numerically.
        let mut prev_pert = prev.clone();
        #[allow(clippy::needless_range_loop)]
        for idx in 0..hidden {
            let orig = prev_pert.h[idx];
            prev_pert.h[idx] = orig + eps;
            let up: f64 = cell.forward(&x, &prev_pert).0.h.iter().sum();
            prev_pert.h[idx] = orig - eps;
            let down: f64 = cell.forward(&x, &prev_pert).0.h.iter().sum();
            prev_pert.h[idx] = orig;
            let num = (up - down) / (2.0 * eps);
            assert!((num - dh_prev[idx]).abs() < 1e-6, "dh_prev[{idx}]");
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let cell = LstmCell::new(2, 3, &mut rng);
        assert!(cell.b[3..6].iter().all(|&v| v == 1.0));
        assert!(cell.b[..3].iter().all(|&v| v == 0.0));
        assert!(cell.b[6..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn forward_state_shapes_and_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let cell = LstmCell::new(2, 5, &mut rng);
        let (s, cache) = cell.forward(&[1.0, -1.0], &LstmState::zeros(5));
        assert_eq!(s.h.len(), 5);
        assert_eq!(s.c.len(), 5);
        assert_eq!(cache.gates.len(), 20);
        // h = o * tanh(c) is bounded in (-1, 1).
        assert!(s.h.iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn zero_input_zero_state_gives_tanh_bias_dynamics() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cell = LstmCell::new(1, 2, &mut rng);
        // Force all weights to zero: output depends on biases only.
        cell.wx.fill_zero();
        cell.wh.fill_zero();
        let (s, _) = cell.forward(&[0.0], &LstmState::zeros(2));
        // i = σ(0) = 0.5, g = tanh(0) = 0, so c = f·0 + 0.5·0 = 0, h = 0.
        assert!(s.h.iter().all(|&v| v.abs() < 1e-12));
        assert!(s.c.iter().all(|&v| v.abs() < 1e-12));
    }
}
