//! LSTM multivariate forecaster — the paper's deep-learning comparator.
//!
//! Configuration follows the paper's grid search verbatim (§IV-A4): one
//! hidden layer of 128 units, dropout 0.2, 30 epochs, the Adam optimizer
//! and a squared-error loss. The network consumes `lookback` consecutive
//! multivariate rows and predicts the next row; multi-step forecasts are
//! produced by feeding predictions back in (iterated one-step-ahead, the
//! standard recipe for RNN forecasting).
//!
//! Everything is built on the in-tree [`crate::nn`] micro-framework; the
//! LSTM cell's gradients are numerically verified in `nn::lstm_cell`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use mc_tslib::error::{invalid_param, Result};
use mc_tslib::forecast::MultivariateForecaster;
use mc_tslib::series::MultivariateSeries;
use mc_tslib::transform::{supervised_windows, znorm_multivariate, ZNormState};

use crate::nn::adam::clip_global_norm;
use crate::nn::dense::{Dense, DenseGrads};
use crate::nn::dropout::Dropout;
use crate::nn::lstm_cell::{LstmCell, LstmGrads, LstmState};
use crate::nn::Adam;

/// LSTM training configuration. Defaults reproduce the paper's setup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LstmConfig {
    /// Hidden units (paper: 128).
    pub hidden: usize,
    /// Input window length in timestamps.
    pub lookback: usize,
    /// Training epochs (paper: 30).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Dropout rate on the final hidden state (paper: 0.2).
    pub dropout: f64,
    /// Gradient-accumulation batch size.
    pub batch_size: usize,
    /// Global-norm gradient clip.
    pub clip_norm: f64,
    /// RNG seed (initialization, shuffling, dropout).
    pub seed: u64,
}

impl Default for LstmConfig {
    fn default() -> Self {
        Self {
            hidden: 128,
            lookback: 8,
            epochs: 30,
            lr: 5e-3,
            dropout: 0.2,
            batch_size: 16,
            clip_norm: 5.0,
            seed: 0,
        }
    }
}

/// The LSTM forecaster (trains from scratch on every `forecast` call, like
/// the paper's per-dataset training).
#[derive(Debug, Clone)]
pub struct LstmForecaster {
    /// Training configuration.
    pub config: LstmConfig,
}

impl LstmForecaster {
    /// Creates a forecaster with the paper's default configuration.
    pub fn new(config: LstmConfig) -> Self {
        Self { config }
    }

    /// Trains on `train` and returns the fitted network plus the per-epoch
    /// mean losses (exposed for tests and diagnostics).
    fn train_network(
        &self,
        train: &MultivariateSeries,
    ) -> Result<(TrainedNet, Vec<f64>, Vec<ZNormState>)> {
        let cfg = self.config;
        if cfg.hidden == 0 || cfg.lookback == 0 || cfg.epochs == 0 || cfg.batch_size == 0 {
            return Err(invalid_param("config", "hidden/lookback/epochs/batch must be >= 1"));
        }
        let (normed, states) = znorm_multivariate(train)?;
        let samples = supervised_windows(&normed, cfg.lookback)?;
        let dims = train.dims();

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut cell = LstmCell::new(dims, cfg.hidden, &mut rng);
        let mut head = Dense::new(cfg.hidden, dims, &mut rng);
        let dropout = Dropout::new(cfg.dropout);
        let mut cell_grads = LstmGrads::zeros(&cell);
        let mut head_grads = DenseGrads::zeros(&head);
        let sizes =
            [cell.wx.data.len(), cell.wh.data.len(), cell.b.len(), head.w.data.len(), head.b.len()];
        let mut opt = Adam::new(cfg.lr, &sizes);

        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut in_batch = 0usize;
            for &si in &order {
                let (window, target) = &samples[si];
                // Forward through the window.
                let mut state = LstmState::zeros(cfg.hidden);
                let mut caches = Vec::with_capacity(cfg.lookback);
                for x in window {
                    let (next, cache) = cell.forward(x, &state);
                    state = next;
                    caches.push(cache);
                }
                let mask = dropout.sample_mask(cfg.hidden, &mut rng);
                let mut h_dropped = state.h.clone();
                Dropout::apply(&mut h_dropped, &mask);
                let y = head.forward(&h_dropped);
                // Squared-error loss (mean over dims).
                let mut dy = vec![0.0; dims];
                let mut loss = 0.0;
                for j in 0..dims {
                    let e = y[j] - target[j];
                    loss += e * e;
                    dy[j] = 2.0 * e / dims as f64;
                }
                epoch_loss += loss / dims as f64;
                // Backward.
                let mut dh = head.backward(&h_dropped, &dy, &mut head_grads);
                Dropout::backward(&mut dh, &mask);
                let mut dc = vec![0.0; cfg.hidden];
                let mut dx = vec![0.0; dims];
                for cache in caches.iter().rev() {
                    let (dh_prev, dc_prev) =
                        cell.backward(cache, &dh, &dc, &mut cell_grads, &mut dx);
                    dh = dh_prev;
                    dc = dc_prev;
                }
                in_batch += 1;
                if in_batch == cfg.batch_size {
                    apply_update(
                        &mut cell,
                        &mut head,
                        &mut cell_grads,
                        &mut head_grads,
                        &mut opt,
                        cfg.clip_norm,
                    );
                    in_batch = 0;
                }
            }
            if in_batch > 0 {
                apply_update(
                    &mut cell,
                    &mut head,
                    &mut cell_grads,
                    &mut head_grads,
                    &mut opt,
                    cfg.clip_norm,
                );
            }
            epoch_losses.push(epoch_loss / samples.len() as f64);
        }
        Ok((TrainedNet { cell, head, hidden: cfg.hidden }, epoch_losses, states))
    }

    /// Trains and reports the per-epoch loss curve (diagnostic entry point
    /// used by tests; `forecast` is the production path).
    pub fn fit_report(&self, train: &MultivariateSeries) -> Result<Vec<f64>> {
        Ok(self.train_network(train)?.1)
    }
}

/// A trained network ready for iterated forecasting.
struct TrainedNet {
    cell: LstmCell,
    head: Dense,
    hidden: usize,
}

impl TrainedNet {
    /// Predicts the next row from the last `lookback` normalized rows.
    fn predict_next(&self, window: &[Vec<f64>]) -> Vec<f64> {
        let mut state = LstmState::zeros(self.hidden);
        for x in window {
            let (next, _) = self.cell.forward(x, &state);
            state = next;
        }
        // Inference: dropout disabled (inverted scaling already handled).
        self.head.forward(&state.h)
    }
}

fn apply_update(
    cell: &mut LstmCell,
    head: &mut Dense,
    cell_grads: &mut LstmGrads,
    head_grads: &mut DenseGrads,
    opt: &mut Adam,
    clip: f64,
) {
    {
        let mut grad_slices: Vec<&mut [f64]> = vec![
            cell_grads.wx.data.as_mut_slice(),
            cell_grads.wh.data.as_mut_slice(),
            cell_grads.b.as_mut_slice(),
            head_grads.w.data.as_mut_slice(),
            head_grads.b.as_mut_slice(),
        ];
        clip_global_norm(&mut grad_slices, clip);
    }
    let mut pairs = cell.params_and_grads(cell_grads);
    pairs.extend(head.params_and_grads(head_grads));
    opt.step(&mut pairs);
    cell_grads.fill_zero();
    head_grads.fill_zero();
}

impl MultivariateForecaster for LstmForecaster {
    fn name(&self) -> String {
        "LSTM".into()
    }

    fn forecast(
        &mut self,
        train: &MultivariateSeries,
        horizon: usize,
    ) -> Result<MultivariateSeries> {
        if train.len() <= self.config.lookback + 1 {
            return Err(invalid_param(
                "train",
                format!("length {} too short for lookback {}", train.len(), self.config.lookback),
            ));
        }
        let (net, _losses, states) = self.train_network(train)?;
        // Normalized rolling window seeded with the training tail.
        let (normed, _) = znorm_multivariate(train)?;
        let n = normed.len();
        let mut window: Vec<Vec<f64>> =
            (n - self.config.lookback..n).map(|t| normed.row(t).unwrap()).collect();
        let mut rows = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let next = net.predict_next(&window);
            window.remove(0);
            window.push(next.clone());
            rows.push(next);
        }
        // Un-normalize each dimension.
        let mut columns = vec![Vec::with_capacity(horizon); train.dims()];
        for row in &rows {
            for (d, &v) in row.iter().enumerate() {
                columns[d].push(v * states[d].std + states[d].mean);
            }
        }
        MultivariateSeries::from_columns(train.names().to_vec(), columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_datasets::generators::{sinusoids, white_noise};
    use mc_tslib::metrics::rmse;

    /// Small, fast config for tests.
    fn tiny(seed: u64) -> LstmConfig {
        LstmConfig {
            hidden: 16,
            lookback: 6,
            epochs: 12,
            lr: 1e-2,
            dropout: 0.1,
            batch_size: 8,
            clip_norm: 5.0,
            seed,
        }
    }

    fn sine_series(n: usize) -> MultivariateSeries {
        let a = sinusoids(n, &[(1.0, 12.0, 0.0)]);
        let b = sinusoids(n, &[(2.0, 12.0, 1.0)]);
        MultivariateSeries::from_columns(vec!["a".into(), "b".into()], vec![a, b]).unwrap()
    }

    #[test]
    fn training_loss_decreases() {
        let series = sine_series(120);
        let f = LstmForecaster::new(tiny(1));
        let losses = f.fit_report(&series).unwrap();
        assert_eq!(losses.len(), 12);
        let early: f64 = losses[..3].iter().sum::<f64>() / 3.0;
        let late: f64 = losses[losses.len() - 3..].iter().sum::<f64>() / 3.0;
        assert!(late < early * 0.5, "loss should halve: early {early:.4} late {late:.4}");
    }

    #[test]
    fn forecast_tracks_clean_sine() {
        // A clean sinusoid is learnable by a small LSTM; the iterated
        // forecast should beat the constant (naive) predictor comfortably.
        let series = sine_series(144);
        let (train, test) = mc_tslib::split::holdout_split(&series, 0.1).unwrap();
        let mut f = LstmForecaster::new(LstmConfig { epochs: 40, ..tiny(2) });
        let fc = f.forecast(&train, test.len()).unwrap();
        assert_eq!(fc.len(), test.len());
        for d in 0..2 {
            let err = rmse(test.column(d).unwrap(), fc.column(d).unwrap()).unwrap();
            let naive = rmse(
                test.column(d).unwrap(),
                &vec![*train.column(d).unwrap().last().unwrap(); test.len()],
            )
            .unwrap();
            assert!(err < naive, "dim {d}: lstm {err:.3} vs naive {naive:.3}");
        }
    }

    #[test]
    fn forecast_is_deterministic_per_seed() {
        let series = sine_series(100);
        let mut f1 = LstmForecaster::new(tiny(7));
        let mut f2 = LstmForecaster::new(tiny(7));
        let a = f1.forecast(&series, 5).unwrap();
        let b = f2.forecast(&series, 5).unwrap();
        assert_eq!(a, b);
        let mut f3 = LstmForecaster::new(tiny(8));
        let c = f3.forecast(&series, 5).unwrap();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn forecast_output_is_finite_on_noise() {
        let a = white_noise(80, 1.0, 3);
        let b = white_noise(80, 2.0, 4);
        let series =
            MultivariateSeries::from_columns(vec!["x".into(), "y".into()], vec![a, b]).unwrap();
        let mut f = LstmForecaster::new(tiny(3));
        let fc = f.forecast(&series, 10).unwrap();
        for d in 0..2 {
            assert!(fc.column(d).unwrap().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn too_short_series_rejected() {
        let series = sine_series(5);
        let mut f = LstmForecaster::new(tiny(1));
        assert!(f.forecast(&series, 3).is_err());
    }

    #[test]
    fn paper_default_config() {
        let d = LstmConfig::default();
        assert_eq!(d.hidden, 128);
        assert_eq!(d.epochs, 30);
        assert!((d.dropout - 0.2).abs() < 1e-12);
    }
}
