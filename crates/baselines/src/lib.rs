//! # mc-baselines — comparator forecasting methods
//!
//! From-scratch implementations of every non-LLM method the paper
//! evaluates against MultiCast (§IV-A3):
//!
//! - [`arima`] — ARIMA(p, d, q) with Hannan–Rissanen estimation, AIC-based
//!   automatic order selection, and multi-step forecasting through the
//!   integration chain;
//! - [`lstm`] — a complete LSTM network (cell, BPTT, Adam, dropout) built
//!   on the in-tree [`nn`] micro-framework, configured exactly as the
//!   paper's grid search concluded: one hidden layer of 128 units, dropout
//!   0.2, 30 epochs, Adam, squared-error loss;
//! - [`naive`] — naive / seasonal-naive / drift reference methods used by
//!   tests and the ablation harness;
//! - [`fallback`] — the graceful-degradation forecaster the LLM sampling
//!   pipeline falls back to when too few valid samples survive (seasonal-
//!   naive with ACF-estimated period, then last-value naive);
//! - [`var`] — VAR(p), the classical *multivariate* comparator (extended
//!   comparison grid);
//! - [`expsmooth`] — SES / Holt / additive Holt–Winters;
//! - [`kalman`] — local-linear-trend structural model with exact Kalman
//!   filtering and likelihood-based variance selection.
//!
//! All methods implement the [`mc_tslib::forecast`] traits so the benchmark
//! harness can sweep them interchangeably with the LLM-based methods.

pub mod arima;
pub mod expsmooth;
pub mod fallback;
pub mod kalman;
pub mod linalg;
pub mod lstm;
pub mod naive;
pub mod nn;
pub mod theta;
pub mod var;

pub use arima::{auto_arima, ArimaConfig, ArimaForecaster, ArimaModel};
pub use expsmooth::{Holt, HoltWinters, Ses};
pub use fallback::FallbackForecaster;
pub use kalman::{kalman_filter, KalmanConfig, KalmanForecaster};
pub use lstm::{LstmConfig, LstmForecaster};
pub use naive::{DriftForecaster, NaiveForecaster, SeasonalNaiveForecaster};
pub use theta::Theta;
pub use var::{VarForecaster, VarModel};
