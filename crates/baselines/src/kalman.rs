//! Structural time-series model with Kalman filtering.
//!
//! The local-linear-trend model, the workhorse of classical state-space
//! forecasting:
//!
//! ```text
//! x_t = level_t + e_t                  e ~ N(0, r)     (observation)
//! level_t = level_{t-1} + slope_{t-1} + u_t            (state)
//! slope_t = slope_{t-1} + w_t
//! ```
//!
//! The Kalman filter runs the exact recursions; variances are chosen by
//! maximizing the innovation log-likelihood over a small grid of
//! signal-to-noise ratios (the "no expert knowledge" configuration used
//! everywhere in this workspace). Forecasting propagates the final state.
//! Restricting `slope` variance to zero recovers the local-level model
//! (≈ SES with an optimal gain), so this subsumes two classical baselines.

use mc_tslib::error::{invalid_param, Result};
use mc_tslib::forecast::UnivariateForecaster;

/// Local-linear-trend model variances (relative to observation noise).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KalmanConfig {
    /// Level-disturbance variance ratio `q_level / r`.
    pub q_level: f64,
    /// Slope-disturbance variance ratio `q_slope / r` (0 = local level).
    pub q_slope: f64,
}

/// Filtered state after one pass over the data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KalmanState {
    /// Current level estimate.
    pub level: f64,
    /// Current slope estimate.
    pub slope: f64,
    /// State covariance (row-major 2×2).
    pub cov: [f64; 4],
}

/// Outcome of filtering a series.
#[derive(Debug, Clone, PartialEq)]
pub struct KalmanFit {
    /// Variance configuration used.
    pub config: KalmanConfig,
    /// Final state.
    pub state: KalmanState,
    /// Innovation log-likelihood (up to constants, with r profiled out).
    pub log_likelihood: f64,
    /// One-step-ahead innovations (for residual diagnostics).
    pub innovations: Vec<f64>,
}

/// Runs the Kalman filter for the local-linear-trend model.
///
/// # Errors
/// If the series has fewer than 4 observations or non-finite values.
pub fn kalman_filter(xs: &[f64], config: KalmanConfig) -> Result<KalmanFit> {
    if xs.len() < 4 {
        return Err(invalid_param("series", "Kalman filter needs at least 4 observations"));
    }
    if xs.iter().any(|v| !v.is_finite()) {
        return Err(invalid_param("series", "values must be finite"));
    }
    if config.q_level < 0.0 || config.q_slope < 0.0 {
        return Err(invalid_param("config", "variance ratios must be non-negative"));
    }
    // Diffuse-ish initialization: state from the first two points, large
    // covariance so early data dominates.
    let mut level = xs[0];
    let mut slope = xs[1] - xs[0];
    let mut p = [1e4, 0.0, 0.0, 1e4];
    let (ql, qs) = (config.q_level, config.q_slope);

    let mut innovations = Vec::with_capacity(xs.len());
    let mut sum_sq_scaled = 0.0; // Σ v² / f
    let mut sum_log_f = 0.0; // Σ ln f
    for &x in xs {
        // Predict: a = T s, P = T P Tᵀ + Q with T = [[1,1],[0,1]].
        let pred_level = level + slope;
        let p00 = p[0] + p[1] + p[2] + p[3] + ql;
        let p01 = p[1] + p[3];
        let p10 = p[2] + p[3];
        let p11 = p[3] + qs;
        // Update with observation x (H = [1, 0], R = 1 — r profiled out).
        let innovation = x - pred_level;
        let f = p00 + 1.0;
        let k0 = p00 / f;
        let k1 = p10 / f;
        level = pred_level + k0 * innovation;
        slope += k1 * innovation;
        p = [(1.0 - k0) * p00, (1.0 - k0) * p01, p10 - k1 * p00, p11 - k1 * p01];
        innovations.push(innovation);
        sum_sq_scaled += innovation * innovation / f;
        sum_log_f += f.ln();
    }
    // Profile likelihood with r̂ = mean scaled squared innovation.
    let n = xs.len() as f64;
    let r_hat = (sum_sq_scaled / n).max(1e-12);
    let log_likelihood = -0.5 * (n * r_hat.ln() + sum_log_f + n);
    Ok(KalmanFit {
        config,
        state: KalmanState { level, slope, cov: p },
        log_likelihood,
        innovations,
    })
}

/// Kalman forecaster with grid-searched signal-to-noise ratios.
#[derive(Debug, Clone, Copy, Default)]
pub struct KalmanForecaster;

impl UnivariateForecaster for KalmanForecaster {
    fn name(&self) -> String {
        "Kalman (local linear trend)".into()
    }

    fn forecast_univariate(&mut self, train: &[f64], horizon: usize) -> Result<Vec<f64>> {
        const GRID: [f64; 5] = [0.0, 1e-3, 1e-2, 1e-1, 1.0];
        let mut best: Option<KalmanFit> = None;
        for &ql in &GRID[1..] {
            for &qs in &GRID {
                let fit = kalman_filter(train, KalmanConfig { q_level: ql, q_slope: qs })?;
                if best.as_ref().is_none_or(|b| fit.log_likelihood > b.log_likelihood) {
                    best = Some(fit);
                }
            }
        }
        let fit = best.expect("grid is non-empty");
        // Forecast: level grows by slope each step.
        Ok((1..=horizon).map(|h| fit.state.level + fit.state.slope * h as f64).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_datasets::generators::{add, linear_trend, random_walk, white_noise};

    #[test]
    fn tracks_noisy_linear_trend() {
        let xs = add(&linear_trend(200, 5.0, 0.8), &white_noise(200, 1.0, 3));
        let fit = kalman_filter(&xs, KalmanConfig { q_level: 0.01, q_slope: 0.001 }).unwrap();
        // The filtered slope converges near the true 0.8.
        assert!((fit.state.slope - 0.8).abs() < 0.1, "slope {}", fit.state.slope);
        let fc = KalmanForecaster.forecast_univariate(&xs, 10).unwrap();
        let last = xs[199];
        assert!((fc[9] - (last + 8.0)).abs() < 4.0, "fc[9] = {}", fc[9]);
    }

    #[test]
    fn likelihood_prefers_smooth_model_on_smooth_data() {
        // On a pure trend + small noise the likelihood should prefer small
        // state noise over a jittery configuration.
        let xs = add(&linear_trend(150, 0.0, 0.5), &white_noise(150, 0.3, 5));
        let smooth = kalman_filter(&xs, KalmanConfig { q_level: 1e-3, q_slope: 1e-3 }).unwrap();
        let jittery = kalman_filter(&xs, KalmanConfig { q_level: 10.0, q_slope: 10.0 }).unwrap();
        assert!(
            smooth.log_likelihood > jittery.log_likelihood,
            "smooth {} vs jittery {}",
            smooth.log_likelihood,
            jittery.log_likelihood
        );
    }

    #[test]
    fn local_level_mode_on_random_walk() {
        // On a random walk, the best slope variance is ~0 and forecasts
        // are nearly flat at the last filtered level.
        let xs = random_walk(400, 50.0, 1.0, 7);
        let fc = KalmanForecaster.forecast_univariate(&xs, 20).unwrap();
        let spread = fc[19] - fc[0];
        assert!(spread.abs() < 4.0, "random-walk forecast should be near-flat: {spread}");
        assert!((fc[0] - xs[399]).abs() < 3.0, "anchored at the last level");
    }

    #[test]
    fn innovations_are_white_under_the_true_model() {
        // The defining property of a correctly specified Kalman filter:
        // one-step innovations are serially uncorrelated. Checked with the
        // Ljung–Box test from mc-tslib (burn-in dropped).
        use mc_tslib::diagnostics::ljung_box;
        let xs = add(&linear_trend(400, 0.0, 1.0), &white_noise(400, 0.5, 9));
        let fit = kalman_filter(&xs, KalmanConfig { q_level: 1e-3, q_slope: 1e-4 }).unwrap();
        let lb = ljung_box(&fit.innovations[20..], 10, 0).unwrap();
        assert!(lb.p_value > 0.01, "innovations must be white: {lb:?}");
    }

    #[test]
    fn validation() {
        assert!(kalman_filter(&[1.0, 2.0], KalmanConfig { q_level: 0.1, q_slope: 0.1 }).is_err());
        assert!(kalman_filter(
            &[1.0, f64::NAN, 2.0, 3.0],
            KalmanConfig { q_level: 0.1, q_slope: 0.1 }
        )
        .is_err());
        assert!(kalman_filter(&[1.0, 2.0, 3.0, 4.0], KalmanConfig { q_level: -1.0, q_slope: 0.1 })
            .is_err());
    }
}
