//! Graceful-degradation fallback forecaster.
//!
//! The LLM sampling pipeline can lose samples to defects (truncated
//! continuations, garbage groups, panicking backends). When too few valid
//! samples survive the retry budget, the serving path must still answer —
//! with a cheap, deterministic classical forecast instead of a crash.
//! [`FallbackForecaster`] is that answer: seasonal-naive with the period
//! estimated from the autocorrelation function, degrading further to plain
//! last-value naive when no seasonal structure is detectable.

use mc_tslib::error::Result;
use mc_tslib::forecast::UnivariateForecaster;
use mc_tslib::stats::acf;

use crate::naive::{NaiveForecaster, SeasonalNaiveForecaster};

/// Seasonal-naive fallback with ACF-estimated period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FallbackForecaster {
    /// Longest seasonal period considered by the ACF scan.
    pub max_period: usize,
    /// Minimum autocorrelation a lag must reach to count as a season.
    pub min_strength_milli: u32,
}

impl Default for FallbackForecaster {
    fn default() -> Self {
        // 0.3 autocorrelation floor: below that, repeating the "cycle"
        // mostly replays noise and last-value naive is safer.
        Self { max_period: 48, min_strength_milli: 300 }
    }
}

impl FallbackForecaster {
    /// Dominant seasonal period by autocorrelation peak (lag >= 2), or
    /// `None` when the series is too short or no lag clears the strength
    /// floor.
    pub fn estimate_period(&self, train: &[f64]) -> Option<usize> {
        if train.len() < 8 {
            return None;
        }
        let max_lag = self.max_period.min(train.len() / 2);
        if max_lag < 2 {
            return None;
        }
        let rho = acf(train, max_lag).ok()?;
        let floor = self.min_strength_milli as f64 / 1000.0;
        let mut best: Option<usize> = None;
        let mut best_rho = floor;
        for (lag, &r) in rho.iter().enumerate().skip(2) {
            if r > best_rho {
                best = Some(lag);
                best_rho = r;
            }
        }
        best
    }
}

impl UnivariateForecaster for FallbackForecaster {
    fn name(&self) -> String {
        "Fallback (seasonal-naive)".into()
    }

    fn forecast_univariate(&mut self, train: &[f64], horizon: usize) -> Result<Vec<f64>> {
        match self.estimate_period(train) {
            Some(period) if period <= train.len() => {
                SeasonalNaiveForecaster { period }.forecast_univariate(train, horizon)
            }
            _ => NaiveForecaster.forecast_univariate(train, horizon),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal(n: usize, period: usize) -> Vec<f64> {
        (0..n).map(|t| (t % period) as f64 + 10.0).collect()
    }

    #[test]
    fn detects_clean_period_and_repeats_cycle() {
        let train = seasonal(64, 8);
        let f = FallbackForecaster::default();
        assert_eq!(f.estimate_period(&train), Some(8));
        let fc = FallbackForecaster::default().forecast_univariate(&train, 12).unwrap();
        for (h, v) in fc.iter().enumerate() {
            assert_eq!(*v, train[train.len() - 8 + (h % 8)], "step {h}");
        }
    }

    #[test]
    fn aperiodic_series_degrades_to_last_value() {
        // A pure ramp has ACF decaying from lag 1 on; with the 0.3 floor it
        // may still pick a lag, so use white-ish data with no structure.
        let train: Vec<f64> = (0..40)
            .map(|t| if t % 2 == 0 { 1.0 } else { -1.0 } * ((t * 7919 % 13) as f64))
            .collect();
        let mut f = FallbackForecaster::default();
        let fc = f.forecast_univariate(&train, 3).unwrap();
        assert_eq!(fc.len(), 3);
        assert!(fc.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn short_series_still_forecasts() {
        let mut f = FallbackForecaster::default();
        let fc = f.forecast_univariate(&[5.0, 6.0], 4).unwrap();
        assert_eq!(fc, vec![6.0; 4]);
        assert!(f.forecast_univariate(&[], 2).is_err());
    }

    #[test]
    fn constant_series_is_safe() {
        let mut f = FallbackForecaster::default();
        let fc = f.forecast_univariate(&[3.0; 30], 5).unwrap();
        assert_eq!(fc, vec![3.0; 5]);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(FallbackForecaster::default().name(), "Fallback (seasonal-naive)");
    }
}
