//! VAR(p): vector autoregression — the classical *multivariate* baseline.
//!
//! The paper's comparators are univariate (ARIMA per dimension) or neural
//! (LSTM); a VAR is the standard statistical model that, like MultiCast,
//! actually *uses* cross-dimensional correlations. The ablation harness
//! reports it alongside the paper's roster to separate "multivariate
//! information helps" from "LLMs help".
//!
//! Estimation: each equation is an independent OLS regression of one
//! dimension on `p` lags of *all* dimensions plus an intercept (the
//! textbook conditional-least-squares VAR estimator). Order selection
//! minimizes AIC over `p`. Forecasting iterates the fitted recursion.

use mc_tslib::error::{invalid_param, Result};
use mc_tslib::forecast::MultivariateForecaster;
use mc_tslib::series::MultivariateSeries;

use crate::linalg::least_squares;

/// A fitted VAR(p) model.
#[derive(Debug, Clone)]
pub struct VarModel {
    /// Lag order.
    pub p: usize,
    /// Per-equation coefficients: `coef[eq]` is `[intercept,
    /// lag1·dim0..lag1·dimK, lag2·dim0.., ...]`.
    pub coef: Vec<Vec<f64>>,
    /// Residual variance per equation.
    pub sigma2: Vec<f64>,
    /// The training tail needed to seed forecasts (last `p` rows).
    tail: Vec<Vec<f64>>,
    dims: usize,
    n_obs: usize,
}

impl VarModel {
    /// Fits a VAR(p) by per-equation OLS.
    ///
    /// # Errors
    /// If the series is too short (`len <= p * dims + p + 1`) or the
    /// regression is singular.
    pub fn fit(series: &MultivariateSeries, p: usize) -> Result<Self> {
        if p == 0 {
            return Err(invalid_param("p", "lag order must be >= 1"));
        }
        let k = series.dims();
        let n = series.len();
        let cols = 1 + p * k;
        if n <= p + cols {
            return Err(invalid_param(
                "series",
                format!("length {n} too short for VAR({p}) with {k} dimensions"),
            ));
        }
        let rows = n - p;
        // Shared design matrix for all equations.
        let mut x = Vec::with_capacity(rows * cols);
        for t in p..n {
            x.push(1.0);
            for lag in 1..=p {
                let row = series.row(t - lag)?;
                x.extend(row);
            }
        }
        let mut coef = Vec::with_capacity(k);
        let mut sigma2 = Vec::with_capacity(k);
        for eq in 0..k {
            let y: Vec<f64> = (p..n).map(|t| series.column(eq).unwrap()[t]).collect();
            let beta = least_squares(&x, &y, cols)
                .ok_or_else(|| invalid_param("series", "singular VAR design matrix"))?;
            // Residual variance.
            let mut rss = 0.0;
            for (r, yt) in y.iter().enumerate() {
                let pred: f64 =
                    x[r * cols..(r + 1) * cols].iter().zip(&beta).map(|(a, b)| a * b).sum();
                rss += (yt - pred) * (yt - pred);
            }
            sigma2.push(rss / rows as f64);
            coef.push(beta);
        }
        let tail: Vec<Vec<f64>> = (n - p..n).map(|t| series.row(t).unwrap()).collect();
        Ok(Self { p, coef, sigma2, tail, dims: k, n_obs: rows })
    }

    /// Multivariate AIC: `n · ln(det of diagonal residual covariance) +
    /// 2 · #params` (diagonal approximation — adequate for order ranking).
    pub fn aic(&self) -> f64 {
        let n = self.n_obs as f64;
        let log_det: f64 = self.sigma2.iter().map(|s| s.max(1e-12).ln()).sum();
        let params = (self.coef.len() * self.coef[0].len()) as f64;
        n * log_det + 2.0 * params
    }

    /// Iterated multi-step forecast.
    pub fn forecast(&self, horizon: usize) -> Vec<Vec<f64>> {
        let k = self.dims;
        let mut history: Vec<Vec<f64>> = self.tail.clone();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let mut next = vec![0.0; k];
            for (eq, next_val) in next.iter_mut().enumerate() {
                let beta = &self.coef[eq];
                let mut acc = beta[0];
                for lag in 1..=self.p {
                    let row = &history[history.len() - lag];
                    for (d, &v) in row.iter().enumerate() {
                        acc += beta[1 + (lag - 1) * k + d] * v;
                    }
                }
                *next_val = acc;
            }
            history.push(next.clone());
            out.push(next);
        }
        out
    }
}

/// AIC-selected VAR forecaster implementing the common interface.
#[derive(Debug, Clone)]
pub struct VarForecaster {
    /// Maximum lag order searched.
    pub max_p: usize,
}

impl Default for VarForecaster {
    fn default() -> Self {
        Self { max_p: 5 }
    }
}

impl MultivariateForecaster for VarForecaster {
    fn name(&self) -> String {
        "VAR".into()
    }

    fn forecast(
        &mut self,
        train: &MultivariateSeries,
        horizon: usize,
    ) -> Result<MultivariateSeries> {
        let mut best: Option<VarModel> = None;
        for p in 1..=self.max_p {
            if let Ok(m) = VarModel::fit(train, p) {
                if best.as_ref().is_none_or(|b| m.aic() < b.aic()) {
                    best = Some(m);
                }
            }
        }
        let model = best.ok_or_else(|| invalid_param("series", "no VAR order could be fitted"))?;
        let rows = model.forecast(horizon);
        MultivariateSeries::from_rows(train.names().to_vec(), &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_datasets::generators::{standard_normal, white_noise};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Simulates a known VAR(1): x_t = A x_{t-1} + e_t.
    fn simulate_var1(a: [[f64; 2]; 2], n: usize, sigma: f64, seed: u64) -> MultivariateSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = [0.0, 0.0];
        let mut cols: Vec<Vec<f64>> = (0..2).map(|_| Vec::with_capacity(n)).collect();
        for _ in 0..n + 50 {
            let e0 = sigma * standard_normal(&mut rng);
            let e1 = sigma * standard_normal(&mut rng);
            let nx = [a[0][0] * x[0] + a[0][1] * x[1] + e0, a[1][0] * x[0] + a[1][1] * x[1] + e1];
            x = nx;
            cols[0].push(x[0]);
            cols[1].push(x[1]);
        }
        for c in &mut cols {
            c.drain(..50); // burn-in
        }
        MultivariateSeries::from_columns(vec!["x0".into(), "x1".into()], cols).unwrap()
    }

    #[test]
    fn recovers_var1_coefficients() {
        let a = [[0.5, 0.2], [-0.3, 0.6]];
        let series = simulate_var1(a, 6000, 1.0, 42);
        let m = VarModel::fit(&series, 1).unwrap();
        // coef[eq] = [intercept, a[eq][0], a[eq][1]].
        for (eq, truth) in a.iter().enumerate() {
            assert!(m.coef[eq][0].abs() < 0.08, "intercept {}", m.coef[eq][0]);
            assert!((m.coef[eq][1] - truth[0]).abs() < 0.05, "a[{eq}][0] = {}", m.coef[eq][1]);
            assert!((m.coef[eq][2] - truth[1]).abs() < 0.05, "a[{eq}][1] = {}", m.coef[eq][2]);
            assert!((m.sigma2[eq] - 1.0).abs() < 0.15);
        }
    }

    #[test]
    fn cross_coupling_improves_over_univariate_ar() {
        // x1 is driven by lagged x0; a VAR must beat a diagonal AR on x1.
        let a = [[0.7, 0.0], [0.6, 0.1]];
        let series = simulate_var1(a, 4000, 1.0, 7);
        let var = VarModel::fit(&series, 1).unwrap();
        // Fit a "diagonal" AR by zeroing the cross term and recomputing
        // residuals in-sample.
        let x0 = series.column(0).unwrap();
        let x1 = series.column(1).unwrap();
        let mut rss_diag = 0.0;
        let rho: f64 = {
            // lag-1 AR coefficient of x1 alone.
            let m = x1.iter().sum::<f64>() / x1.len() as f64;
            let num: f64 = x1.windows(2).map(|w| (w[0] - m) * (w[1] - m)).sum();
            let den: f64 = x1.iter().map(|v| (v - m) * (v - m)).sum();
            num / den
        };
        for t in 1..x1.len() {
            let pred = rho * x1[t - 1];
            rss_diag += (x1[t] - pred) * (x1[t] - pred);
        }
        let rss_var = var.sigma2[1] * (x1.len() - 1) as f64;
        assert!(
            rss_var < rss_diag * 0.8,
            "VAR should exploit the x0 -> x1 coupling: {rss_var:.0} vs {rss_diag:.0}"
        );
        let _ = x0;
    }

    #[test]
    fn forecast_decays_to_zero_mean() {
        let a = [[0.5, 0.1], [0.1, 0.5]];
        let series = simulate_var1(a, 3000, 1.0, 9);
        let m = VarModel::fit(&series, 1).unwrap();
        let fc = m.forecast(60);
        assert_eq!(fc.len(), 60);
        assert!(fc[59][0].abs() < 0.3 && fc[59][1].abs() < 0.3, "{:?}", fc[59]);
    }

    #[test]
    fn forecaster_interface_and_order_selection() {
        let a = [[0.5, 0.2], [-0.3, 0.6]];
        let series = simulate_var1(a, 1500, 1.0, 3);
        let mut f = VarForecaster::default();
        let fc = f.forecast(&series, 10).unwrap();
        assert_eq!(fc.len(), 10);
        assert_eq!(fc.dims(), 2);
        assert_eq!(fc.names(), series.names());
        assert!(fc.columns().iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let tiny = MultivariateSeries::from_columns(vec!["a".into()], vec![white_noise(5, 1.0, 1)])
            .unwrap();
        assert!(VarModel::fit(&tiny, 2).is_err());
        assert!(VarModel::fit(&tiny, 0).is_err());
    }
}
