//! Small dense linear-algebra helpers for the estimators.
//!
//! ARIMA's Hannan–Rissanen step is an ordinary least-squares regression;
//! all it needs is a numerically careful solver for small symmetric
//! systems. Gaussian elimination with partial pivoting is plenty at the
//! sizes involved (design matrices of a dozen columns).

/// Solves `A x = b` for square `A` (row-major, `n × n`) via Gaussian
/// elimination with partial pivoting. Returns `None` if `A` is singular to
/// working precision.
pub fn solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "A must be n*n");
    assert_eq!(b.len(), n, "b must be length n");
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..n {
            if m[row * n + col].abs() > m[pivot * n + col].abs() {
                pivot = row;
            }
        }
        if m[pivot * n + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for k in 0..n {
                m.swap(col * n + k, pivot * n + k);
            }
            rhs.swap(col, pivot);
        }
        // Eliminate below.
        for row in col + 1..n {
            let f = m[row * n + col] / m[col * n + col];
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= f * m[col * n + k];
            }
            rhs[row] -= f * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for k in row + 1..n {
            acc -= m[row * n + k] * x[k];
        }
        x[row] = acc / m[row * n + row];
    }
    Some(x)
}

/// Ordinary least squares: finds `beta` minimizing `||X beta - y||²` by
/// solving the normal equations `XᵀX beta = Xᵀy`. `x` is row-major with
/// `cols` columns. Returns `None` if the normal matrix is singular.
pub fn least_squares(x: &[f64], y: &[f64], cols: usize) -> Option<Vec<f64>> {
    assert!(cols > 0, "at least one column required");
    assert_eq!(x.len() % cols, 0, "design matrix shape");
    let rows = x.len() / cols;
    assert_eq!(rows, y.len(), "row count must match y");
    // Normal matrix XᵀX (cols × cols) and XᵀY.
    let mut xtx = vec![0.0; cols * cols];
    let mut xty = vec![0.0; cols];
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        for i in 0..cols {
            xty[i] += row[i] * y[r];
            for j in i..cols {
                xtx[i * cols + j] += row[i] * row[j];
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..cols {
        for j in 0..i {
            xtx[i * cols + j] = xtx[j * cols + i];
        }
    }
    // Tiny ridge for numerical robustness on near-collinear designs.
    for i in 0..cols {
        xtx[i * cols + i] += 1e-10;
    }
    solve(&xtx, &xty, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64], eps: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < eps)
    }

    #[test]
    fn solves_identity() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let x = solve(&a, &[3.0, -2.0], 2).unwrap();
        assert!(close(&x, &[3.0, -2.0], 1e-12));
    }

    #[test]
    fn solves_general_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let a = [2.0, 1.0, 1.0, 3.0];
        let x = solve(&a, &[5.0, 10.0], 2).unwrap();
        assert!(close(&x, &[1.0, 3.0], 1e-12));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // First pivot is zero; partial pivoting must swap rows.
        let a = [0.0, 1.0, 1.0, 0.0];
        let x = solve(&a, &[2.0, 3.0], 2).unwrap();
        assert!(close(&x, &[3.0, 2.0], 1e-12));
    }

    #[test]
    fn singular_detected() {
        let a = [1.0, 2.0, 2.0, 4.0];
        assert!(solve(&a, &[1.0, 2.0], 2).is_none());
    }

    #[test]
    fn least_squares_recovers_exact_fit() {
        // y = 2a + 3b, overdetermined but consistent.
        let x = [
            1.0, 0.0, //
            0.0, 1.0, //
            1.0, 1.0, //
            2.0, 1.0,
        ];
        let y = [2.0, 3.0, 5.0, 7.0];
        let beta = least_squares(&x, &y, 2).unwrap();
        assert!(close(&beta, &[2.0, 3.0], 1e-6));
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Regress y = 1 + 2t with noise-free data and an intercept column.
        let n = 20;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for t in 0..n {
            x.push(1.0);
            x.push(t as f64);
            y.push(1.0 + 2.0 * t as f64);
        }
        let beta = least_squares(&x, &y, 2).unwrap();
        assert!(close(&beta, &[1.0, 2.0], 1e-6));
    }

    #[test]
    fn larger_system_round_trip() {
        // Random-ish 5x5 SPD-ish system solved then verified by multiplication.
        let n = 5;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = ((i * 3 + j * 7) % 11) as f64 + if i == j { 20.0 } else { 0.0 };
            }
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = solve(&a, &b, n).unwrap();
        for i in 0..n {
            let ax: f64 = (0..n).map(|j| a[i * n + j] * x[j]).sum();
            assert!((ax - b[i]).abs() < 1e-9);
        }
    }
}
