//! Overload-resilience primitives for the serve path.
//!
//! The serve scheduler ([`crate::serve`]) protects itself under
//! saturating load with four layered mechanisms, applied in a fixed
//! order (documented in DESIGN.md §10):
//!
//! 1. **Admission control** — a hard submission cap plus priority-aware
//!    shedding when a flush exceeds `queue_cap`; rejected requests get a
//!    typed [`ServeDefect`] instead of growing an unbounded queue.
//! 2. **Quotas** — per-client generated-token allowances enforced from
//!    the serve layer's cost attribution ([`QuotaLedger`]).
//! 3. **Circuit breaking** — a per-backend-preset [`CircuitBreaker`]
//!    trips after a flush full of failures and rejects further load
//!    until a cooldown and a successful half-open probe.
//! 4. **Deadlines / retry backoff** live in [`crate::robust`] — this
//!    module only hosts the state that outlives a single flush.
//!
//! Everything here synchronizes through the [`mc_sync`] shim, so the
//! `--cfg loom` suite can model-check the concurrent pieces (breaker
//! recording races, shed-settlement wakeups) exhaustively.

use mc_lm::presets::ModelPreset;
use mc_obs::{point_span, EventKind, Recorder, SpanKind, TraceEvent};
use mc_sync::atomic::{AtomicU64, Ordering};
use mc_sync::{Arc, Mutex};
use mc_tslib::error::TsError;

/// Priority class of a forecast request: under admission shedding,
/// lower classes are dropped first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Bulk / backfill work — first to shed.
    Batch,
    /// The default class.
    #[default]
    Normal,
    /// Latency-sensitive work — last to shed.
    Interactive,
}

impl Priority {
    /// Numeric rank (higher survives shedding longer); also the payload
    /// of `shed` trace events.
    pub fn rank(self) -> u8 {
        match self {
            Priority::Batch => 0,
            Priority::Normal => 1,
            Priority::Interactive => 2,
        }
    }
}

/// Why the serve path rejected a request without running it. Rejection
/// is an *outcome*, not a panic or a hang: the request's
/// [`crate::serve::ServeOutcome`] carries the defect as a typed
/// [`TsError::Overloaded`] and zero attributed cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeDefect {
    /// The handle's hard submission cap was hit at `submit` time.
    QueueFull {
        /// The cap that was exceeded.
        cap: usize,
    },
    /// Admission shedding dropped the request: the flush exceeded
    /// `queue_cap` and higher-priority work filled every slot.
    Shed {
        /// The dropped request's priority class.
        priority: Priority,
    },
    /// The client had spent its token quota before this flush.
    QuotaExhausted {
        /// The over-quota client.
        client: u32,
        /// Tokens the client had been attributed so far.
        spent: u64,
        /// The configured allowance.
        quota: u64,
    },
    /// The backend preset's circuit breaker was open.
    BreakerOpen {
        /// The preset whose breaker rejected the request.
        preset: ModelPreset,
        /// Trips the breaker has accumulated (monotone).
        trips: u64,
    },
}

impl ServeDefect {
    /// Stable rejection kind (the `kind` of the [`TsError::Overloaded`]
    /// this defect converts to).
    pub fn kind(&self) -> &'static str {
        match self {
            ServeDefect::QueueFull { .. } => "queue-full",
            ServeDefect::Shed { .. } => "shed",
            ServeDefect::QuotaExhausted { .. } => "quota",
            ServeDefect::BreakerOpen { .. } => "breaker-open",
        }
    }

    /// The typed error surfaced through a rejected request's outcome.
    pub fn to_error(&self) -> TsError {
        let detail = match self {
            ServeDefect::QueueFull { cap } => format!("submission cap {cap} reached"),
            ServeDefect::Shed { priority } => {
                format!("shed at priority {priority:?} (rank {})", priority.rank())
            }
            ServeDefect::QuotaExhausted { client, spent, quota } => {
                format!("client {client} spent {spent} of {quota} tokens")
            }
            ServeDefect::BreakerOpen { preset, trips } => {
                format!("{preset:?} breaker open after {trips} trip(s)")
            }
        };
        TsError::Overloaded { kind: self.kind(), detail }
    }
}

/// Emits the deterministic telemetry for one admission shed: the `shed`
/// trace event plus a zero-length `shed` span, both keyed by the dropped
/// request's trace fingerprint. Shedding is a value-based cut (priority
/// desc, fingerprint asc), so the shed *set* — and with it this span
/// multiset — is invariant across submission orders and worker counts.
pub fn record_shed(obs: &dyn Recorder, req: u64, priority: Priority) {
    if !obs.enabled() {
        return;
    }
    obs.record(TraceEvent { req, ctx: 0, kind: EventKind::Shed { priority: priority.rank() } });
    point_span(obs, req, SpanKind::Shed);
}

/// When a per-preset circuit breaker trips and how long it stays open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Failed attempts within one flush that trip the breaker (0 never
    /// trips).
    pub trip_failures: u64,
    /// Flushes the breaker stays open before probing half-open.
    pub cooldown_flushes: u64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self { trip_failures: 8, cooldown_flushes: 1 }
    }
}

/// The breaker's lifecycle position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: admitting everything.
    Closed,
    /// Tripped: rejecting everything until the cooldown elapses.
    Open,
    /// Probing: admitting load again; one bad flush re-trips.
    HalfOpen,
}

/// A state change [`CircuitBreaker::settle_flush`] decided on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTransition {
    /// The breaker opened (`trips` is the new monotone trip count).
    Tripped {
        /// Total trips including this one.
        trips: u64,
    },
    /// A half-open probe succeeded and the breaker closed again.
    Closed {
        /// Trips accumulated before recovery.
        trips: u64,
    },
}

const CLOSED: u64 = 0;
const OPEN: u64 = 1;
const HALF_OPEN: u64 = 2;

/// A per-backend-preset circuit breaker.
///
/// Split into two halves with different concurrency stories:
///
/// - [`record`](CircuitBreaker::record) is called by **workers
///   concurrently**, once per attempt, and only bumps relaxed atomic
///   window counters — the loom suite proves no increment is lost and
///   the trip count stays monotone under arbitrary interleavings.
/// - [`settle_flush`](CircuitBreaker::settle_flush) runs
///   **single-threaded at flush boundaries** and is the only place state
///   transitions happen. Transitions therefore depend on order-invariant
///   window *sums*, never on attempt interleaving — the same flush
///   sequence produces the same breaker history on any worker count.
#[derive(Debug, Default)]
pub struct CircuitBreaker {
    state: AtomicU64,
    trips: AtomicU64,
    cooldown_left: AtomicU64,
    window_failures: AtomicU64,
    window_successes: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one attempt outcome into the current flush window.
    /// Concurrent and wait-free; never transitions state.
    pub fn record(&self, success: bool) {
        if success {
            self.window_successes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.window_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether admission should reject load right now.
    pub fn is_open(&self) -> bool {
        self.state.load(Ordering::Acquire) == OPEN
    }

    /// The breaker's current lifecycle position.
    pub fn state(&self) -> BreakerState {
        match self.state.load(Ordering::Acquire) {
            OPEN => BreakerState::Open,
            HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Monotone count of trips this breaker has accumulated.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Acquire)
    }

    fn trip(&self, policy: BreakerPolicy) -> BreakerTransition {
        self.state.store(OPEN, Ordering::Release);
        self.cooldown_left.store(policy.cooldown_flushes.max(1), Ordering::Release);
        let trips = self.trips.fetch_add(1, Ordering::AcqRel) + 1;
        BreakerTransition::Tripped { trips }
    }

    /// Folds the flush window and transitions state. Call exactly once
    /// per flush, single-threaded, after every worker has drained.
    pub fn settle_flush(&self, policy: BreakerPolicy) -> Option<BreakerTransition> {
        let failures = self.window_failures.swap(0, Ordering::AcqRel);
        let successes = self.window_successes.swap(0, Ordering::AcqRel);
        match self.state.load(Ordering::Acquire) {
            OPEN => {
                // No load was admitted; tick the cooldown toward a probe.
                let left = self.cooldown_left.load(Ordering::Acquire).saturating_sub(1);
                self.cooldown_left.store(left, Ordering::Release);
                if left == 0 {
                    self.state.store(HALF_OPEN, Ordering::Release);
                }
                None
            }
            HALF_OPEN => {
                if failures > 0 {
                    Some(self.trip(policy))
                } else if successes > 0 {
                    self.state.store(CLOSED, Ordering::Release);
                    Some(BreakerTransition::Closed { trips: self.trips() })
                } else {
                    // No probe ran this flush; keep probing.
                    None
                }
            }
            _ => {
                if policy.trip_failures > 0 && failures >= policy.trip_failures {
                    Some(self.trip(policy))
                } else {
                    None
                }
            }
        }
    }
}

/// Per-client spent-token ledger backing quota admission. Charged at
/// flush boundaries from the serve layer's attributed outcome costs, so
/// what a client is billed is exactly what conservation audits against
/// the metered ground truth.
#[derive(Debug, Default)]
pub struct QuotaLedger {
    spent: Mutex<Vec<(u32, u64)>>,
}

impl QuotaLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tokens attributed to `client` so far.
    pub fn spent(&self, client: u32) -> u64 {
        let spent = self.spent.lock().expect("quota lock");
        spent.iter().find(|(c, _)| *c == client).map_or(0, |&(_, tokens)| tokens)
    }

    /// Adds `tokens` to the client's tally.
    pub fn charge(&self, client: u32, tokens: u64) {
        if tokens == 0 {
            return;
        }
        let mut spent = self.spent.lock().expect("quota lock");
        match spent.iter_mut().find(|(c, _)| *c == client) {
            Some((_, tally)) => *tally += tokens,
            None => spent.push((client, tokens)),
        }
    }

    /// Whether the client has consumed at least `quota` tokens.
    pub fn exhausted(&self, client: u32, quota: u64) -> bool {
        self.spent(client) >= quota
    }
}

/// Overload state that outlives a single flush: one breaker per backend
/// preset plus the quota ledger. Owned by a
/// [`crate::serve::ServeHandle`] (and created throwaway by
/// [`crate::serve::serve_all`], where nothing persists anyway).
#[derive(Debug, Default)]
pub struct OverloadState {
    breakers: Mutex<Vec<(ModelPreset, Arc<CircuitBreaker>)>>,
    quota: QuotaLedger,
}

impl OverloadState {
    /// Fresh state: every breaker closed, every quota unspent.
    pub fn new() -> Self {
        Self::default()
    }

    /// The breaker for `preset`, created closed on first use.
    pub fn breaker(&self, preset: ModelPreset) -> Arc<CircuitBreaker> {
        let mut breakers = self.breakers.lock().expect("breaker lock");
        if let Some((_, b)) = breakers.iter().find(|(p, _)| *p == preset) {
            return b.clone();
        }
        let breaker = Arc::new(CircuitBreaker::new());
        breakers.push((preset, breaker.clone()));
        breaker
    }

    /// Snapshot of every breaker, in first-use order (flush settlement).
    pub fn breakers(&self) -> Vec<(ModelPreset, Arc<CircuitBreaker>)> {
        self.breakers.lock().expect("breaker lock").clone()
    }

    /// The per-client quota ledger.
    pub fn quota(&self) -> &QuotaLedger {
        &self.quota
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_order_and_rank() {
        assert!(Priority::Batch < Priority::Normal);
        assert!(Priority::Normal < Priority::Interactive);
        assert_eq!(Priority::default(), Priority::Normal);
        assert_eq!(Priority::Batch.rank(), 0);
        assert_eq!(Priority::Interactive.rank(), 2);
    }

    #[test]
    fn defects_convert_to_typed_overload_errors() {
        let cases = [
            (ServeDefect::QueueFull { cap: 4 }, "queue-full"),
            (ServeDefect::Shed { priority: Priority::Batch }, "shed"),
            (ServeDefect::QuotaExhausted { client: 7, spent: 100, quota: 64 }, "quota"),
            (ServeDefect::BreakerOpen { preset: ModelPreset::Large, trips: 2 }, "breaker-open"),
        ];
        for (defect, kind) in cases {
            assert_eq!(defect.kind(), kind);
            match defect.to_error() {
                TsError::Overloaded { kind: k, detail } => {
                    assert_eq!(k, kind);
                    assert!(!detail.is_empty());
                }
                other => panic!("expected Overloaded, got {other:?}"),
            }
        }
    }

    #[test]
    fn breaker_trips_cools_down_probes_and_recovers() {
        let policy = BreakerPolicy { trip_failures: 3, cooldown_flushes: 2 };
        let b = CircuitBreaker::new();
        assert_eq!(b.state(), BreakerState::Closed);
        // Two failures: below threshold, stays closed.
        b.record(false);
        b.record(false);
        assert_eq!(b.settle_flush(policy), None);
        assert!(!b.is_open());
        // Three failures: trips.
        for _ in 0..3 {
            b.record(false);
        }
        assert_eq!(b.settle_flush(policy), Some(BreakerTransition::Tripped { trips: 1 }));
        assert!(b.is_open());
        assert_eq!(b.trips(), 1);
        // Cooldown: two empty flushes before half-open.
        assert_eq!(b.settle_flush(policy), None);
        assert!(b.is_open());
        assert_eq!(b.settle_flush(policy), None);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.is_open(), "half-open admits the probe");
        // A flush with no probe keeps probing.
        assert_eq!(b.settle_flush(policy), None);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Clean probe closes; trips stay monotone.
        b.record(true);
        assert_eq!(b.settle_flush(policy), Some(BreakerTransition::Closed { trips: 1 }));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn half_open_failure_retrips_monotonically() {
        let policy = BreakerPolicy { trip_failures: 1, cooldown_flushes: 1 };
        let b = CircuitBreaker::new();
        b.record(false);
        assert_eq!(b.settle_flush(policy), Some(BreakerTransition::Tripped { trips: 1 }));
        assert_eq!(b.settle_flush(policy), None); // cooldown -> half-open
        b.record(true);
        b.record(false); // a mixed probe still counts as failure
        assert_eq!(b.settle_flush(policy), Some(BreakerTransition::Tripped { trips: 2 }));
        assert_eq!(b.trips(), 2, "trips never decrease");
    }

    #[test]
    fn zero_threshold_never_trips() {
        let policy = BreakerPolicy { trip_failures: 0, cooldown_flushes: 1 };
        let b = CircuitBreaker::new();
        for _ in 0..100 {
            b.record(false);
        }
        assert_eq!(b.settle_flush(policy), None);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn quota_ledger_accumulates_per_client() {
        let q = QuotaLedger::new();
        assert_eq!(q.spent(1), 0);
        q.charge(1, 40);
        q.charge(2, 10);
        q.charge(1, 9);
        assert_eq!(q.spent(1), 49);
        assert_eq!(q.spent(2), 10);
        assert!(!q.exhausted(1, 50));
        q.charge(1, 1);
        assert!(q.exhausted(1, 50));
        assert!(!q.exhausted(3, 1), "unknown clients have spent nothing");
        q.charge(3, 0);
        assert_eq!(q.spent(3), 0, "zero charges allocate nothing");
    }

    #[test]
    fn overload_state_interns_breakers_per_preset() {
        let state = OverloadState::new();
        let a = state.breaker(ModelPreset::Large);
        let b = state.breaker(ModelPreset::Large);
        assert!(Arc::ptr_eq(&a, &b), "same preset, same breaker");
        let c = state.breaker(ModelPreset::Small);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(state.breakers().len(), 2);
    }
}
