//! Dimensional multiplexing: the paper's three token-multiplexing schemes
//! (§III-A, Figure 1) with exact inverses.
//!
//! All three serialize a `d`-dimensional series of fixed-width integer
//! codes into one comma-separated token stream:
//!
//! - **DI** ([`DigitInterleave`], formula 1): within a timestamp, digit
//!   positions rotate across dimensions — `d1=17, d2=23 → "1273"`. The
//!   most significant digits of *all* dimensions come first, which the
//!   paper argues helps the model infer scale for similarly-scaled series.
//! - **VI** ([`ValueInterleave`], formula 2): whole values back-to-back —
//!   `→ "1723"`. Suited to dimensions on different scales.
//! - **VC** ([`ValueConcat`], formula 3): each dimension's value is its own
//!   comma-separated entry — `→ "17,23"` per timestamp.
//!
//! Demultiplexing is exact on well-formed streams (property-tested) and
//! *lenient* on malformed ones: an LLM continuation with a wrong group
//! width is repaired (left-pad/truncate), and a garbage group (non-digit
//! characters) is filled with each dimension's last valid code — never
//! silently parsed as zero — because a sampling pipeline must never abort
//! on one bad sample. The [`crate::robust`] layer reports these repairs
//! as [`crate::robust::SampleDefect`]s and decides whether to retry.

use crate::scaling::format_code;

/// Which multiplexing scheme a forecaster uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MuxMethod {
    /// Digit-interleaving (DI).
    DigitInterleave,
    /// Value-interleaving (VI).
    ValueInterleave,
    /// Value-concatenation (VC).
    ValueConcat,
}

impl MuxMethod {
    /// All methods, in paper order.
    pub const ALL: [MuxMethod; 3] =
        [MuxMethod::DigitInterleave, MuxMethod::ValueInterleave, MuxMethod::ValueConcat];

    /// Paper-style display name.
    pub fn display_name(self) -> &'static str {
        match self {
            MuxMethod::DigitInterleave => "MultiCast (DI)",
            MuxMethod::ValueInterleave => "MultiCast (VI)",
            MuxMethod::ValueConcat => "MultiCast (VC)",
        }
    }

    /// Short tag used in file names and plots.
    pub fn tag(self) -> &'static str {
        match self {
            MuxMethod::DigitInterleave => "DI",
            MuxMethod::ValueInterleave => "VI",
            MuxMethod::ValueConcat => "VC",
        }
    }

    /// Characters per comma-separated group: value-concatenated streams
    /// emit one value (`digits` chars) per group, the interleaving
    /// methods one full row (`dims * digits` chars).
    pub fn group_width(self, dims: usize, digits: u32) -> usize {
        match self {
            MuxMethod::ValueConcat => digits as usize,
            _ => dims * digits as usize,
        }
    }

    /// Builds the corresponding multiplexer.
    pub fn build(self) -> Box<dyn Multiplexer> {
        match self {
            MuxMethod::DigitInterleave => Box::new(DigitInterleave),
            MuxMethod::ValueInterleave => Box::new(ValueInterleave),
            MuxMethod::ValueConcat => Box::new(ValueConcat),
        }
    }
}

/// A dimensional multiplexing scheme.
pub trait Multiplexer: Send + Sync {
    /// The scheme's identity.
    fn method(&self) -> MuxMethod;

    /// Serializes `codes[d][t]` (all dimensions equal length) into the
    /// comma-separated token stream, `digits` characters per value.
    /// The stream ends **with** a trailing comma so a generation appended
    /// to it starts a fresh group.
    fn mux(&self, codes: &[Vec<u64>], digits: u32) -> String;

    /// Parses a continuation back into per-dimension codes, recovering at
    /// most `horizon` timestamps. Lenient: malformed groups are repaired,
    /// missing tail timestamps are filled by repeating the last parsed
    /// (or mid-range) code.
    fn demux(&self, text: &str, dims: usize, digits: u32, horizon: usize) -> Vec<Vec<u64>>;

    /// Comma count after which a `horizon`-timestamp continuation is
    /// complete (the generation stop rule).
    fn separators_for(&self, dims: usize, horizon: usize) -> usize;
}

/// Repairs a digit group to exactly `want` characters: truncates extras,
/// left-pads shortfalls with `'0'`. Returns `None` for a garbage group
/// (any non-digit character): garbage is not silently coerced to zeros —
/// the caller fills the timestamp with the last valid code instead, the
/// same convention [`pad_to_horizon`] uses for missing tail timestamps.
fn normalize_group(group: &str, want: usize) -> Option<String> {
    if group.chars().any(|c| !c.is_ascii_digit()) {
        return None;
    }
    Some(match group.len().cmp(&want) {
        std::cmp::Ordering::Equal => group.to_string(),
        std::cmp::Ordering::Greater => group[..want].to_string(),
        std::cmp::Ordering::Less => format!("{group:0>want$}"),
    })
}

/// The fill code for a dimension: its last parsed code, or the mid-range
/// code when nothing has parsed yet.
fn last_or_mid(col: &[u64], digits: u32) -> u64 {
    col.last().copied().unwrap_or((10u64.pow(digits) - 1) / 2)
}

/// Parses one dimension's digit run, falling back to the fill code if the
/// run does not fit a `u64` (defensive — widths are capped at 9 digits).
fn parse_code(run: &str, col: &[u64], digits: u32) -> u64 {
    run.parse().unwrap_or_else(|_| last_or_mid(col, digits))
}

/// Splits a stream into non-empty comma-separated groups.
fn groups(text: &str) -> impl Iterator<Item = &str> {
    text.split(',').map(str::trim).filter(|g| !g.is_empty())
}

/// Fills `out` up to `horizon` by repeating each dimension's last code
/// (or the mid-range code when nothing was parsed).
fn pad_to_horizon(out: &mut [Vec<u64>], horizon: usize, digits: u32) {
    let mid = (10u64.pow(digits) - 1) / 2;
    for col in out.iter_mut() {
        let fill = col.last().copied().unwrap_or(mid);
        while col.len() < horizon {
            col.push(fill);
        }
        col.truncate(horizon);
    }
}

/// Digit-interleaving (DI) — formula (1).
#[derive(Debug, Clone, Copy, Default)]
pub struct DigitInterleave;

impl Multiplexer for DigitInterleave {
    fn method(&self) -> MuxMethod {
        MuxMethod::DigitInterleave
    }

    fn mux(&self, codes: &[Vec<u64>], digits: u32) -> String {
        let d = codes.len();
        let n = codes.first().map_or(0, Vec::len);
        let b = digits as usize;
        let mut out = String::with_capacity(n * (d * b + 1));
        let mut rendered: Vec<String> = Vec::with_capacity(d);
        for t in 0..n {
            rendered.clear();
            rendered.extend(codes.iter().map(|col| format_code(col[t], digits)));
            for j in 0..b {
                for r in &rendered {
                    out.push(r.as_bytes()[j] as char);
                }
            }
            out.push(',');
        }
        out
    }

    fn demux(&self, text: &str, dims: usize, digits: u32, horizon: usize) -> Vec<Vec<u64>> {
        let b = digits as usize;
        let mut out = vec![Vec::with_capacity(horizon); dims];
        for group in groups(text).take(horizon) {
            match normalize_group(group, dims * b) {
                Some(g) => {
                    let bytes = g.as_bytes();
                    for (i, col) in out.iter_mut().enumerate() {
                        let val: String = (0..b).map(|j| bytes[j * dims + i] as char).collect();
                        let code = parse_code(&val, col, digits);
                        col.push(code);
                    }
                }
                None => {
                    for col in out.iter_mut() {
                        let fill = last_or_mid(col, digits);
                        col.push(fill);
                    }
                }
            }
        }
        pad_to_horizon(&mut out, horizon, digits);
        out
    }

    fn separators_for(&self, _dims: usize, horizon: usize) -> usize {
        horizon
    }
}

/// Value-interleaving (VI) — formula (2).
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueInterleave;

impl Multiplexer for ValueInterleave {
    fn method(&self) -> MuxMethod {
        MuxMethod::ValueInterleave
    }

    fn mux(&self, codes: &[Vec<u64>], digits: u32) -> String {
        let d = codes.len();
        let n = codes.first().map_or(0, Vec::len);
        let b = digits as usize;
        let mut out = String::with_capacity(n * (d * b + 1));
        for t in 0..n {
            for col in codes {
                out.push_str(&format_code(col[t], digits));
            }
            out.push(',');
        }
        out
    }

    fn demux(&self, text: &str, dims: usize, digits: u32, horizon: usize) -> Vec<Vec<u64>> {
        let b = digits as usize;
        let mut out = vec![Vec::with_capacity(horizon); dims];
        for group in groups(text).take(horizon) {
            match normalize_group(group, dims * b) {
                Some(g) => {
                    for (i, col) in out.iter_mut().enumerate() {
                        let code = parse_code(&g[i * b..(i + 1) * b], col, digits);
                        col.push(code);
                    }
                }
                None => {
                    for col in out.iter_mut() {
                        let fill = last_or_mid(col, digits);
                        col.push(fill);
                    }
                }
            }
        }
        pad_to_horizon(&mut out, horizon, digits);
        out
    }

    fn separators_for(&self, _dims: usize, horizon: usize) -> usize {
        horizon
    }
}

/// Value-concatenation (VC) — formula (3).
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueConcat;

impl Multiplexer for ValueConcat {
    fn method(&self) -> MuxMethod {
        MuxMethod::ValueConcat
    }

    fn mux(&self, codes: &[Vec<u64>], digits: u32) -> String {
        let d = codes.len();
        let n = codes.first().map_or(0, Vec::len);
        let b = digits as usize;
        let mut out = String::with_capacity(n * d * (b + 1));
        for t in 0..n {
            for col in codes {
                out.push_str(&format_code(col[t], digits));
                out.push(',');
            }
        }
        out
    }

    fn demux(&self, text: &str, dims: usize, digits: u32, horizon: usize) -> Vec<Vec<u64>> {
        let b = digits as usize;
        let mut out = vec![Vec::with_capacity(horizon); dims];
        let mut dim = 0usize;
        for group in groups(text) {
            if out[dim].len() >= horizon {
                break;
            }
            let code = match normalize_group(group, b) {
                Some(g) => parse_code(&g, &out[dim], digits),
                None => last_or_mid(&out[dim], digits),
            };
            out[dim].push(code);
            dim = (dim + 1) % dims;
        }
        pad_to_horizon(&mut out, horizon, digits);
        out
    }

    fn separators_for(&self, dims: usize, horizon: usize) -> usize {
        dims * horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact worked example of the paper's Figure 1:
    /// `d1 = [1.7, 2.6]`, `d2 = [2.3, 3.1]` rescaled to `[17, 26]` and
    /// `[23, 31]` with `b = 2`.
    fn figure1_codes() -> Vec<Vec<u64>> {
        vec![vec![17, 26], vec![23, 31]]
    }

    #[test]
    fn figure1_digit_interleaving() {
        let s = DigitInterleave.mux(&figure1_codes(), 2);
        assert_eq!(s, "1273,2361,");
    }

    #[test]
    fn figure1_value_interleaving() {
        let s = ValueInterleave.mux(&figure1_codes(), 2);
        assert_eq!(s, "1723,2631,");
    }

    #[test]
    fn figure1_value_concatenation() {
        let s = ValueConcat.mux(&figure1_codes(), 2);
        assert_eq!(s, "17,23,26,31,");
    }

    #[test]
    fn round_trip_all_methods() {
        let codes = vec![vec![17, 26, 999, 0], vec![23, 31, 7, 850]];
        for method in MuxMethod::ALL {
            let m = method.build();
            let s = m.mux(&codes, 3);
            let back = m.demux(&s, 2, 3, 4);
            assert_eq!(back, codes, "{method:?} failed to round-trip");
        }
    }

    #[test]
    fn round_trip_single_dimension() {
        // With d = 1 all three schemes degenerate to the same stream.
        let codes = vec![vec![5, 42, 127]];
        let di = DigitInterleave.mux(&codes, 3);
        let vi = ValueInterleave.mux(&codes, 3);
        let vc = ValueConcat.mux(&codes, 3);
        assert_eq!(di, vi);
        assert_eq!(vi, vc);
        assert_eq!(di, "005,042,127,");
        for method in MuxMethod::ALL {
            assert_eq!(method.build().demux(&di, 1, 3, 3), codes);
        }
    }

    #[test]
    fn lenient_demux_repairs_short_group() {
        // Second group lost a digit: "12" instead of 4 chars.
        let back = ValueInterleave.demux("1723,12,", 2, 2, 2);
        assert_eq!(back[0][0], 17);
        assert_eq!(back[1][0], 23);
        // "12" left-padded to "0012" → dims (0, 12).
        assert_eq!(back[0][1], 0);
        assert_eq!(back[1][1], 12);
    }

    #[test]
    fn lenient_demux_truncates_long_group() {
        let back = ValueInterleave.demux("172345,", 2, 2, 1);
        assert_eq!(back[0][0], 17);
        assert_eq!(back[1][0], 23);
    }

    #[test]
    fn lenient_demux_pads_missing_timestamps() {
        let back = DigitInterleave.demux("1273,", 2, 2, 3);
        assert_eq!(back[0], vec![17, 17, 17]);
        assert_eq!(back[1], vec![23, 23, 23]);
    }

    #[test]
    fn garbage_group_repeats_last_valid_code() {
        // Second group is garbage: each dimension repeats its last code
        // instead of silently becoming 0.
        let back = ValueInterleave.demux("1723,x?zz,2631,", 2, 2, 3);
        assert_eq!(back[0], vec![17, 17, 26]);
        assert_eq!(back[1], vec![23, 23, 31]);
        let back = ValueConcat.demux("17,??,26,31,", 2, 2, 2);
        assert_eq!(back[0], vec![17, 26]);
        assert_eq!(back[1], vec![49, 31], "dim 1 had no valid code yet, so mid-range fills");
        let back = DigitInterleave.demux("1273,!!,", 2, 2, 2);
        assert_eq!(back[0], vec![17, 17]);
        assert_eq!(back[1], vec![23, 23]);
    }

    #[test]
    fn leading_garbage_group_fills_midrange() {
        let back = ValueInterleave.demux("????,1723,", 2, 2, 2);
        assert_eq!(back[0], vec![49, 17]);
        assert_eq!(back[1], vec![49, 23]);
    }

    #[test]
    fn empty_continuation_yields_midrange() {
        let back = ValueConcat.demux("", 2, 2, 2);
        assert_eq!(back[0], vec![49, 49]);
        assert_eq!(back[1], vec![49, 49]);
    }

    #[test]
    fn separator_budgets() {
        assert_eq!(DigitInterleave.separators_for(3, 10), 10);
        assert_eq!(ValueInterleave.separators_for(3, 10), 10);
        assert_eq!(ValueConcat.separators_for(3, 10), 30);
    }

    #[test]
    fn vc_interleaves_dimensions_in_order() {
        let back = ValueConcat.demux("11,22,33,44,", 2, 2, 2);
        assert_eq!(back[0], vec![11, 33]);
        assert_eq!(back[1], vec![22, 44]);
    }

    #[test]
    fn display_names_match_paper_tables() {
        assert_eq!(MuxMethod::DigitInterleave.display_name(), "MultiCast (DI)");
        assert_eq!(MuxMethod::ValueInterleave.display_name(), "MultiCast (VI)");
        assert_eq!(MuxMethod::ValueConcat.display_name(), "MultiCast (VC)");
    }

    #[test]
    fn di_places_significant_digits_first() {
        // One timestamp, 3 digits, 2 dims: codes 123 and 456 must serialize
        // as 1-4-2-5-3-6 — all most-significant digits leading.
        let s = DigitInterleave.mux(&[vec![123], vec![456]], 3);
        assert_eq!(s, "142536,");
    }
}
