//! Sample-quality and fault-tolerance layer for the zero-shot pipeline.
//!
//! The paper's recipe (§IV-D, inherited from LLMTime) relies on the
//! pointwise median to absorb degenerate continuations — but the median
//! only helps *after* every sample has decoded to the right shape. This
//! module adds the defenses that belong in front of it:
//!
//! 1. **Validation** — every decoded continuation is checked against a
//!    [`SampleDefect`] taxonomy (truncation, wrong group width, garbage
//!    characters, non-finite values, panicking sample threads);
//! 2. **Retry with reseed** — samples with fatal defects are re-drawn
//!    under fresh deterministic seeds, up to a bounded budget;
//! 3. **Quorum** — if fewer than `min_valid_samples` survive, the caller
//!    degrades to a classical fallback (seasonal-naive, `mc-baselines`)
//!    instead of aggregating garbage or panicking;
//! 4. **Accounting** — every forecast produces a [`ForecastReport`] that
//!    records per-sample defects, retries, repairs and whether the
//!    fallback fired, so the serving layer can alert on decode health.
//!
//! Sample threads are isolated with [`std::panic::catch_unwind`]: a panic
//! in a backend becomes a [`SampleDefect::Panicked`] entry, not a process
//! abort. [`SampleSource::FaultInjected`] deterministically corrupts
//! continuations for chaos drills and the fault-injection benchmark.

use std::panic::{catch_unwind, AssertUnwindSafe};

use mc_tslib::error::{invalid_param, Result, TsError};
use mc_tslib::forecast::{MultivariateForecaster, PerDimension};
use mc_tslib::series::MultivariateSeries;

use mc_baselines::fallback::FallbackForecaster;
use mc_lm::cost::InferenceCost;
use mc_lm::sampler::SamplerConfig;
use mc_obs::{
    point_span, AttemptClass, Counter, EventKind, MetricsRegistry, NoopRecorder, Recorder,
    SpanGuard, SpanKind, TraceEvent,
};

use crate::pipeline::{run_continuation, ContinuationSpec};

/// One way a sampled continuation can be bad.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleDefect {
    /// Generation stopped (token budget) before emitting every separator.
    Truncated {
        /// Separators a complete continuation contains.
        expected: usize,
        /// Separators actually emitted.
        got: usize,
    },
    /// A group's character count differs from the serialization width
    /// (repaired by the lenient demultiplexer: truncate / left-pad).
    WrongGroupWidth {
        /// 0-based group index in the continuation.
        group: usize,
        /// Expected characters per group.
        expected: usize,
        /// Characters found.
        got: usize,
    },
    /// A group of a digit-serialized stream contains non-digit characters.
    NonNumericGroup {
        /// 0-based group index.
        group: usize,
    },
    /// A symbol outside the permitted output alphabet (SAX streams).
    OutOfBandCode {
        /// 0-based group index.
        group: usize,
        /// The offending character.
        symbol: char,
    },
    /// A decoded value is NaN or infinite after descaling.
    NonFinite {
        /// Dimension of the offending value.
        dim: usize,
        /// Timestamp index of the offending value.
        index: usize,
    },
    /// The decoded sample does not have the `dims x horizon` shape.
    ShapeMismatch {
        /// Expected dimension count.
        expected_dims: usize,
        /// Expected horizon.
        expected_len: usize,
        /// Dimensions found.
        dims: usize,
        /// Shortest column length found.
        len: usize,
    },
    /// The sample thread panicked (message is best-effort).
    Panicked {
        /// Panic payload rendered to text.
        message: String,
    },
    /// The sample's deadline budget ran out before a draw could start
    /// (never retried — the budget cannot grow back).
    DeadlineExpired {
        /// Token budget remaining when the attempt was scheduled (0, or
        /// small enough that latency inflation consumed it).
        budget: u64,
    },
}

/// Defect kind without payload, for counting and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefectClass {
    /// See [`SampleDefect::Truncated`].
    Truncated,
    /// See [`SampleDefect::WrongGroupWidth`].
    WrongGroupWidth,
    /// See [`SampleDefect::NonNumericGroup`].
    NonNumericGroup,
    /// See [`SampleDefect::OutOfBandCode`].
    OutOfBandCode,
    /// See [`SampleDefect::NonFinite`].
    NonFinite,
    /// See [`SampleDefect::ShapeMismatch`].
    ShapeMismatch,
    /// See [`SampleDefect::Panicked`].
    Panicked,
    /// See [`SampleDefect::DeadlineExpired`].
    DeadlineExpired,
}

impl DefectClass {
    /// All classes, in taxonomy order.
    pub const ALL: [DefectClass; 8] = [
        DefectClass::Truncated,
        DefectClass::WrongGroupWidth,
        DefectClass::NonNumericGroup,
        DefectClass::OutOfBandCode,
        DefectClass::NonFinite,
        DefectClass::ShapeMismatch,
        DefectClass::Panicked,
        DefectClass::DeadlineExpired,
    ];

    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DefectClass::Truncated => "truncated",
            DefectClass::WrongGroupWidth => "wrong-width",
            DefectClass::NonNumericGroup => "non-numeric",
            DefectClass::OutOfBandCode => "out-of-band",
            DefectClass::NonFinite => "non-finite",
            DefectClass::ShapeMismatch => "shape",
            DefectClass::Panicked => "panic",
            DefectClass::DeadlineExpired => "deadline",
        }
    }

    /// Position in [`DefectClass::ALL`] — the class's slot in
    /// `mc-obs`'s defect counters and `Defect` trace events.
    pub fn index(self) -> usize {
        match self {
            DefectClass::Truncated => 0,
            DefectClass::WrongGroupWidth => 1,
            DefectClass::NonNumericGroup => 2,
            DefectClass::OutOfBandCode => 3,
            DefectClass::NonFinite => 4,
            DefectClass::ShapeMismatch => 5,
            DefectClass::Panicked => 6,
            DefectClass::DeadlineExpired => 7,
        }
    }
}

impl SampleDefect {
    /// The payload-free kind of this defect.
    pub fn class(&self) -> DefectClass {
        match self {
            SampleDefect::Truncated { .. } => DefectClass::Truncated,
            SampleDefect::WrongGroupWidth { .. } => DefectClass::WrongGroupWidth,
            SampleDefect::NonNumericGroup { .. } => DefectClass::NonNumericGroup,
            SampleDefect::OutOfBandCode { .. } => DefectClass::OutOfBandCode,
            SampleDefect::NonFinite { .. } => DefectClass::NonFinite,
            SampleDefect::ShapeMismatch { .. } => DefectClass::ShapeMismatch,
            SampleDefect::Panicked { .. } => DefectClass::Panicked,
            SampleDefect::DeadlineExpired { .. } => DefectClass::DeadlineExpired,
        }
    }

    /// Whether the defect invalidates the sample (fatal → retry) or the
    /// lenient decoder repaired it in place (→ counted as a repair).
    pub fn is_fatal(&self) -> bool {
        match self {
            // Losing more than half the continuation leaves the pad-fill
            // dominating the sample; shorter losses are repaired.
            SampleDefect::Truncated { expected, got } => got * 2 < *expected,
            SampleDefect::WrongGroupWidth { .. } => false,
            SampleDefect::NonNumericGroup { .. }
            | SampleDefect::OutOfBandCode { .. }
            | SampleDefect::NonFinite { .. }
            | SampleDefect::ShapeMismatch { .. }
            | SampleDefect::Panicked { .. }
            | SampleDefect::DeadlineExpired { .. } => true,
        }
    }
}

/// What a well-formed continuation of a given spec looks like, for
/// validation.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleExpectations {
    /// Separators a complete continuation contains.
    pub separators: usize,
    /// Characters per comma-separated group.
    pub group_width: usize,
    /// Non-separator characters the decode path understands.
    pub alphabet: String,
    /// Whether groups must be pure ASCII digits.
    pub numeric: bool,
    /// Dimensions the decoded sample must have.
    pub dims: usize,
    /// Timestamps per dimension the decoded sample must have.
    pub horizon: usize,
}

/// Validates the raw continuation text against the expectations.
pub fn validate_text(text: &str, expect: &SampleExpectations) -> Vec<SampleDefect> {
    let mut defects = Vec::new();
    let seps = text.matches(',').count();
    if seps < expect.separators {
        defects.push(SampleDefect::Truncated { expected: expect.separators, got: seps });
    }
    for (i, group) in text.split(',').map(str::trim).filter(|g| !g.is_empty()).enumerate() {
        if expect.numeric {
            if group.chars().any(|c| !c.is_ascii_digit()) {
                defects.push(SampleDefect::NonNumericGroup { group: i });
                continue;
            }
        } else if let Some(bad) = group.chars().find(|c| !expect.alphabet.contains(*c)) {
            defects.push(SampleDefect::OutOfBandCode { group: i, symbol: bad });
            continue;
        }
        let width = group.chars().count();
        if width != expect.group_width {
            defects.push(SampleDefect::WrongGroupWidth {
                group: i,
                expected: expect.group_width,
                got: width,
            });
        }
    }
    defects
}

/// Validates the decoded (demuxed + descaled) sample values.
pub fn validate_decoded(values: &[Vec<f64>], expect: &SampleExpectations) -> Vec<SampleDefect> {
    if values.len() != expect.dims || values.iter().any(|col| col.len() != expect.horizon) {
        return vec![SampleDefect::ShapeMismatch {
            expected_dims: expect.dims,
            expected_len: expect.horizon,
            dims: values.len(),
            len: values.iter().map(Vec::len).min().unwrap_or(0),
        }];
    }
    let mut defects = Vec::new();
    for (d, col) in values.iter().enumerate() {
        for (t, v) in col.iter().enumerate() {
            if !v.is_finite() {
                defects.push(SampleDefect::NonFinite { dim: d, index: t });
            }
        }
    }
    defects
}

/// Retry / quorum / fallback policy of the sampling pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobustPolicy {
    /// Retry budget per sample (0 disables retries).
    pub max_retries: usize,
    /// Minimum valid samples required to aggregate; clamped to the
    /// requested sample count.
    pub min_valid_samples: usize,
    /// What to do when the quorum fails.
    pub fallback: FallbackPolicy,
    /// Per-request generated-token deadline, split evenly across sample
    /// slots (`None` disables deadlines). A sample whose slice runs out
    /// settles with a fatal [`SampleDefect::DeadlineExpired`] instead of
    /// blocking a worker; quorum then degrades to the fallback as usual.
    pub deadline_tokens: Option<u64>,
    /// Base of the bounded exponential retry backoff, in logical dispatch
    /// slots (0 disables backoff and retries re-queue immediately).
    /// Backoff only reorders when a retry is dispatched relative to other
    /// queued work — it never changes what any attempt computes.
    pub backoff_base: u32,
}

impl Default for RobustPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            min_valid_samples: 1,
            fallback: FallbackPolicy::SeasonalNaive,
            deadline_tokens: None,
            backoff_base: 0,
        }
    }
}

impl RobustPolicy {
    /// The quorum actually enforced for a run of `samples` draws.
    pub fn required_valid(&self, samples: usize) -> usize {
        self.min_valid_samples.clamp(1, samples.max(1))
    }

    /// The per-sample token slice of the deadline, if one is set: the
    /// total budget divided evenly across sample slots, so exhaustion
    /// depends only on a sample's own draws (attempt chains are
    /// per-sample sequential) and stays schedule-independent.
    pub fn sample_budget(&self, samples: usize) -> Option<u64> {
        self.deadline_tokens.map(|total| total / samples.max(1) as u64)
    }

    /// Bounded exponential backoff before retry `attempt`:
    /// `base << (attempt - 1)` dispatch slots, capped at 1024. Zero when
    /// backoff is disabled or for first attempts.
    pub fn backoff_delay(&self, attempt: usize) -> u64 {
        if self.backoff_base == 0 || attempt == 0 {
            return 0;
        }
        let shift = (attempt - 1).min(10) as u32;
        (u64::from(self.backoff_base) << shift).min(1024)
    }
}

/// What to do when fewer than the quorum of samples survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackPolicy {
    /// Surface a typed [`TsError::SampleQuorum`] error.
    Error,
    /// Degrade to the seasonal-naive fallback fitted on the history.
    SeasonalNaive,
}

/// Where continuations come from: the real backend, or the backend with
/// deterministic fault injection layered on top (chaos drills, the
/// fault-injection benchmark).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SampleSource {
    /// The real backend, untouched.
    #[default]
    Model,
    /// Backend output corrupted at a fixed rate.
    FaultInjected(FaultSpec),
}

/// Deterministic corruption of sampled continuations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Fraction of continuations corrupted, in `[0, 1]`.
    pub rate: f64,
    /// Seed decorrelating corruption decisions from sampling seeds.
    pub seed: u64,
    /// Sample index whose first attempt panics (panic-isolation drill).
    pub panic_sample: Option<usize>,
    /// Latency inflation: phantom tokens every draw burns from its
    /// deadline budget before producing output (a rigged slow backend).
    /// Ignored when no deadline is set; never touches cost accounting.
    pub latency_tokens: u64,
}

impl FaultSpec {
    /// Corruption at `rate`, no injected panic, no latency inflation.
    pub fn with_rate(rate: f64, seed: u64) -> Self {
        Self { rate, seed, panic_sample: None, latency_tokens: 0 }
    }

    fn hash(&self, sample: usize, attempt: usize) -> u64 {
        let mut z = self
            .seed
            .wrapping_add((sample as u64) << 32)
            .wrapping_add(attempt as u64)
            .wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Whether the (sample, attempt) draw is corrupted.
    pub fn corrupts(&self, sample: usize, attempt: usize) -> bool {
        (self.hash(sample, attempt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < self.rate
    }

    /// Applies the deterministic corruption for this (sample, attempt).
    pub fn corrupt(&self, sample: usize, attempt: usize, text: &str) -> String {
        if !self.corrupts(sample, attempt) {
            return text.to_string();
        }
        match self.hash(sample, attempt) % 3 {
            // Hard truncation: keep less than half of the separators.
            0 => {
                let keep = text.matches(',').count() / 3;
                let mut out = String::new();
                for (i, part) in text.split_inclusive(',').enumerate() {
                    if i >= keep {
                        break;
                    }
                    out.push_str(part);
                }
                out
            }
            // Garbage: non-alphabet characters replace interior groups.
            1 => {
                let groups: Vec<&str> = text.split(',').filter(|g| !g.is_empty()).collect();
                let replaced: Vec<String> = groups
                    .iter()
                    .enumerate()
                    .map(|(i, g)| if i % 2 == 1 { "x?".to_string() } else { (*g).to_string() })
                    .collect();
                let mut out = replaced.join(",");
                out.push(',');
                out
            }
            // Total loss: empty continuation.
            _ => String::new(),
        }
    }
}

/// The declarative fault profile shared by every chaos entry point —
/// `backtest_eval --faults`, the `serve_chaos` bin, and tests all parse
/// this one format instead of growing private flag grammars.
///
/// Textual form is a comma-separated key=value list; every key optional:
/// `rate=0.4,seed=7,panic=0,latency=16,quota=4096`. `panic` is a sample
/// index (omitted = no injected panic); `quota` is a per-client
/// generated-token allowance for serve-path drills (omitted = unlimited).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultProfile {
    /// Fraction of continuations corrupted, in `[0, 1]`.
    pub rate: f64,
    /// Seed decorrelating corruption decisions from sampling seeds.
    pub seed: u64,
    /// Sample index whose first attempt panics.
    pub panic_sample: Option<usize>,
    /// Phantom tokens each draw burns from its deadline budget.
    pub latency_tokens: u64,
    /// Per-client generated-token quota for serve-path chaos drills.
    pub quota_tokens: Option<u64>,
}

impl FaultProfile {
    /// Parses the `key=value,...` form. Unknown keys and malformed
    /// values are errors — a chaos drill with a silently-dropped knob
    /// tests the wrong thing.
    ///
    /// # Errors
    /// On unknown keys, malformed numbers, or a rate outside `[0, 1]`.
    pub fn parse(text: &str) -> Result<Self> {
        let mut profile = FaultProfile::default();
        for part in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| invalid_param("faults", format!("`{part}` is not key=value")))?;
            let bad = |what: &str| invalid_param("faults", format!("`{value}` is not a {what}"));
            match key.trim() {
                "rate" => {
                    let rate: f64 = value.parse().map_err(|_| bad("number"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(invalid_param("faults", "rate must be in [0, 1]"));
                    }
                    profile.rate = rate;
                }
                "seed" => profile.seed = value.parse().map_err(|_| bad("seed"))?,
                "panic" => profile.panic_sample = Some(value.parse().map_err(|_| bad("index"))?),
                "latency" => profile.latency_tokens = value.parse().map_err(|_| bad("count"))?,
                "quota" => profile.quota_tokens = Some(value.parse().map_err(|_| bad("count"))?),
                other => {
                    return Err(invalid_param("faults", format!("unknown fault key `{other}`")))
                }
            }
        }
        Ok(profile)
    }

    /// The same profile at a different corruption rate (rate sweeps).
    pub fn with_rate(self, rate: f64) -> Self {
        Self { rate, ..self }
    }

    /// The corruption spec this profile injects.
    pub fn fault_spec(&self) -> FaultSpec {
        FaultSpec {
            rate: self.rate,
            seed: self.seed,
            panic_sample: self.panic_sample,
            latency_tokens: self.latency_tokens,
        }
    }

    /// The sample source this profile drives: fault-injected when any
    /// knob that perturbs draws is set, the untouched model otherwise.
    pub fn source(&self) -> SampleSource {
        if self.rate > 0.0 || self.panic_sample.is_some() || self.latency_tokens > 0 {
            SampleSource::FaultInjected(self.fault_spec())
        } else {
            SampleSource::Model
        }
    }
}

impl std::fmt::Display for FaultProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rate={},seed={}", self.rate, self.seed)?;
        if let Some(p) = self.panic_sample {
            write!(f, ",panic={p}")?;
        }
        if self.latency_tokens > 0 {
            write!(f, ",latency={}", self.latency_tokens)?;
        }
        if let Some(q) = self.quota_tokens {
            write!(f, ",quota={q}")?;
        }
        Ok(())
    }
}

/// Per-sample accounting across all of its attempts.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRecord {
    /// Sample slot index.
    pub index: usize,
    /// Attempts consumed (1 = no retries needed).
    pub attempts: usize,
    /// Every defect observed across this sample's attempts.
    pub defects: Vec<SampleDefect>,
    /// Whether the final attempt produced a valid sample.
    pub valid: bool,
}

/// How the forecast was ultimately produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForecastOutcome {
    /// Enough valid samples survived; the forecast is their aggregate.
    Sampled,
    /// The quorum failed; the fallback forecaster produced the result
    /// (or, under [`FallbackPolicy::Error`], the call returned an error).
    Degraded {
        /// Valid samples that survived.
        valid: usize,
        /// Samples the quorum policy required.
        required: usize,
    },
}

/// Full accounting of one forecast's sampling run.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastReport {
    /// Samples requested by the configuration.
    pub requested_samples: usize,
    /// Samples that survived validation (possibly after retries).
    pub valid_samples: usize,
    /// Retries consumed across all samples.
    pub retries_used: usize,
    /// Non-fatal defects repaired in place by the lenient decoder.
    pub repairs_applied: usize,
    /// Per-sample records, in slot order.
    pub samples: Vec<SampleRecord>,
    /// How the forecast was produced.
    pub outcome: ForecastOutcome,
}

impl ForecastReport {
    /// Whether the fallback path produced the forecast.
    pub fn degraded(&self) -> bool {
        matches!(self.outcome, ForecastOutcome::Degraded { .. })
    }

    /// Number of defects of one class across all samples and attempts.
    pub fn defect_count(&self, class: DefectClass) -> usize {
        self.samples.iter().flat_map(|s| &s.defects).filter(|d| d.class() == class).count()
    }

    /// Total defects across all samples and attempts.
    pub fn total_defects(&self) -> usize {
        self.samples.iter().map(|s| s.defects.len()).sum()
    }

    /// Folds another report into this one (per-dimension pipelines such as
    /// LLMTime run one report per column).
    pub fn merge(&mut self, other: ForecastReport) {
        self.requested_samples += other.requested_samples;
        self.valid_samples += other.valid_samples;
        self.retries_used += other.retries_used;
        self.repairs_applied += other.repairs_applied;
        if other.degraded() && !self.degraded() {
            self.outcome = other.outcome.clone();
        }
        self.samples.extend(other.samples);
    }

    /// Folds this report's accounting into a metrics registry: per-class
    /// defect counts, retries, and the fallback counter when degraded.
    /// This is the sequential pipeline's bridge into `mc-obs` — the serve
    /// scheduler feeds the registry live through trace events instead.
    pub fn record_into(&self, metrics: &MetricsRegistry) {
        for record in &self.samples {
            for defect in &record.defects {
                metrics.incr(Counter::Defects);
                metrics.add_defect(defect.class().index());
            }
        }
        metrics.add(Counter::Retries, self.retries_used as u64);
        metrics.incr(Counter::QuorumResolves);
        if self.degraded() {
            metrics.incr(Counter::QuorumFailures);
            metrics.incr(Counter::Fallbacks);
        }
    }

    /// One-line summary for benchmark tables and logs.
    pub fn summary(&self) -> String {
        let defects: Vec<String> = DefectClass::ALL
            .iter()
            .filter_map(|&c| {
                let n = self.defect_count(c);
                (n > 0).then(|| format!("{}x{}", n, c.name()))
            })
            .collect();
        format!(
            "{}/{} valid, {} retries, {} repairs, defects [{}]{}",
            self.valid_samples,
            self.requested_samples,
            self.retries_used,
            self.repairs_applied,
            defects.join(" "),
            if self.degraded() { ", DEGRADED to fallback" } else { "" },
        )
    }
}

/// Everything a robust sampling run produced.
#[derive(Debug, Clone)]
pub struct RobustRun {
    /// Valid decoded samples (`sample -> dimension -> horizon`), slot order.
    pub samples: Vec<Vec<Vec<f64>>>,
    /// Cost summed over every attempt (failed attempts included — they
    /// were paid for).
    pub cost: InferenceCost,
    /// Accounting for `last_report`.
    pub report: ForecastReport,
    /// Whether enough valid samples survived to aggregate.
    pub quorum_met: bool,
}

/// Outcome of a single (sample, attempt) draw.
#[derive(Debug)]
pub enum AttemptOutcome {
    /// The draw and decode completed (possibly with defects — fatal ones
    /// invalidate the sample, non-fatal ones were repaired in place).
    Done {
        /// Decoded values (`dimension -> horizon`).
        decoded: Vec<Vec<f64>>,
        /// Generated-token cost of this attempt (failed attempts included —
        /// they were paid for).
        cost: InferenceCost,
        /// Defects observed on this attempt's text and decoded values.
        defects: Vec<SampleDefect>,
    },
    /// An infrastructure failure (unencodable prompt, decode bug) — never
    /// a sample defect; fails the whole run.
    Infra(TsError),
    /// The draw or decode panicked (isolated via `catch_unwind`).
    Panicked(String),
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// The virtual sampler index of `(sample, attempt)` in a run of `samples`
/// draws: attempt 0 uses index `sample` (identical seeds to the plain
/// pipeline), retry `r` uses `samples + (r - 1) * samples + sample`, which
/// reseeds deterministically without colliding with any first-attempt seed.
pub fn virtual_index(samples: usize, sample: usize, attempt: usize) -> usize {
    if attempt == 0 {
        sample
    } else {
        samples + (attempt - 1) * samples + sample
    }
}

/// The decode budget an attempt actually receives: the caller's remaining
/// deadline slice, shrunk by the fault profile's latency inflation (a
/// rigged slow backend burns budget before emitting a single token).
/// `None` means no deadline is in force.
pub fn effective_budget(source: SampleSource, budget: Option<u64>) -> Option<u64> {
    let remaining = budget?;
    let latency = match source {
        SampleSource::Model => 0,
        SampleSource::FaultInjected(f) => f.latency_tokens,
    };
    Some(remaining.saturating_sub(latency))
}

/// Runs one `(sample, attempt)` draw with panic isolation: injected-panic
/// check, deadline check, `draw`, deterministic corruption, text + decoded
/// validation. Pure with respect to scheduling — the outcome depends only
/// on the arguments, never on which thread runs it or what other samples
/// are in flight, which is what makes round-based retries
/// ([`run_attempts`]) and work-stealing schedulers ([`crate::serve`])
/// bit-identical.
///
/// `budget` is the sample's remaining deadline slice in generated tokens
/// (`None` = no deadline). A zero effective budget settles immediately
/// with a fatal [`SampleDefect::DeadlineExpired`] and zero cost — the
/// draw never starts. Otherwise the effective budget is handed to `draw`,
/// which should cancel cooperatively mid-continuation when it runs dry;
/// the truncated text then flows through ordinary defect validation.
pub fn execute_attempt(
    source: SampleSource,
    sample: usize,
    attempt: usize,
    expect: &SampleExpectations,
    budget: Option<u64>,
    draw: impl FnOnce(Option<u64>) -> Result<(String, InferenceCost)>,
    decode: impl FnOnce(&str) -> Result<Vec<Vec<f64>>>,
) -> AttemptOutcome {
    let result = catch_unwind(AssertUnwindSafe(move || -> Result<AttemptOutcome> {
        if let SampleSource::FaultInjected(f) = source {
            if f.panic_sample == Some(sample) && attempt == 0 {
                panic!("injected panic (sample {sample})");
            }
        }
        let effective = effective_budget(source, budget);
        if effective == Some(0) {
            return Ok(AttemptOutcome::Done {
                decoded: Vec::new(),
                cost: InferenceCost::default(),
                defects: vec![SampleDefect::DeadlineExpired { budget: budget.unwrap_or(0) }],
            });
        }
        let (text, cost) = draw(effective)?;
        let text = match source {
            SampleSource::Model => text,
            SampleSource::FaultInjected(f) => f.corrupt(sample, attempt, &text),
        };
        let mut defects = validate_text(&text, expect);
        let values = decode(&text)?;
        defects.extend(validate_decoded(&values, expect));
        Ok(AttemptOutcome::Done { decoded: values, cost, defects })
    }));
    match result {
        Ok(Ok(done)) => done,
        Ok(Err(e)) => AttemptOutcome::Infra(e),
        Err(payload) => AttemptOutcome::Panicked(panic_message(payload)),
    }
}

/// [`execute_attempt`] wrapped in causal spans: an `attempt(sample, n)`
/// span covers the whole unit and a nested `draw` span covers the
/// backend decode inside it. Span ids are pure functions of the
/// request fingerprint and coordinates, so the span multiset is
/// schedule-invariant like the attempt events themselves. Both guards
/// close via `Drop`, which runs during the `catch_unwind` unwind inside
/// `execute_attempt` — a panicking draw still closes its spans. Results
/// are identical to the unobserved path.
pub fn execute_attempt_observed(
    scope: TraceScope<'_>,
    source: SampleSource,
    (sample, attempt): (usize, usize),
    expect: &SampleExpectations,
    budget: Option<u64>,
    draw: impl FnOnce(Option<u64>) -> Result<(String, InferenceCost)>,
    decode: impl FnOnce(&str) -> Result<Vec<Vec<f64>>>,
) -> AttemptOutcome {
    let coords = (sample as u32, attempt as u32);
    let _attempt_span = SpanGuard::open(
        scope.obs,
        scope.req,
        SpanKind::Attempt { sample: coords.0, attempt: coords.1 },
    );
    execute_attempt(
        source,
        sample,
        attempt,
        expect,
        budget,
        move |effective| {
            let _draw_span = SpanGuard::open(
                scope.obs,
                scope.req,
                SpanKind::Draw { sample: coords.0, attempt: coords.1 },
            );
            draw(effective)
        },
        decode,
    )
}

/// A recorder plus the request/context trace keys its events are tagged
/// with — bundled so observed entry points stay at a sane arity.
#[derive(Clone, Copy)]
pub struct TraceScope<'a> {
    /// Event sink (a disabled recorder makes every emission free).
    pub obs: &'a dyn Recorder,
    /// Request content fingerprint events carry (0 = unscoped).
    pub req: u64,
    /// Context content fingerprint events carry (0 = unscoped).
    pub ctx: u64,
}

impl TraceScope<'_> {
    /// The unobserved default: every emission is dropped.
    pub fn disabled() -> TraceScope<'static> {
        TraceScope { obs: &NoopRecorder, req: 0, ctx: 0 }
    }
}

/// Emits the trace events one attempt outcome implies: a `defect` event
/// per observed defect, `panic_isolated` for caught panics, and the
/// `attempt` event itself (carrying the attempt's cost; zero for panicked
/// and infra attempts, which never completed a draw). Shared by the
/// sequential ladder ([`run_attempts_observed`]) and the serve scheduler
/// so both emit the same canonical trace for the same outcomes. No-op
/// when `obs` is disabled.
pub fn record_attempt(
    obs: &dyn Recorder,
    req: u64,
    ctx: u64,
    sample: usize,
    attempt: usize,
    outcome: &AttemptOutcome,
) {
    if !obs.enabled() {
        return;
    }
    let (sample, attempt) = (sample as u32, attempt as u32);
    match outcome {
        AttemptOutcome::Done { cost, defects, .. } => {
            for defect in defects {
                obs.record(TraceEvent {
                    req,
                    ctx,
                    kind: EventKind::Defect {
                        sample,
                        attempt,
                        class: defect.class().index() as u8,
                        fatal: defect.is_fatal(),
                    },
                });
            }
            let fatal = defects.iter().any(SampleDefect::is_fatal);
            obs.record(TraceEvent {
                req,
                ctx,
                kind: EventKind::Attempt {
                    sample,
                    attempt,
                    outcome: if fatal { AttemptClass::Defective } else { AttemptClass::Valid },
                    defects: defects.len() as u32,
                    generated_tokens: cost.generated_tokens,
                    work_units: cost.work_units,
                },
            });
        }
        AttemptOutcome::Infra(_) => {
            obs.record(TraceEvent {
                req,
                ctx,
                kind: EventKind::Attempt {
                    sample,
                    attempt,
                    outcome: AttemptClass::Infra,
                    defects: 0,
                    generated_tokens: 0,
                    work_units: 0,
                },
            });
        }
        AttemptOutcome::Panicked(_) => {
            obs.record(TraceEvent {
                req,
                ctx,
                kind: EventKind::Defect {
                    sample,
                    attempt,
                    class: DefectClass::Panicked.index() as u8,
                    fatal: true,
                },
            });
            obs.record(TraceEvent { req, ctx, kind: EventKind::PanicIsolated { sample, attempt } });
            obs.record(TraceEvent {
                req,
                ctx,
                kind: EventKind::Attempt {
                    sample,
                    attempt,
                    outcome: AttemptClass::Panicked,
                    defects: 1,
                    generated_tokens: 0,
                    work_units: 0,
                },
            });
        }
    }
}

/// What the caller should do with a sample after applying an attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptDisposition {
    /// The sample is settled (valid, out of retries, or the run failed).
    Settled,
    /// Re-draw the sample at the given attempt number.
    Retry {
        /// The next attempt number for this sample.
        attempt: usize,
    },
}

/// Incremental bookkeeping of a robust run: one [`AttemptOutcome`] at a
/// time, in any order, from any scheduler. [`run_attempts`] drives it
/// round-by-round with scoped threads; [`crate::serve`] drives it from a
/// shared worker pool interleaved with other requests. Because
/// [`execute_attempt`] is scheduling-independent and this struct folds
/// outcomes per-sample, both schedules produce identical final
/// [`RobustRun`]s.
#[derive(Debug)]
pub struct RobustProgress {
    samples: usize,
    policy: RobustPolicy,
    records: Vec<SampleRecord>,
    decoded: Vec<Option<Vec<Vec<f64>>>>,
    cost: InferenceCost,
    spent: Vec<u64>,
    outstanding: usize,
    failed: Option<TsError>,
}

impl RobustProgress {
    /// Fresh progress for a run of `samples` draws.
    ///
    /// # Errors
    /// When `samples` is zero.
    pub fn new(samples: usize, policy: RobustPolicy) -> Result<Self> {
        if samples == 0 {
            return Err(invalid_param("samples", "at least one sample required"));
        }
        Ok(Self {
            samples,
            policy,
            records: (0..samples)
                .map(|index| SampleRecord { index, attempts: 0, defects: Vec::new(), valid: false })
                .collect(),
            decoded: vec![None; samples],
            cost: InferenceCost::default(),
            spent: vec![0; samples],
            outstanding: samples,
            failed: None,
        })
    }

    /// Samples this run draws.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Whether every sample has settled (valid, exhausted, or failed).
    pub fn settled(&self) -> bool {
        self.outstanding == 0
    }

    /// Whether an infrastructure error has failed the run.
    pub fn failed(&self) -> bool {
        self.failed.is_some()
    }

    /// Generated-token cost absorbed so far across every applied attempt.
    pub fn cost(&self) -> InferenceCost {
        self.cost
    }

    /// The deadline budget left for `sample`'s next attempt: its policy
    /// slice minus the generated tokens its prior attempts consumed.
    /// `None` when no deadline is in force. A sample's attempt chain is
    /// strictly sequential under every scheduler, so this depends only on
    /// the sample's own history — never on interleaving.
    pub fn remaining_budget(&self, sample: usize) -> Option<u64> {
        self.policy
            .sample_budget(self.samples)
            .map(|slice| slice.saturating_sub(self.spent.get(sample).copied().unwrap_or(slice)))
    }

    /// Folds one attempt's outcome into the run and says whether the
    /// sample retries. Cost is absorbed on every completed draw, valid or
    /// not — failed attempts were paid for.
    pub fn apply(
        &mut self,
        sample: usize,
        attempt: usize,
        outcome: AttemptOutcome,
    ) -> AttemptDisposition {
        self.records[sample].attempts += 1;
        match outcome {
            AttemptOutcome::Done { decoded, cost, defects } => {
                self.cost.absorb(cost);
                self.spent[sample] += cost.generated_tokens;
                let fatal = defects.iter().any(SampleDefect::is_fatal);
                let expired = defects.iter().any(|d| d.class() == DefectClass::DeadlineExpired);
                self.records[sample].defects.extend(defects);
                if !fatal {
                    self.decoded[sample] = Some(decoded);
                    self.records[sample].valid = true;
                    self.outstanding -= 1;
                    return AttemptDisposition::Settled;
                }
                if expired {
                    // The budget cannot grow back — retrying would only
                    // burn queue slots to reach the same expiry.
                    self.outstanding -= 1;
                    return AttemptDisposition::Settled;
                }
            }
            AttemptOutcome::Infra(e) => {
                if self.failed.is_none() {
                    self.failed = Some(e);
                }
                self.outstanding -= 1;
                return AttemptDisposition::Settled;
            }
            AttemptOutcome::Panicked(message) => {
                self.records[sample].defects.push(SampleDefect::Panicked { message });
            }
        }
        if self.failed.is_none() && attempt < self.policy.max_retries {
            AttemptDisposition::Retry { attempt: attempt + 1 }
        } else {
            // Out of retries — or the run already failed on another sample,
            // in which case further draws would be wasted work.
            self.outstanding -= 1;
            AttemptDisposition::Settled
        }
    }

    /// Finalizes the run: quorum check, retry/repair accounting, report.
    ///
    /// # Errors
    /// The first infrastructure error applied, if any.
    pub fn finish(self) -> Result<RobustRun> {
        if let Some(e) = self.failed {
            return Err(e);
        }
        let valid: Vec<Vec<Vec<f64>>> = self.decoded.into_iter().flatten().collect();
        let required = self.policy.required_valid(self.samples);
        let quorum_met = valid.len() >= required;
        let retries_used = self.records.iter().map(|r| r.attempts.saturating_sub(1)).sum();
        let repairs_applied =
            self.records.iter().flat_map(|r| &r.defects).filter(|d| !d.is_fatal()).count();
        let report = ForecastReport {
            requested_samples: self.samples,
            valid_samples: valid.len(),
            retries_used,
            repairs_applied,
            samples: self.records,
            outcome: if quorum_met {
                ForecastOutcome::Sampled
            } else {
                ForecastOutcome::Degraded { valid: valid.len(), required }
            },
        };
        Ok(RobustRun { samples: valid, cost: self.cost, report, quorum_met })
    }
}

/// Runs `samples` continuations with validation, bounded retry-with-reseed
/// and panic isolation; returns the valid decodings, summed cost and the
/// full [`ForecastReport`].
///
/// Sample `i`'s first attempt uses sampler index `i` (identical seeds to
/// the plain pipeline, so defect-free runs reproduce it exactly); retry
/// `r` uses index `samples + (r - 1) * samples + i`, which reseeds
/// deterministically without colliding with any first-attempt seed.
///
/// # Errors
/// On infrastructure failures (unencodable prompt, decode bugs) — never
/// because of a defective sample; those are retried and reported.
pub fn run_samples_robust<D>(
    spec: &ContinuationSpec,
    samples: usize,
    policy: RobustPolicy,
    source: SampleSource,
    expect: &SampleExpectations,
    sampler_for: impl Fn(usize) -> SamplerConfig + Sync,
    decode: D,
) -> Result<RobustRun>
where
    D: Fn(&str) -> Result<Vec<Vec<f64>>> + Sync,
{
    // The refit-per-attempt path has no session-level decode budget; the
    // pre-draw deadline check in `execute_attempt` still applies.
    run_attempts(
        samples,
        policy,
        source,
        expect,
        |vi, _budget| run_continuation(spec, sampler_for(vi)),
        decode,
    )
}

/// The backend-agnostic core of [`run_samples_robust`]: `draw` maps a
/// virtual sampler index to one generated continuation (text + cost), and
/// this function supplies the validation / retry / quorum / panic-isolation
/// machinery around it. The [`crate::engine::ForecastEngine`] passes a
/// `draw` that forks sessions off one prompt-conditioned
/// [`mc_lm::FrozenLm`]; [`run_samples_robust`] passes one that refits per
/// attempt. Virtual-index semantics are documented on
/// [`run_samples_robust`].
///
/// # Errors
/// On infrastructure failures surfaced by `draw` or `decode` — never
/// because of a defective sample; those are retried and reported.
pub fn run_attempts<Draw, D>(
    samples: usize,
    policy: RobustPolicy,
    source: SampleSource,
    expect: &SampleExpectations,
    draw: Draw,
    decode: D,
) -> Result<RobustRun>
where
    Draw: Fn(usize, Option<u64>) -> Result<(String, InferenceCost)> + Sync,
    D: Fn(&str) -> Result<Vec<Vec<f64>>> + Sync,
{
    run_attempts_observed(samples, policy, source, expect, draw, decode, TraceScope::disabled())
}

/// [`run_attempts`] with trace emission: every attempt goes through
/// [`record_attempt`], and retries emit `retry` events. Semantics and
/// results are identical to the unobserved path — the recorder only
/// watches.
///
/// # Errors
/// Exactly as [`run_attempts`].
pub fn run_attempts_observed<Draw, D>(
    samples: usize,
    policy: RobustPolicy,
    source: SampleSource,
    expect: &SampleExpectations,
    draw: Draw,
    decode: D,
    scope: TraceScope<'_>,
) -> Result<RobustRun>
where
    Draw: Fn(usize, Option<u64>) -> Result<(String, InferenceCost)> + Sync,
    D: Fn(&str) -> Result<Vec<Vec<f64>>> + Sync,
{
    let mut progress = RobustProgress::new(samples, policy)?;
    let mut pending: Vec<(usize, usize)> = (0..samples).map(|i| (i, 0)).collect();

    while !pending.is_empty() && !progress.failed() {
        let budgets: Vec<Option<u64>> =
            pending.iter().map(|&(i, _)| progress.remaining_budget(i)).collect();
        let mut outcomes: Vec<Option<AttemptOutcome>> = Vec::new();
        outcomes.resize_with(pending.len(), || None);
        std::thread::scope(|s| {
            for ((slot, &(i, attempt)), &budget) in outcomes.iter_mut().zip(&pending).zip(&budgets)
            {
                let draw = &draw;
                let decode = &decode;
                let expect = &*expect;
                s.spawn(move || {
                    let vi = virtual_index(samples, i, attempt);
                    *slot = Some(execute_attempt_observed(
                        scope,
                        source,
                        (i, attempt),
                        expect,
                        budget,
                        |b| draw(vi, b),
                        |text| decode(text),
                    ));
                });
            }
        });
        let mut next = Vec::new();
        for (outcome, (i, attempt)) in outcomes.into_iter().zip(pending) {
            if progress.failed() {
                break;
            }
            let outcome = outcome.expect("scoped thread filled its slot");
            record_attempt(scope.obs, scope.req, scope.ctx, i, attempt, &outcome);
            if let AttemptDisposition::Retry { attempt } = progress.apply(i, attempt, outcome) {
                if scope.obs.enabled() {
                    scope.obs.record(TraceEvent {
                        req: scope.req,
                        ctx: scope.ctx,
                        kind: EventKind::Retry { sample: i as u32, attempt: attempt as u32 },
                    });
                    point_span(
                        scope.obs,
                        scope.req,
                        SpanKind::Retry { sample: i as u32, attempt: attempt as u32 },
                    );
                }
                next.push((i, attempt));
            }
        }
        pending = next;
    }
    progress.finish()
}

/// The graceful-degradation forecast: seasonal-naive (ACF-estimated
/// period, last-value fallback) on every dimension of the history.
pub fn fallback_forecast(train: &MultivariateSeries, horizon: usize) -> Result<MultivariateSeries> {
    PerDimension(FallbackForecaster::default()).forecast(train, horizon)
}

/// Resolves a failed quorum per the policy: a typed error, or the
/// fallback forecast.
pub fn resolve_quorum_failure(
    policy: RobustPolicy,
    report: &ForecastReport,
    train: &MultivariateSeries,
    horizon: usize,
) -> Result<MultivariateSeries> {
    match policy.fallback {
        FallbackPolicy::Error => {
            let (valid, required) = match report.outcome {
                ForecastOutcome::Degraded { valid, required } => (valid, required),
                ForecastOutcome::Sampled => (report.valid_samples, policy.min_valid_samples),
            };
            Err(TsError::SampleQuorum { valid, required })
        }
        FallbackPolicy::SeasonalNaive => fallback_forecast(train, horizon),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_lm::presets::ModelPreset;
    use mc_lm::vocab::Vocab;

    fn numeric_expect(
        separators: usize,
        group_width: usize,
        dims: usize,
        horizon: usize,
    ) -> SampleExpectations {
        SampleExpectations {
            separators,
            group_width,
            alphabet: "0123456789".into(),
            numeric: true,
            dims,
            horizon,
        }
    }

    fn spec(prompt: &str, separators: usize) -> ContinuationSpec {
        ContinuationSpec {
            prompt: prompt.into(),
            vocab: Vocab::numeric(),
            allowed_chars: "0123456789,".into(),
            preset: ModelPreset::Large,
            separators,
            max_tokens: 200,
            refit_epoch: 0,
        }
    }

    #[test]
    fn validate_text_catches_each_class() {
        let expect = numeric_expect(3, 2, 1, 3);
        assert!(validate_text("12,34,56,", &expect).is_empty());
        let d = validate_text("12,34,", &expect);
        assert_eq!(d, vec![SampleDefect::Truncated { expected: 3, got: 2 }]);
        let d = validate_text("12,345,67,", &expect);
        assert_eq!(d, vec![SampleDefect::WrongGroupWidth { group: 1, expected: 2, got: 3 }]);
        let d = validate_text("12,x?,56,", &expect);
        assert_eq!(d, vec![SampleDefect::NonNumericGroup { group: 1 }]);
        let sax = SampleExpectations { numeric: false, alphabet: "abcde".into(), ..expect };
        let d = validate_text("ab,zz,cd,", &sax);
        assert_eq!(d, vec![SampleDefect::OutOfBandCode { group: 1, symbol: 'z' }]);
    }

    #[test]
    fn validate_decoded_catches_shape_and_nan() {
        let expect = numeric_expect(2, 2, 2, 2);
        assert!(validate_decoded(&[vec![1.0, 2.0], vec![3.0, 4.0]], &expect).is_empty());
        let d = validate_decoded(&[vec![1.0, 2.0]], &expect);
        assert!(matches!(d[0], SampleDefect::ShapeMismatch { .. }));
        let d = validate_decoded(&[vec![1.0, f64::NAN], vec![3.0, 4.0]], &expect);
        assert_eq!(d, vec![SampleDefect::NonFinite { dim: 0, index: 1 }]);
    }

    #[test]
    fn fatality_split_matches_repair_semantics() {
        assert!(!SampleDefect::WrongGroupWidth { group: 0, expected: 2, got: 3 }.is_fatal());
        // Lost 1 of 4 separators: repairable; lost 3 of 4: fatal.
        assert!(!SampleDefect::Truncated { expected: 4, got: 3 }.is_fatal());
        assert!(SampleDefect::Truncated { expected: 4, got: 1 }.is_fatal());
        assert!(SampleDefect::NonNumericGroup { group: 0 }.is_fatal());
        assert!(SampleDefect::Panicked { message: "x".into() }.is_fatal());
    }

    #[test]
    fn fault_spec_is_deterministic_and_rate_bounded() {
        let f = FaultSpec::with_rate(0.5, 42);
        let a: Vec<bool> = (0..64).map(|i| f.corrupts(i, 0)).collect();
        let b: Vec<bool> = (0..64).map(|i| f.corrupts(i, 0)).collect();
        assert_eq!(a, b);
        let hits = a.iter().filter(|&&x| x).count();
        assert!(hits > 16 && hits < 48, "rate 0.5 should corrupt roughly half: {hits}");
        assert!(!FaultSpec::with_rate(0.0, 1).corrupts(3, 0));
        assert!(FaultSpec::with_rate(1.0, 1).corrupts(3, 0));
    }

    #[test]
    fn corruption_produces_detectable_defects() {
        let f = FaultSpec::with_rate(1.0, 9);
        let clean = "123,456,789,012,345,678,";
        let expect = numeric_expect(6, 3, 1, 6);
        // Whatever kind fires, validation must flag the corrupted text.
        for sample in 0..6 {
            let bad = f.corrupt(sample, 0, clean);
            assert_ne!(bad, clean, "sample {sample} should be corrupted");
            let defects = validate_text(&bad, &expect);
            assert!(!defects.is_empty(), "corruption of sample {sample} went undetected: {bad:?}");
        }
    }

    #[test]
    fn robust_run_clean_backend_uses_first_attempt_seeds() {
        let s = spec(&"017,023,".repeat(20), 2);
        let expect = numeric_expect(2, 3, 1, 2);
        let decode = |text: &str| -> Result<Vec<Vec<f64>>> {
            Ok(vec![text.split(',').filter(|g| !g.is_empty()).map(|g| g.len() as f64).collect()])
        };
        let sampler_for =
            |i: usize| SamplerConfig { seed: 10 + i as u64, ..SamplerConfig::default() };
        let run = run_samples_robust(
            &s,
            4,
            RobustPolicy::default(),
            SampleSource::Model,
            &expect,
            sampler_for,
            decode,
        )
        .unwrap();
        assert_eq!(run.samples.len(), 4);
        assert!(run.quorum_met);
        assert_eq!(run.report.retries_used, 0);
        assert_eq!(run.report.outcome, ForecastOutcome::Sampled);
        // Identical to the plain pipeline on the same seeds.
        let (plain, plain_cost) = crate::pipeline::run_samples(&s, 4, sampler_for, |t| {
            Ok(vec![t.split(',').filter(|g| !g.is_empty()).map(|g| g.len() as f64).collect()])
        })
        .unwrap();
        assert_eq!(run.samples, plain);
        assert_eq!(run.cost, plain_cost);
    }

    #[test]
    fn injected_panic_becomes_defect_and_sample_recovers() {
        let s = spec(&"042,".repeat(30), 3);
        let expect = numeric_expect(3, 3, 1, 3);
        let decode = |text: &str| -> Result<Vec<Vec<f64>>> {
            Ok(vec![text
                .split(',')
                .filter(|g| !g.is_empty())
                .map(|g| g.parse::<f64>().unwrap_or(0.0))
                .take(3)
                .collect::<Vec<f64>>()])
        };
        // Decode above can yield fewer than 3 values on truncation; shape
        // validation flags that, which is exactly what we want to exercise.
        let source = SampleSource::FaultInjected(FaultSpec {
            rate: 0.0,
            seed: 0,
            panic_sample: Some(1),
            latency_tokens: 0,
        });
        let run = run_samples_robust(
            &s,
            3,
            RobustPolicy::default(),
            source,
            &expect,
            |i| SamplerConfig { seed: i as u64, ..SamplerConfig::default() },
            decode,
        )
        .unwrap();
        assert_eq!(run.report.defect_count(DefectClass::Panicked), 1);
        assert_eq!(run.report.samples[1].attempts, 2, "panicked sample retried once");
        assert!(run.report.samples[1].valid, "retry must recover the sample");
        assert_eq!(run.report.retries_used, 1);
        assert_eq!(run.samples.len(), 3);
    }

    #[test]
    fn total_corruption_fails_quorum_without_panicking() {
        let s = spec(&"042,".repeat(30), 3);
        let expect = numeric_expect(3, 3, 1, 3);
        let decode = |_: &str| -> Result<Vec<Vec<f64>>> { Ok(vec![vec![0.0; 3]]) };
        let source = SampleSource::FaultInjected(FaultSpec::with_rate(1.0, 5));
        let policy = RobustPolicy { max_retries: 1, min_valid_samples: 2, ..Default::default() };
        let run = run_samples_robust(
            &s,
            3,
            policy,
            source,
            &expect,
            |i| SamplerConfig { seed: i as u64, ..SamplerConfig::default() },
            decode,
        )
        .unwrap();
        assert!(!run.quorum_met);
        assert!(run.report.degraded());
        assert_eq!(run.report.retries_used, 3, "every sample used its retry");
        assert!(run.report.total_defects() >= 6, "every attempt was defective");
    }

    #[test]
    fn fallback_forecast_has_correct_shape() {
        let a: Vec<f64> = (0..48).map(|t| ((t % 8) as f64) + 1.0).collect();
        let b: Vec<f64> = (0..48).map(|t| t as f64).collect();
        let train =
            MultivariateSeries::from_columns(vec!["s".into(), "r".into()], vec![a, b]).unwrap();
        let fc = fallback_forecast(&train, 10).unwrap();
        assert_eq!(fc.dims(), 2);
        assert_eq!(fc.len(), 10);
        assert!(fc.columns().iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn quorum_error_policy_yields_typed_error() {
        let report = ForecastReport {
            requested_samples: 3,
            valid_samples: 1,
            retries_used: 6,
            repairs_applied: 0,
            samples: Vec::new(),
            outcome: ForecastOutcome::Degraded { valid: 1, required: 3 },
        };
        let train = MultivariateSeries::from_columns(
            vec!["x".into()],
            vec![(0..16).map(|t| t as f64).collect()],
        )
        .unwrap();
        let policy = RobustPolicy { fallback: FallbackPolicy::Error, ..Default::default() };
        let err = resolve_quorum_failure(policy, &report, &train, 4).unwrap_err();
        assert_eq!(err, TsError::SampleQuorum { valid: 1, required: 3 });
        let policy = RobustPolicy { fallback: FallbackPolicy::SeasonalNaive, ..Default::default() };
        let fc = resolve_quorum_failure(policy, &report, &train, 4).unwrap();
        assert_eq!(fc.len(), 4);
    }

    #[test]
    fn virtual_index_first_attempts_match_plain_pipeline() {
        // Attempt 0 uses the sample's own index; retries never collide
        // with any first-attempt index or each other.
        let samples = 5;
        let mut seen = std::collections::HashSet::new();
        for attempt in 0..4 {
            for i in 0..samples {
                let vi = virtual_index(samples, i, attempt);
                if attempt == 0 {
                    assert_eq!(vi, i);
                }
                assert!(seen.insert(vi), "virtual index {vi} collided");
            }
        }
    }

    #[test]
    fn progress_applies_outcomes_incrementally() {
        let policy = RobustPolicy { max_retries: 1, ..RobustPolicy::default() };
        let mut progress = RobustProgress::new(2, policy).unwrap();
        assert!(RobustProgress::new(0, policy).is_err());
        assert!(!progress.settled());
        // Sample 0 panics, retries, then succeeds; sample 1 succeeds flat.
        let d = progress.apply(0, 0, AttemptOutcome::Panicked("boom".into()));
        assert_eq!(d, AttemptDisposition::Retry { attempt: 1 });
        let done = |gen: u64| AttemptOutcome::Done {
            decoded: vec![vec![1.0, 2.0]],
            cost: InferenceCost { generated_tokens: gen, ..Default::default() },
            defects: Vec::new(),
        };
        assert_eq!(progress.apply(1, 0, done(10)), AttemptDisposition::Settled);
        assert!(!progress.settled());
        assert_eq!(progress.apply(0, 1, done(7)), AttemptDisposition::Settled);
        assert!(progress.settled());
        assert_eq!(progress.cost().generated_tokens, 17);
        let run = progress.finish().unwrap();
        assert_eq!(run.samples.len(), 2);
        assert!(run.quorum_met);
        assert_eq!(run.report.retries_used, 1);
        assert_eq!(run.report.defect_count(DefectClass::Panicked), 1);
    }

    #[test]
    fn progress_stops_retrying_after_infra_failure() {
        let policy = RobustPolicy { max_retries: 2, ..RobustPolicy::default() };
        let mut progress = RobustProgress::new(2, policy).unwrap();
        let err = invalid_param("x", "boom");
        assert_eq!(progress.apply(0, 0, AttemptOutcome::Infra(err)), AttemptDisposition::Settled);
        assert!(progress.failed());
        // A fatally-defective sample would normally retry; after failure it
        // settles immediately.
        let bad = AttemptOutcome::Done {
            decoded: vec![vec![f64::NAN, 1.0]],
            cost: InferenceCost::default(),
            defects: vec![SampleDefect::NonFinite { dim: 0, index: 0 }],
        };
        assert_eq!(progress.apply(1, 0, bad), AttemptDisposition::Settled);
        assert!(progress.settled());
        assert!(progress.finish().is_err());
    }

    #[test]
    fn execute_attempt_isolates_draw_panics() {
        let expect = numeric_expect(2, 2, 1, 2);
        let outcome = execute_attempt(
            SampleSource::Model,
            0,
            0,
            &expect,
            None,
            |_| panic!("draw exploded"),
            |_| Ok(vec![vec![1.0, 2.0]]),
        );
        match outcome {
            AttemptOutcome::Panicked(msg) => assert!(msg.contains("draw exploded"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
        // Injected panic fires before the draw runs (no cost incurred).
        let source = SampleSource::FaultInjected(FaultSpec {
            rate: 0.0,
            seed: 0,
            panic_sample: Some(3),
            latency_tokens: 0,
        });
        let outcome = execute_attempt(
            source,
            3,
            0,
            &expect,
            None,
            |_| {
                panic!("draw must not run when the injected panic fires first");
            },
            |_| Ok(vec![vec![1.0, 2.0]]),
        );
        match outcome {
            AttemptOutcome::Panicked(msg) => assert!(msg.contains("injected panic"), "{msg}"),
            other => panic!("expected injected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn report_summary_and_merge() {
        let mut a = ForecastReport {
            requested_samples: 5,
            valid_samples: 4,
            retries_used: 2,
            repairs_applied: 1,
            samples: vec![SampleRecord {
                index: 0,
                attempts: 2,
                defects: vec![SampleDefect::NonNumericGroup { group: 0 }],
                valid: true,
            }],
            outcome: ForecastOutcome::Sampled,
        };
        let b = ForecastReport {
            requested_samples: 5,
            valid_samples: 0,
            retries_used: 10,
            repairs_applied: 0,
            samples: Vec::new(),
            outcome: ForecastOutcome::Degraded { valid: 0, required: 1 },
        };
        a.merge(b);
        assert_eq!(a.requested_samples, 10);
        assert_eq!(a.retries_used, 12);
        assert!(a.degraded());
        let s = a.summary();
        assert!(s.contains("4/10 valid"), "{s}");
        assert!(s.contains("1xnon-numeric"), "{s}");
        assert!(s.contains("DEGRADED"), "{s}");
    }

    #[test]
    fn zero_budget_settles_with_deadline_defect_and_zero_cost() {
        let expect = numeric_expect(2, 2, 1, 2);
        let outcome = execute_attempt(
            SampleSource::Model,
            0,
            0,
            &expect,
            Some(0),
            |_| panic!("draw must not run on an exhausted budget"),
            |_| Ok(vec![vec![1.0, 2.0]]),
        );
        match outcome {
            AttemptOutcome::Done { decoded, cost, defects } => {
                assert!(decoded.is_empty());
                assert_eq!(cost, InferenceCost::default(), "an expired attempt costs nothing");
                assert_eq!(defects, vec![SampleDefect::DeadlineExpired { budget: 0 }]);
                assert!(defects[0].is_fatal());
            }
            other => panic!("expected deadline expiry, got {other:?}"),
        }
    }

    #[test]
    fn latency_inflation_consumes_budget_before_the_draw() {
        let expect = numeric_expect(2, 2, 1, 2);
        let spec = FaultSpec { rate: 0.0, seed: 0, panic_sample: None, latency_tokens: 8 };
        let source = SampleSource::FaultInjected(spec);
        assert_eq!(effective_budget(source, Some(20)), Some(12));
        assert_eq!(effective_budget(source, Some(5)), Some(0), "latency saturates, not wraps");
        assert_eq!(effective_budget(source, None), None, "no deadline, no inflation");
        assert_eq!(effective_budget(SampleSource::Model, Some(5)), Some(5));
        // A budget the latency fully consumes expires without drawing.
        let outcome = execute_attempt(
            source,
            0,
            0,
            &expect,
            Some(8),
            |_| panic!("latency ate the whole slice; the draw must not run"),
            |_| Ok(vec![vec![1.0, 2.0]]),
        );
        match outcome {
            AttemptOutcome::Done { defects, .. } => {
                assert_eq!(defects, vec![SampleDefect::DeadlineExpired { budget: 8 }]);
            }
            other => panic!("expected deadline expiry, got {other:?}"),
        }
        // With room left, the draw receives the *inflated* remainder.
        let outcome = execute_attempt(
            source,
            0,
            0,
            &expect,
            Some(20),
            |b| {
                assert_eq!(b, Some(12));
                Ok(("12,34,".to_string(), InferenceCost::default()))
            },
            |_| Ok(vec![vec![1.0, 2.0]]),
        );
        assert!(matches!(outcome, AttemptOutcome::Done { ref defects, .. } if defects.is_empty()));
    }

    #[test]
    fn deadline_expiry_never_retries() {
        let policy =
            RobustPolicy { max_retries: 3, deadline_tokens: Some(10), ..RobustPolicy::default() };
        let mut progress = RobustProgress::new(2, policy).unwrap();
        assert_eq!(progress.remaining_budget(0), Some(5), "10 tokens split over 2 samples");
        // Sample 0 burns its slice on a fatally-defective attempt...
        let bad = AttemptOutcome::Done {
            decoded: Vec::new(),
            cost: InferenceCost { generated_tokens: 5, ..Default::default() },
            defects: vec![SampleDefect::NonNumericGroup { group: 0 }],
        };
        assert_eq!(progress.apply(0, 0, bad), AttemptDisposition::Retry { attempt: 1 });
        assert_eq!(progress.remaining_budget(0), Some(0));
        // ...and the expiry outcome settles despite the retry budget.
        let expired = AttemptOutcome::Done {
            decoded: Vec::new(),
            cost: InferenceCost::default(),
            defects: vec![SampleDefect::DeadlineExpired { budget: 0 }],
        };
        assert_eq!(progress.apply(0, 1, expired), AttemptDisposition::Settled);
        // Sample 1's slice is untouched by sample 0's spending.
        assert_eq!(progress.remaining_budget(1), Some(5));
        let ok = AttemptOutcome::Done {
            decoded: vec![vec![1.0, 2.0]],
            cost: InferenceCost { generated_tokens: 3, ..Default::default() },
            defects: Vec::new(),
        };
        assert_eq!(progress.apply(1, 0, ok), AttemptDisposition::Settled);
        let run = progress.finish().unwrap();
        assert_eq!(run.report.valid_samples, 1);
        assert_eq!(run.report.defect_count(DefectClass::DeadlineExpired), 1);
    }

    #[test]
    fn deadline_degrades_run_to_quorum_fallback() {
        let s = spec(&"042,".repeat(30), 3);
        let expect = numeric_expect(3, 3, 1, 3);
        let decode = |text: &str| -> Result<Vec<Vec<f64>>> {
            Ok(vec![text
                .split(',')
                .filter(|g| !g.is_empty())
                .map(|g| g.parse::<f64>().unwrap_or(0.0))
                .collect::<Vec<f64>>()])
        };
        // 0 total tokens: every sample's slice is 0, every attempt expires
        // pre-draw, and the run degrades without a single retry.
        let policy = RobustPolicy { deadline_tokens: Some(0), ..RobustPolicy::default() };
        let run = run_samples_robust(
            &s,
            3,
            policy,
            SampleSource::Model,
            &expect,
            |i| SamplerConfig { seed: i as u64, ..SamplerConfig::default() },
            decode,
        )
        .unwrap();
        assert!(!run.quorum_met);
        assert_eq!(run.report.defect_count(DefectClass::DeadlineExpired), 3);
        assert_eq!(run.report.retries_used, 0, "expired samples never retry");
        assert_eq!(run.cost, InferenceCost::default(), "expired attempts cost nothing");
    }

    #[test]
    fn sample_budget_and_backoff_delay_shapes() {
        let policy =
            RobustPolicy { deadline_tokens: Some(100), backoff_base: 4, ..RobustPolicy::default() };
        assert_eq!(policy.sample_budget(4), Some(25));
        assert_eq!(policy.sample_budget(0), Some(100), "clamped divisor");
        assert_eq!(RobustPolicy::default().sample_budget(4), None);
        assert_eq!(policy.backoff_delay(0), 0, "first attempts never wait");
        assert_eq!(policy.backoff_delay(1), 4);
        assert_eq!(policy.backoff_delay(2), 8);
        assert_eq!(policy.backoff_delay(3), 16);
        assert_eq!(policy.backoff_delay(60), 1024, "bounded, not unbounded-exponential");
        assert_eq!(RobustPolicy::default().backoff_delay(3), 0, "base 0 disables backoff");
    }

    #[test]
    fn fault_profile_parses_and_roundtrips() {
        let p = FaultProfile::parse("rate=0.4,seed=7,panic=0,latency=16,quota=4096").unwrap();
        assert_eq!(
            p,
            FaultProfile {
                rate: 0.4,
                seed: 7,
                panic_sample: Some(0),
                latency_tokens: 16,
                quota_tokens: Some(4096),
            }
        );
        assert_eq!(FaultProfile::parse(&p.to_string()).unwrap(), p, "Display round-trips");
        assert_eq!(FaultProfile::parse("").unwrap(), FaultProfile::default());
        assert_eq!(FaultProfile::parse(" rate=0.1 , seed=3 ").unwrap().seed, 3);
        assert!(FaultProfile::parse("rate=2.0").is_err(), "rate outside [0,1]");
        assert!(FaultProfile::parse("bogus=1").is_err(), "unknown keys rejected");
        assert!(FaultProfile::parse("rate").is_err(), "bare keys rejected");
        assert!(FaultProfile::parse("seed=x").is_err(), "malformed numbers rejected");
    }

    #[test]
    fn fault_profile_source_reflects_active_knobs() {
        assert_eq!(FaultProfile::default().source(), SampleSource::Model);
        let p = FaultProfile::parse("rate=0.5,seed=9").unwrap();
        assert_eq!(p.source(), SampleSource::FaultInjected(FaultSpec::with_rate(0.5, 9)));
        assert!(matches!(
            FaultProfile::parse("latency=4").unwrap().source(),
            SampleSource::FaultInjected(f) if f.latency_tokens == 4
        ));
        assert!(matches!(
            FaultProfile::parse("panic=2").unwrap().source(),
            SampleSource::FaultInjected(f) if f.panic_sample == Some(2)
        ));
        // Quota alone is a serve-path knob; draws stay untouched.
        assert_eq!(FaultProfile::parse("quota=100").unwrap().source(), SampleSource::Model);
        let swept = p.with_rate(0.9);
        assert_eq!(swept.rate, 0.9);
        assert_eq!(swept.seed, 9, "sweeps keep every other knob");
    }
}
