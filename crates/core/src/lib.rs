//! # multicast-core — zero-shot multivariate forecasting with LLMs
//!
//! The paper's primary contribution, end to end:
//!
//! 1. **Rescaling** ([`scaling`]) — every dimension is mapped to
//!    fixed-width non-negative integers ("rescaled to avoid decimals",
//!    §III-A) so each timestamp serializes to exactly `b` digit tokens;
//! 2. **Dimensional multiplexing** ([`mux`]) — the three token-multiplexing
//!    schemes of Figure 1: digit-interleaving (DI), value-interleaving
//!    (VI) and value-concatenation (VC), each with an exact inverse;
//! 3. **The zero-shot pipeline** ([`pipeline`], [`engine`]) — serialize
//!    the history through a composable [`Codec`], condition the backend on
//!    the prompt once ([`engine::PreparedBackend`]), sample `S` constrained
//!    continuations through forked decode sessions, decode/demultiplex/
//!    descale each and take the pointwise median (§IV-D);
//! 4. **Forecasters** — [`MultiCastForecaster`] (the paper's method),
//!    [`LlmTimeForecaster`] (the LLMTime baseline, applied per dimension),
//!    and [`SaxMultiCastForecaster`] (the SAX-quantized variant of §III-B
//!    driving Tables VIII–IX) — all thin configurations of the shared
//!    [`ForecastEngine`];
//! 5. **Configuration** ([`config`]) — Table II's parameter space with the
//!    paper's bold defaults;
//! 6. **Fault tolerance** ([`robust`]) — per-sample validation against a
//!    defect taxonomy, bounded retry-with-reseed, panic isolation, a
//!    quorum policy with graceful fallback to a classical forecaster, and
//!    a per-forecast [`ForecastReport`] accounting for every defect;
//! 7. **Concurrent serving** ([`serve`]) — a request scheduler fanning
//!    many forecast requests across a bounded worker pool of forked
//!    decode sessions over shared, deduplicated frozen contexts, with
//!    per-request cost attribution and fault isolation.
//!
//! ```
//! use mc_datasets::gas_rate;
//! use mc_tslib::{forecast::MultivariateForecaster, split::holdout_split};
//! use multicast_core::{ForecastConfig, MultiCastForecaster, MuxMethod};
//!
//! let (train, test) = holdout_split(&gas_rate(), 0.1).unwrap();
//! let config = ForecastConfig { samples: 2, ..ForecastConfig::default() };
//! let mut forecaster = MultiCastForecaster::new(MuxMethod::ValueInterleave, config);
//! let forecast = forecaster.forecast(&train, test.len()).unwrap();
//! assert_eq!(forecast.len(), test.len());
//! assert_eq!(forecast.dims(), 2);
//! ```

pub mod codec;
pub mod config;
pub mod engine;
pub mod intervals;
pub mod llmtime;
pub mod multicast;
pub mod mux;
pub mod overload;
pub mod pipeline;
pub mod robust;
pub mod sax_pipeline;
pub mod scaling;
pub mod sched;
pub mod serve;
pub mod streaming;

pub use codec::{
    Codec, DigitCodec, FittedCodec, FittedDigitCodec, FittedSaxCodec, SaxCodec, DIGIT_ALPHABET,
    DIGIT_STREAM_CHARS,
};
pub use config::ForecastConfig;
pub use engine::{spec_fingerprint, EngineRun, ForecastEngine, PreparedBackend, SessionSampler};
pub use intervals::{bands_for, forecast_with_bands, ForecastBands};
pub use llmtime::LlmTimeForecaster;
pub use multicast::MultiCastForecaster;
pub use mux::{DigitInterleave, Multiplexer, MuxMethod, ValueConcat, ValueInterleave};
pub use overload::{
    BreakerPolicy, BreakerState, CircuitBreaker, OverloadState, Priority, QuotaLedger, ServeDefect,
};
pub use robust::{
    DefectClass, FallbackPolicy, FaultProfile, FaultSpec, ForecastOutcome, ForecastReport,
    RobustPolicy, SampleDefect, SampleSource,
};
pub use sax_pipeline::{SaxForecastConfig, SaxMultiCastForecaster};
pub use scaling::FixedDigitScaler;
pub use serve::{
    request_fingerprints, serve_all, serve_all_observed, CodecChoice, ContextStats,
    ForecastRequest, RequestId, ServeConfig, ServeHandle, ServeOutcome, ServeRun,
};
pub use streaming::StreamingMultiCast;
