//! Prediction intervals from the sampling ensemble.
//!
//! LLMTime-style forecasting is *distributional* by construction: the `S`
//! sampled continuations are draws from the model's predictive
//! distribution. The paper only reports the median; this module exposes
//! the rest of the ensemble as pointwise quantile bands, giving calibrated
//! uncertainty for free (no extra model calls — the samples were already
//! drawn for the median).

use mc_tslib::error::{invalid_param, Result, TsError};
use mc_tslib::series::MultivariateSeries;

use crate::codec::DigitCodec;
use crate::config::ForecastConfig;
use crate::engine::ForecastEngine;
use crate::multicast::MultiCastForecaster;
use crate::mux::MuxMethod;

/// A forecast with lower/median/upper bands per dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastBands {
    /// Dimension names.
    pub names: Vec<String>,
    /// `lower[d][t]`: the lower-quantile trajectory.
    pub lower: Vec<Vec<f64>>,
    /// `median[d][t]`: the 50 % trajectory (the paper's point forecast).
    pub median: Vec<Vec<f64>>,
    /// `upper[d][t]`: the upper-quantile trajectory.
    pub upper: Vec<Vec<f64>>,
    /// Nominal coverage of the band (e.g. 0.8 for the 10–90 % band).
    pub nominal_coverage: f64,
}

impl ForecastBands {
    /// Fraction of `actual` points falling inside the band, pooled over
    /// dimensions (the empirical coverage the nominal level is judged by).
    pub fn empirical_coverage(&self, actual: &MultivariateSeries) -> Result<f64> {
        if actual.dims() != self.median.len() {
            return Err(invalid_param("actual", "dimension count mismatch"));
        }
        let horizon = self.median.first().map_or(0, Vec::len);
        if actual.len() != horizon {
            return Err(invalid_param("actual", "horizon mismatch"));
        }
        let mut inside = 0usize;
        let mut total = 0usize;
        for d in 0..actual.dims() {
            let col = actual.column(d)?;
            for (t, &v) in col.iter().enumerate() {
                total += 1;
                if v >= self.lower[d][t] && v <= self.upper[d][t] {
                    inside += 1;
                }
            }
        }
        Ok(inside as f64 / total as f64)
    }
}

/// Pointwise quantile across samples (`samples[s][d][t]`), linear
/// interpolation.
///
/// # Errors
/// [`TsError::Empty`] with zero samples; [`TsError::InvalidParameter`]
/// for a quantile outside `[0, 1]`; [`TsError::RaggedRows`] /
/// [`TsError::LengthMismatch`] when samples disagree in shape.
pub fn quantile_aggregate(samples: &[Vec<Vec<f64>>], q: f64) -> Result<Vec<Vec<f64>>> {
    if samples.is_empty() {
        return Err(TsError::Empty);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(invalid_param("q", format!("quantile {q} not in [0, 1]")));
    }
    let dims = samples[0].len();
    let horizon = samples[0].first().map_or(0, Vec::len);
    for (s, sample) in samples.iter().enumerate() {
        if sample.len() != dims {
            return Err(TsError::RaggedRows { row: s, expected: dims, actual: sample.len() });
        }
        for col in sample {
            if col.len() != horizon {
                return Err(TsError::LengthMismatch { expected: horizon, actual: col.len() });
            }
        }
    }
    let mut out = vec![vec![0.0; horizon]; dims];
    let mut buf = Vec::with_capacity(samples.len());
    for d in 0..dims {
        for t in 0..horizon {
            buf.clear();
            buf.extend(samples.iter().map(|s| s[d][t]));
            buf.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let pos = q * (buf.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            out[d][t] = buf[lo] + (buf[hi] - buf[lo]) * (pos - lo as f64);
        }
    }
    Ok(out)
}

/// Runs the MultiCast pipeline and returns quantile bands.
///
/// `coverage` is the nominal band mass (0.8 → the 10–90 % band). More
/// samples give smoother bands; the paper's S = 20 setting is a good
/// floor for 80 % bands.
pub fn forecast_with_bands(
    method: MuxMethod,
    config: ForecastConfig,
    train: &MultivariateSeries,
    horizon: usize,
    coverage: f64,
) -> Result<ForecastBands> {
    if !(0.0 < coverage && coverage < 1.0) {
        return Err(invalid_param("coverage", format!("{coverage} not in (0, 1)")));
    }
    // Band estimation needs *distributional* samples: nucleus truncation
    // and sub-unit temperatures collapse a confident backend's ensemble
    // to a single trajectory (zero-width bands). Sample the model's
    // actual predictive distribution instead.
    let band_sampler = |i: usize| {
        let mut s = config.sampler_for(i);
        s.top_p = None;
        s.top_k = None;
        s.temperature = s.temperature.max(1.0);
        // A 3 % per-token exploration floor: in-context count models are
        // pathologically confident relative to a sampled 7B transformer,
        // so their raw ensemble under-disperses; the floor restores
        // realistic token-level uncertainty for interval estimation.
        s.epsilon = 0.03;
        s
    };
    // Re-run the sampling pipeline capturing all raw samples (the plain
    // forecaster discards them after the median): the engine's non-robust
    // `draw` path keeps every trajectory, defects included, so the
    // quantiles reflect the actual predictive distribution.
    let codec = DigitCodec::from_config(method, &config);
    let engine = ForecastEngine::new(config);
    let (decoded, _cost) =
        engine.draw(&codec, train, horizon, config.samples.max(2), band_sampler)?;
    let alpha = (1.0 - coverage) / 2.0;
    Ok(ForecastBands {
        names: train.names().to_vec(),
        lower: quantile_aggregate(&decoded, alpha)?,
        median: quantile_aggregate(&decoded, 0.5)?,
        upper: quantile_aggregate(&decoded, 1.0 - alpha)?,
        nominal_coverage: coverage,
    })
}

/// Convenience: bands via a configured forecaster (shares its settings).
pub fn bands_for(
    forecaster: &MultiCastForecaster,
    train: &MultivariateSeries,
    horizon: usize,
    coverage: f64,
) -> Result<ForecastBands> {
    forecast_with_bands(forecaster.method, forecaster.config, train, horizon, coverage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_datasets::generators::{add, sinusoids, white_noise};
    use mc_tslib::split::holdout_split;

    fn noisy_series(n: usize) -> MultivariateSeries {
        let a = add(&sinusoids(n, &[(1.0, 16.0, 0.0)]), &white_noise(n, 0.2, 4));
        let b = add(&sinusoids(n, &[(3.0, 16.0, 1.0)]), &white_noise(n, 0.5, 5));
        MultivariateSeries::from_columns(vec!["a".into(), "b".into()], vec![a, b]).unwrap()
    }

    #[test]
    fn quantile_aggregate_orders_bands() {
        let samples: Vec<Vec<Vec<f64>>> = (0..9).map(|s| vec![vec![s as f64; 4]]).collect();
        let q10 = quantile_aggregate(&samples, 0.1).unwrap();
        let q50 = quantile_aggregate(&samples, 0.5).unwrap();
        let q90 = quantile_aggregate(&samples, 0.9).unwrap();
        for t in 0..4 {
            assert!(q10[0][t] <= q50[0][t] && q50[0][t] <= q90[0][t]);
        }
        assert_eq!(q50[0][0], 4.0);
    }

    #[test]
    fn quantile_aggregate_rejects_bad_inputs() {
        assert_eq!(quantile_aggregate(&[], 0.5), Err(TsError::Empty));
        let samples = vec![vec![vec![1.0]]];
        assert!(matches!(
            quantile_aggregate(&samples, 1.5),
            Err(TsError::InvalidParameter { name: "q", .. })
        ));
        let ragged = vec![vec![vec![1.0]], vec![vec![1.0], vec![2.0]]];
        assert!(matches!(quantile_aggregate(&ragged, 0.5), Err(TsError::RaggedRows { .. })));
    }

    #[test]
    fn bands_are_ordered_and_match_median_pipeline() {
        let series = noisy_series(120);
        let (train, _) = holdout_split(&series, 0.1).unwrap();
        let config = ForecastConfig { samples: 9, ..Default::default() };
        let bands =
            forecast_with_bands(MuxMethod::ValueInterleave, config, &train, 8, 0.8).unwrap();
        for d in 0..2 {
            for t in 0..8 {
                assert!(bands.lower[d][t] <= bands.median[d][t]);
                assert!(bands.median[d][t] <= bands.upper[d][t]);
            }
        }
        // Bands have positive width somewhere (the exploration floor
        // guarantees ensemble dispersion).
        let widths: f64 = (0..2)
            .map(|d| (0..8).map(|t| bands.upper[d][t] - bands.lower[d][t]).sum::<f64>())
            .sum();
        assert!(widths > 0.0, "bands must not be degenerate");
    }

    #[test]
    fn coverage_is_meaningful_on_noisy_series() {
        let series = noisy_series(160);
        let (train, test) = holdout_split(&series, 0.1).unwrap();
        let config = ForecastConfig { samples: 15, ..Default::default() };
        let bands =
            forecast_with_bands(MuxMethod::ValueInterleave, config, &train, test.len(), 0.8)
                .unwrap();
        let cov = bands.empirical_coverage(&test).unwrap();
        // Sampling bands on a stand-in backend aren't perfectly calibrated;
        // require them to be informative (non-degenerate, catching a
        // substantial share of truth).
        assert!(cov > 0.3, "bands should capture a meaningful share: {cov}");
    }

    #[test]
    fn coverage_shape_checks() {
        let bands = ForecastBands {
            names: vec!["a".into()],
            lower: vec![vec![0.0, 0.0]],
            median: vec![vec![1.0, 1.0]],
            upper: vec![vec![2.0, 2.0]],
            nominal_coverage: 0.8,
        };
        let inside = MultivariateSeries::from_rows(vec!["a".into()], &[[1.0], [3.0]]).unwrap();
        assert!((bands.empirical_coverage(&inside).unwrap() - 0.5).abs() < 1e-12);
        let wrong =
            MultivariateSeries::from_rows(vec!["a".into()], &[[1.0], [1.0], [1.0]]).unwrap();
        assert!(bands.empirical_coverage(&wrong).is_err());
    }

    #[test]
    fn invalid_coverage_rejected() {
        let series = noisy_series(60);
        let config = ForecastConfig { samples: 3, ..Default::default() };
        assert!(forecast_with_bands(MuxMethod::ValueConcat, config, &series, 4, 1.0).is_err());
        assert!(forecast_with_bands(MuxMethod::ValueConcat, config, &series, 4, 0.0).is_err());
    }
}
