//! Streaming (online) zero-shot forecasting.
//!
//! The batch forecaster re-reads the whole history on every call — fine
//! for evaluation, wasteful in production where one new row arrives at a
//! time. In-context backends are *incremental by construction*: observing
//! a token only appends counts. [`StreamingMultiCast`] exploits that: it
//! is seeded once with the available history, then each
//! [`StreamingMultiCast::observe_row`] feeds just the new timestamp's
//! tokens (O(tokens-per-row), not O(history)), and
//! [`StreamingMultiCast::predict`] samples a forecast at any moment.
//!
//! Prediction draws each sample through a **forked decode session** of the
//! live model ([`ConcreteLm`] implements [`mc_lm::FrozenLm`]), so
//! speculative continuations never pollute the real context — the true
//! continuation arrives later through `observe_row`. Sampling runs through
//! the same [`crate::robust::run_attempts`] ladder as the batch engine.
//!
//! The rescaler is fitted on the seed history and fixed afterwards (the
//! headroom band absorbs moderate drift); values outside the band clamp,
//! exactly like the batch path. Re-seed when the regime shifts — pair
//! with `mc-tasks`' change-point detector for an auto-reset loop.

use mc_tslib::error::{invalid_param, pipeline_error, Result};
use mc_tslib::series::MultivariateSeries;

use mc_lm::concrete::ConcreteLm;
use mc_lm::cost::InferenceCost;
use mc_lm::generate::GenerateOptions;
use mc_lm::model::{observe_all, LanguageModel};
use mc_lm::tokenizer::{CharTokenizer, Tokenizer};
use mc_lm::vocab::{TokenId, Vocab};

use crate::codec::{DigitCodec, FittedCodec, FittedDigitCodec, DIGIT_STREAM_CHARS};
use crate::config::ForecastConfig;
use crate::engine::{decode_mask, EngineRun, SessionSampler};
use crate::mux::MuxMethod;
use crate::robust::{run_attempts, ForecastReport, SampleSource};

/// Rows of recent history kept for the graceful-degradation fallback
/// (enough for the fallback's longest considered seasonal period, twice
/// over, so the ACF scan has something to estimate from).
const FALLBACK_TAIL_ROWS: usize = 128;

/// An online multivariate forecaster over a live data stream.
pub struct StreamingMultiCast {
    config: ForecastConfig,
    codec: FittedDigitCodec,
    tokenizer: CharTokenizer,
    model: ConcreteLm,
    allowed: Vec<bool>,
    separator: TokenId,
    names: Vec<String>,
    observed: usize,
    predictions_drawn: u64,
    /// Rolling buffer of the most recent rows, for the fallback forecaster.
    tail: Vec<Vec<f64>>,
    /// Where continuations come from (real backend or fault-injected).
    pub source: SampleSource,
    /// Sampling-health report of the most recent `predict` call.
    pub last_report: Option<ForecastReport>,
}

impl StreamingMultiCast {
    /// Seeds the stream with the initial history (fits the codec and
    /// feeds the serialized history into the backend once).
    ///
    /// # Errors
    /// If the seed history is shorter than 8 rows (too little context to
    /// fit a meaningful scaler).
    pub fn new(
        method: MuxMethod,
        config: ForecastConfig,
        seed: &MultivariateSeries,
    ) -> Result<Self> {
        if seed.len() < 8 {
            return Err(invalid_param("seed", "need at least 8 seed rows"));
        }
        let codec = DigitCodec::from_config(method, &config).fit_digit(seed)?;
        let vocab = Vocab::numeric();
        let tokenizer = CharTokenizer::new(vocab.clone());
        let mut model = ConcreteLm::build(config.preset, vocab.len());
        let prompt_tokens = tokenizer
            .encode(codec.prompt())
            .map_err(|e| pipeline_error("encode-prompt", e.to_string()))?;
        observe_all(&mut model, &prompt_tokens);
        let allowed = decode_mask(&vocab, DIGIT_STREAM_CHARS);
        let separator = vocab
            .id(',')
            .ok_or_else(|| pipeline_error("separator", "vocabulary lacks the ',' separator"))?;
        let tail_start = seed.len().saturating_sub(FALLBACK_TAIL_ROWS);
        let tail: Vec<Vec<f64>> =
            (tail_start..seed.len()).map(|t| seed.row(t)).collect::<Result<_>>()?;
        Ok(Self {
            config,
            codec,
            tokenizer,
            model,
            allowed,
            separator,
            names: seed.names().to_vec(),
            observed: seed.len(),
            predictions_drawn: 0,
            tail,
            source: SampleSource::Model,
            last_report: None,
        })
    }

    /// Same stream with a different continuation source (fault injection).
    pub fn with_source(mut self, source: SampleSource) -> Self {
        self.source = source;
        self
    }

    /// Number of rows observed so far (seed included).
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Backend cost counters of the live context (prediction sessions
    /// count their own work separately and are dropped with it).
    pub fn cost(&self) -> InferenceCost {
        self.model.cost()
    }

    /// Feeds one new timestamp: only the new row's tokens are processed.
    ///
    /// # Errors
    /// If the row width does not match the seed's dimensionality or a
    /// value is non-finite.
    pub fn observe_row(&mut self, row: &[f64]) -> Result<()> {
        if row.len() != self.codec.dims() {
            return Err(invalid_param(
                "row",
                format!("width {} does not match {} dimensions", row.len(), self.codec.dims()),
            ));
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(invalid_param("row", "values must be finite"));
        }
        let text = self.codec.encode_row(row)?;
        let tokens = self
            .tokenizer
            .encode(&text)
            .map_err(|e| pipeline_error("encode-row", e.to_string()))?;
        for &t in &tokens {
            self.model.observe(t, false);
        }
        self.observed += 1;
        self.tail.push(row.to_vec());
        if self.tail.len() > FALLBACK_TAIL_ROWS {
            self.tail.remove(0);
        }
        Ok(())
    }

    /// Samples a `horizon`-step forecast from the current context.
    ///
    /// Side-effect-free on the live context: every sample generates on a
    /// forked decode session. Successive calls draw fresh seeds
    /// (deterministic in call order: the n-th call after m observations
    /// always returns the same forecast).
    pub fn predict(&mut self, horizon: usize) -> Result<MultivariateSeries> {
        if horizon == 0 {
            return Err(invalid_param("horizon", "must be >= 1"));
        }
        let cfg = self.config;
        let separators = self.codec.separators_for(horizon);
        let options = GenerateOptions::until_separators(
            self.separator,
            separators,
            cfg.max_tokens(separators, self.codec.group_width()),
        );
        let expect = self.codec.expectations(horizon);
        let drawn = self.predictions_drawn;
        let sampler = SessionSampler::new(&self.model, &self.tokenizer, &self.allowed, options);
        let run = run_attempts(
            cfg.samples.max(1),
            cfg.robust,
            self.source,
            &expect,
            |vi, budget| {
                // Decorrelate successive predict() calls: each one shifts
                // every virtual index's seed by a per-call offset.
                let mut s = cfg.sampler_for(vi);
                s.seed = s.seed.wrapping_add(0x9e37).wrapping_add(drawn);
                sampler.draw_budgeted(s, budget)
            },
            |text| self.codec.decode(text, horizon),
        )?;
        self.predictions_drawn += 1;
        // The live model is the prompt here and its cost is tracked by
        // `cost()`, so the run carries no separate prompt cost.
        let run = EngineRun::new(run, cfg, InferenceCost::default());
        let recent = MultivariateSeries::from_rows(self.names.clone(), &self.tail)?;
        let result = run.resolve(&recent, horizon);
        self.last_report = Some(run.into_report());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_datasets::generators::sinusoids;
    use mc_tslib::metrics::rmse;
    use mc_tslib::split::holdout_split;

    fn series(n: usize) -> MultivariateSeries {
        let a = sinusoids(n, &[(1.0, 16.0, 0.0)]);
        let b: Vec<f64> = a.iter().map(|&v| 40.0 + 8.0 * v).collect();
        MultivariateSeries::from_columns(vec!["a".into(), "b".into()], vec![a, b]).unwrap()
    }

    fn config(samples: usize) -> ForecastConfig {
        ForecastConfig { samples, ..ForecastConfig::default() }
    }

    #[test]
    fn streaming_matches_batch_quality() {
        // Seed on train, predict the held-out horizon: the streaming path
        // must be in the same quality ballpark as the batch forecaster.
        let s = series(160);
        let (train, test) = holdout_split(&s, 0.1).unwrap();
        let mut stream =
            StreamingMultiCast::new(MuxMethod::ValueInterleave, config(5), &train).unwrap();
        let fc = stream.predict(test.len()).unwrap();
        let mut batch = crate::MultiCastForecaster::new(MuxMethod::ValueInterleave, config(5));
        use mc_tslib::forecast::MultivariateForecaster;
        let bfc = batch.forecast(&train, test.len()).unwrap();
        for d in 0..2 {
            let e_stream = rmse(test.column(d).unwrap(), fc.column(d).unwrap()).unwrap();
            let e_batch = rmse(test.column(d).unwrap(), bfc.column(d).unwrap()).unwrap();
            assert!(
                e_stream <= e_batch * 2.0 + 0.2,
                "dim {d}: streaming {e_stream:.3} vs batch {e_batch:.3}"
            );
        }
    }

    #[test]
    fn observe_row_is_incremental() {
        let s = series(120);
        let (train, rest) = holdout_split(&s, 0.2).unwrap();
        let mut stream =
            StreamingMultiCast::new(MuxMethod::ValueInterleave, config(2), &train).unwrap();
        let before = stream.cost().prompt_tokens;
        stream.observe_row(&rest.row(0).unwrap()).unwrap();
        let delta = stream.cost().prompt_tokens - before;
        // One timestamp of 2 dims x 3 digits + separator = 7 tokens (VI).
        assert_eq!(delta, 7, "only the new row's tokens are processed");
        assert_eq!(stream.observed(), train.len() + 1);
    }

    #[test]
    fn predict_does_not_pollute_the_context() {
        let s = series(100);
        let (train, _) = holdout_split(&s, 0.2).unwrap();
        let mut stream =
            StreamingMultiCast::new(MuxMethod::ValueInterleave, config(3), &train).unwrap();
        let before = stream.cost();
        stream.predict(5).unwrap();
        let after = stream.cost();
        assert_eq!(before, after, "speculative generation must not touch the live model");
    }

    #[test]
    fn predictions_improve_as_rows_stream_in() {
        // Feed the stream progressively and verify a late prediction of a
        // known continuation is no worse than an early one (more context
        // can only help on a stationary periodic series).
        let s = series(192);
        let seed = s.slice(0, 48).unwrap();
        let mut stream =
            StreamingMultiCast::new(MuxMethod::ValueInterleave, config(5), &seed).unwrap();
        let early = stream.predict(16).unwrap();
        let early_err =
            rmse(s.slice(48, 64).unwrap().column(0).unwrap(), early.column(0).unwrap()).unwrap();
        for t in 48..176 {
            stream.observe_row(&s.row(t).unwrap()).unwrap();
        }
        let late = stream.predict(16).unwrap();
        let late_err =
            rmse(s.slice(176, 192).unwrap().column(0).unwrap(), late.column(0).unwrap()).unwrap();
        assert!(
            late_err <= early_err + 0.05,
            "more context should not hurt: late {late_err:.3} vs early {early_err:.3}"
        );
    }

    #[test]
    fn validation_errors() {
        let s = series(100);
        assert!(StreamingMultiCast::new(
            MuxMethod::ValueConcat,
            config(1),
            &s.slice(0, 4).unwrap()
        )
        .is_err());
        let mut stream = StreamingMultiCast::new(MuxMethod::ValueConcat, config(1), &s).unwrap();
        assert!(stream.observe_row(&[1.0]).is_err());
        assert!(stream.observe_row(&[1.0, f64::NAN]).is_err());
        assert!(stream.predict(0).is_err());
    }
}
