//! Streaming (online) zero-shot forecasting.
//!
//! The batch forecaster re-reads the whole history on every call — fine
//! for evaluation, wasteful in production where one new row arrives at a
//! time. In-context backends are *incremental by construction*: observing
//! a token only appends counts. [`StreamingMultiCast`] exploits that: it
//! is seeded once with the available history, then each
//! [`StreamingMultiCast::observe_row`] feeds just the new timestamp's
//! tokens (O(tokens-per-row), not O(history)), and
//! [`StreamingMultiCast::predict`] samples a forecast at any moment.
//!
//! Prediction draws each sample on a **clone** of the live model
//! ([`ConcreteLm`] has value semantics), so speculative continuations
//! never pollute the real context — the true continuation arrives later
//! through `observe_row`.
//!
//! The rescaler is fitted on the seed history and fixed afterwards (the
//! headroom band absorbs moderate drift); values outside the band clamp,
//! exactly like the batch path. Re-seed when the regime shifts — pair
//! with `mc-tasks`' change-point detector for an auto-reset loop.

use std::panic::{catch_unwind, AssertUnwindSafe};

use mc_tslib::error::{invalid_param, pipeline_error, Result, TsError};
use mc_tslib::series::MultivariateSeries;

use mc_lm::concrete::ConcreteLm;
use mc_lm::cost::InferenceCost;
use mc_lm::generate::{generate, GenerateOptions};
use mc_lm::model::{observe_all, LanguageModel};
use mc_lm::sampler::Sampler;
use mc_lm::tokenizer::{CharTokenizer, Tokenizer};
use mc_lm::vocab::{TokenId, Vocab};

use crate::config::ForecastConfig;
use crate::mux::{Multiplexer, MuxMethod};
use crate::pipeline::median_aggregate;
use crate::robust::{
    fallback_forecast, validate_decoded, validate_text, FallbackPolicy, ForecastOutcome,
    ForecastReport, SampleDefect, SampleExpectations, SampleRecord, SampleSource,
};
use crate::scaling::FixedDigitScaler;

/// Rows of recent history kept for the graceful-degradation fallback
/// (enough for the fallback's longest considered seasonal period, twice
/// over, so the ACF scan has something to estimate from).
const FALLBACK_TAIL_ROWS: usize = 128;

/// An online multivariate forecaster over a live data stream.
pub struct StreamingMultiCast {
    method: MuxMethod,
    config: ForecastConfig,
    scaler: FixedDigitScaler,
    mux: Box<dyn Multiplexer>,
    tokenizer: CharTokenizer,
    model: ConcreteLm,
    allowed: Vec<bool>,
    separator: TokenId,
    dims: usize,
    names: Vec<String>,
    observed: usize,
    predictions_drawn: u64,
    /// Rolling buffer of the most recent rows, for the fallback forecaster.
    tail: Vec<Vec<f64>>,
    /// Where continuations come from (real backend or fault-injected).
    pub source: SampleSource,
    /// Sampling-health report of the most recent `predict` call.
    pub last_report: Option<ForecastReport>,
}

impl StreamingMultiCast {
    /// Seeds the stream with the initial history (fits the rescaler and
    /// feeds the serialized history into the backend once).
    ///
    /// # Errors
    /// If the seed history is shorter than 8 rows (too little context to
    /// fit a meaningful scaler).
    pub fn new(method: MuxMethod, config: ForecastConfig, seed: &MultivariateSeries) -> Result<Self> {
        if seed.len() < 8 {
            return Err(invalid_param("seed", "need at least 8 seed rows"));
        }
        let dims = seed.dims();
        let scaler = FixedDigitScaler::fit(seed.columns(), config.digits, config.headroom)?;
        let mut codes = Vec::with_capacity(dims);
        for d in 0..dims {
            codes.push(scaler.scale_column(d, seed.column(d)?)?);
        }
        let mux = method.build();
        let prompt = mux.mux(&codes, config.digits);
        let vocab = Vocab::numeric();
        let tokenizer = CharTokenizer::new(vocab.clone());
        let mut model = ConcreteLm::build(config.preset, vocab.len());
        let prompt_tokens = tokenizer
            .encode(&prompt)
            .map_err(|e| pipeline_error("encode-prompt", e.to_string()))?;
        observe_all(&mut model, &prompt_tokens);
        let mut allowed = vec![false; vocab.len()];
        for id in vocab.ids_of("0123456789,") {
            allowed[id as usize] = true;
        }
        let separator = vocab
            .id(',')
            .ok_or_else(|| pipeline_error("separator", "vocabulary lacks the ',' separator"))?;
        let tail_start = seed.len().saturating_sub(FALLBACK_TAIL_ROWS);
        let tail: Vec<Vec<f64>> =
            (tail_start..seed.len()).map(|t| seed.row(t)).collect::<Result<_>>()?;
        Ok(Self {
            method,
            config,
            scaler,
            mux,
            tokenizer,
            model,
            allowed,
            separator,
            dims,
            names: seed.names().to_vec(),
            observed: seed.len(),
            predictions_drawn: 0,
            tail,
            source: SampleSource::Model,
            last_report: None,
        })
    }

    /// Same stream with a different continuation source (fault injection).
    pub fn with_source(mut self, source: SampleSource) -> Self {
        self.source = source;
        self
    }

    /// Number of rows observed so far (seed included).
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Backend cost counters of the live context (prediction clones count
    /// their own work separately and are dropped with it).
    pub fn cost(&self) -> InferenceCost {
        self.model.cost()
    }

    /// Feeds one new timestamp: only the new row's tokens are processed.
    ///
    /// # Errors
    /// If the row width does not match the seed's dimensionality or a
    /// value is non-finite.
    pub fn observe_row(&mut self, row: &[f64]) -> Result<()> {
        if row.len() != self.dims {
            return Err(invalid_param(
                "row",
                format!("width {} does not match {} dimensions", row.len(), self.dims),
            ));
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(invalid_param("row", "values must be finite"));
        }
        let codes: Vec<Vec<u64>> = row
            .iter()
            .enumerate()
            .map(|(d, &v)| Ok(vec![self.scaler.scale_value(d, v)?]))
            .collect::<Result<_>>()?;
        let text = self.mux.mux(&codes, self.config.digits);
        let tokens = self
            .tokenizer
            .encode(&text)
            .map_err(|e| pipeline_error("encode-row", e.to_string()))?;
        for &t in &tokens {
            self.model.observe(t, false);
        }
        self.observed += 1;
        self.tail.push(row.to_vec());
        if self.tail.len() > FALLBACK_TAIL_ROWS {
            self.tail.remove(0);
        }
        Ok(())
    }

    /// The fallback forecast from the rolling tail buffer.
    fn tail_fallback(&self, horizon: usize) -> Result<MultivariateSeries> {
        let recent = MultivariateSeries::from_rows(self.names.clone(), &self.tail)?;
        fallback_forecast(&recent, horizon)
    }

    /// Samples a `horizon`-step forecast from the current context.
    ///
    /// Side-effect-free on the live context: every sample generates on a
    /// clone. Successive calls draw fresh seeds (deterministic in call
    /// order: the n-th call after m observations always returns the same
    /// forecast).
    pub fn predict(&mut self, horizon: usize) -> Result<MultivariateSeries> {
        if horizon == 0 {
            return Err(invalid_param("horizon", "must be >= 1"));
        }
        let cfg = self.config;
        let separators = self.mux.separators_for(self.dims, horizon);
        let payload = match self.method {
            MuxMethod::ValueConcat => cfg.digits as usize,
            _ => self.dims * cfg.digits as usize,
        };
        let options = GenerateOptions::until_separators(
            self.separator,
            separators,
            cfg.max_tokens(separators, payload),
        );
        let wanted = cfg.samples.max(1);
        let expect = SampleExpectations {
            separators,
            group_width: payload,
            alphabet: "0123456789".into(),
            numeric: true,
            dims: self.dims,
            horizon,
        };
        let mut samples = Vec::with_capacity(wanted);
        let mut records = Vec::with_capacity(wanted);
        for i in 0..wanted {
            let mut record =
                SampleRecord { index: i, attempts: 0, defects: Vec::new(), valid: false };
            for attempt in 0..=cfg.robust.max_retries {
                record.attempts += 1;
                // Reseed retries past every first-attempt index, mirroring
                // the batch pipeline's virtual-index convention.
                let virtual_index =
                    if attempt == 0 { i } else { wanted + (attempt - 1) * wanted + i };
                let drawn = self.predictions_drawn;
                let source = self.source;
                let outcome = catch_unwind(AssertUnwindSafe(
                    || -> Result<(Vec<Vec<f64>>, Vec<SampleDefect>)> {
                        if let SampleSource::FaultInjected(f) = source {
                            if f.panic_sample == Some(i) && attempt == 0 {
                                panic!("injected panic (sample {i})");
                            }
                        }
                        let mut speculative = self.model.clone();
                        let mut sampler = Sampler::new({
                            let mut s = cfg.sampler_for(virtual_index);
                            s.seed = s.seed.wrapping_add(0x9e37).wrapping_add(drawn);
                            s
                        });
                        let allowed = &self.allowed;
                        let out = generate(
                            &mut speculative,
                            &mut sampler,
                            |t: TokenId| allowed[t as usize],
                            &options,
                        );
                        let text = self
                            .tokenizer
                            .decode(&out)
                            .map_err(|e| pipeline_error("decode-continuation", e.to_string()))?;
                        let text = match source {
                            SampleSource::Model => text,
                            SampleSource::FaultInjected(f) => f.corrupt(i, attempt, &text),
                        };
                        let mut defects = validate_text(&text, &expect);
                        let codes = self.mux.demux(&text, self.dims, cfg.digits, horizon);
                        let cols: Vec<Vec<f64>> = codes
                            .iter()
                            .enumerate()
                            .map(|(d, col)| self.scaler.descale_column(d, col))
                            .collect::<Result<_>>()?;
                        defects.extend(validate_decoded(&cols, &expect));
                        Ok((cols, defects))
                    },
                ));
                match outcome {
                    Ok(Ok((cols, defects))) => {
                        let fatal = defects.iter().any(SampleDefect::is_fatal);
                        record.defects.extend(defects);
                        if !fatal {
                            samples.push(cols);
                            record.valid = true;
                            break;
                        }
                    }
                    Ok(Err(e)) => return Err(e),
                    Err(payload) => {
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "opaque panic payload".to_string());
                        record.defects.push(SampleDefect::Panicked { message });
                    }
                }
            }
            records.push(record);
        }
        self.predictions_drawn += 1;
        let required = cfg.robust.required_valid(wanted);
        let quorum_met = samples.len() >= required;
        let report = ForecastReport {
            requested_samples: wanted,
            valid_samples: samples.len(),
            retries_used: records.iter().map(|r: &SampleRecord| r.attempts - 1).sum(),
            repairs_applied: records
                .iter()
                .flat_map(|r| &r.defects)
                .filter(|d| !d.is_fatal())
                .count(),
            samples: records,
            outcome: if quorum_met {
                ForecastOutcome::Sampled
            } else {
                ForecastOutcome::Degraded { valid: samples.len(), required }
            },
        };
        let result = if quorum_met {
            let columns = median_aggregate(&samples)?;
            MultivariateSeries::from_columns(self.names.clone(), columns)
        } else {
            match cfg.robust.fallback {
                FallbackPolicy::Error => {
                    Err(TsError::SampleQuorum { valid: samples.len(), required })
                }
                FallbackPolicy::SeasonalNaive => self.tail_fallback(horizon),
            }
        };
        self.last_report = Some(report);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_datasets::generators::sinusoids;
    use mc_tslib::metrics::rmse;
    use mc_tslib::split::holdout_split;

    fn series(n: usize) -> MultivariateSeries {
        let a = sinusoids(n, &[(1.0, 16.0, 0.0)]);
        let b: Vec<f64> = a.iter().map(|&v| 40.0 + 8.0 * v).collect();
        MultivariateSeries::from_columns(vec!["a".into(), "b".into()], vec![a, b]).unwrap()
    }

    fn config(samples: usize) -> ForecastConfig {
        ForecastConfig { samples, ..ForecastConfig::default() }
    }

    #[test]
    fn streaming_matches_batch_quality() {
        // Seed on train, predict the held-out horizon: the streaming path
        // must be in the same quality ballpark as the batch forecaster.
        let s = series(160);
        let (train, test) = holdout_split(&s, 0.1).unwrap();
        let mut stream =
            StreamingMultiCast::new(MuxMethod::ValueInterleave, config(5), &train).unwrap();
        let fc = stream.predict(test.len()).unwrap();
        let mut batch = crate::MultiCastForecaster::new(MuxMethod::ValueInterleave, config(5));
        use mc_tslib::forecast::MultivariateForecaster;
        let bfc = batch.forecast(&train, test.len()).unwrap();
        for d in 0..2 {
            let e_stream = rmse(test.column(d).unwrap(), fc.column(d).unwrap()).unwrap();
            let e_batch = rmse(test.column(d).unwrap(), bfc.column(d).unwrap()).unwrap();
            assert!(
                e_stream <= e_batch * 2.0 + 0.2,
                "dim {d}: streaming {e_stream:.3} vs batch {e_batch:.3}"
            );
        }
    }

    #[test]
    fn observe_row_is_incremental() {
        let s = series(120);
        let (train, rest) = holdout_split(&s, 0.2).unwrap();
        let mut stream =
            StreamingMultiCast::new(MuxMethod::ValueInterleave, config(2), &train).unwrap();
        let before = stream.cost().prompt_tokens;
        stream.observe_row(&rest.row(0).unwrap()).unwrap();
        let delta = stream.cost().prompt_tokens - before;
        // One timestamp of 2 dims x 3 digits + separator = 7 tokens (VI).
        assert_eq!(delta, 7, "only the new row's tokens are processed");
        assert_eq!(stream.observed(), train.len() + 1);
    }

    #[test]
    fn predict_does_not_pollute_the_context() {
        let s = series(100);
        let (train, _) = holdout_split(&s, 0.2).unwrap();
        let mut stream =
            StreamingMultiCast::new(MuxMethod::ValueInterleave, config(3), &train).unwrap();
        let before = stream.cost();
        stream.predict(5).unwrap();
        let after = stream.cost();
        assert_eq!(before, after, "speculative generation must not touch the live model");
    }

    #[test]
    fn predictions_improve_as_rows_stream_in() {
        // Feed the stream progressively and verify a late prediction of a
        // known continuation is no worse than an early one (more context
        // can only help on a stationary periodic series).
        let s = series(192);
        let seed = s.slice(0, 48).unwrap();
        let mut stream =
            StreamingMultiCast::new(MuxMethod::ValueInterleave, config(5), &seed).unwrap();
        let early = stream.predict(16).unwrap();
        let early_err =
            rmse(s.slice(48, 64).unwrap().column(0).unwrap(), early.column(0).unwrap()).unwrap();
        for t in 48..176 {
            stream.observe_row(&s.row(t).unwrap()).unwrap();
        }
        let late = stream.predict(16).unwrap();
        let late_err =
            rmse(s.slice(176, 192).unwrap().column(0).unwrap(), late.column(0).unwrap()).unwrap();
        assert!(
            late_err <= early_err + 0.05,
            "more context should not hurt: late {late_err:.3} vs early {early_err:.3}"
        );
    }

    #[test]
    fn validation_errors() {
        let s = series(100);
        assert!(StreamingMultiCast::new(
            MuxMethod::ValueConcat,
            config(1),
            &s.slice(0, 4).unwrap()
        )
        .is_err());
        let mut stream = StreamingMultiCast::new(MuxMethod::ValueConcat, config(1), &s).unwrap();
        assert!(stream.observe_row(&[1.0]).is_err());
        assert!(stream.observe_row(&[1.0, f64::NAN]).is_err());
        assert!(stream.predict(0).is_err());
    }
}
