//! Forecast configuration — the paper's Table II parameter space.
//!
//! | Parameter          | Range (paper)   | Default (bold in Table II) |
//! |--------------------|-----------------|----------------------------|
//! | Number of samples  | 5, 10, 20       | **5**                      |
//! | SAX segment length | 3, 6, 9         | 6 (used throughout §IV-E)  |
//! | SAX alphabet size  | 5, 10, 20       | **5**                      |
//!
//! Plus the serialization knobs LLMTime-style pipelines need: digits per
//! value, rescaling headroom, backend preset and sampler settings.

use mc_lm::presets::ModelPreset;
use mc_lm::sampler::SamplerConfig;

use crate::robust::RobustPolicy;

/// Configuration shared by all LLM-based forecasters in this crate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastConfig {
    /// Continuations drawn per forecast; the pointwise median is reported
    /// (paper default: 5).
    pub samples: usize,
    /// Digits per rescaled value (`b` in formulas (1)–(3)).
    pub digits: u32,
    /// Rescaling headroom fraction (see [`crate::scaling::FixedDigitScaler`]).
    pub headroom: f64,
    /// LLM backend preset (default: the LLaMA2-7B stand-in, the paper's
    /// choice after Table III).
    pub preset: ModelPreset,
    /// Sampling temperature / truncation; per-sample seeds are derived from
    /// `seed`, so `SamplerConfig::seed` here acts as a base offset.
    pub sampler: SamplerConfig,
    /// Base seed for the whole forecast (sample `i` uses `seed + i`).
    pub seed: u64,
    /// Retry / quorum / fallback policy for defective samples
    /// (see [`crate::robust`]).
    pub robust: RobustPolicy,
}

impl Default for ForecastConfig {
    fn default() -> Self {
        Self {
            samples: 5,
            digits: 3,
            headroom: 0.15,
            preset: ModelPreset::Large,
            sampler: SamplerConfig {
                temperature: 0.7,
                top_k: None,
                top_p: Some(0.95),
                seed: 0,
                epsilon: 0.0,
            },
            seed: 0,
            robust: RobustPolicy::default(),
        }
    }
}

impl ForecastConfig {
    /// Sampler configuration for sample index `i` (deterministic per-sample
    /// seeds so runs replay exactly).
    pub fn sampler_for(&self, i: usize) -> SamplerConfig {
        SamplerConfig { seed: self.seed.wrapping_add(i as u64), ..self.sampler }
    }

    /// Generation token budget for a continuation expected to contain
    /// `separators` commas delimiting `payload`-character groups: three
    /// times the exact need, a generous guard against degenerate loops.
    pub fn max_tokens(&self, separators: usize, payload: usize) -> usize {
        (separators * (payload + 1)).saturating_mul(3).max(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_two() {
        let c = ForecastConfig::default();
        assert_eq!(c.samples, 5);
        assert_eq!(c.preset, ModelPreset::Large);
        assert_eq!(c.digits, 3);
        assert_eq!(c.robust, RobustPolicy::default());
    }

    #[test]
    fn per_sample_seeds_differ_deterministically() {
        let c = ForecastConfig { seed: 100, ..Default::default() };
        assert_eq!(c.sampler_for(0).seed, 100);
        assert_eq!(c.sampler_for(3).seed, 103);
        assert_eq!(c.sampler_for(3), c.sampler_for(3));
    }

    #[test]
    fn token_budget_covers_exact_need() {
        let c = ForecastConfig::default();
        // 10 separators, 6-char groups → exact need 70, budget 210.
        assert_eq!(c.max_tokens(10, 6), 210);
        assert!(c.max_tokens(0, 0) >= 16);
    }
}
