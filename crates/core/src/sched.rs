//! The bounded work queue under the serve scheduler.
//!
//! [`TaskQueue`] is the single synchronization object the worker pool in
//! [`crate::serve`] coordinates through. It is generic and public for one
//! reason: the `--cfg loom` model-checking suite (`tests/loom_serve.rs`)
//! drives it directly, exhaustively exploring thread interleavings to
//! prove the properties the serve layer relies on:
//!
//! - **No lost wakeups** — a [`TaskQueue::push`] racing a sleeping
//!   [`TaskQueue::next`] always wakes it; a retry pushed by the last
//!   running worker cannot strand a sleeper.
//! - **No lost wakeups on shed** — a rejected [`TaskQueue::offer`]
//!   settles its unit, and that settlement wakes sleepers exactly like a
//!   completed task would: capacity rejection cannot strand a worker.
//! - **Termination** — workers exit exactly when the queue is empty *and*
//!   every admitted unit of work has settled. An executing task may still
//!   push follow-up tasks, so an empty queue alone is **not** termination:
//!   the `outstanding` settlement counter closes that race.
//! - **No deadlock on pool exhaustion** — any number of workers over any
//!   number of tasks drains without wedging, including workers that go to
//!   sleep before the first push, and including deferred (backed-off)
//!   tasks whose release the fast-forward rule promotes when the main
//!   queue runs dry.
//!
//! The queue is built on the [`mc_sync`] shim, so an ordinary build uses
//! `std::sync` while the loom build swaps in model-checked primitives.
//! This file is the **only** sanctioned construction site of a raw
//! `VecDeque` work queue in the workspace — `xtask lint`'s
//! `no-unbounded-queue` rule (allowlisted here) pushes every other queue
//! through this bounded, settlement-counted type.

use std::collections::VecDeque;

use mc_obs::{mix, EventKind, Recorder, SpanEvent, SpanKind, TraceEvent};
use mc_sync::{Condvar, Mutex};

/// A FIFO task queue with settlement-counted termination, an optional
/// capacity bound, and deferred (backed-off) entries.
///
/// `outstanding` counts admitted units of work that have not yet settled.
/// Executing a task may [`push`](TaskQueue::push) follow-ups (retries) at
/// the same settlement unit, defer them ([`push_deferred`](TaskQueue::push_deferred)),
/// or [`settle_one`](TaskQueue::settle_one) to retire the unit.
/// [`next`](TaskQueue::next) blocks while the queue is empty but work is
/// still outstanding, and returns `None` once `outstanding` reaches zero —
/// at which point every worker drains out.
#[derive(Debug)]
pub struct TaskQueue<T> {
    state: Mutex<QueueState<T>>,
    cv: Condvar,
}

#[derive(Debug)]
struct QueueState<T> {
    tasks: VecDeque<T>,
    /// Settlement units not yet retired; workers exit when the queue is
    /// empty *and* this reaches zero (an executing task may still push
    /// retries, so an empty queue alone is not termination).
    outstanding: usize,
    /// Hard bound on queued (non-deferred) tasks; [`TaskQueue::offer`]
    /// rejects beyond it. `None` = unbounded (retries always fit).
    capacity: Option<usize>,
    /// Monotone count of tasks handed out by [`TaskQueue::next`] — the
    /// logical dispatch clock deferred releases are keyed to.
    dispatched: u64,
    /// Backed-off tasks and the dispatch count at which each releases,
    /// in insertion order.
    deferred: Vec<(u64, T)>,
}

impl<T> QueueState<T> {
    /// Moves every due deferred task onto the main queue, preserving
    /// insertion order among equals.
    fn release_due(&mut self) {
        let mut i = 0;
        while i < self.deferred.len() {
            if self.deferred[i].0 <= self.dispatched {
                let (_, task) = self.deferred.remove(i);
                self.tasks.push_back(task);
            } else {
                i += 1;
            }
        }
    }

    /// The fast-forward rule: when the main queue is dry but deferred
    /// work exists, jump the dispatch clock to the earliest release
    /// instead of sleeping forever — backoff defers retries relative to
    /// *other queued work*, and with nothing else queued there is nothing
    /// left to defer behind.
    fn fast_forward(&mut self) {
        if let Some(&(release, _)) = self.deferred.iter().min_by_key(|&&(release, _)| release) {
            self.dispatched = self.dispatched.max(release);
        }
    }
}

impl<T> TaskQueue<T> {
    /// A queue seeded with `tasks`, expecting `outstanding` settlements.
    ///
    /// `outstanding` may exceed `tasks.len()` when some units start
    /// mid-flight, but every unit must eventually settle exactly once or
    /// [`next`](TaskQueue::next) never returns `None`.
    pub fn new(tasks: Vec<T>, outstanding: usize) -> Self {
        Self::bounded(tasks, outstanding, None)
    }

    /// [`TaskQueue::new`] with a capacity bound enforced by
    /// [`TaskQueue::offer`]. The seed is admitted unconditionally — the
    /// bound governs later offers, not the initial batch (admission
    /// shedding happens before the queue is built).
    pub fn bounded(tasks: Vec<T>, outstanding: usize, capacity: Option<usize>) -> Self {
        Self {
            state: Mutex::new(QueueState {
                tasks: tasks.into_iter().collect(),
                outstanding,
                capacity,
                dispatched: 0,
                deferred: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Enqueues a task (typically a retry at an existing settlement unit),
    /// waking one sleeping worker. Never bounded: a retry re-uses an
    /// already-admitted settlement unit.
    pub fn push(&self, task: T) {
        let mut st = self.state.lock().expect("queue lock");
        st.tasks.push_back(task);
        self.cv.notify_one();
    }

    /// Offers a task against the capacity bound: `false` means the queue
    /// is full and the task was **not** admitted — the caller must shed
    /// it and settle its unit itself (typically via
    /// [`settle_one`](TaskQueue::settle_one), whose wakeup keeps sleepers
    /// from stranding). Unbounded queues admit everything.
    #[must_use]
    pub fn offer(&self, task: T) -> bool {
        let mut st = self.state.lock().expect("queue lock");
        if let Some(cap) = st.capacity {
            if st.tasks.len() >= cap {
                return false;
            }
        }
        st.tasks.push_back(task);
        self.cv.notify_one();
        true
    }

    /// Enqueues a task that only becomes eligible after `delay` more
    /// dispatches (bounded-backoff retries). `delay == 0` is
    /// [`push`](TaskQueue::push). The delay is logical — measured on the
    /// dispatch clock, not wall time — and collapses when the queue runs
    /// dry (see the fast-forward rule), so backoff reorders work but
    /// never wedges the pool.
    pub fn push_deferred(&self, task: T, delay: u64) {
        let mut st = self.state.lock().expect("queue lock");
        if delay == 0 {
            st.tasks.push_back(task);
        } else {
            let release = st.dispatched.saturating_add(delay);
            st.deferred.push((release, task));
        }
        self.cv.notify_one();
    }

    /// Retires one settlement unit; when the last unit settles, every
    /// sleeping worker is woken so it can observe termination.
    pub fn settle_one(&self) {
        let mut st = self.state.lock().expect("queue lock");
        st.outstanding -= 1;
        if st.outstanding == 0 {
            self.cv.notify_all();
        }
    }

    /// The next task, blocking while the queue is empty but settlements
    /// are outstanding; `None` once everything has settled.
    pub fn next(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            st.release_due();
            if let Some(task) = st.tasks.pop_front() {
                st.dispatched += 1;
                return Some(task);
            }
            if st.outstanding == 0 {
                return None;
            }
            if !st.deferred.is_empty() {
                st.fast_forward();
                continue;
            }
            st = self.cv.wait(st).expect("queue lock");
        }
    }

    /// [`TaskQueue::next`] with a `queue_wait` trace event per dequeue,
    /// carrying the clock delta spent inside the blocking call, plus a
    /// `queue_wait` span whose open half is back-dated to the pre-wait
    /// stamps (the span id is minted from the pre-wait tick, so a fruitless
    /// final wait emits nothing and no span is left orphaned). Queue
    /// waits are scheduler-scoped — they feed metrics and wall-clock
    /// exports, never the canonical trace. A disabled recorder makes this
    /// identical to [`TaskQueue::next`].
    pub fn next_observed(&self, obs: &dyn Recorder) -> Option<T> {
        if !obs.enabled() {
            return self.next();
        }
        let start = obs.now();
        let wall_start = obs.wall();
        let task = self.next();
        if task.is_some() {
            let ticks = obs.now().saturating_sub(start);
            obs.record(TraceEvent { req: 0, ctx: 0, kind: EventKind::QueueWait { ticks } });
            let id = mix(start, SpanKind::QueueWait.index() as u64);
            obs.span_at(SpanEvent::open_with_id(id, 0, SpanKind::QueueWait), start, wall_start);
            obs.span(SpanEvent::close_with_id(id, 0, SpanKind::QueueWait));
        }
        task
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn drains_fifo_then_terminates() {
        let queue = TaskQueue::new(vec![1, 2, 3], 3);
        assert_eq!(queue.next(), Some(1));
        queue.settle_one();
        assert_eq!(queue.next(), Some(2));
        queue.settle_one();
        assert_eq!(queue.next(), Some(3));
        queue.settle_one();
        assert_eq!(queue.next(), None);
        assert_eq!(queue.next(), None, "termination is sticky");
    }

    #[test]
    fn retry_extends_a_settlement_unit() {
        let queue = TaskQueue::new(vec!["first"], 1);
        assert_eq!(queue.next(), Some("first"));
        queue.push("retry");
        assert_eq!(queue.next(), Some("retry"));
        queue.settle_one();
        assert_eq!(queue.next(), None);
    }

    #[test]
    fn workers_drain_concurrently() {
        let queue = TaskQueue::new((0..64).collect(), 64);
        let done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Some(task) = queue.next() {
                        if task % 8 == 0 {
                            queue.push(task + 1001);
                        } else {
                            done.fetch_add(1, Ordering::Relaxed);
                            queue.settle_one();
                        }
                    }
                });
            }
        });
        // 64 originals; the 8 multiples of 8 each re-queued one retry that
        // settled in their place.
        assert_eq!(done.load(Ordering::Relaxed), 64);
        assert_eq!(queue.next(), None);
    }

    #[test]
    fn offer_rejects_over_capacity_and_settlement_unblocks() {
        let queue = TaskQueue::bounded(vec![1], 2, Some(1));
        assert!(!queue.offer(2), "at capacity: the offer must be rejected");
        // The caller sheds and settles the rejected unit itself.
        queue.settle_one();
        assert_eq!(queue.next(), Some(1));
        queue.settle_one();
        assert_eq!(queue.next(), None, "shed settlement still counts toward termination");
        // Unbounded queues admit everything.
        let open = TaskQueue::new(vec![0], 3);
        assert!(open.offer(1));
        assert!(open.offer(2));
    }

    #[test]
    fn offer_capacity_frees_as_tasks_dispatch() {
        let queue = TaskQueue::bounded(vec![1, 2], 2, Some(2));
        assert!(!queue.offer(3));
        assert_eq!(queue.next(), Some(1));
        assert!(queue.offer(3), "dispatch frees a slot");
        queue.settle_one();
    }

    #[test]
    fn deferred_tasks_release_after_dispatches() {
        let queue = TaskQueue::new(vec!["a", "b", "c"], 4);
        assert_eq!(queue.next(), Some("a"));
        // Deferred by 2: "b" and "c" dispatch first.
        queue.push_deferred("retry", 2);
        assert_eq!(queue.next(), Some("b"));
        assert_eq!(queue.next(), Some("c"));
        assert_eq!(queue.next(), Some("retry"));
        for _ in 0..4 {
            queue.settle_one();
        }
        assert_eq!(queue.next(), None);
    }

    #[test]
    fn dry_queue_fast_forwards_deferred_work() {
        // Nothing else queued: a huge logical delay must not wedge.
        let queue = TaskQueue::new(vec!["only"], 1);
        assert_eq!(queue.next(), Some("only"));
        queue.push_deferred("retry", 1_000_000);
        assert_eq!(queue.next(), Some("retry"), "fast-forward promotes the earliest deferred");
        queue.settle_one();
        assert_eq!(queue.next(), None);
    }

    #[test]
    fn zero_delay_defer_is_an_ordinary_push() {
        let queue = TaskQueue::new(vec![10], 2);
        queue.push_deferred(20, 0);
        assert_eq!(queue.next(), Some(10));
        assert_eq!(queue.next(), Some(20));
        queue.settle_one();
        queue.settle_one();
        assert_eq!(queue.next(), None);
    }
}
