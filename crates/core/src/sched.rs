//! The bounded work queue under the serve scheduler.
//!
//! [`TaskQueue`] is the single synchronization object the worker pool in
//! [`crate::serve`] coordinates through. It is generic and public for one
//! reason: the `--cfg loom` model-checking suite (`tests/loom_serve.rs`)
//! drives it directly, exhaustively exploring thread interleavings to
//! prove the properties the serve layer relies on:
//!
//! - **No lost wakeups** — a [`TaskQueue::push`] racing a sleeping
//!   [`TaskQueue::next`] always wakes it; a retry pushed by the last
//!   running worker cannot strand a sleeper.
//! - **Termination** — workers exit exactly when the queue is empty *and*
//!   every admitted unit of work has settled. An executing task may still
//!   push follow-up tasks, so an empty queue alone is **not** termination:
//!   the `outstanding` settlement counter closes that race.
//! - **No deadlock on pool exhaustion** — any number of workers over any
//!   number of tasks drains without wedging, including workers that go to
//!   sleep before the first push.
//!
//! The queue is built on the [`mc_sync`] shim, so an ordinary build uses
//! `std::sync` while the loom build swaps in model-checked primitives.

use std::collections::VecDeque;

use mc_obs::{EventKind, Recorder, TraceEvent};
use mc_sync::{Condvar, Mutex};

/// A FIFO task queue with settlement-counted termination.
///
/// `outstanding` counts admitted units of work that have not yet settled.
/// Executing a task may [`push`](TaskQueue::push) follow-ups (retries) at
/// the same settlement unit, or [`settle_one`](TaskQueue::settle_one) to
/// retire the unit. [`next`](TaskQueue::next) blocks while the queue is
/// empty but work is still outstanding, and returns `None` once
/// `outstanding` reaches zero — at which point every worker drains out.
#[derive(Debug)]
pub struct TaskQueue<T> {
    state: Mutex<QueueState<T>>,
    cv: Condvar,
}

#[derive(Debug)]
struct QueueState<T> {
    tasks: VecDeque<T>,
    /// Settlement units not yet retired; workers exit when the queue is
    /// empty *and* this reaches zero (an executing task may still push
    /// retries, so an empty queue alone is not termination).
    outstanding: usize,
}

impl<T> TaskQueue<T> {
    /// A queue seeded with `tasks`, expecting `outstanding` settlements.
    ///
    /// `outstanding` may exceed `tasks.len()` when some units start
    /// mid-flight, but every unit must eventually settle exactly once or
    /// [`next`](TaskQueue::next) never returns `None`.
    pub fn new(tasks: VecDeque<T>, outstanding: usize) -> Self {
        Self { state: Mutex::new(QueueState { tasks, outstanding }), cv: Condvar::new() }
    }

    /// Enqueues a task (typically a retry at an existing settlement unit),
    /// waking one sleeping worker.
    pub fn push(&self, task: T) {
        let mut st = self.state.lock().expect("queue lock");
        st.tasks.push_back(task);
        self.cv.notify_one();
    }

    /// Retires one settlement unit; when the last unit settles, every
    /// sleeping worker is woken so it can observe termination.
    pub fn settle_one(&self) {
        let mut st = self.state.lock().expect("queue lock");
        st.outstanding -= 1;
        if st.outstanding == 0 {
            self.cv.notify_all();
        }
    }

    /// The next task, blocking while the queue is empty but settlements
    /// are outstanding; `None` once everything has settled.
    pub fn next(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if let Some(task) = st.tasks.pop_front() {
                return Some(task);
            }
            if st.outstanding == 0 {
                return None;
            }
            st = self.cv.wait(st).expect("queue lock");
        }
    }

    /// [`TaskQueue::next`] with a `queue_wait` trace event per dequeue,
    /// carrying the clock delta spent inside the blocking call. Queue
    /// waits are scheduler-scoped — they feed metrics and wall-clock
    /// exports, never the canonical trace. A disabled recorder makes this
    /// identical to [`TaskQueue::next`].
    pub fn next_observed(&self, obs: &dyn Recorder) -> Option<T> {
        if !obs.enabled() {
            return self.next();
        }
        let start = obs.now();
        let task = self.next();
        if task.is_some() {
            let ticks = obs.now().saturating_sub(start);
            obs.record(TraceEvent { req: 0, ctx: 0, kind: EventKind::QueueWait { ticks } });
        }
        task
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn drains_fifo_then_terminates() {
        let queue = TaskQueue::new(VecDeque::from([1, 2, 3]), 3);
        assert_eq!(queue.next(), Some(1));
        queue.settle_one();
        assert_eq!(queue.next(), Some(2));
        queue.settle_one();
        assert_eq!(queue.next(), Some(3));
        queue.settle_one();
        assert_eq!(queue.next(), None);
        assert_eq!(queue.next(), None, "termination is sticky");
    }

    #[test]
    fn retry_extends_a_settlement_unit() {
        let queue = TaskQueue::new(VecDeque::from(["first"]), 1);
        assert_eq!(queue.next(), Some("first"));
        queue.push("retry");
        assert_eq!(queue.next(), Some("retry"));
        queue.settle_one();
        assert_eq!(queue.next(), None);
    }

    #[test]
    fn workers_drain_concurrently() {
        let queue = TaskQueue::new(VecDeque::from_iter(0..64), 64);
        let done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Some(task) = queue.next() {
                        if task % 8 == 0 {
                            queue.push(task + 1001);
                        } else {
                            done.fetch_add(1, Ordering::Relaxed);
                            queue.settle_one();
                        }
                    }
                });
            }
        });
        // 64 originals; the 8 multiples of 8 each re-queued one retry that
        // settled in their place.
        assert_eq!(done.load(Ordering::Relaxed), 64);
        assert_eq!(queue.next(), None);
    }
}
