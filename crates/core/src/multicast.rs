//! The MultiCast forecaster: multiplex → prompt → sample → demultiplex.
//!
//! This is the paper's method proper. The multivariate history is rescaled
//! per dimension ([`FixedDigitScaler`]), folded into one token stream by
//! the chosen multiplexing scheme, and the LLM backend continues it under
//! the digit/comma output constraint. Each of the `S` continuations is
//! demultiplexed and descaled independently; the reported forecast is the
//! pointwise median.
//!
//! Sampling runs through the fault-tolerant layer ([`crate::robust`]):
//! defective continuations are retried under fresh seeds, a failed quorum
//! degrades to the seasonal-naive fallback per the configured
//! [`crate::robust::FallbackPolicy`], and every call records a
//! [`ForecastReport`] in `last_report`.

use mc_tslib::error::Result;
use mc_tslib::forecast::MultivariateForecaster;
use mc_tslib::series::MultivariateSeries;

use mc_lm::cost::InferenceCost;

use crate::codec::DigitCodec;
use crate::config::ForecastConfig;
use crate::engine::ForecastEngine;
use crate::mux::MuxMethod;
use crate::robust::{ForecastReport, SampleSource};

/// Zero-shot multivariate forecaster with dimensional multiplexing.
#[derive(Debug, Clone)]
pub struct MultiCastForecaster {
    /// Which of the three multiplexing schemes to use.
    pub method: MuxMethod,
    /// Pipeline configuration.
    pub config: ForecastConfig,
    /// Cost counters of the most recent `forecast` call (all samples
    /// summed); `None` before the first call.
    pub last_cost: Option<InferenceCost>,
    /// Where continuations come from (real backend, or fault-injected for
    /// chaos drills and the fault-injection benchmark).
    pub source: SampleSource,
    /// Sampling-health report of the most recent `forecast` call; `None`
    /// before the first call.
    pub last_report: Option<ForecastReport>,
}

impl MultiCastForecaster {
    /// Creates a forecaster.
    pub fn new(method: MuxMethod, config: ForecastConfig) -> Self {
        Self { method, config, last_cost: None, source: SampleSource::Model, last_report: None }
    }

    /// Same forecaster with a different continuation source.
    pub fn with_source(mut self, source: SampleSource) -> Self {
        self.source = source;
        self
    }
}

impl MultivariateForecaster for MultiCastForecaster {
    fn name(&self) -> String {
        self.method.display_name().to_string()
    }

    fn forecast(
        &mut self,
        train: &MultivariateSeries,
        horizon: usize,
    ) -> Result<MultivariateSeries> {
        let codec = DigitCodec::from_config(self.method, &self.config);
        let engine = ForecastEngine::with_source(self.config, self.source);
        let run = engine.run(&codec, train, horizon)?;
        self.last_cost = Some(run.cost());
        let result = run.resolve(train, horizon);
        self.last_report = Some(run.into_report());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_datasets::generators::sinusoids;
    use mc_tslib::metrics::rmse;
    use mc_tslib::split::holdout_split;

    fn quick_config(samples: usize, seed: u64) -> ForecastConfig {
        ForecastConfig { samples, seed, ..Default::default() }
    }

    fn periodic_series(n: usize) -> MultivariateSeries {
        // Two coupled periodic dimensions on different scales.
        let a = sinusoids(n, &[(1.0, 16.0, 0.0), (0.3, 8.0, 1.0)]);
        let b: Vec<f64> = a.iter().map(|&v| 100.0 + 20.0 * v).collect();
        MultivariateSeries::from_columns(vec!["low".into(), "high".into()], vec![a, b]).unwrap()
    }

    #[test]
    fn forecast_shape_and_names() {
        let series = periodic_series(96);
        let (train, test) = holdout_split(&series, 0.1).unwrap();
        for method in MuxMethod::ALL {
            let mut f = MultiCastForecaster::new(method, quick_config(2, 1));
            let fc = f.forecast(&train, test.len()).unwrap();
            assert_eq!(fc.len(), test.len());
            assert_eq!(fc.dims(), 2);
            assert_eq!(fc.names(), train.names());
            assert!(f.last_cost.unwrap().generated_tokens > 0);
            let report = f.last_report.as_ref().unwrap();
            assert!(!report.degraded(), "healthy backend must not degrade: {}", report.summary());
            assert_eq!(report.valid_samples, 2);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let series = periodic_series(80);
        let (train, _) = holdout_split(&series, 0.1).unwrap();
        let mut f1 = MultiCastForecaster::new(MuxMethod::ValueInterleave, quick_config(3, 9));
        let mut f2 = MultiCastForecaster::new(MuxMethod::ValueInterleave, quick_config(3, 9));
        assert_eq!(f1.forecast(&train, 6).unwrap(), f2.forecast(&train, 6).unwrap());
        // (Different seeds may still agree: the median over samples is
        // robust by design, so no inequality is asserted here — seed
        // sensitivity of the raw sampler is covered in mc-lm.)
    }

    #[test]
    fn forecast_stays_in_scaler_band() {
        let series = periodic_series(80);
        let (train, _) = holdout_split(&series, 0.1).unwrap();
        let mut f = MultiCastForecaster::new(MuxMethod::DigitInterleave, quick_config(3, 2));
        let fc = f.forecast(&train, 8).unwrap();
        // Descaled values can never leave the headroom-extended range.
        for d in 0..2 {
            let col = train.column(d).unwrap();
            let (mn, mx) = col.iter().fold((f64::MAX, f64::MIN), |(a, b), &v| (a.min(v), b.max(v)));
            let range = mx - mn;
            for &v in fc.column(d).unwrap() {
                assert!(v >= mn - 0.16 * range && v <= mx + 0.16 * range, "dim {d}: {v}");
            }
        }
    }

    #[test]
    fn beats_midrange_on_strong_period() {
        // On a clean periodic series the zero-shot forecast must do much
        // better than predicting the series mean everywhere.
        let series = periodic_series(160);
        let (train, test) = holdout_split(&series, 0.1).unwrap();
        let mut f = MultiCastForecaster::new(MuxMethod::ValueInterleave, quick_config(5, 3));
        let fc = f.forecast(&train, test.len()).unwrap();
        for d in 0..2 {
            let col = train.column(d).unwrap();
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            let err = rmse(test.column(d).unwrap(), fc.column(d).unwrap()).unwrap();
            let mean_err = rmse(test.column(d).unwrap(), &vec![mean; test.len()]).unwrap();
            assert!(
                err < mean_err,
                "dim {d}: multicast {err:.3} should beat mean predictor {mean_err:.3}"
            );
        }
    }

    #[test]
    fn univariate_series_works_for_all_methods() {
        let a = sinusoids(64, &[(1.0, 8.0, 0.0)]);
        let series = MultivariateSeries::from_columns(vec!["only".into()], vec![a]).unwrap();
        for method in MuxMethod::ALL {
            let mut f = MultiCastForecaster::new(method, quick_config(2, 4));
            let fc = f.forecast(&series, 5).unwrap();
            assert_eq!(fc.dims(), 1);
            assert_eq!(fc.len(), 5);
        }
    }
}
