//! LLMTime baseline (Gruver et al. 2023 — the paper's ref [15]).
//!
//! The state of the art the paper compares against: zero-shot *univariate*
//! forecasting, "applied in each dimension separately" (§IV-A3). The
//! pipeline is identical to MultiCast's minus the multiplexing — one
//! prompt, one continuation stream, one dimension at a time — so any
//! accuracy difference between the two isolates the effect of dimensional
//! multiplexing, exactly the comparison Tables IV–VI make.

use mc_tslib::error::{Result, TsError};
use mc_tslib::forecast::{MultivariateForecaster, UnivariateForecaster};
use mc_tslib::series::MultivariateSeries;

use mc_lm::cost::InferenceCost;

use crate::codec::DigitCodec;
use crate::config::ForecastConfig;
use crate::engine::ForecastEngine;
use crate::mux::MuxMethod;
use crate::robust::{ForecastReport, SampleSource};

/// Zero-shot univariate LLM forecaster, applied per dimension.
#[derive(Debug, Clone)]
pub struct LlmTimeForecaster {
    /// Pipeline configuration (shared with MultiCast for fair comparison).
    pub config: ForecastConfig,
    /// Cost of the most recent forecast call (summed over dimensions and
    /// samples).
    pub last_cost: Option<InferenceCost>,
    /// Where continuations come from (real backend or fault-injected).
    pub source: SampleSource,
    /// Sampling-health report of the most recent forecast call, merged
    /// over every dimension the call touched.
    pub last_report: Option<ForecastReport>,
}

impl LlmTimeForecaster {
    /// Creates the baseline forecaster.
    pub fn new(config: ForecastConfig) -> Self {
        Self { config, last_cost: None, source: SampleSource::Model, last_report: None }
    }

    /// Same forecaster with a different continuation source.
    pub fn with_source(mut self, source: SampleSource) -> Self {
        self.source = source;
        self
    }

    fn merge_report(&mut self, report: ForecastReport) {
        match self.last_report.as_mut() {
            Some(existing) => existing.merge(report),
            None => self.last_report = Some(report),
        }
    }

    fn forecast_column(
        &self,
        column: &[f64],
        horizon: usize,
    ) -> Result<(Vec<f64>, InferenceCost, ForecastReport)> {
        // With one dimension, value-interleaving is the plain LLMTime
        // serialization: "017,042,..." — one value per separator.
        let codec = DigitCodec::from_config(MuxMethod::ValueInterleave, &self.config);
        let train = MultivariateSeries::from_columns(vec!["value".into()], vec![column.to_vec()])?;
        let engine = ForecastEngine::with_source(self.config, self.source);
        let run = engine.run(&codec, &train, horizon)?;
        let resolved = run.resolve(&train, horizon)?;
        let forecast = resolved.column(0).map_err(|_| TsError::Empty)?.to_vec();
        Ok((forecast, run.cost(), run.into_report()))
    }
}

impl UnivariateForecaster for LlmTimeForecaster {
    fn name(&self) -> String {
        "LLMTIME".into()
    }

    fn forecast_univariate(&mut self, train: &[f64], horizon: usize) -> Result<Vec<f64>> {
        let (fc, cost, report) = self.forecast_column(train, horizon)?;
        let mut total = self.last_cost.take().unwrap_or_default();
        total.absorb(cost);
        self.last_cost = Some(total);
        self.merge_report(report);
        Ok(fc)
    }
}

impl MultivariateForecaster for LlmTimeForecaster {
    fn name(&self) -> String {
        "LLMTIME".into()
    }

    fn forecast(
        &mut self,
        train: &MultivariateSeries,
        horizon: usize,
    ) -> Result<MultivariateSeries> {
        self.last_cost = None;
        self.last_report = None;
        // Dimensions are forecast independently (the whole point of the
        // baseline), so they run on scoped threads. Every dimension uses
        // the same deterministic per-sample seeds the sequential loop
        // used, and results merge in dimension order below, so outputs,
        // costs and reports are identical to sequential execution.
        type ColumnOutcome = Result<(Vec<f64>, InferenceCost, ForecastReport)>;
        let dims = train.dims();
        let mut slots: Vec<Option<ColumnOutcome>> = Vec::new();
        slots.resize_with(dims, || None);
        let this = &*self;
        std::thread::scope(|scope| {
            for (d, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move || {
                    *slot =
                        Some(train.column(d).and_then(|col| this.forecast_column(col, horizon)));
                });
            }
        });
        let mut columns = Vec::with_capacity(dims);
        let mut total = InferenceCost::default();
        for slot in slots {
            let (fc, cost, report) = slot.expect("scoped thread filled its slot")?;
            total.absorb(cost);
            self.merge_report(report);
            columns.push(fc);
        }
        self.last_cost = Some(total);
        MultivariateSeries::from_columns(train.names().to_vec(), columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_datasets::generators::sinusoids;
    use mc_tslib::metrics::rmse;
    use mc_tslib::split::holdout_split;

    fn config(samples: usize, seed: u64) -> ForecastConfig {
        ForecastConfig { samples, seed, ..Default::default() }
    }

    #[test]
    fn forecasts_every_dimension_independently() {
        let a = sinusoids(80, &[(1.0, 10.0, 0.0)]);
        let b: Vec<f64> = (0..80).map(|t| t as f64).collect();
        let series =
            MultivariateSeries::from_columns(vec!["s".into(), "ramp".into()], vec![a, b]).unwrap();
        let mut f = LlmTimeForecaster::new(config(2, 1));
        let fc = MultivariateForecaster::forecast(&mut f, &series, 6).unwrap();
        assert_eq!(fc.dims(), 2);
        assert_eq!(fc.len(), 6);
        assert!(f.last_cost.unwrap().generated_tokens > 0);
        let report = f.last_report.as_ref().unwrap();
        assert_eq!(report.requested_samples, 4, "2 samples x 2 dimensions merged");
        assert!(!report.degraded());
    }

    #[test]
    fn tracks_periodic_univariate_series() {
        let xs = sinusoids(160, &[(1.0, 16.0, 0.0)]);
        let series = MultivariateSeries::from_columns(vec!["x".into()], vec![xs]).unwrap();
        let (train, test) = holdout_split(&series, 0.1).unwrap();
        let mut f = LlmTimeForecaster::new(config(5, 2));
        let fc = f.forecast_univariate(train.column(0).unwrap(), test.len()).unwrap();
        let err = rmse(test.column(0).unwrap(), &fc).unwrap();
        let mean_err = rmse(test.column(0).unwrap(), &vec![0.0; test.len()]).unwrap();
        assert!(err < mean_err, "llmtime {err:.3} vs mean predictor {mean_err:.3}");
    }

    #[test]
    fn deterministic_per_seed() {
        let xs = sinusoids(60, &[(1.0, 12.0, 0.5)]);
        let mut f1 = LlmTimeForecaster::new(config(3, 5));
        let mut f2 = LlmTimeForecaster::new(config(3, 5));
        assert_eq!(
            f1.forecast_univariate(&xs, 5).unwrap(),
            f2.forecast_univariate(&xs, 5).unwrap()
        );
    }

    #[test]
    fn univariate_cost_accumulates_across_calls() {
        let xs = sinusoids(40, &[(1.0, 8.0, 0.0)]);
        let mut f = LlmTimeForecaster::new(config(1, 3));
        f.forecast_univariate(&xs, 3).unwrap();
        let first = f.last_cost.unwrap().total_tokens();
        f.forecast_univariate(&xs, 3).unwrap();
        assert!(f.last_cost.unwrap().total_tokens() > first);
    }
}
