//! LLMTime baseline (Gruver et al. 2023 — the paper's ref [15]).
//!
//! The state of the art the paper compares against: zero-shot *univariate*
//! forecasting, "applied in each dimension separately" (§IV-A3). The
//! pipeline is identical to MultiCast's minus the multiplexing — one
//! prompt, one continuation stream, one dimension at a time — so any
//! accuracy difference between the two isolates the effect of dimensional
//! multiplexing, exactly the comparison Tables IV–VI make.

use mc_baselines::fallback::FallbackForecaster;
use mc_tslib::error::{Result, TsError};
use mc_tslib::forecast::{MultivariateForecaster, UnivariateForecaster};
use mc_tslib::series::MultivariateSeries;

use mc_lm::cost::InferenceCost;
use mc_lm::vocab::Vocab;

use crate::config::ForecastConfig;
use crate::mux::{Multiplexer, ValueInterleave};
use crate::pipeline::{median_aggregate, ContinuationSpec};
use crate::robust::{
    run_samples_robust, FallbackPolicy, ForecastOutcome, ForecastReport, SampleExpectations,
    SampleSource,
};
use crate::scaling::FixedDigitScaler;

/// Zero-shot univariate LLM forecaster, applied per dimension.
#[derive(Debug, Clone)]
pub struct LlmTimeForecaster {
    /// Pipeline configuration (shared with MultiCast for fair comparison).
    pub config: ForecastConfig,
    /// Cost of the most recent forecast call (summed over dimensions and
    /// samples).
    pub last_cost: Option<InferenceCost>,
    /// Where continuations come from (real backend or fault-injected).
    pub source: SampleSource,
    /// Sampling-health report of the most recent forecast call, merged
    /// over every dimension the call touched.
    pub last_report: Option<ForecastReport>,
}

impl LlmTimeForecaster {
    /// Creates the baseline forecaster.
    pub fn new(config: ForecastConfig) -> Self {
        Self { config, last_cost: None, source: SampleSource::Model, last_report: None }
    }

    /// Same forecaster with a different continuation source.
    pub fn with_source(mut self, source: SampleSource) -> Self {
        self.source = source;
        self
    }

    fn merge_report(&mut self, report: ForecastReport) {
        match self.last_report.as_mut() {
            Some(existing) => existing.merge(report),
            None => self.last_report = Some(report),
        }
    }

    fn forecast_column(
        &self,
        column: &[f64],
        horizon: usize,
    ) -> Result<(Vec<f64>, InferenceCost, ForecastReport)> {
        let cfg = self.config;
        let scaler = FixedDigitScaler::fit(&[column.to_vec()], cfg.digits, cfg.headroom)?;
        let codes = scaler.scale_column(0, column)?;
        // With one dimension, value-interleaving is the plain LLMTime
        // serialization: "017,042,..." — one value per separator.
        let mux = ValueInterleave;
        let prompt = mux.mux(&[codes], cfg.digits);
        let separators = mux.separators_for(1, horizon);
        let spec = ContinuationSpec {
            prompt,
            vocab: Vocab::numeric(),
            allowed_chars: "0123456789,".into(),
            preset: cfg.preset,
            separators,
            max_tokens: cfg.max_tokens(separators, cfg.digits as usize),
        };
        let scaler_ref = &scaler;
        let decode = move |text: &str| -> Result<Vec<Vec<f64>>> {
            let codes = mux.demux(text, 1, cfg.digits, horizon);
            Ok(vec![scaler_ref.descale_column(0, &codes[0])?])
        };
        let expect = SampleExpectations {
            separators,
            group_width: cfg.digits as usize,
            alphabet: "0123456789".into(),
            numeric: true,
            dims: 1,
            horizon,
        };
        let run = run_samples_robust(
            &spec,
            cfg.samples.max(1),
            cfg.robust,
            self.source,
            &expect,
            |i| cfg.sampler_for(i),
            decode,
        )?;
        let forecast = if run.quorum_met {
            let median = median_aggregate(&run.samples)?;
            median.into_iter().next().ok_or(TsError::Empty)?
        } else {
            match cfg.robust.fallback {
                FallbackPolicy::Error => {
                    let (valid, required) = match run.report.outcome {
                        ForecastOutcome::Degraded { valid, required } => (valid, required),
                        ForecastOutcome::Sampled => (run.report.valid_samples, 1),
                    };
                    return Err(TsError::SampleQuorum { valid, required });
                }
                FallbackPolicy::SeasonalNaive => {
                    FallbackForecaster::default().forecast_univariate(column, horizon)?
                }
            }
        };
        Ok((forecast, run.cost, run.report))
    }
}

impl UnivariateForecaster for LlmTimeForecaster {
    fn name(&self) -> String {
        "LLMTIME".into()
    }

    fn forecast_univariate(&mut self, train: &[f64], horizon: usize) -> Result<Vec<f64>> {
        let (fc, cost, report) = self.forecast_column(train, horizon)?;
        let mut total = self.last_cost.take().unwrap_or_default();
        total.absorb(cost);
        self.last_cost = Some(total);
        self.merge_report(report);
        Ok(fc)
    }
}

impl MultivariateForecaster for LlmTimeForecaster {
    fn name(&self) -> String {
        "LLMTIME".into()
    }

    fn forecast(&mut self, train: &MultivariateSeries, horizon: usize) -> Result<MultivariateSeries> {
        self.last_cost = None;
        self.last_report = None;
        let mut columns = Vec::with_capacity(train.dims());
        let mut total = InferenceCost::default();
        for d in 0..train.dims() {
            let (fc, cost, report) = self.forecast_column(train.column(d)?, horizon)?;
            total.absorb(cost);
            self.merge_report(report);
            columns.push(fc);
        }
        self.last_cost = Some(total);
        MultivariateSeries::from_columns(train.names().to_vec(), columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_datasets::generators::sinusoids;
    use mc_tslib::metrics::rmse;
    use mc_tslib::split::holdout_split;

    fn config(samples: usize, seed: u64) -> ForecastConfig {
        ForecastConfig { samples, seed, ..Default::default() }
    }

    #[test]
    fn forecasts_every_dimension_independently() {
        let a = sinusoids(80, &[(1.0, 10.0, 0.0)]);
        let b: Vec<f64> = (0..80).map(|t| t as f64).collect();
        let series =
            MultivariateSeries::from_columns(vec!["s".into(), "ramp".into()], vec![a, b]).unwrap();
        let mut f = LlmTimeForecaster::new(config(2, 1));
        let fc = MultivariateForecaster::forecast(&mut f, &series, 6).unwrap();
        assert_eq!(fc.dims(), 2);
        assert_eq!(fc.len(), 6);
        assert!(f.last_cost.unwrap().generated_tokens > 0);
        let report = f.last_report.as_ref().unwrap();
        assert_eq!(report.requested_samples, 4, "2 samples x 2 dimensions merged");
        assert!(!report.degraded());
    }

    #[test]
    fn tracks_periodic_univariate_series() {
        let xs = sinusoids(160, &[(1.0, 16.0, 0.0)]);
        let series = MultivariateSeries::from_columns(vec!["x".into()], vec![xs]).unwrap();
        let (train, test) = holdout_split(&series, 0.1).unwrap();
        let mut f = LlmTimeForecaster::new(config(5, 2));
        let fc = f.forecast_univariate(train.column(0).unwrap(), test.len()).unwrap();
        let err = rmse(test.column(0).unwrap(), &fc).unwrap();
        let mean_err = rmse(test.column(0).unwrap(), &vec![0.0; test.len()]).unwrap();
        assert!(err < mean_err, "llmtime {err:.3} vs mean predictor {mean_err:.3}");
    }

    #[test]
    fn deterministic_per_seed() {
        let xs = sinusoids(60, &[(1.0, 12.0, 0.5)]);
        let mut f1 = LlmTimeForecaster::new(config(3, 5));
        let mut f2 = LlmTimeForecaster::new(config(3, 5));
        assert_eq!(
            f1.forecast_univariate(&xs, 5).unwrap(),
            f2.forecast_univariate(&xs, 5).unwrap()
        );
    }

    #[test]
    fn univariate_cost_accumulates_across_calls() {
        let xs = sinusoids(40, &[(1.0, 8.0, 0.0)]);
        let mut f = LlmTimeForecaster::new(config(1, 3));
        f.forecast_univariate(&xs, 3).unwrap();
        let first = f.last_cost.unwrap().total_tokens();
        f.forecast_univariate(&xs, 3).unwrap();
        assert!(f.last_cost.unwrap().total_tokens() > first);
    }
}
