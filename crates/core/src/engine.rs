//! The shared forecast engine: one ladder, four forecasters.
//!
//! Every LLM-based forecaster in this crate used to assemble the same
//! pipeline by hand: fit a codec on the history, build a
//! [`ContinuationSpec`], run robust sampling, aggregate by the median and
//! fall back on quorum failure. [`ForecastEngine`] owns that ladder once,
//! parameterized by a [`Codec`]; `MultiCastForecaster`, `LlmTimeForecaster`,
//! `SaxMultiCastForecaster` and `StreamingMultiCast` are now thin
//! configurations of it.
//!
//! The engine is also where the fit-once / sample-many split pays off:
//! [`PreparedBackend::fit`] conditions the backend on the prompt exactly
//! once (via [`fit_model`]) and every sample decodes through a cheap
//! [`mc_lm::FrozenLm::fork`] session. Session decoding is bit-identical
//! to the refit-per-sample path (see `mc-lm`'s preset tests), so forecasts
//! are unchanged while `prompt_tokens` drops from `S` prompt passes to one.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use mc_tslib::error::{invalid_param, pipeline_error, Result};
use mc_tslib::series::MultivariateSeries;

use mc_lm::cost::InferenceCost;
use mc_lm::generate::{generate_session_budgeted, DecodeBudget, GenerateOptions};
use mc_lm::metered::{CostLedger, MeteredLm};
use mc_lm::model::FrozenLm;
use mc_lm::presets::fit_model;
use mc_lm::sampler::{Sampler, SamplerConfig};
use mc_lm::tokenizer::{CharTokenizer, Tokenizer};
use mc_lm::vocab::{TokenId, Vocab};

use mc_obs::{
    point_span, EventKind, Fingerprint, NoopRecorder, Recorder, SpanGuard, SpanKind, TraceEvent,
};

use crate::codec::{Codec, FittedCodec};
use crate::config::ForecastConfig;
use crate::pipeline::{median_aggregate, ContinuationSpec};
use crate::robust::{
    resolve_quorum_failure, run_attempts_observed, ForecastReport, RobustRun, SampleSource,
    TraceScope,
};

/// Content fingerprint of a continuation spec — the trace key (`ctx`)
/// for the frozen context it fits. Mirrors the serve layer's context
/// dedup key (prompt, preset, output restriction, vocabulary); the stop
/// rule is per-sampler and deliberately excluded, so requests that share
/// a context share a fingerprint.
pub fn spec_fingerprint(spec: &ContinuationSpec) -> u64 {
    let mut fp = Fingerprint::new();
    fp.write_str(&spec.prompt);
    fp.write_str(&spec.allowed_chars);
    fp.write_str(&format!("{:?}", spec.preset));
    // Hash the vocabulary through its id-ordered characters: Debug output
    // would include a HashMap whose iteration order varies per run.
    for &c in spec.vocab.chars() {
        fp.write_u64(c as u64);
    }
    fp.write_u64(spec.refit_epoch);
    fp.finish()
}

/// Family fingerprint of a continuation spec: every identity component
/// of [`spec_fingerprint`] *except* the prompt and refit epoch. Two
/// specs share a family exactly when one's frozen context could be
/// delta-extended into the other's (same preset, output restriction and
/// vocabulary, different observation lengths) — the shard/prefix-scan
/// key of the serve-side context cache.
pub fn spec_family(spec: &ContinuationSpec) -> u64 {
    let mut fp = Fingerprint::new();
    fp.write_str(&spec.allowed_chars);
    fp.write_str(&format!("{:?}", spec.preset));
    for &c in spec.vocab.chars() {
        fp.write_u64(c as u64);
    }
    fp.finish()
}

/// Builds the token mask for an output-character restriction.
pub(crate) fn decode_mask(vocab: &Vocab, chars: &str) -> Vec<bool> {
    let mut mask = vec![false; vocab.len()];
    for id in vocab.ids_of(chars) {
        mask[id as usize] = true;
    }
    mask
}

/// The shared sampling ladder, parameterized by a [`Codec`].
#[derive(Debug, Clone, Copy)]
pub struct ForecastEngine {
    /// Shared pipeline knobs (samples, sampler seeds, preset, robustness).
    pub config: ForecastConfig,
    /// Where sample text comes from (model, or fault-injected for tests).
    pub source: SampleSource,
}

impl ForecastEngine {
    /// An engine drawing real model samples.
    pub fn new(config: ForecastConfig) -> Self {
        Self::with_source(config, SampleSource::Model)
    }

    /// An engine with an explicit sample source.
    pub fn with_source(config: ForecastConfig, source: SampleSource) -> Self {
        Self { config, source }
    }

    /// The [`ContinuationSpec`] this engine runs a fitted codec with —
    /// the single construction site of specs in the production pipeline.
    pub fn continuation_spec(&self, fitted: &dyn FittedCodec, horizon: usize) -> ContinuationSpec {
        let separators = fitted.separators_for(horizon);
        ContinuationSpec {
            prompt: fitted.prompt().to_string(),
            vocab: fitted.vocab(),
            allowed_chars: fitted.allowed_chars(),
            preset: self.config.preset,
            separators,
            max_tokens: self.config.max_tokens(separators, fitted.group_width()),
            refit_epoch: 0,
        }
    }

    /// Fits `codec` on `train` and runs the full robust ladder.
    pub fn run(
        &self,
        codec: &dyn Codec,
        train: &MultivariateSeries,
        horizon: usize,
    ) -> Result<EngineRun> {
        let fitted = codec.fit(train)?;
        self.run_fitted(fitted.as_ref(), horizon)
    }

    /// Runs the robust ladder with an already-fitted codec: fit the
    /// backend once, fork one decode session per (sample, attempt),
    /// validate/retry/quorum via [`crate::robust::run_attempts`].
    pub fn run_fitted(&self, fitted: &dyn FittedCodec, horizon: usize) -> Result<EngineRun> {
        self.run_fitted_observed(fitted, horizon, &NoopRecorder, 0)
    }

    /// [`ForecastEngine::run_fitted`] with trace emission: `context_fit`
    /// and `context_join` around the backend fit, per-attempt events via
    /// the robust layer, and a `quorum_resolve` once sampling settles.
    /// `req` is the request content fingerprint events are tagged with;
    /// the context key is derived from the spec ([`spec_fingerprint`]).
    /// Results are identical to the unobserved path.
    ///
    /// # Errors
    /// Exactly as [`ForecastEngine::run_fitted`].
    pub fn run_fitted_observed(
        &self,
        fitted: &dyn FittedCodec,
        horizon: usize,
        obs: &dyn Recorder,
        req: u64,
    ) -> Result<EngineRun> {
        let cfg = self.config;
        let spec = self.continuation_spec(fitted, horizon);
        let ctx = spec_fingerprint(&spec);
        let backend = {
            // The `context_fit` span is keyed by the context fingerprint
            // (its own root lane), mirroring the ctx-keyed fit event.
            let _fit_span = SpanGuard::open(obs, ctx, SpanKind::ContextFit);
            PreparedBackend::fit(&spec)?
        };
        if obs.enabled() {
            let prompt = backend.prompt_cost();
            obs.record(TraceEvent {
                req: 0,
                ctx,
                kind: EventKind::ContextFit {
                    prompt_tokens: prompt.prompt_tokens,
                    work_units: prompt.work_units,
                },
            });
            obs.record(TraceEvent { req, ctx, kind: EventKind::ContextJoin });
        }
        let sampler = backend.sampler(spec.separators, spec.max_tokens);
        let expect = fitted.expectations(horizon);
        let run = run_attempts_observed(
            cfg.samples.max(1),
            cfg.robust,
            self.source,
            &expect,
            |vi, budget| sampler.draw_budgeted(cfg.sampler_for(vi), budget),
            |text| fitted.decode(text, horizon),
            TraceScope { obs, req, ctx },
        )?;
        if obs.enabled() {
            obs.record(TraceEvent {
                req,
                ctx,
                kind: EventKind::QuorumResolve {
                    valid: run.report.valid_samples as u32,
                    required: cfg.robust.required_valid(cfg.samples.max(1)) as u32,
                    met: run.quorum_met,
                },
            });
            point_span(obs, req, SpanKind::Quorum);
        }
        Ok(EngineRun::new(run, self.config, backend.prompt_cost()))
    }

    /// The non-robust sibling of [`ForecastEngine::run`]: draws exactly
    /// `samples` continuations with caller-chosen sampler configs and no
    /// validation/retry — the interval estimator needs every raw sample,
    /// defects included, to keep its quantiles honest. Semantics mirror
    /// [`crate::pipeline::run_samples`] (same errors, deterministic, one
    /// scoped thread per sample) except the prompt is fitted once.
    pub fn draw(
        &self,
        codec: &dyn Codec,
        train: &MultivariateSeries,
        horizon: usize,
        samples: usize,
        sampler_for: impl Fn(usize) -> SamplerConfig + Sync,
    ) -> Result<(Vec<Vec<Vec<f64>>>, InferenceCost)> {
        if samples == 0 {
            return Err(invalid_param("samples", "at least one sample required"));
        }
        let fitted = codec.fit(train)?;
        let spec = self.continuation_spec(fitted.as_ref(), horizon);
        let backend = PreparedBackend::fit(&spec)?;
        let sampler = backend.sampler(spec.separators, spec.max_tokens);
        type SampleSlot = Option<std::thread::Result<Result<(Vec<Vec<f64>>, InferenceCost)>>>;
        let mut per_sample: Vec<SampleSlot> = Vec::new();
        per_sample.resize_with(samples, || None);
        std::thread::scope(|scope| {
            for (i, slot) in per_sample.iter_mut().enumerate() {
                let sampler = &sampler;
                let sampler_for = &sampler_for;
                let fitted = fitted.as_ref();
                scope.spawn(move || {
                    *slot = Some(catch_unwind(AssertUnwindSafe(|| {
                        let (text, cost) = sampler.draw(sampler_for(i))?;
                        Ok((fitted.decode(&text, horizon)?, cost))
                    })));
                });
            }
        });
        let mut decoded = Vec::with_capacity(samples);
        let mut total = backend.prompt_cost();
        for (i, slot) in per_sample.into_iter().enumerate() {
            let outcome = slot
                .ok_or_else(|| pipeline_error("sample-thread", format!("sample {i} never ran")))?;
            let (d, cost) = outcome
                .map_err(|_| pipeline_error("sample-thread", format!("sample {i} panicked")))??;
            decoded.push(d);
            total.absorb(cost);
        }
        Ok((decoded, total))
    }
}

/// The fit-once half of a forecast: a backend conditioned on the prompt
/// exactly once, plus the tokenizer and output mask every sample shares.
pub struct PreparedBackend {
    frozen: Arc<dyn FrozenLm>,
    tokenizer: CharTokenizer,
    allowed: Vec<bool>,
    separator: TokenId,
}

impl PreparedBackend {
    /// Encodes the prompt, conditions the preset backend on it and
    /// freezes the result. Fails exactly where [`crate::pipeline::run_continuation`]
    /// would: unencodable prompt, or a vocabulary without the separator.
    pub fn fit(spec: &ContinuationSpec) -> Result<Self> {
        let tokenizer = CharTokenizer::new(spec.vocab.clone());
        let prompt_tokens = tokenizer
            .encode(&spec.prompt)
            .map_err(|e| pipeline_error("encode-prompt", e.to_string()))?;
        let separator = spec
            .vocab
            .id(',')
            .ok_or_else(|| pipeline_error("separator", "vocabulary lacks the ',' separator"))?;
        let allowed = decode_mask(&spec.vocab, &spec.allowed_chars);
        let frozen: Arc<dyn FrozenLm> =
            Arc::from(fit_model(spec.preset, spec.vocab.len(), &prompt_tokens));
        Ok(Self { frozen, tokenizer, allowed, separator })
    }

    /// Assembles a backend around an **already fitted** frozen context
    /// (the serve layer's warm-cache path), replicating exactly the
    /// tokenizer/mask/separator assembly of [`PreparedBackend::fit`] —
    /// only the prompt conditioning itself is skipped. The caller is
    /// responsible for `frozen` actually being the fit of `spec` (the
    /// cache guarantees this by keying on [`spec_fingerprint`]).
    ///
    /// # Errors
    /// As [`PreparedBackend::fit`], minus prompt encoding (the prompt is
    /// already conditioned into `frozen`).
    pub fn from_frozen(frozen: Arc<dyn FrozenLm>, spec: &ContinuationSpec) -> Result<Self> {
        let tokenizer = CharTokenizer::new(spec.vocab.clone());
        let separator = spec
            .vocab
            .id(',')
            .ok_or_else(|| pipeline_error("separator", "vocabulary lacks the ',' separator"))?;
        let allowed = decode_mask(&spec.vocab, &spec.allowed_chars);
        Ok(Self { frozen, tokenizer, allowed, separator })
    }

    /// Wraps this backend's frozen context in a [`MeteredLm`] recording
    /// into `ledger` (see [`PreparedBackend::fit_metered_observed`]).
    /// The current prompt cost lands in the ledger immediately, so
    /// metering a warm cached context attributes exactly what metering
    /// the equivalent fresh fit would — warm and cold serving produce
    /// identical cost audits.
    pub fn meter_observed(
        mut self,
        ledger: Arc<CostLedger>,
        recorder: Arc<dyn Recorder>,
        ctx: u64,
    ) -> Self {
        self.frozen = Arc::new(MeteredLm::observed(self.frozen, ledger, recorder, ctx));
        self
    }

    /// The frozen context this backend decodes from.
    ///
    /// The serve layer calls this *before* [`PreparedBackend::meter_observed`]
    /// to hand the plain fitted context to the cross-batch cache: the
    /// cache must store the unwrapped context so a later batch can
    /// re-meter it into its own ledger.
    pub fn frozen(&self) -> Arc<dyn FrozenLm> {
        Arc::clone(&self.frozen)
    }

    /// Like [`PreparedBackend::fit`], but wraps the frozen backend in a
    /// [`MeteredLm`] recording into `ledger`: the prompt cost lands in the
    /// ledger immediately, and every session forked from this backend
    /// records its generated-token cost when it completes. Decoding is
    /// bit-identical to the unmetered backend — the serving layer uses
    /// this to audit its per-request cost attribution.
    pub fn fit_metered(spec: &ContinuationSpec, ledger: Arc<CostLedger>) -> Result<Self> {
        Self::fit_metered_observed(spec, ledger, Arc::new(NoopRecorder), 0)
    }

    /// Like [`PreparedBackend::fit_metered`], but completed sessions also
    /// emit `session_cost` trace events tagged with the `ctx` context
    /// fingerprint (scheduler-scoped: they feed metrics and wall-clock
    /// exports, never the canonical trace).
    ///
    /// # Errors
    /// Exactly as [`PreparedBackend::fit`].
    pub fn fit_metered_observed(
        spec: &ContinuationSpec,
        ledger: Arc<CostLedger>,
        recorder: Arc<dyn Recorder>,
        ctx: u64,
    ) -> Result<Self> {
        Ok(Self::fit(spec)?.meter_observed(ledger, recorder, ctx))
    }

    /// The one-time prompt-conditioning cost (independent of how many
    /// sessions are forked later).
    pub fn prompt_cost(&self) -> InferenceCost {
        self.frozen.prompt_cost()
    }

    /// A sampler over this backend with the given stop rule.
    pub fn sampler(&self, separators: usize, max_tokens: usize) -> SessionSampler<'_> {
        SessionSampler::new(
            self.frozen.as_ref(),
            &self.tokenizer,
            &self.allowed,
            GenerateOptions::until_separators(self.separator, separators, max_tokens),
        )
    }
}

/// The sample-many half: draws constrained continuations by forking
/// throwaway decode sessions off a frozen backend. `Sync`, so samples can
/// be drawn from scoped threads concurrently.
pub struct SessionSampler<'a> {
    frozen: &'a dyn FrozenLm,
    tokenizer: &'a CharTokenizer,
    allowed: &'a [bool],
    options: GenerateOptions,
}

impl<'a> SessionSampler<'a> {
    /// A sampler over any frozen backend (the streaming forecaster passes
    /// its live model, which implements [`FrozenLm`] by forking).
    pub fn new(
        frozen: &'a dyn FrozenLm,
        tokenizer: &'a CharTokenizer,
        allowed: &'a [bool],
        options: GenerateOptions,
    ) -> Self {
        Self { frozen, tokenizer, allowed, options }
    }

    /// Draws one continuation: fork a session, generate under the output
    /// restriction and stop rule, decode to text. The returned cost covers
    /// only this session's generated tokens — the prompt was paid for at
    /// fit time.
    ///
    /// # Errors
    /// [`mc_tslib::error::TsError::Pipeline`] when the backend emits an
    /// out-of-vocabulary token (an infrastructure bug, not a sample defect).
    pub fn draw(&self, config: SamplerConfig) -> Result<(String, InferenceCost)> {
        self.draw_budgeted(config, None)
    }

    /// [`SessionSampler::draw`] under an optional decode deadline: the
    /// session stops cooperatively once `budget` generated tokens are
    /// spent, returning whatever (possibly truncated) text exists at that
    /// point — the robust layer's validation classifies the truncation.
    /// A `None` budget is exactly [`SessionSampler::draw`].
    ///
    /// # Errors
    /// Exactly as [`SessionSampler::draw`].
    pub fn draw_budgeted(
        &self,
        config: SamplerConfig,
        budget: Option<u64>,
    ) -> Result<(String, InferenceCost)> {
        let mut session = self.frozen.fork();
        let mut sampler = Sampler::new(config);
        let budget = budget.map(DecodeBudget::new);
        let out = generate_session_budgeted(
            session.as_mut(),
            &mut sampler,
            |t: TokenId| self.allowed[t as usize],
            &self.options,
            budget.as_ref(),
        );
        let text = self
            .tokenizer
            .decode(&out)
            .map_err(|e| pipeline_error("decode-continuation", e.to_string()))?;
        Ok((text, session.cost()))
    }
}

/// A completed robust run plus the engine context needed to resolve it
/// into a forecast.
#[derive(Debug, Clone)]
pub struct EngineRun {
    run: RobustRun,
    config: ForecastConfig,
    cost: InferenceCost,
}

impl EngineRun {
    /// Combines a robust run with the one-time prompt cost.
    pub(crate) fn new(run: RobustRun, config: ForecastConfig, prompt_cost: InferenceCost) -> Self {
        let mut cost = prompt_cost;
        cost.absorb(run.cost);
        Self { run, config, cost }
    }

    /// Total cost: one prompt pass plus every attempt's generated tokens.
    pub fn cost(&self) -> InferenceCost {
        self.cost
    }

    /// The run's accounting report.
    pub fn report(&self) -> &ForecastReport {
        &self.run.report
    }

    /// Whether enough valid samples survived to aggregate.
    pub fn quorum_met(&self) -> bool {
        self.run.quorum_met
    }

    /// The valid decoded samples (`sample -> dimension -> horizon`).
    pub fn samples(&self) -> &[Vec<Vec<f64>>] {
        &self.run.samples
    }

    /// Resolves the run into a forecast: pointwise median over the valid
    /// samples on quorum, the policy's fallback path otherwise. This is
    /// the single median/fallback sequencing site shared by the
    /// forecasters.
    pub fn resolve(
        &self,
        train: &MultivariateSeries,
        horizon: usize,
    ) -> Result<MultivariateSeries> {
        if self.run.quorum_met {
            let columns = median_aggregate(&self.run.samples)?;
            MultivariateSeries::from_columns(train.names().to_vec(), columns)
        } else {
            resolve_quorum_failure(self.config.robust, &self.run.report, train, horizon)
        }
    }

    /// Surrenders the report (forecasters stash it as `last_report`).
    pub fn into_report(self) -> ForecastReport {
        self.run.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::DigitCodec;
    use crate::mux::MuxMethod;
    use crate::pipeline::run_continuation;
    use mc_datasets::generators::sinusoids;

    fn series(n: usize) -> MultivariateSeries {
        let a = sinusoids(n, &[(1.0, 12.0, 0.0)]);
        let b: Vec<f64> = a.iter().map(|&v| 4.0 + 0.5 * v).collect();
        MultivariateSeries::from_columns(vec!["a".into(), "b".into()], vec![a, b]).unwrap()
    }

    #[test]
    fn spec_matches_manual_assembly() {
        let train = series(48);
        let cfg = ForecastConfig::default();
        let engine = ForecastEngine::new(cfg);
        let codec = DigitCodec::from_config(MuxMethod::ValueInterleave, &cfg);
        let fitted = codec.fit_digit(&train).unwrap();
        let spec = engine.continuation_spec(&fitted, 6);
        assert_eq!(spec.prompt, fitted.prompt());
        assert_eq!(spec.allowed_chars, "0123456789,");
        assert_eq!(spec.preset, cfg.preset);
        assert_eq!(spec.separators, 6, "VI: one separator per horizon step");
        assert_eq!(spec.max_tokens, cfg.max_tokens(6, 2 * cfg.digits as usize));
    }

    /// A fit-once backend must draw the exact text a refit-per-sample
    /// `run_continuation` draws, while charging the prompt only at fit
    /// time — the whole point of the split.
    #[test]
    fn session_draw_is_bit_identical_to_run_continuation() {
        let train = series(48);
        let cfg = ForecastConfig::default();
        let engine = ForecastEngine::new(cfg);
        let fitted =
            DigitCodec::from_config(MuxMethod::ValueInterleave, &cfg).fit_digit(&train).unwrap();
        let spec = engine.continuation_spec(&fitted, 4);
        let backend = PreparedBackend::fit(&spec).unwrap();
        let sampler = backend.sampler(spec.separators, spec.max_tokens);
        for i in 0..3 {
            let sc = cfg.sampler_for(i);
            let (text_new, cost_new) = sampler.draw(sc).unwrap();
            let (text_old, cost_old) = run_continuation(&spec, sc).unwrap();
            assert_eq!(text_new, text_old, "sample {i}");
            assert_eq!(cost_new.generated_tokens, cost_old.generated_tokens);
            assert_eq!(cost_new.prompt_tokens, 0, "sessions never re-pay the prompt");
            assert_eq!(backend.prompt_cost().prompt_tokens, cost_old.prompt_tokens);
        }
    }

    /// `draw` (the non-robust path) reproduces `run_samples` semantics:
    /// deterministic, errors on zero samples, and the cost covers one
    /// prompt pass plus all sessions.
    #[test]
    fn draw_is_deterministic_and_prompt_counted_once() {
        let train = series(40);
        let cfg = ForecastConfig { samples: 3, ..ForecastConfig::default() };
        let engine = ForecastEngine::new(cfg);
        let codec = DigitCodec::from_config(MuxMethod::ValueConcat, &cfg);
        let (a, cost_a) = engine.draw(&codec, &train, 4, 3, |i| cfg.sampler_for(i)).unwrap();
        let (b, cost_b) = engine.draw(&codec, &train, 4, 3, |i| cfg.sampler_for(i)).unwrap();
        assert_eq!(a, b);
        assert_eq!(cost_a, cost_b);
        assert_eq!(a.len(), 3);
        // One prompt pass, not three.
        let fitted = codec.fit_digit(&train).unwrap();
        let spec = engine.continuation_spec(&fitted, 4);
        let prompt_len = spec.prompt.chars().count() as u64;
        assert_eq!(cost_a.prompt_tokens, prompt_len);
        let zero = engine.draw(&codec, &train, 4, 0, |i| cfg.sampler_for(i));
        assert!(zero.is_err());
    }
}
