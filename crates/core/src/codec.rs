//! Composable serialization codecs for the [`crate::engine::ForecastEngine`].
//!
//! Every LLM-based forecaster in this crate follows the same ladder:
//! fit a representation on the history, serialize it into a prompt over a
//! small character vocabulary, sample constrained continuations, and decode
//! each continuation back to `dims x horizon` values. The only genuine
//! difference between the digit pipelines (MultiCast, LLMTime, streaming,
//! intervals) and the SAX pipeline is the *codec*: how values become
//! characters and back. This module captures that difference behind two
//! traits:
//!
//! - [`Codec`] — the unfitted configuration (`fit` consumes the training
//!   history and returns the stateful half);
//! - [`FittedCodec`] — everything the engine needs to prompt, constrain,
//!   validate and decode: the serialized prompt, the vocabulary, the
//!   output-character restriction, separator/width bookkeeping, and the
//!   inverse transform.
//!
//! Two implementations cover the whole crate: [`DigitCodec`] (rescale to
//! fixed-width integers + dimensional multiplexing — §III-A) and
//! [`SaxCodec`] (z-norm → PAA → Gaussian symbols — §III-B).

use mc_tslib::error::Result;
use mc_tslib::series::MultivariateSeries;
use mc_tslib::transform::ZNormState;

use mc_lm::vocab::Vocab;

use mc_sax::alphabet::{SaxAlphabet, SaxAlphabetKind};
use mc_sax::encoder::{SaxConfig, SaxEncoder};

use crate::config::ForecastConfig;
use crate::mux::{Multiplexer, MuxMethod};
use crate::robust::SampleExpectations;
use crate::scaling::FixedDigitScaler;

/// The characters a digit-serialized group may contain.
pub const DIGIT_ALPHABET: &str = "0123456789";

/// The full output restriction of a digit-serialized stream: digits plus
/// the group separator (the paper's `[0-9,]` constraint).
pub const DIGIT_STREAM_CHARS: &str = "0123456789,";

/// An unfitted serialization scheme: fitting it on the training history
/// produces the stateful [`FittedCodec`] the engine runs with.
pub trait Codec {
    /// Fits the codec on `train` (scaler statistics, z-norm states, the
    /// serialized prompt) and returns the runnable half.
    fn fit(&self, train: &MultivariateSeries) -> Result<Box<dyn FittedCodec>>;
}

/// A codec fitted on a concrete history: serializer state plus the exact
/// inverse. `Send + Sync` because decode runs on scoped sample threads.
pub trait FittedCodec: Send + Sync {
    /// The serialized history (ends with a separator, so a continuation
    /// appended to it starts a fresh group).
    fn prompt(&self) -> &str;

    /// The vocabulary the backend speaks.
    fn vocab(&self) -> Vocab;

    /// Characters the continuation may contain (output restriction).
    fn allowed_chars(&self) -> String;

    /// Dimensions of the fitted history.
    fn dims(&self) -> usize;

    /// Separator emissions after which a `horizon`-step continuation is
    /// complete (the generation stop rule).
    fn separators_for(&self, horizon: usize) -> usize;

    /// Characters per comma-separated group.
    fn group_width(&self) -> usize;

    /// Non-separator characters the decode path understands.
    fn alphabet(&self) -> String;

    /// Whether groups must be pure ASCII digits.
    fn numeric(&self) -> bool;

    /// Decodes a continuation back to `dims x horizon` values (lenient on
    /// malformed text — repairs are the validator's business to report).
    fn decode(&self, text: &str, horizon: usize) -> Result<Vec<Vec<f64>>>;

    /// What a well-formed continuation looks like, for the robust layer.
    /// This is the single construction site of [`SampleExpectations`] in
    /// the production pipeline.
    fn expectations(&self, horizon: usize) -> SampleExpectations {
        SampleExpectations {
            separators: self.separators_for(horizon),
            group_width: self.group_width(),
            alphabet: self.alphabet(),
            numeric: self.numeric(),
            dims: self.dims(),
            horizon,
        }
    }
}

/// The digit codec: per-dimension fixed-width rescaling plus one of the
/// paper's three multiplexing schemes (§III-A, Figure 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigitCodec {
    /// Which multiplexing scheme serializes the dimensions.
    pub method: MuxMethod,
    /// Digits per rescaled value (`b` in formulas (1)–(3)).
    pub digits: u32,
    /// Rescaling headroom fraction.
    pub headroom: f64,
}

impl DigitCodec {
    /// The codec a [`ForecastConfig`] implies for a multiplexing method.
    pub fn from_config(method: MuxMethod, config: &ForecastConfig) -> Self {
        Self { method, digits: config.digits, headroom: config.headroom }
    }

    /// Fits to the concrete type (the streaming forecaster needs
    /// [`FittedDigitCodec::encode_row`], which the trait does not expose).
    pub fn fit_digit(&self, train: &MultivariateSeries) -> Result<FittedDigitCodec> {
        let dims = train.dims();
        let scaler = FixedDigitScaler::fit(train.columns(), self.digits, self.headroom)?;
        let mut codes = Vec::with_capacity(dims);
        for d in 0..dims {
            codes.push(scaler.scale_column(d, train.column(d)?)?);
        }
        let mux = self.method.build();
        let prompt = mux.mux(&codes, self.digits);
        Ok(FittedDigitCodec { method: self.method, digits: self.digits, scaler, mux, prompt, dims })
    }
}

impl Codec for DigitCodec {
    fn fit(&self, train: &MultivariateSeries) -> Result<Box<dyn FittedCodec>> {
        Ok(Box::new(self.fit_digit(train)?))
    }
}

/// A [`DigitCodec`] fitted on a history: the scaler statistics, the
/// multiplexer and the serialized prompt.
pub struct FittedDigitCodec {
    method: MuxMethod,
    digits: u32,
    scaler: FixedDigitScaler,
    mux: Box<dyn Multiplexer>,
    prompt: String,
    dims: usize,
}

impl FittedDigitCodec {
    /// Serializes one new row with the fitted scaler — the streaming
    /// forecaster's incremental encode path (O(tokens-per-row)).
    pub fn encode_row(&self, row: &[f64]) -> Result<String> {
        let codes: Vec<Vec<u64>> = row
            .iter()
            .enumerate()
            .map(|(d, &v)| Ok(vec![self.scaler.scale_value(d, v)?]))
            .collect::<Result<_>>()?;
        Ok(self.mux.mux(&codes, self.digits))
    }
}

impl FittedCodec for FittedDigitCodec {
    fn prompt(&self) -> &str {
        &self.prompt
    }

    fn vocab(&self) -> Vocab {
        Vocab::numeric()
    }

    fn allowed_chars(&self) -> String {
        DIGIT_STREAM_CHARS.to_string()
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn separators_for(&self, horizon: usize) -> usize {
        self.mux.separators_for(self.dims, horizon)
    }

    fn group_width(&self) -> usize {
        self.method.group_width(self.dims, self.digits)
    }

    fn alphabet(&self) -> String {
        DIGIT_ALPHABET.to_string()
    }

    fn numeric(&self) -> bool {
        true
    }

    fn decode(&self, text: &str, horizon: usize) -> Result<Vec<Vec<f64>>> {
        let codes = self.mux.demux(text, self.dims, self.digits, horizon);
        codes.iter().enumerate().map(|(d, col)| self.scaler.descale_column(d, col)).collect()
    }
}

/// The SAX codec: z-normalize → PAA → Gaussian-breakpoint symbols per
/// dimension, symbols of all dimensions interleaved segment-major
/// (§III-B, Tables VIII–IX).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaxCodec {
    /// SAX knobs (segment length, alphabet kind and size).
    pub sax: SaxConfig,
}

impl Codec for SaxCodec {
    fn fit(&self, train: &MultivariateSeries) -> Result<Box<dyn FittedCodec>> {
        let dims = train.dims();
        let encoder = SaxEncoder::new(self.sax);
        // Encode every dimension; remember its z-norm state for decoding.
        let mut words = Vec::with_capacity(dims);
        let mut states: Vec<ZNormState> = Vec::with_capacity(dims);
        for d in 0..dims {
            let enc = encoder.encode(train.column(d)?);
            states.push(enc.znorm);
            words.push(enc.symbols);
        }
        let prompt = mux_symbols(&words, self.sax.alphabet);
        Ok(Box::new(FittedSaxCodec { sax: self.sax, encoder, states, prompt, dims }))
    }
}

/// A [`SaxCodec`] fitted on a history: the per-dimension z-norm states and
/// the symbol-interleaved prompt.
pub struct FittedSaxCodec {
    sax: SaxConfig,
    encoder: SaxEncoder,
    states: Vec<ZNormState>,
    prompt: String,
    dims: usize,
}

impl FittedCodec for FittedSaxCodec {
    fn prompt(&self) -> &str {
        &self.prompt
    }

    fn vocab(&self) -> Vocab {
        match self.sax.alphabet.kind() {
            SaxAlphabetKind::Alphabetic => Vocab::sax_alphabetic(self.sax.alphabet.size()),
            SaxAlphabetKind::Digital => Vocab::sax_digital(self.sax.alphabet.size()),
        }
    }

    fn allowed_chars(&self) -> String {
        self.sax.alphabet.chars().chain([',']).collect()
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn separators_for(&self, horizon: usize) -> usize {
        horizon.div_ceil(self.sax.segment_len)
    }

    fn group_width(&self) -> usize {
        self.dims
    }

    /// SAX streams are validated against the *actual* alphabet (not the
    /// full digit charset), so a digital alphabet of size 5 still flags
    /// '7' as out-of-band.
    fn alphabet(&self) -> String {
        self.sax.alphabet.chars().collect()
    }

    fn numeric(&self) -> bool {
        false
    }

    fn decode(&self, text: &str, horizon: usize) -> Result<Vec<Vec<f64>>> {
        let segments = self.separators_for(horizon);
        let words = demux_symbols(text, self.dims, self.sax.alphabet, segments);
        Ok(words
            .iter()
            .zip(&self.states)
            .map(|(w, &st)| {
                let mut expanded =
                    self.encoder.decode_expanded(w, st, segments * self.sax.segment_len);
                expanded.truncate(horizon);
                expanded
            })
            .collect())
    }
}

/// Serializes per-dimension SAX words, segment-major:
/// segment `s` contributes the symbols of every dimension, then a comma.
pub(crate) fn mux_symbols(words: &[Vec<usize>], alphabet: SaxAlphabet) -> String {
    let n = words.first().map_or(0, Vec::len);
    let mut out = String::with_capacity(n * (words.len() + 1));
    for s in 0..n {
        for w in words {
            out.push(alphabet.symbol(w[s]));
        }
        out.push(',');
    }
    out
}

/// Parses a generated continuation into per-dimension symbol indices,
/// leniently (wrong-width groups repaired, missing segments repeated).
pub(crate) fn demux_symbols(
    text: &str,
    dims: usize,
    alphabet: SaxAlphabet,
    segments: usize,
) -> Vec<Vec<usize>> {
    let mid = alphabet.size() / 2;
    let mut out = vec![Vec::with_capacity(segments); dims];
    for group in text.split(',').map(str::trim).filter(|g| !g.is_empty()).take(segments) {
        let symbols: Vec<usize> = group.chars().filter_map(|c| alphabet.index(c)).collect();
        for (d, col) in out.iter_mut().enumerate() {
            let sym = symbols.get(d).copied().or_else(|| col.last().copied()).unwrap_or(mid);
            col.push(sym);
        }
    }
    for col in &mut out {
        let fill = col.last().copied().unwrap_or(mid);
        while col.len() < segments {
            col.push(fill);
        }
        col.truncate(segments);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_datasets::generators::sinusoids;

    fn series(n: usize) -> MultivariateSeries {
        let a = sinusoids(n, &[(1.0, 12.0, 0.0)]);
        let b: Vec<f64> = a.iter().map(|&v| 10.0 - 3.0 * v).collect();
        MultivariateSeries::from_columns(vec!["a".into(), "b".into()], vec![a, b]).unwrap()
    }

    #[test]
    fn mux_symbols_format() {
        let alphabet = SaxAlphabet::new(SaxAlphabetKind::Alphabetic, 5).unwrap();
        let s = mux_symbols(&[vec![0, 1], vec![1, 2]], alphabet);
        assert_eq!(s, "ab,bc,");
    }

    #[test]
    fn demux_symbols_round_trip() {
        let alphabet = SaxAlphabet::new(SaxAlphabetKind::Alphabetic, 5).unwrap();
        let words = vec![vec![0, 1, 4], vec![2, 2, 0]];
        let text = mux_symbols(&words, alphabet);
        assert_eq!(demux_symbols(&text, 2, alphabet, 3), words);
    }

    #[test]
    fn demux_symbols_repairs_malformed() {
        let alphabet = SaxAlphabet::new(SaxAlphabetKind::Alphabetic, 5).unwrap();
        // Second group is short one dimension, third is missing entirely.
        let words = demux_symbols("ab,c,", 2, alphabet, 3);
        assert_eq!(words[0], vec![0, 2, 2]);
        // Dim 1 falls back to its previous symbol (b), then repeats.
        assert_eq!(words[1], vec![1, 1, 1]);
    }

    #[test]
    fn digit_codec_matches_manual_assembly() {
        let train = series(48);
        let cfg = ForecastConfig::default();
        for method in MuxMethod::ALL {
            let fitted = DigitCodec::from_config(method, &cfg).fit_digit(&train).unwrap();
            // The prompt is exactly scaler + mux applied by hand.
            let scaler = FixedDigitScaler::fit(train.columns(), cfg.digits, cfg.headroom).unwrap();
            let codes: Vec<Vec<u64>> =
                (0..2).map(|d| scaler.scale_column(d, train.column(d).unwrap()).unwrap()).collect();
            assert_eq!(fitted.prompt(), method.build().mux(&codes, cfg.digits));
            assert_eq!(fitted.dims(), 2);
            assert_eq!(fitted.group_width(), method.group_width(2, cfg.digits));
            assert_eq!(fitted.separators_for(4), method.build().separators_for(2, 4));
            let expect = fitted.expectations(4);
            assert!(expect.numeric);
            assert_eq!(expect.alphabet, DIGIT_ALPHABET);
            // Decoding the prompt itself recovers the (quantized) history.
            let decoded = fitted.decode(fitted.prompt(), train.len()).unwrap();
            assert_eq!(decoded.len(), 2);
            assert_eq!(decoded[0].len(), train.len());
        }
    }

    #[test]
    fn digit_codec_encode_row_matches_prompt_tail() {
        let train = series(32);
        let cfg = ForecastConfig::default();
        let fitted =
            DigitCodec::from_config(MuxMethod::ValueInterleave, &cfg).fit_digit(&train).unwrap();
        // Re-encoding the last row reproduces the prompt's final group.
        let last = train.row(train.len() - 1).unwrap();
        let tail = fitted.encode_row(&last).unwrap();
        assert!(fitted.prompt().ends_with(&tail), "{tail} should end the prompt");
    }

    #[test]
    fn sax_codec_matches_pipeline_conventions() {
        let train = series(60);
        let sax = SaxConfig {
            segment_len: 6,
            alphabet: SaxAlphabet::new(SaxAlphabetKind::Alphabetic, 5).unwrap(),
        };
        let fitted = SaxCodec { sax }.fit(&train).unwrap();
        assert_eq!(fitted.group_width(), 2, "one symbol per dimension per segment");
        assert_eq!(fitted.separators_for(10), 2, "10 steps = 2 segments of 6");
        assert!(!fitted.numeric());
        assert_eq!(fitted.alphabet(), "abcde");
        assert_eq!(fitted.allowed_chars(), "abcde,");
        // Horizon not a segment multiple: decode truncates to the horizon.
        let decoded = fitted.decode("ab,cd,", 10).unwrap();
        assert_eq!(decoded.len(), 2);
        assert!(decoded.iter().all(|col| col.len() == 10));
    }
}
