//! The zero-shot sampling pipeline shared by every LLM-based forecaster.
//!
//! One forecast = `S` independent constrained continuations of the
//! serialized history, each decoded back to numbers, aggregated pointwise
//! by the median (LLMTime's recipe, inherited by MultiCast — §IV-D).
//! Samples are embarrassingly parallel and run on scoped threads; each
//! sample gets its own backend instance and a deterministic seed, so
//! parallelism never changes results.

use mc_tslib::error::{pipeline_error, Result, TsError};

use mc_lm::cost::InferenceCost;
use mc_lm::generate::{generate, GenerateOptions};
use mc_lm::model::observe_all;
use mc_lm::presets::{build_model, ModelPreset};
use mc_lm::sampler::{Sampler, SamplerConfig};
use mc_lm::tokenizer::{CharTokenizer, Tokenizer};
use mc_lm::vocab::{TokenId, Vocab};

/// Everything one sampled continuation needs to run.
#[derive(Debug, Clone)]
pub struct ContinuationSpec {
    /// Serialized history (must end with a separator).
    pub prompt: String,
    /// Vocabulary the backend speaks.
    pub vocab: Vocab,
    /// Characters the continuation may contain (the paper's `[0-9,]`-style
    /// output restriction).
    pub allowed_chars: String,
    /// Backend preset.
    pub preset: ModelPreset,
    /// Stop after this many separator emissions.
    pub separators: usize,
    /// Hard token cap.
    pub max_tokens: usize,
    /// Monotone incremental-refit generation of the frozen context this
    /// spec describes. Freshly built specs are epoch 0; the serve-side
    /// context cache bumps the epoch each time it delta-extends a cached
    /// context (`mc-lm::cache`), so a refit context and its pre-refit
    /// ancestor can never collide in [`crate::engine::spec_fingerprint`].
    pub refit_epoch: u64,
}

/// Runs one constrained continuation; returns the generated text and the
/// backend's cost counters.
///
/// # Errors
/// [`TsError::Pipeline`] when the prompt is not encodable by the chosen
/// vocabulary, the vocabulary lacks the separator, or the backend emits an
/// out-of-vocabulary token — all infrastructure bugs, not sample defects.
pub fn run_continuation(
    spec: &ContinuationSpec,
    sampler_config: SamplerConfig,
) -> Result<(String, InferenceCost)> {
    let tokenizer = CharTokenizer::new(spec.vocab.clone());
    let prompt_tokens = tokenizer
        .encode(&spec.prompt)
        .map_err(|e| pipeline_error("encode-prompt", e.to_string()))?;
    let sep = spec
        .vocab
        .id(',')
        .ok_or_else(|| pipeline_error("separator", "vocabulary lacks the ',' separator"))?;
    let allowed: Vec<bool> = {
        let mut mask = vec![false; spec.vocab.len()];
        for id in spec.vocab.ids_of(&spec.allowed_chars) {
            mask[id as usize] = true;
        }
        mask
    };
    let mut model = build_model(spec.preset, spec.vocab.len());
    observe_all(model.as_mut(), &prompt_tokens);
    let mut sampler = Sampler::new(sampler_config);
    let options = GenerateOptions::until_separators(sep, spec.separators, spec.max_tokens);
    let out = generate(model.as_mut(), &mut sampler, |t: TokenId| allowed[t as usize], &options);
    let text =
        tokenizer.decode(&out).map_err(|e| pipeline_error("decode-continuation", e.to_string()))?;
    Ok((text, model.cost()))
}

/// Runs `samples` continuations (scoped threads, deterministic seeds) and
/// decodes each with `decode`; returns the per-sample decodings
/// (`sample → dimension → horizon`) and the summed cost.
///
/// A panicking sample thread is isolated by `catch_unwind` and surfaced as
/// a [`TsError::Pipeline`] error rather than aborting the process. For
/// per-sample retry, quorum and fallback semantics use
/// [`crate::robust::run_samples_robust`], which builds on this primitive's
/// seeding scheme.
///
/// # Errors
/// The first error among: an invalid `samples` count, a failed
/// continuation ([`run_continuation`]), a failed decode, or a panicked
/// sample thread.
pub fn run_samples<D>(
    spec: &ContinuationSpec,
    samples: usize,
    sampler_for: impl Fn(usize) -> SamplerConfig + Sync,
    decode: D,
) -> Result<(Vec<Vec<Vec<f64>>>, InferenceCost)>
where
    D: Fn(&str) -> Result<Vec<Vec<f64>>> + Sync,
{
    if samples == 0 {
        return Err(mc_tslib::error::invalid_param("samples", "at least one sample required"));
    }
    type SampleSlot = Option<std::thread::Result<Result<(Vec<Vec<f64>>, InferenceCost)>>>;
    let mut per_sample: Vec<SampleSlot> = Vec::new();
    per_sample.resize_with(samples, || None);
    std::thread::scope(|scope| {
        for (i, slot) in per_sample.iter_mut().enumerate() {
            let spec = &*spec;
            let sampler_for = &sampler_for;
            let decode = &decode;
            scope.spawn(move || {
                *slot = Some(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let (text, cost) = run_continuation(spec, sampler_for(i))?;
                    Ok((decode(&text)?, cost))
                })));
            });
        }
    });
    let mut decoded = Vec::with_capacity(samples);
    let mut total = InferenceCost::default();
    for (i, slot) in per_sample.into_iter().enumerate() {
        let outcome =
            slot.ok_or_else(|| pipeline_error("sample-thread", format!("sample {i} never ran")))?;
        let (d, cost) = outcome
            .map_err(|_| pipeline_error("sample-thread", format!("sample {i} panicked")))??;
        decoded.push(d);
        total.absorb(cost);
    }
    Ok((decoded, total))
}

/// Pointwise median across samples: `samples[s][d][t]` → `out[d][t]`.
///
/// # Errors
/// [`TsError::Empty`] with zero samples; [`TsError::RaggedRows`] when a
/// sample's dimension count disagrees with the first sample's;
/// [`TsError::LengthMismatch`] when any column's length disagrees.
pub fn median_aggregate(samples: &[Vec<Vec<f64>>]) -> Result<Vec<Vec<f64>>> {
    if samples.is_empty() {
        return Err(TsError::Empty);
    }
    let dims = samples[0].len();
    let horizon = samples[0].first().map_or(0, Vec::len);
    for (s, sample) in samples.iter().enumerate() {
        if sample.len() != dims {
            return Err(TsError::RaggedRows { row: s, expected: dims, actual: sample.len() });
        }
        for col in sample {
            if col.len() != horizon {
                return Err(TsError::LengthMismatch { expected: horizon, actual: col.len() });
            }
        }
    }
    let mut out = vec![vec![0.0; horizon]; dims];
    let mut buf = Vec::with_capacity(samples.len());
    for d in 0..dims {
        for t in 0..horizon {
            buf.clear();
            for s in samples {
                buf.push(s[d][t]);
            }
            // O(n) selection instead of a full sort: the upper-middle
            // element lands at `mid` and, for even counts, the lower one
            // is the maximum of the left partition — the same two operands
            // the sorted version averaged, so results are bit-identical.
            let mid = buf.len() / 2;
            let cmp = |a: &f64, b: &f64| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal);
            out[d][t] = if buf.len() % 2 == 1 {
                *buf.select_nth_unstable_by(mid, cmp).1
            } else {
                let (left, hi, _) = buf.select_nth_unstable_by(mid, cmp);
                let lo = left.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                0.5 * (lo + *hi)
            };
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(prompt: &str, separators: usize) -> ContinuationSpec {
        ContinuationSpec {
            prompt: prompt.into(),
            vocab: Vocab::numeric(),
            allowed_chars: "0123456789,".into(),
            preset: ModelPreset::Large,
            separators,
            max_tokens: 200,
            refit_epoch: 0,
        }
    }

    #[test]
    fn continuation_respects_constraint_and_stop() {
        let s = spec("123,123,123,123,123,123,123,123,", 3);
        let cfg = SamplerConfig { temperature: 0.2, seed: 1, ..Default::default() };
        let (text, cost) = run_continuation(&s, cfg).unwrap();
        assert!(text.chars().all(|c| c.is_ascii_digit() || c == ','), "{text}");
        assert_eq!(text.matches(',').count(), 3);
        assert!(cost.prompt_tokens > 0 && cost.generated_tokens > 0);
    }

    #[test]
    fn strongly_periodic_prompt_is_continued() {
        // A constant history must be continued (nearly) constantly at low
        // temperature by the in-context backend.
        let s = spec(&"042,".repeat(40), 4);
        let cfg =
            SamplerConfig { temperature: 0.05, top_k: None, top_p: None, seed: 2, epsilon: 0.0 };
        let (text, _) = run_continuation(&s, cfg).unwrap();
        assert_eq!(text, "042,042,042,042,", "got {text}");
    }

    #[test]
    fn run_samples_is_deterministic_and_parallel_safe() {
        let s = spec(&"017,023,".repeat(20), 2);
        let decode = |text: &str| -> Result<Vec<Vec<f64>>> {
            Ok(vec![text.split(',').filter(|g| !g.is_empty()).map(|g| g.len() as f64).collect()])
        };
        let sampler_for =
            |i: usize| SamplerConfig { seed: 10 + i as u64, ..SamplerConfig::default() };
        let (a, cost_a) = run_samples(&s, 4, sampler_for, decode).unwrap();
        let (b, cost_b) = run_samples(&s, 4, sampler_for, decode).unwrap();
        assert_eq!(a, b, "parallel sampling must be deterministic");
        assert_eq!(cost_a, cost_b);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn run_samples_isolates_panicking_decode() {
        let s = spec(&"042,".repeat(30), 2);
        let out = run_samples(
            &s,
            2,
            |i| SamplerConfig { seed: i as u64, ..SamplerConfig::default() },
            |_: &str| -> Result<Vec<Vec<f64>>> { panic!("decoder bug") },
        );
        assert!(
            matches!(out, Err(TsError::Pipeline { stage: "sample-thread", .. })),
            "panic must surface as a typed error: {out:?}"
        );
    }

    #[test]
    fn run_samples_rejects_zero_samples() {
        let s = spec("1,", 1);
        let out = run_samples(&s, 0, |_| SamplerConfig::default(), |_: &str| Ok(vec![vec![0.0]]));
        assert!(matches!(out, Err(TsError::InvalidParameter { name: "samples", .. })));
    }

    #[test]
    fn median_odd_and_even() {
        let samples = vec![vec![vec![1.0, 10.0]], vec![vec![3.0, 30.0]], vec![vec![2.0, 20.0]]];
        assert_eq!(median_aggregate(&samples).unwrap(), vec![vec![2.0, 20.0]]);
        let even = vec![vec![vec![1.0]], vec![vec![2.0]], vec![vec![3.0]], vec![vec![10.0]]];
        assert_eq!(median_aggregate(&even).unwrap(), vec![vec![2.5]]);
    }

    #[test]
    fn median_is_robust_to_one_wild_sample() {
        let samples = vec![
            vec![vec![5.0]],
            vec![vec![5.1]],
            vec![vec![4.9]],
            vec![vec![999.0]], // degenerate continuation
            vec![vec![5.05]],
        ];
        let m = median_aggregate(&samples).unwrap();
        assert!((m[0][0] - 5.05).abs() < 1e-12);
    }

    #[test]
    fn median_requires_samples() {
        assert_eq!(median_aggregate(&[]), Err(TsError::Empty));
    }

    #[test]
    fn median_rejects_malformed_shapes() {
        // Second sample has 1 dimension where the first has 2.
        let ragged = vec![vec![vec![1.0], vec![2.0]], vec![vec![3.0]]];
        assert_eq!(
            median_aggregate(&ragged),
            Err(TsError::RaggedRows { row: 1, expected: 2, actual: 1 })
        );
        // Second sample's column is shorter than the first's.
        let short = vec![vec![vec![1.0, 2.0]], vec![vec![3.0]]];
        assert_eq!(
            median_aggregate(&short),
            Err(TsError::LengthMismatch { expected: 2, actual: 1 })
        );
    }
}
