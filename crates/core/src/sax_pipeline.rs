//! SAX-quantized MultiCast (paper §III-B, Tables VIII–IX).
//!
//! Instead of serializing rescaled digits, every dimension is SAX-encoded
//! (z-normalize → PAA → Gaussian-breakpoint symbols) and the per-segment
//! symbols of all dimensions are interleaved into one comma-separated
//! stream: `d1="ab…"`, `d2="bc…"` → `"ab,bc,…"` becomes `"ab" per segment`
//! — one character per dimension per segment. The LLM now emits one token
//! per (dimension, segment) instead of `b` digits per (dimension,
//! timestamp), which is where the order-of-magnitude speedups of
//! Table VIII come from: both axes are compressed (segment length on x,
//! single symbol on y).
//!
//! Decoding expands each generated symbol back through the cell
//! representative, the training z-norm state, and the PAA staircase.

use mc_tslib::error::{invalid_param, Result};
use mc_tslib::forecast::MultivariateForecaster;
use mc_tslib::series::MultivariateSeries;

use mc_lm::cost::InferenceCost;

use mc_sax::alphabet::{SaxAlphabet, SaxAlphabetKind};
use mc_sax::encoder::SaxConfig;

use crate::codec::SaxCodec;
use crate::config::ForecastConfig;
use crate::engine::ForecastEngine;
use crate::robust::{ForecastReport, SampleSource};

/// Configuration of the SAX-quantized forecaster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaxForecastConfig {
    /// SAX knobs (segment length, alphabet kind and size).
    pub sax: SaxConfig,
    /// Shared LLM pipeline knobs.
    pub base: ForecastConfig,
}

impl SaxForecastConfig {
    /// The paper's §IV-E default: segment length 6, alphabet size 5.
    pub fn paper_default(kind: SaxAlphabetKind) -> Self {
        Self {
            sax: SaxConfig {
                segment_len: 6,
                alphabet: SaxAlphabet::new(kind, 5).expect("size 5 is valid for both kinds"),
            },
            base: ForecastConfig::default(),
        }
    }
}

/// MultiCast over SAX symbols.
#[derive(Debug, Clone)]
pub struct SaxMultiCastForecaster {
    /// Configuration.
    pub config: SaxForecastConfig,
    /// Cost of the most recent forecast.
    pub last_cost: Option<InferenceCost>,
    /// Where continuations come from (real backend or fault-injected).
    pub source: SampleSource,
    /// Sampling-health report of the most recent forecast.
    pub last_report: Option<ForecastReport>,
}

impl SaxMultiCastForecaster {
    /// Creates the forecaster.
    pub fn new(config: SaxForecastConfig) -> Self {
        Self { config, last_cost: None, source: SampleSource::Model, last_report: None }
    }

    /// Same forecaster with a different continuation source.
    pub fn with_source(mut self, source: SampleSource) -> Self {
        self.source = source;
        self
    }

    /// Paper-style display name (e.g. `"MultiCast SAX (alphabetical)"`).
    pub fn display_name(&self) -> String {
        format!("MultiCast SAX ({})", self.config.sax.alphabet.kind().display_name())
    }
}

impl MultivariateForecaster for SaxMultiCastForecaster {
    fn name(&self) -> String {
        self.display_name()
    }

    fn forecast(
        &mut self,
        train: &MultivariateSeries,
        horizon: usize,
    ) -> Result<MultivariateSeries> {
        if horizon == 0 {
            return Err(invalid_param("horizon", "must be >= 1"));
        }
        let codec = SaxCodec { sax: self.config.sax };
        let engine = ForecastEngine::with_source(self.config.base, self.source);
        let run = engine.run(&codec, train, horizon)?;
        self.last_cost = Some(run.cost());
        let result = run.resolve(train, horizon);
        self.last_report = Some(run.into_report());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_datasets::generators::sinusoids;
    use mc_tslib::split::holdout_split;

    fn config(
        kind: SaxAlphabetKind,
        segment_len: usize,
        size: usize,
        samples: usize,
    ) -> SaxForecastConfig {
        SaxForecastConfig {
            sax: SaxConfig { segment_len, alphabet: SaxAlphabet::new(kind, size).unwrap() },
            base: ForecastConfig { samples, ..Default::default() },
        }
    }

    fn series(n: usize) -> MultivariateSeries {
        let a = sinusoids(n, &[(1.0, 24.0, 0.0)]);
        let b: Vec<f64> = a.iter().map(|&v| 10.0 - 3.0 * v).collect();
        MultivariateSeries::from_columns(vec!["a".into(), "b".into()], vec![a, b]).unwrap()
    }

    #[test]
    fn forecast_shapes_for_both_alphabets() {
        let s = series(96);
        let (train, test) = holdout_split(&s, 0.15).unwrap();
        for kind in [SaxAlphabetKind::Alphabetic, SaxAlphabetKind::Digital] {
            let mut f = SaxMultiCastForecaster::new(config(kind, 3, 5, 2));
            let fc = f.forecast(&train, test.len()).unwrap();
            assert_eq!(fc.len(), test.len());
            assert_eq!(fc.dims(), 2);
            assert!(f.last_cost.unwrap().generated_tokens > 0);
        }
    }

    #[test]
    fn sax_uses_far_fewer_tokens_than_raw_multicast() {
        // The central claim of §III-B: quantization slashes token use.
        let s = series(120);
        let (train, _) = holdout_split(&s, 0.1).unwrap();
        let horizon = 12;
        let mut raw = crate::MultiCastForecaster::new(
            crate::MuxMethod::ValueInterleave,
            ForecastConfig { samples: 2, ..Default::default() },
        );
        raw.forecast(&train, horizon).unwrap();
        let mut sax = SaxMultiCastForecaster::new(config(SaxAlphabetKind::Alphabetic, 6, 5, 2));
        sax.forecast(&train, horizon).unwrap();
        let raw_tokens = raw.last_cost.unwrap().total_tokens();
        let sax_tokens = sax.last_cost.unwrap().total_tokens();
        assert!(
            sax_tokens * 5 < raw_tokens,
            "SAX should use >5x fewer tokens: raw {raw_tokens} vs sax {sax_tokens}"
        );
    }

    #[test]
    fn horizon_not_multiple_of_segment_is_truncated() {
        let s = series(90);
        let mut f = SaxMultiCastForecaster::new(config(SaxAlphabetKind::Alphabetic, 6, 5, 2));
        let fc = f.forecast(&s, 10).unwrap(); // 10 = 2 segments of 6, truncated
        assert_eq!(fc.len(), 10);
    }

    #[test]
    fn display_names_match_paper() {
        let f = SaxMultiCastForecaster::new(config(SaxAlphabetKind::Alphabetic, 6, 5, 1));
        assert_eq!(f.display_name(), "MultiCast SAX (alphabetical)");
        let g = SaxMultiCastForecaster::new(config(SaxAlphabetKind::Digital, 6, 5, 1));
        assert_eq!(g.display_name(), "MultiCast SAX (digital)");
    }

    #[test]
    fn zero_horizon_rejected() {
        let s = series(60);
        let mut f = SaxMultiCastForecaster::new(config(SaxAlphabetKind::Alphabetic, 3, 5, 1));
        assert!(f.forecast(&s, 0).is_err());
    }
}
