//! Concurrent forecast serving over shared frozen backends.
//!
//! The fit-once / sample-many split ([`crate::engine`], `mc-lm`'s
//! [`mc_lm::FrozenLm`]) makes a prompt-conditioned backend `Send + Sync`:
//! one frozen context can serve many forecast requests through forked
//! decode sessions without refitting. This module is the request scheduler
//! on top of that split:
//!
//! - **Requests** ([`ForecastRequest`]) each carry their own history,
//!   horizon, codec choice, sample count, seeds, sampler settings and
//!   fault source — nothing is shared between requests except the frozen
//!   context they resolve to.
//! - **Context dedup** — requests whose codec fit produces the same
//!   (prompt, vocabulary, output restriction, preset) share one
//!   [`PreparedBackend`], fitted exactly once. Different horizons against
//!   the same history share a context: the stop rule lives in the sampler,
//!   not the frozen state.
//! - **A bounded worker pool** fans `(request, sample, attempt)` tasks
//!   across `workers` threads. Each task forks a throwaway session off the
//!   request's context and runs the same
//!   [`execute_attempt`](crate::robust::execute_attempt) the sequential
//!   engine runs — outcomes depend only on the frozen state and the
//!   sampler seed, never on scheduling, so forecasts are bit-identical to
//!   [`crate::engine::ForecastEngine::run`] regardless of worker count or
//!   submission order.
//! - **Per-request fault isolation** — every request folds outcomes into
//!   its own [`RobustProgress`] and resolves through the engine's
//!   median/quorum/fallback ladder. A panicking or defective sample in one
//!   request never poisons another.
//! - **Cost attribution** — the prompt is charged once per frozen context
//!   (to the first request that needed it); generated tokens are charged
//!   to the request whose sample drew them. Each context also carries a
//!   [`CostLedger`] fed from inside the model boundary, so attribution can
//!   be audited: summed per-request costs must equal the metered totals.
//!
//! Two entry points: [`serve_all`] for a batch, and [`ServeHandle`] for
//! incremental submit/collect.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

use mc_sync::{Arc, Mutex};

use mc_tslib::error::{invalid_param, pipeline_error, Result, TsError};
use mc_tslib::series::MultivariateSeries;

use mc_lm::cost::InferenceCost;
use mc_lm::metered::CostLedger;
use mc_lm::presets::ModelPreset;
use mc_lm::vocab::Vocab;

use mc_obs::{mix, EventKind, Fingerprint, NoopRecorder, Recorder, TraceEvent};
use mc_sax::encoder::SaxConfig;

use crate::codec::{Codec, DigitCodec, FittedCodec, SaxCodec};
use crate::config::ForecastConfig;
use crate::engine::{spec_fingerprint, EngineRun, ForecastEngine, PreparedBackend};
use crate::mux::MuxMethod;
use crate::robust::{
    execute_attempt, record_attempt, virtual_index, AttemptDisposition, FallbackPolicy,
    ForecastReport, RobustProgress, SampleExpectations, SampleSource,
};
use crate::sched::TaskQueue;

/// Which codec a request serializes through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CodecChoice {
    /// The digit codec with one of the paper's multiplexing schemes;
    /// digits/headroom come from the request's [`ForecastConfig`].
    Digit(MuxMethod),
    /// The SAX codec with explicit SAX knobs.
    Sax(SaxConfig),
}

impl CodecChoice {
    /// Builds the unfitted codec this choice implies for `config`.
    pub fn build(&self, config: &ForecastConfig) -> Box<dyn Codec> {
        match *self {
            CodecChoice::Digit(method) => Box::new(DigitCodec::from_config(method, config)),
            CodecChoice::Sax(sax) => Box::new(SaxCodec { sax }),
        }
    }
}

/// One self-contained forecast request.
#[derive(Debug, Clone)]
pub struct ForecastRequest {
    /// Training history the codec fits on.
    pub train: MultivariateSeries,
    /// Steps to forecast.
    pub horizon: usize,
    /// Serialization codec.
    pub codec: CodecChoice,
    /// Samples, seeds, sampler, preset and robustness policy.
    pub config: ForecastConfig,
    /// Real backend or fault-injected (per-request chaos drills).
    pub source: SampleSource,
}

impl ForecastRequest {
    /// A model-sourced request with the digit codec.
    pub fn digit(
        train: MultivariateSeries,
        horizon: usize,
        method: MuxMethod,
        config: ForecastConfig,
    ) -> Self {
        Self {
            train,
            horizon,
            codec: CodecChoice::Digit(method),
            config,
            source: SampleSource::Model,
        }
    }

    /// Stable content fingerprint — the request's trace key (`req` on
    /// every event it emits). Derived purely from the request's content
    /// (history names and value bits, horizon, codec, configuration,
    /// sample source), never from submission indices or thread ids, so
    /// canonical traces stay byte-identical across worker counts and
    /// submission orders.
    pub fn content_fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        for (name, column) in self.train.names().iter().zip(self.train.columns()) {
            fp.write_str(name);
            fp.write_u64(column.len() as u64);
            for &v in column {
                fp.write_u64(v.to_bits());
            }
        }
        fp.write_u64(self.horizon as u64);
        fp.write_str(&format!("{:?}|{:?}|{:?}", self.codec, self.config, self.source));
        fp.finish()
    }
}

/// Trace keys for a batch: each request's [content
/// fingerprint](ForecastRequest::content_fingerprint), with the k-th
/// duplicate of identical content mixed with `k` so twins stay
/// distinguishable in the trace. Which physical twin gets which key
/// depends on submission order, but twins are interchangeable by
/// construction (same content, same seeds, same outcomes), so the
/// canonical trace is still invariant under reordering.
pub fn request_fingerprints(requests: &[ForecastRequest]) -> Vec<u64> {
    let mut fps = Vec::with_capacity(requests.len());
    let mut seen: Vec<(u64, u64)> = Vec::new();
    for request in requests {
        let content = request.content_fingerprint();
        let occurrence = match seen.iter_mut().find(|(fp, _)| *fp == content) {
            Some((_, count)) => {
                *count += 1;
                *count
            }
            None => {
                seen.push((content, 0));
                0
            }
        };
        fps.push(if occurrence == 0 { content } else { mix(content, occurrence) });
    }
    fps
}

/// Identifier [`ServeHandle::submit`] hands back; submission order defines
/// the id order, and [`ServeRun::outcomes`] is sorted by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub usize);

/// Scheduler knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads draining the sample-task queue (clamped to ≥ 1).
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { workers: 4 }
    }
}

impl ServeConfig {
    /// A config with the given worker-pool width.
    pub fn with_workers(workers: usize) -> Self {
        Self { workers: workers.max(1) }
    }
}

/// Everything one request produced.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// The id [`ServeHandle::submit`] returned (submission index).
    pub id: RequestId,
    /// The resolved forecast, or the request's own infrastructure error.
    pub forecast: Result<MultivariateSeries>,
    /// Sampling accounting (absent when the request failed before or
    /// during sampling).
    pub report: Option<ForecastReport>,
    /// Cost attributed to this request: the context's prompt pass if this
    /// request was first to need the context (zero otherwise), plus every
    /// generated token its samples drew — failed attempts included.
    pub cost: InferenceCost,
    /// Index into [`ServeRun::contexts`] of the frozen context served from.
    pub context: Option<usize>,
}

/// Per-context accounting for one batch.
#[derive(Debug, Clone)]
pub struct ContextStats {
    /// Content fingerprint of the context (the `ctx` key its trace
    /// events carry).
    pub fingerprint: u64,
    /// Requests served from this context.
    pub requests: usize,
    /// The one-time prompt-conditioning cost (charged to the owner).
    pub prompt_cost: InferenceCost,
    /// Ground truth metered inside the model boundary: the prompt pass
    /// plus every session forked off this context.
    pub metered: InferenceCost,
    /// Sessions forked (one per completed draw).
    pub sessions: u64,
}

/// A completed batch: per-request outcomes (in submission order) plus
/// per-context metering.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// One outcome per request, sorted by [`RequestId`].
    pub outcomes: Vec<ServeOutcome>,
    /// One entry per deduplicated frozen context.
    pub contexts: Vec<ContextStats>,
}

impl ServeRun {
    /// Sum of every request's attributed cost.
    pub fn attributed_cost(&self) -> InferenceCost {
        let mut total = InferenceCost::default();
        for o in &self.outcomes {
            total.absorb(o.cost);
        }
        total
    }

    /// Sum of every context's metered ground truth.
    pub fn metered_cost(&self) -> InferenceCost {
        let mut total = InferenceCost::default();
        for c in &self.contexts {
            total.absorb(c.metered);
        }
        total
    }
}

/// Key deciding whether two requests may share a frozen context. The stop
/// rule (separators, token budget) is per-sampler, so it is *not* part of
/// the key — different horizons share a context.
#[derive(PartialEq)]
struct ContextKey {
    prompt: String,
    preset: ModelPreset,
    allowed_chars: String,
    vocab: Vocab,
}

struct Context {
    backend: PreparedBackend,
    ledger: Arc<CostLedger>,
    /// Content fingerprint (the `ctx` trace key).
    fp: u64,
    /// Request index charged the prompt pass (first to need the context).
    owner: usize,
    requests: usize,
}

/// A request prepared for scheduling: fitted codec, expectations, and the
/// per-request robust state the workers fold outcomes into.
struct RequestState {
    request: ForecastRequest,
    fitted: Box<dyn FittedCodec>,
    expect: SampleExpectations,
    separators: usize,
    max_tokens: usize,
    context: usize,
    samples: usize,
    progress: Mutex<RobustProgress>,
    /// Request trace key (occurrence-mixed content fingerprint).
    fp: u64,
    /// Trace key of the context this request joined.
    ctx_fp: u64,
}

enum Prepared {
    Ready(Box<RequestState>),
    Failed(TsError),
}

#[derive(Debug, Clone, Copy)]
struct Task {
    request: usize,
    sample: usize,
    attempt: usize,
}

/// Fits codecs and contexts for a batch; requests that fail to prepare
/// (codec or backend fit) become [`Prepared::Failed`] without touching the
/// others. Emits `context_fit` (first fit), `fit_dedup_hit` (reuse) and
/// `context_join` (every resolved request) trace events.
fn prepare(
    requests: &[ForecastRequest],
    fps: &[u64],
    obs: &Arc<dyn Recorder>,
) -> (Vec<Prepared>, Vec<(ContextKey, Context)>) {
    let mut contexts: Vec<(ContextKey, Context)> = Vec::new();
    let mut states = Vec::with_capacity(requests.len());
    for (i, request) in requests.iter().enumerate() {
        let prepared = (|| -> Result<Box<RequestState>> {
            let engine = ForecastEngine::with_source(request.config, request.source);
            let codec = request.codec.build(&request.config);
            let fitted = codec.fit(&request.train)?;
            let spec = engine.continuation_spec(fitted.as_ref(), request.horizon);
            let key = ContextKey {
                prompt: spec.prompt.clone(),
                preset: spec.preset,
                allowed_chars: spec.allowed_chars.clone(),
                vocab: spec.vocab.clone(),
            };
            let context = match contexts.iter().position(|(k, _)| *k == key) {
                Some(pos) => {
                    if obs.enabled() {
                        obs.record(TraceEvent {
                            req: fps[i],
                            ctx: contexts[pos].1.fp,
                            kind: EventKind::FitDedupHit,
                        });
                    }
                    pos
                }
                None => {
                    let ctx_fp = spec_fingerprint(&spec);
                    let ledger = Arc::new(CostLedger::new());
                    let backend = PreparedBackend::fit_metered_observed(
                        &spec,
                        ledger.clone(),
                        obs.clone(),
                        ctx_fp,
                    )?;
                    if obs.enabled() {
                        let prompt = backend.prompt_cost();
                        obs.record(TraceEvent {
                            req: 0,
                            ctx: ctx_fp,
                            kind: EventKind::ContextFit {
                                prompt_tokens: prompt.prompt_tokens,
                                work_units: prompt.work_units,
                            },
                        });
                    }
                    contexts.push((
                        key,
                        Context { backend, ledger, fp: ctx_fp, owner: i, requests: 0 },
                    ));
                    contexts.len() - 1
                }
            };
            contexts[context].1.requests += 1;
            let ctx_fp = contexts[context].1.fp;
            if obs.enabled() {
                obs.record(TraceEvent { req: fps[i], ctx: ctx_fp, kind: EventKind::ContextJoin });
            }
            let samples = request.config.samples.max(1);
            let progress = RobustProgress::new(samples, request.config.robust)?;
            Ok(Box::new(RequestState {
                request: request.clone(),
                expect: fitted.expectations(request.horizon),
                fitted,
                separators: spec.separators,
                max_tokens: spec.max_tokens,
                context,
                samples,
                progress: Mutex::new(progress),
                fp: fps[i],
                ctx_fp,
            }))
        })();
        states.push(match prepared {
            Ok(state) => Prepared::Ready(state),
            Err(e) => Prepared::Failed(e),
        });
    }
    (states, contexts)
}

/// Executes one `(request, sample, attempt)` task and folds its outcome
/// into the request's progress; pushes the retry task if the sample gets
/// another attempt, otherwise settles it. Emits the attempt's trace
/// events (defects, panic isolation, the attempt, any retry).
fn run_task(
    task: Task,
    states: &[Prepared],
    contexts: &[(ContextKey, Context)],
    queue: &TaskQueue<Task>,
    obs: &dyn Recorder,
) {
    let Prepared::Ready(st) = &states[task.request] else {
        queue.settle_one();
        return;
    };
    let backend = &contexts[st.context].1.backend;
    let sampler = backend.sampler(st.separators, st.max_tokens);
    let vi = virtual_index(st.samples, task.sample, task.attempt);
    let sampler_config = st.request.config.sampler_for(vi);
    let outcome = execute_attempt(
        st.request.source,
        task.sample,
        task.attempt,
        &st.expect,
        || sampler.draw(sampler_config),
        |text| st.fitted.decode(text, st.request.horizon),
    );
    record_attempt(obs, st.fp, st.ctx_fp, task.sample, task.attempt, &outcome);
    let disposition =
        st.progress.lock().expect("request lock").apply(task.sample, task.attempt, outcome);
    match disposition {
        AttemptDisposition::Retry { attempt } => {
            if obs.enabled() {
                obs.record(TraceEvent {
                    req: st.fp,
                    ctx: st.ctx_fp,
                    kind: EventKind::Retry { sample: task.sample as u32, attempt: attempt as u32 },
                });
            }
            queue.push(Task { attempt, ..task });
        }
        AttemptDisposition::Settled => queue.settle_one(),
    }
}

fn run_batch(
    requests: &[ForecastRequest],
    config: &ServeConfig,
    base_id: usize,
    obs: &Arc<dyn Recorder>,
) -> (Vec<ServeOutcome>, Vec<ContextStats>) {
    let fps = request_fingerprints(requests);
    let (states, contexts) = prepare(requests, &fps, obs);

    let mut initial = VecDeque::new();
    let mut outstanding = 0;
    for (i, prep) in states.iter().enumerate() {
        if let Prepared::Ready(st) = prep {
            for sample in 0..st.samples {
                initial.push_back(Task { request: i, sample, attempt: 0 });
            }
            outstanding += st.samples;
        }
    }

    if outstanding > 0 {
        let queue = TaskQueue::new(initial, outstanding);
        let workers = config.workers.max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let queue = &queue;
                let states = &states[..];
                let contexts = &contexts[..];
                let obs = obs.as_ref();
                scope.spawn(move || {
                    while let Some(task) = queue.next_observed(obs) {
                        run_task(task, states, contexts, queue, obs);
                    }
                });
            }
        });
    }

    let outcomes = states
        .into_iter()
        .enumerate()
        .map(|(i, prep)| finalize(i, base_id, prep, &contexts, obs.as_ref()))
        .collect();
    let stats = contexts
        .into_iter()
        .map(|(_, c)| ContextStats {
            fingerprint: c.fp,
            requests: c.requests,
            prompt_cost: c.backend.prompt_cost(),
            metered: c.ledger.snapshot(),
            sessions: c.ledger.sessions(),
        })
        .collect();
    (outcomes, stats)
}

/// Resolves one request's settled progress into its outcome: the engine's
/// median/quorum/fallback ladder, with the resolve itself panic-isolated so
/// a pathological request cannot take down the batch. Emits the request's
/// `quorum_resolve` event, plus `fallback` when the classical path
/// produced the forecast.
fn finalize(
    index: usize,
    base_id: usize,
    prep: Prepared,
    contexts: &[(ContextKey, Context)],
    obs: &dyn Recorder,
) -> ServeOutcome {
    let id = RequestId(base_id + index);
    let st = match prep {
        Prepared::Failed(e) => {
            return ServeOutcome {
                id,
                forecast: Err(e),
                report: None,
                cost: InferenceCost::default(),
                context: None,
            };
        }
        Prepared::Ready(st) => st,
    };
    let ctx = &contexts[st.context].1;
    let mut cost =
        if ctx.owner == index { ctx.backend.prompt_cost() } else { InferenceCost::default() };
    let progress = st.progress.into_inner().expect("request lock");
    let generated = progress.cost();
    match progress.finish() {
        Ok(run) => {
            if obs.enabled() {
                let required = st.request.config.robust.required_valid(st.samples);
                obs.record(TraceEvent {
                    req: st.fp,
                    ctx: st.ctx_fp,
                    kind: EventKind::QuorumResolve {
                        valid: run.report.valid_samples as u32,
                        required: required as u32,
                        met: run.quorum_met,
                    },
                });
                if !run.quorum_met
                    && st.request.config.robust.fallback == FallbackPolicy::SeasonalNaive
                {
                    obs.record(TraceEvent {
                        req: st.fp,
                        ctx: st.ctx_fp,
                        kind: EventKind::Fallback,
                    });
                }
            }
            let engine_run = EngineRun::new(run, st.request.config, cost);
            let forecast = catch_unwind(AssertUnwindSafe(|| {
                engine_run.resolve(&st.request.train, st.request.horizon)
            }))
            .unwrap_or_else(|_| {
                Err(pipeline_error("serve-resolve", format!("request {} panicked", id.0)))
            });
            let cost = engine_run.cost();
            ServeOutcome {
                id,
                forecast,
                report: Some(engine_run.into_report()),
                cost,
                context: Some(st.context),
            }
        }
        Err(e) => {
            // The run failed on infrastructure, but its completed draws
            // were still paid for — keep attribution conserved.
            cost.absorb(generated);
            ServeOutcome { id, forecast: Err(e), report: None, cost, context: Some(st.context) }
        }
    }
}

/// Serves a batch of requests over `config.workers` threads and shared,
/// deduplicated frozen contexts. Per-request failures land in the
/// request's own [`ServeOutcome::forecast`]; the batch itself always
/// completes. Outcomes are returned in submission order.
pub fn serve_all(requests: &[ForecastRequest], config: &ServeConfig) -> ServeRun {
    serve_all_observed(requests, config, Arc::new(NoopRecorder))
}

/// [`serve_all`] with telemetry: every scheduler and sampling step emits
/// trace events into `obs` (which also folds them into its metrics
/// registry, when it is an `mc_obs::Observer`). Forecasts and costs are
/// identical to [`serve_all`] — the recorder only watches. With identical
/// request content + seeds and a logical-clock observer, the canonical
/// JSONL export is byte-identical across worker counts and submission
/// orders (for runs without infrastructure failures, which truncate other
/// samples' retries schedule-dependently).
pub fn serve_all_observed(
    requests: &[ForecastRequest],
    config: &ServeConfig,
    obs: Arc<dyn Recorder>,
) -> ServeRun {
    let (outcomes, contexts) = run_batch(requests, config, 0, &obs);
    ServeRun { outcomes, contexts }
}

/// Incremental front-end over [`serve_all`]: submit requests one at a
/// time, collect results by id. Submitted requests are batched until the
/// first [`ServeHandle::collect`] (or explicit [`ServeHandle::flush`])
/// forces execution; context sharing happens within a flush.
pub struct ServeHandle {
    config: ServeConfig,
    pending: Vec<ForecastRequest>,
    outcomes: Vec<ServeOutcome>,
    contexts: Vec<ContextStats>,
    obs: Arc<dyn Recorder>,
}

impl ServeHandle {
    /// A handle with the given scheduler knobs and no pending requests.
    pub fn new(config: ServeConfig) -> Self {
        Self::with_recorder(config, Arc::new(NoopRecorder))
    }

    /// A handle whose flushes emit trace events into `obs` (see
    /// [`serve_all_observed`]).
    pub fn with_recorder(config: ServeConfig, obs: Arc<dyn Recorder>) -> Self {
        Self { config, pending: Vec::new(), outcomes: Vec::new(), contexts: Vec::new(), obs }
    }

    /// Enqueues a request; the returned id is its submission index.
    pub fn submit(&mut self, request: ForecastRequest) -> RequestId {
        self.pending.push(request);
        RequestId(self.outcomes.len() + self.pending.len() - 1)
    }

    /// Executes every pending request as one batch.
    pub fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let requests = std::mem::take(&mut self.pending);
        let (outcomes, contexts) =
            run_batch(&requests, &self.config, self.outcomes.len(), &self.obs);
        self.outcomes.extend(outcomes);
        self.contexts.extend(contexts);
    }

    /// The outcome of a submitted request, flushing pending work if the
    /// request has not run yet.
    ///
    /// # Errors
    /// When `id` was never returned by [`ServeHandle::submit`].
    pub fn collect(&mut self, id: RequestId) -> Result<ServeOutcome> {
        if id.0 >= self.outcomes.len() + self.pending.len() {
            return Err(invalid_param("request", "unknown request id"));
        }
        if id.0 >= self.outcomes.len() {
            self.flush();
        }
        Ok(self.outcomes[id.0].clone())
    }

    /// Every outcome executed so far (submission order).
    pub fn outcomes(&self) -> &[ServeOutcome] {
        &self.outcomes
    }

    /// Context accounting across every flush so far.
    pub fn contexts(&self) -> &[ContextStats] {
        &self.contexts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_datasets::generators::sinusoids;

    fn series(n: usize) -> MultivariateSeries {
        let a = sinusoids(n, &[(1.0, 12.0, 0.0)]);
        let b: Vec<f64> = a.iter().map(|&v| 4.0 + 0.5 * v).collect();
        MultivariateSeries::from_columns(vec!["a".into(), "b".into()], vec![a, b]).unwrap()
    }

    fn request(horizon: usize, method: MuxMethod, seed: u64) -> ForecastRequest {
        let config = ForecastConfig { samples: 2, seed, ..ForecastConfig::default() };
        ForecastRequest::digit(series(48), horizon, method, config)
    }

    #[test]
    fn same_history_and_codec_share_one_context() {
        // Different horizons and seeds — but one prompt, so one context.
        let requests = vec![
            request(4, MuxMethod::ValueInterleave, 1),
            request(7, MuxMethod::ValueInterleave, 99),
        ];
        let run = serve_all(&requests, &ServeConfig::with_workers(2));
        assert_eq!(run.contexts.len(), 1);
        assert_eq!(run.contexts[0].requests, 2);
        assert!(run.outcomes.iter().all(|o| o.context == Some(0)));
        // Prompt charged exactly once, to exactly one request.
        let prompt = run.contexts[0].prompt_cost.prompt_tokens;
        assert!(prompt > 0);
        let charged: Vec<u64> = run.outcomes.iter().map(|o| o.cost.prompt_tokens).collect();
        assert_eq!(charged.iter().sum::<u64>(), prompt);
        assert_eq!(charged.iter().filter(|&&c| c > 0).count(), 1);
    }

    #[test]
    fn different_codecs_get_distinct_contexts() {
        let requests =
            vec![request(4, MuxMethod::ValueInterleave, 1), request(4, MuxMethod::ValueConcat, 1)];
        let run = serve_all(&requests, &ServeConfig::default());
        assert_eq!(run.contexts.len(), 2);
        assert_eq!(run.outcomes[0].context, Some(0));
        assert_eq!(run.outcomes[1].context, Some(1));
    }

    #[test]
    fn forecasts_have_requested_shapes() {
        let requests =
            vec![request(3, MuxMethod::ValueInterleave, 7), request(9, MuxMethod::ValueConcat, 8)];
        let run = serve_all(&requests, &ServeConfig::with_workers(3));
        for (req, outcome) in requests.iter().zip(&run.outcomes) {
            let fc = outcome.forecast.as_ref().unwrap();
            assert_eq!(fc.len(), req.horizon);
            assert_eq!(fc.dims(), 2);
            assert!(outcome.report.is_some());
        }
    }

    #[test]
    fn handle_collect_flushes_and_rejects_unknown_ids() {
        let mut handle = ServeHandle::new(ServeConfig::with_workers(2));
        let a = handle.submit(request(4, MuxMethod::ValueInterleave, 1));
        let b = handle.submit(request(5, MuxMethod::ValueInterleave, 2));
        assert_eq!(a, RequestId(0));
        assert_eq!(b, RequestId(1));
        assert!(handle.collect(RequestId(2)).is_err(), "unsubmitted id must be rejected");
        let out_b = handle.collect(b).unwrap();
        assert_eq!(out_b.forecast.unwrap().len(), 5);
        // Both ran in the flush triggered by the first collect.
        assert_eq!(handle.outcomes().len(), 2);
        let out_a = handle.collect(a).unwrap();
        assert_eq!(out_a.forecast.unwrap().len(), 4);
        // A later submit starts a new batch with its own context.
        let c = handle.submit(request(6, MuxMethod::ValueInterleave, 3));
        assert_eq!(c, RequestId(2));
        assert_eq!(handle.collect(c).unwrap().forecast.unwrap().len(), 6);
        assert_eq!(handle.contexts().len(), 2);
    }

    #[test]
    fn empty_batch_serves_nothing() {
        let run = serve_all(&[], &ServeConfig::default());
        assert!(run.outcomes.is_empty());
        assert!(run.contexts.is_empty());
        assert_eq!(run.attributed_cost(), InferenceCost::default());
    }

    #[test]
    fn zero_worker_config_is_clamped() {
        let run =
            serve_all(&[request(4, MuxMethod::ValueInterleave, 1)], &ServeConfig { workers: 0 });
        assert!(run.outcomes[0].forecast.is_ok());
    }
}
