//! Concurrent forecast serving over shared frozen backends.
//!
//! The fit-once / sample-many split ([`crate::engine`], `mc-lm`'s
//! [`mc_lm::FrozenLm`]) makes a prompt-conditioned backend `Send + Sync`:
//! one frozen context can serve many forecast requests through forked
//! decode sessions without refitting. This module is the request scheduler
//! on top of that split:
//!
//! - **Requests** ([`ForecastRequest`]) each carry their own history,
//!   horizon, codec choice, sample count, seeds, sampler settings and
//!   fault source — nothing is shared between requests except the frozen
//!   context they resolve to.
//! - **Context dedup** — requests whose codec fit produces the same
//!   (prompt, vocabulary, output restriction, preset) share one
//!   [`PreparedBackend`], fitted exactly once. Different horizons against
//!   the same history share a context: the stop rule lives in the sampler,
//!   not the frozen state.
//! - **Cross-batch context cache** ([`ServeConfig::cache`], DESIGN.md
//!   §12) — with a cache attached, a [`ServeHandle`] keeps fitted
//!   contexts warm *across* flushes in a bounded [`mc_lm::LmCache`]: an
//!   exact spec-fingerprint hit skips the fit entirely, and a prompt that
//!   strictly extends a cached one is delta-updated in place by
//!   incremental refit (bit-identical to a from-scratch fit, so warmth
//!   can never change a forecast). Served contexts stay pinned until the
//!   flush boundary, so eviction can never free a context a live decode
//!   session is forked from. All fits route through the single
//!   [`fit_context`] seam — the `no-direct-fit` lint rule keeps it that
//!   way.
//! - **A bounded worker pool** fans `(request, sample, attempt)` tasks
//!   across `workers` threads. Each task forks a throwaway session off the
//!   request's context and runs the same
//!   [`execute_attempt`](crate::robust::execute_attempt) the sequential
//!   engine runs — outcomes depend only on the frozen state and the
//!   sampler seed, never on scheduling, so forecasts are bit-identical to
//!   [`crate::engine::ForecastEngine::run`] regardless of worker count or
//!   submission order.
//! - **Per-request fault isolation** — every request folds outcomes into
//!   its own [`RobustProgress`] and resolves through the engine's
//!   median/quorum/fallback ladder. A panicking or defective sample in one
//!   request never poisons another.
//! - **Cost attribution** — the prompt is charged once per frozen context
//!   (to the first request that needed it); generated tokens are charged
//!   to the request whose sample drew them. Each context also carries a
//!   [`CostLedger`] fed from inside the model boundary, so attribution can
//!   be audited: summed per-request costs must equal the metered totals.
//! - **Overload resilience** ([`crate::overload`], DESIGN.md §10) — a
//!   hard submission cap and priority-aware admission shedding bound the
//!   queue; per-client quotas and per-preset circuit breakers reject load
//!   before it burns workers; per-request deadlines cancel decode loops
//!   cooperatively; retries back off on the logical dispatch clock.
//!   Rejection is always a typed outcome ([`TsError::Overloaded`]) with
//!   zero attributed cost — never a hang, never a lost settlement.
//!
//! Two entry points: [`serve_all`] for a batch, and [`ServeHandle`] for
//! incremental submit/collect.

use std::panic::{catch_unwind, AssertUnwindSafe};

use mc_sync::{Arc, Mutex};

use mc_tslib::error::{pipeline_error, Result, TsError};
use mc_tslib::series::MultivariateSeries;

use mc_lm::cache::{CacheConfig, CacheStats, Found, LmCache};
use mc_lm::cost::InferenceCost;
use mc_lm::metered::CostLedger;
use mc_lm::presets::ModelPreset;
use mc_lm::tokenizer::{CharTokenizer, Tokenizer};
use mc_lm::vocab::Vocab;

use mc_obs::{
    mix, point_span, EventKind, Fingerprint, NoopRecorder, Recorder, SpanEvent, SpanKind,
    TraceEvent,
};
use mc_sax::encoder::SaxConfig;

use crate::codec::{Codec, DigitCodec, FittedCodec, SaxCodec};
use crate::config::ForecastConfig;
use crate::engine::{spec_family, spec_fingerprint, EngineRun, ForecastEngine, PreparedBackend};
use crate::mux::MuxMethod;
use crate::overload::{
    record_shed, BreakerPolicy, BreakerTransition, CircuitBreaker, OverloadState, Priority,
    ServeDefect,
};
use crate::pipeline::ContinuationSpec;
use crate::robust::{
    execute_attempt_observed, record_attempt, virtual_index, AttemptDisposition, AttemptOutcome,
    FallbackPolicy, ForecastReport, RobustProgress, SampleDefect, SampleExpectations, SampleSource,
    TraceScope,
};
use crate::sched::TaskQueue;

/// Which codec a request serializes through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CodecChoice {
    /// The digit codec with one of the paper's multiplexing schemes;
    /// digits/headroom come from the request's [`ForecastConfig`].
    Digit(MuxMethod),
    /// The SAX codec with explicit SAX knobs.
    Sax(SaxConfig),
}

impl CodecChoice {
    /// Builds the unfitted codec this choice implies for `config`.
    pub fn build(&self, config: &ForecastConfig) -> Box<dyn Codec> {
        match *self {
            CodecChoice::Digit(method) => Box::new(DigitCodec::from_config(method, config)),
            CodecChoice::Sax(sax) => Box::new(SaxCodec { sax }),
        }
    }
}

/// One self-contained forecast request.
#[derive(Debug, Clone)]
pub struct ForecastRequest {
    /// Training history the codec fits on.
    pub train: MultivariateSeries,
    /// Steps to forecast.
    pub horizon: usize,
    /// Serialization codec.
    pub codec: CodecChoice,
    /// Samples, seeds, sampler, preset and robustness policy.
    pub config: ForecastConfig,
    /// Real backend or fault-injected (per-request chaos drills).
    pub source: SampleSource,
    /// Admission class: under shedding, lower priorities drop first.
    pub priority: Priority,
    /// Client the request's cost is attributed to for quota enforcement.
    pub client: u32,
}

impl ForecastRequest {
    /// A model-sourced request with the digit codec, normal priority,
    /// client 0.
    pub fn digit(
        train: MultivariateSeries,
        horizon: usize,
        method: MuxMethod,
        config: ForecastConfig,
    ) -> Self {
        Self {
            train,
            horizon,
            codec: CodecChoice::Digit(method),
            config,
            source: SampleSource::Model,
            priority: Priority::Normal,
            client: 0,
        }
    }

    /// Stable content fingerprint — the request's trace key (`req` on
    /// every event it emits). Derived purely from the request's content
    /// (history names and value bits, horizon, codec, configuration,
    /// sample source), never from submission indices or thread ids, so
    /// canonical traces stay byte-identical across worker counts and
    /// submission orders.
    pub fn content_fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        for (name, column) in self.train.names().iter().zip(self.train.columns()) {
            fp.write_str(name);
            fp.write_u64(column.len() as u64);
            for &v in column {
                fp.write_u64(v.to_bits());
            }
        }
        fp.write_u64(self.horizon as u64);
        fp.write_str(&format!("{:?}|{:?}|{:?}", self.codec, self.config, self.source));
        fp.write_u64(u64::from(self.priority.rank()));
        fp.write_u64(u64::from(self.client));
        fp.finish()
    }
}

/// Trace keys for a batch: each request's [content
/// fingerprint](ForecastRequest::content_fingerprint), with the k-th
/// duplicate of identical content mixed with `k` so twins stay
/// distinguishable in the trace. Which physical twin gets which key
/// depends on submission order, but twins are interchangeable by
/// construction (same content, same seeds, same outcomes), so the
/// canonical trace is still invariant under reordering.
pub fn request_fingerprints(requests: &[ForecastRequest]) -> Vec<u64> {
    fingerprints_for(requests.iter())
}

fn fingerprints_for<'a>(requests: impl Iterator<Item = &'a ForecastRequest>) -> Vec<u64> {
    let mut fps = Vec::new();
    let mut seen: Vec<(u64, u64)> = Vec::new();
    for request in requests {
        let content = request.content_fingerprint();
        let occurrence = match seen.iter_mut().find(|(fp, _)| *fp == content) {
            Some((_, count)) => {
                *count += 1;
                *count
            }
            None => {
                seen.push((content, 0));
                0
            }
        };
        fps.push(if occurrence == 0 { content } else { mix(content, occurrence) });
    }
    fps
}

/// Identifier [`ServeHandle::submit`] hands back; submission order defines
/// the id order, and [`ServeRun::outcomes`] is sorted by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub usize);

/// Scheduler knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads draining the sample-task queue (clamped to ≥ 1).
    pub workers: usize,
    /// Requests one flush admits; the excess is shed by
    /// (priority, content fingerprint) — an order-invariant cut, so shed
    /// and served sets are identical across submission orders. `None`
    /// disables shedding.
    pub queue_cap: Option<usize>,
    /// Hard cap on pending submissions per flush; [`ServeHandle::submit`]
    /// beyond it materializes a [`ServeDefect::QueueFull`] outcome
    /// immediately. `None` disables the cap.
    pub submit_cap: Option<usize>,
    /// Per-client generated+prompt token allowance enforced at admission
    /// from attributed costs of earlier flushes. `None` disables quotas.
    pub quota_tokens: Option<u64>,
    /// Per-preset circuit-breaker policy. `None` disables breaking.
    pub breaker: Option<BreakerPolicy>,
    /// Cross-batch frozen-context cache shape. `Some` makes a
    /// [`ServeHandle`] keep fitted contexts warm across flushes (and
    /// delta-update prefix-extended prompts by incremental refit);
    /// `None` fits every batch cold. One-shot [`serve_all`] batches get
    /// a fresh cache per call either way, so only handles observe
    /// warmth. Forecasts, canonical traces and cost audits are
    /// byte-identical warm or cold.
    pub cache: Option<CacheConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_cap: None,
            submit_cap: None,
            quota_tokens: None,
            breaker: None,
            cache: None,
        }
    }
}

impl ServeConfig {
    /// A config with the given worker-pool width and no overload limits.
    pub fn with_workers(workers: usize) -> Self {
        Self { workers: workers.max(1), ..Self::default() }
    }
}

/// Everything one request produced.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// The id [`ServeHandle::submit`] returned (submission index).
    pub id: RequestId,
    /// The resolved forecast, or the request's own infrastructure error.
    pub forecast: Result<MultivariateSeries>,
    /// Sampling accounting (absent when the request failed before or
    /// during sampling).
    pub report: Option<ForecastReport>,
    /// Cost attributed to this request: the context's prompt pass if this
    /// request was first to need the context (zero otherwise), plus every
    /// generated token its samples drew — failed attempts included.
    pub cost: InferenceCost,
    /// Index into [`ServeRun::contexts`] of the frozen context served from.
    pub context: Option<usize>,
}

/// Per-context accounting for one batch.
#[derive(Debug, Clone)]
pub struct ContextStats {
    /// Content fingerprint of the context (the `ctx` key its trace
    /// events carry).
    pub fingerprint: u64,
    /// Requests served from this context.
    pub requests: usize,
    /// The one-time prompt-conditioning cost (charged to the owner).
    pub prompt_cost: InferenceCost,
    /// Ground truth metered inside the model boundary: the prompt pass
    /// plus every session forked off this context.
    pub metered: InferenceCost,
    /// Sessions forked (one per completed draw).
    pub sessions: u64,
}

/// A completed batch: per-request outcomes (in submission order) plus
/// per-context metering.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// One outcome per request, sorted by [`RequestId`].
    pub outcomes: Vec<ServeOutcome>,
    /// One entry per deduplicated frozen context.
    pub contexts: Vec<ContextStats>,
}

impl ServeRun {
    /// Sum of every request's attributed cost.
    pub fn attributed_cost(&self) -> InferenceCost {
        let mut total = InferenceCost::default();
        for o in &self.outcomes {
            total.absorb(o.cost);
        }
        total
    }

    /// Sum of every context's metered ground truth.
    pub fn metered_cost(&self) -> InferenceCost {
        let mut total = InferenceCost::default();
        for c in &self.contexts {
            total.absorb(c.metered);
        }
        total
    }
}

/// Key deciding whether two requests may share a frozen context. The stop
/// rule (separators, token budget) is per-sampler, so it is *not* part of
/// the key — different horizons share a context.
#[derive(PartialEq)]
struct ContextKey {
    prompt: String,
    preset: ModelPreset,
    allowed_chars: String,
    vocab: Vocab,
}

struct Context {
    backend: PreparedBackend,
    ledger: Arc<CostLedger>,
    /// Content fingerprint (the `ctx` trace key).
    fp: u64,
    /// Request index charged the prompt pass (first to need the context).
    owner: usize,
    requests: usize,
    /// The `(family, fingerprint)` pin held in the cross-batch cache,
    /// released at the flush boundary (`None` when serving cold).
    pin: Option<(u64, u64)>,
}

/// A request prepared for scheduling: fitted codec, expectations, and the
/// per-request robust state the workers fold outcomes into.
struct RequestState {
    request: ForecastRequest,
    fitted: Box<dyn FittedCodec>,
    expect: SampleExpectations,
    separators: usize,
    max_tokens: usize,
    context: usize,
    samples: usize,
    progress: Mutex<RobustProgress>,
    /// Request trace key (occurrence-mixed content fingerprint).
    fp: u64,
    /// Trace key of the context this request joined.
    ctx_fp: u64,
    /// The preset's circuit breaker, when breaking is enabled — workers
    /// record every attempt outcome into its flush window.
    breaker: Option<Arc<CircuitBreaker>>,
}

enum Prepared {
    Ready(Box<RequestState>),
    /// Preparation failed (codec or fit); carries the request's trace
    /// fingerprint so [`finalize`] can close its `request` span.
    Failed(TsError, u64),
    /// Rejected before preparation by the overload layer (admission
    /// shed, quota, breaker) or at submit time (queue full).
    Rejected(ServeDefect),
}

/// One slot of a flush after admission: a request to run (with its trace
/// key) or a typed rejection.
enum Admission {
    Run(Box<ForecastRequest>, u64),
    Reject(ServeDefect),
}

/// A submitted slot entering a flush: the request, or a rejection already
/// decided at submit time (queue full).
type Submission = std::result::Result<ForecastRequest, ServeDefect>;

/// Applies the overload ladder to a flush, in the fixed order quota →
/// breaker → shed (DESIGN.md §10). Single-threaded, before any worker
/// starts, and order-invariant:
///
/// - **Quota** admits or rejects *every* request of a client together —
///   the ledger only advances at flush boundaries, so the decision can't
///   depend on intra-flush order.
/// - **Breaker** state only transitions at flush boundaries, so every
///   request of a preset sees the same state.
/// - **Shed** keeps the top `queue_cap` survivors by
///   (priority desc, occurrence-mixed fingerprint asc) — a value-based
///   cut; twins are interchangeable by construction.
///
/// Quota and shed rejections emit *deterministic* trace events (they
/// belong to the canonical trace); breaker rejections are
/// scheduler-scoped, since breaker state depends on flush history.
fn admit(
    submissions: Vec<Submission>,
    config: &ServeConfig,
    overload: &OverloadState,
    obs: &dyn Recorder,
) -> Vec<Admission> {
    let fps = fingerprints_for(submissions.iter().filter_map(|s| s.as_ref().ok()));
    let mut fps = fps.into_iter();
    let mut slots: Vec<Admission> = submissions
        .into_iter()
        .map(|submission| {
            let request = match submission {
                Ok(request) => request,
                Err(defect) => return Admission::Reject(defect),
            };
            let fp = fps.next().expect("one fingerprint per submitted request");
            if let Some(quota) = config.quota_tokens {
                let spent = overload.quota().spent(request.client);
                if spent >= quota {
                    if obs.enabled() {
                        obs.record(TraceEvent {
                            req: fp,
                            ctx: 0,
                            kind: EventKind::QuotaExhausted { client: request.client },
                        });
                    }
                    return Admission::Reject(ServeDefect::QuotaExhausted {
                        client: request.client,
                        spent,
                        quota,
                    });
                }
            }
            if config.breaker.is_some() {
                let breaker = overload.breaker(request.config.preset);
                if breaker.is_open() {
                    if obs.enabled() {
                        obs.record(TraceEvent { req: fp, ctx: 0, kind: EventKind::BreakerReject });
                    }
                    return Admission::Reject(ServeDefect::BreakerOpen {
                        preset: request.config.preset,
                        trips: breaker.trips(),
                    });
                }
            }
            Admission::Run(Box::new(request), fp)
        })
        .collect();
    if let Some(cap) = config.queue_cap {
        let mut survivors: Vec<(usize, u8, u64)> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                Admission::Run(request, fp) => Some((i, request.priority.rank(), *fp)),
                Admission::Reject(_) => None,
            })
            .collect();
        if survivors.len() > cap {
            // Value-based order: priority desc, then fingerprint asc —
            // independent of submission index, so the shed *set* is too.
            survivors.sort_by(|a, b| b.1.cmp(&a.1).then(a.2.cmp(&b.2)));
            for &(i, _, fp) in &survivors[cap..] {
                let Admission::Run(request, _) = &slots[i] else { unreachable!() };
                let priority = request.priority;
                record_shed(obs, fp, priority);
                slots[i] = Admission::Reject(ServeDefect::Shed { priority });
            }
        }
    }
    slots
}

#[derive(Debug, Clone, Copy)]
struct Task {
    request: usize,
    sample: usize,
    attempt: usize,
}

/// What [`fit_context`] resolves a spec to: the metered backend, the
/// context's trace fingerprint (epoch-qualified when the context was
/// produced by incremental refit) and the `(family, fingerprint)` cache
/// pin to release at the flush boundary, if a cache was consulted.
type FittedContext = (PreparedBackend, u64, Option<(u64, u64)>);

/// The one sanctioned context-fit seam in serve-land: resolves a spec to
/// a metered backend, consulting the cross-batch cache first when one is
/// attached. The `no-direct-fit` lint rule bans the fit entry points
/// everywhere else in this module, so every serve-path fit is forced
/// through here — where cache reuse, pinning and metering are handled
/// uniformly.
fn fit_context(
    spec: &ContinuationSpec,
    cache: Option<&LmCache>,
    ledger: Arc<CostLedger>,
    obs: &Arc<dyn Recorder>,
) -> Result<FittedContext> {
    let ctx_fp = spec_fingerprint(spec);
    let Some(cache) = cache else {
        let backend = PreparedBackend::fit_metered_observed(spec, ledger, obs.clone(), ctx_fp)?;
        return Ok((backend, ctx_fp, None));
    };
    let family = spec_family(spec);
    let tokens = CharTokenizer::new(spec.vocab.clone())
        .encode(&spec.prompt)
        .map_err(|e| pipeline_error("encode-prompt", e.to_string()))?;
    let (frozen, epoch, event) = match cache.acquire_observed(family, ctx_fp, &tokens, obs.as_ref())
    {
        Found::Hit { frozen, epoch } => (frozen, epoch, EventKind::CacheHit),
        Found::Refit { frozen, epoch, appended } => {
            (frozen, epoch, EventKind::CacheRefit { appended: appended as u64, epoch })
        }
        Found::Miss => {
            if obs.enabled() {
                obs.record(TraceEvent { req: 0, ctx: ctx_fp, kind: EventKind::CacheMiss });
            }
            let evictions_before = cache.stats().evictions;
            let fitted = PreparedBackend::fit(spec)?;
            // Share whichever Arc the cache settled on (a concurrent
            // duplicate insert keeps the resident entry), so the served
            // context and the cached one are always the same object.
            let shared = cache.insert(family, ctx_fp, &tokens, fitted.frozen());
            let evicted = cache.stats().evictions - evictions_before;
            if evicted > 0 && obs.enabled() {
                obs.record(TraceEvent {
                    req: 0,
                    ctx: ctx_fp,
                    kind: EventKind::CacheEvict { evictions: evicted },
                });
            }
            let backend = PreparedBackend::from_frozen(shared, spec)?.meter_observed(
                ledger,
                obs.clone(),
                ctx_fp,
            );
            return Ok((backend, ctx_fp, Some((family, ctx_fp))));
        }
    };
    // A refit context is a *different* trace identity from the cold fit
    // of the same prompt: stamp the entry's monotone epoch into the
    // fingerprint (epoch 0 — a never-refit exact hit — is the cold
    // fingerprint, keeping warm reruns byte-identical to cold ones).
    let eff_fp = if epoch == 0 {
        ctx_fp
    } else {
        let mut stamped = spec.clone();
        stamped.refit_epoch = epoch;
        spec_fingerprint(&stamped)
    };
    if obs.enabled() {
        obs.record(TraceEvent { req: 0, ctx: eff_fp, kind: event });
    }
    let backend =
        PreparedBackend::from_frozen(frozen, spec)?.meter_observed(ledger, obs.clone(), eff_fp);
    Ok((backend, eff_fp, Some((family, ctx_fp))))
}

/// Fits codecs and contexts for a batch; requests that fail to prepare
/// (codec or backend fit) become [`Prepared::Failed`] without touching the
/// others, and admission rejections pass through as
/// [`Prepared::Rejected`]. Emits `context_fit` (first fit),
/// `fit_dedup_hit` (reuse) and `context_join` (every resolved request)
/// trace events.
fn prepare(
    slots: Vec<Admission>,
    config: &ServeConfig,
    overload: &OverloadState,
    cache: Option<&LmCache>,
    obs: &Arc<dyn Recorder>,
) -> (Vec<Prepared>, Vec<(ContextKey, Context)>) {
    let mut contexts: Vec<(ContextKey, Context)> = Vec::new();
    let mut states = Vec::with_capacity(slots.len());
    for (i, slot) in slots.into_iter().enumerate() {
        let (request, fp) = match slot {
            Admission::Run(request, fp) => (request, fp),
            Admission::Reject(defect) => {
                states.push(Prepared::Rejected(defect));
                continue;
            }
        };
        let request = &*request;
        // The `request` span covers prepare → finalize for every admitted
        // request. Its id is a pure function of the occurrence-mixed
        // content fingerprint, so the canonical span multiset is invariant
        // across submission orders and worker counts; rejected slots never
        // open one (they get a zero-length `shed` span at admission).
        if obs.enabled() {
            obs.span(SpanEvent::open(fp, SpanKind::Request));
        }
        let prepared = (|| -> Result<Box<RequestState>> {
            let engine = ForecastEngine::with_source(request.config, request.source);
            let codec = request.codec.build(&request.config);
            let fitted = codec.fit(&request.train)?;
            let spec = engine.continuation_spec(fitted.as_ref(), request.horizon);
            let key = ContextKey {
                prompt: spec.prompt.clone(),
                preset: spec.preset,
                allowed_chars: spec.allowed_chars.clone(),
                vocab: spec.vocab.clone(),
            };
            let context = match contexts.iter().position(|(k, _)| *k == key) {
                Some(pos) => {
                    if obs.enabled() {
                        obs.record(TraceEvent {
                            req: fp,
                            ctx: contexts[pos].1.fp,
                            kind: EventKind::FitDedupHit,
                        });
                    }
                    pos
                }
                None => {
                    let ledger = Arc::new(CostLedger::new());
                    // The context fingerprint is only known once the fit
                    // resolves, so the `context_fit` span opens
                    // *retroactively*: stamp (t, wall) before the fit and
                    // backdate the open to them afterwards. A failed fit
                    // emits nothing — no orphaned open half.
                    let fit_start = obs.now();
                    let fit_wall = obs.wall();
                    let (backend, ctx_fp, pin) = fit_context(&spec, cache, ledger.clone(), obs)?;
                    if obs.enabled() {
                        let open = SpanEvent::open(ctx_fp, SpanKind::ContextFit);
                        obs.span_at(open, fit_start, fit_wall);
                        obs.span(SpanEvent::close(ctx_fp, SpanKind::ContextFit));
                        let prompt = backend.prompt_cost();
                        obs.record(TraceEvent {
                            req: 0,
                            ctx: ctx_fp,
                            kind: EventKind::ContextFit {
                                prompt_tokens: prompt.prompt_tokens,
                                work_units: prompt.work_units,
                            },
                        });
                    }
                    contexts.push((
                        key,
                        Context { backend, ledger, fp: ctx_fp, owner: i, requests: 0, pin },
                    ));
                    contexts.len() - 1
                }
            };
            contexts[context].1.requests += 1;
            let ctx_fp = contexts[context].1.fp;
            if obs.enabled() {
                obs.record(TraceEvent { req: fp, ctx: ctx_fp, kind: EventKind::ContextJoin });
            }
            let samples = request.config.samples.max(1);
            let progress = RobustProgress::new(samples, request.config.robust)?;
            let breaker = config.breaker.map(|_| overload.breaker(request.config.preset));
            Ok(Box::new(RequestState {
                request: request.clone(),
                expect: fitted.expectations(request.horizon),
                fitted,
                separators: spec.separators,
                max_tokens: spec.max_tokens,
                context,
                samples,
                progress: Mutex::new(progress),
                fp,
                ctx_fp,
                breaker,
            }))
        })();
        states.push(match prepared {
            Ok(state) => Prepared::Ready(state),
            Err(e) => Prepared::Failed(e, fp),
        });
    }
    (states, contexts)
}

/// Executes one `(request, sample, attempt)` task and folds its outcome
/// into the request's progress; pushes the retry task if the sample gets
/// another attempt, otherwise settles it. Emits the attempt's trace
/// events (defects, panic isolation, the attempt, any retry).
fn run_task(
    task: Task,
    states: &[Prepared],
    contexts: &[(ContextKey, Context)],
    queue: &TaskQueue<Task>,
    obs: &dyn Recorder,
) {
    let Prepared::Ready(st) = &states[task.request] else {
        queue.settle_one();
        return;
    };
    let backend = &contexts[st.context].1.backend;
    let sampler = backend.sampler(st.separators, st.max_tokens);
    let vi = virtual_index(st.samples, task.sample, task.attempt);
    let sampler_config = st.request.config.sampler_for(vi);
    let budget = st.progress.lock().expect("request lock").remaining_budget(task.sample);
    let scope = TraceScope { obs, req: st.fp, ctx: st.ctx_fp };
    let outcome = execute_attempt_observed(
        scope,
        st.request.source,
        (task.sample, task.attempt),
        &st.expect,
        budget,
        |b| sampler.draw_budgeted(sampler_config, b),
        |text| st.fitted.decode(text, st.request.horizon),
    );
    if let Some(breaker) = &st.breaker {
        let success = matches!(&outcome, AttemptOutcome::Done { defects, .. }
            if !defects.iter().any(SampleDefect::is_fatal));
        breaker.record(success);
    }
    record_attempt(obs, st.fp, st.ctx_fp, task.sample, task.attempt, &outcome);
    let disposition =
        st.progress.lock().expect("request lock").apply(task.sample, task.attempt, outcome);
    match disposition {
        AttemptDisposition::Retry { attempt } => {
            if obs.enabled() {
                obs.record(TraceEvent {
                    req: st.fp,
                    ctx: st.ctx_fp,
                    kind: EventKind::Retry { sample: task.sample as u32, attempt: attempt as u32 },
                });
                point_span(
                    obs,
                    st.fp,
                    SpanKind::Retry { sample: task.sample as u32, attempt: attempt as u32 },
                );
            }
            let delay = st.request.config.robust.backoff_delay(attempt);
            if delay > 0 {
                if obs.enabled() {
                    obs.record(TraceEvent {
                        req: st.fp,
                        ctx: st.ctx_fp,
                        kind: EventKind::Backoff {
                            sample: task.sample as u32,
                            attempt: attempt as u32,
                            delay: delay as u32,
                        },
                    });
                    point_span(
                        obs,
                        st.fp,
                        SpanKind::Backoff { sample: task.sample as u32, attempt: attempt as u32 },
                    );
                }
                queue.push_deferred(Task { attempt, ..task }, delay);
            } else {
                queue.push(Task { attempt, ..task });
            }
        }
        AttemptDisposition::Settled => queue.settle_one(),
    }
}

fn run_batch(
    submissions: Vec<Submission>,
    config: &ServeConfig,
    overload: &OverloadState,
    cache: Option<&LmCache>,
    base_id: usize,
    obs: &Arc<dyn Recorder>,
) -> (Vec<ServeOutcome>, Vec<ContextStats>) {
    let slots = admit(submissions, config, overload, obs.as_ref());
    let (states, contexts) = prepare(slots, config, overload, cache, obs);

    let mut initial = Vec::new();
    let mut outstanding = 0;
    for (i, prep) in states.iter().enumerate() {
        if let Prepared::Ready(st) = prep {
            for sample in 0..st.samples {
                initial.push(Task { request: i, sample, attempt: 0 });
            }
            outstanding += st.samples;
        }
    }

    if outstanding > 0 {
        let queue = TaskQueue::new(initial, outstanding);
        let workers = config.workers.max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let queue = &queue;
                let states = &states[..];
                let contexts = &contexts[..];
                let obs = obs.as_ref();
                scope.spawn(move || {
                    while let Some(task) = queue.next_observed(obs) {
                        run_task(task, states, contexts, queue, obs);
                    }
                });
            }
        });
    }

    // Quota attribution happens at the flush boundary: admitted requests
    // are charged their full attributed cost (prompt + generated), so the
    // *next* flush sees the advance. Intra-flush admission never observes
    // a moving ledger — that is what keeps it order-invariant.
    let clients: Vec<Option<u32>> = states
        .iter()
        .map(|prep| match prep {
            Prepared::Ready(st) => Some(st.request.client),
            Prepared::Failed(..) | Prepared::Rejected(_) => None,
        })
        .collect();
    let outcomes: Vec<ServeOutcome> = states
        .into_iter()
        .enumerate()
        .map(|(i, prep)| finalize(i, base_id, prep, &contexts, obs.as_ref()))
        .collect();
    if config.quota_tokens.is_some() {
        for (outcome, client) in outcomes.iter().zip(&clients) {
            if let Some(client) = *client {
                let cost = outcome.cost;
                overload.quota().charge(client, cost.prompt_tokens + cost.generated_tokens);
            }
        }
    }

    // Breaker state transitions only here — single-threaded, from the
    // flush window's order-invariant success/failure counts.
    if let Some(policy) = config.breaker {
        for (_, breaker) in overload.breakers() {
            let Some(transition) = breaker.settle_flush(policy) else { continue };
            if obs.enabled() {
                let kind = match transition {
                    BreakerTransition::Tripped { trips } => {
                        EventKind::BreakerTrip { trips: trips as u32 }
                    }
                    BreakerTransition::Closed { trips } => {
                        EventKind::BreakerClose { trips: trips as u32 }
                    }
                };
                obs.record(TraceEvent { req: 0, ctx: 0, kind });
            }
        }
    }

    // Flush-boundary pin settlement: every session has completed (the
    // worker scope joined above), so no fork borrows a cached context
    // any more — unpin them all, making the entries evictable again.
    for (_, c) in &contexts {
        if let (Some(cache), Some((family, fp))) = (cache, c.pin) {
            cache.release(family, fp);
        }
    }

    let stats = contexts
        .into_iter()
        .map(|(_, c)| ContextStats {
            fingerprint: c.fp,
            requests: c.requests,
            prompt_cost: c.backend.prompt_cost(),
            metered: c.ledger.snapshot(),
            sessions: c.ledger.sessions(),
        })
        .collect();
    (outcomes, stats)
}

/// Resolves one request's settled progress into its outcome: the engine's
/// median/quorum/fallback ladder, with the resolve itself panic-isolated so
/// a pathological request cannot take down the batch. Emits the request's
/// `quorum_resolve` event, plus `fallback` when the classical path
/// produced the forecast.
fn finalize(
    index: usize,
    base_id: usize,
    prep: Prepared,
    contexts: &[(ContextKey, Context)],
    obs: &dyn Recorder,
) -> ServeOutcome {
    let id = RequestId(base_id + index);
    let st = match prep {
        Prepared::Failed(e, fp) => {
            // The request span opened at prepare time; a failed
            // preparation still closes it.
            if obs.enabled() {
                obs.span(SpanEvent::close(fp, SpanKind::Request));
            }
            return ServeOutcome {
                id,
                forecast: Err(e),
                report: None,
                cost: InferenceCost::default(),
                context: None,
            };
        }
        // Rejected before any work: typed error, zero attributed cost —
        // the conservation audit counts rejected requests at exactly zero.
        Prepared::Rejected(defect) => {
            return ServeOutcome {
                id,
                forecast: Err(defect.to_error()),
                report: None,
                cost: InferenceCost::default(),
                context: None,
            };
        }
        Prepared::Ready(st) => st,
    };
    let ctx = &contexts[st.context].1;
    let mut cost =
        if ctx.owner == index { ctx.backend.prompt_cost() } else { InferenceCost::default() };
    let progress = st.progress.into_inner().expect("request lock");
    let generated = progress.cost();
    let outcome = match progress.finish() {
        Ok(run) => {
            if obs.enabled() {
                let required = st.request.config.robust.required_valid(st.samples);
                obs.record(TraceEvent {
                    req: st.fp,
                    ctx: st.ctx_fp,
                    kind: EventKind::QuorumResolve {
                        valid: run.report.valid_samples as u32,
                        required: required as u32,
                        met: run.quorum_met,
                    },
                });
                point_span(obs, st.fp, SpanKind::Quorum);
                if !run.quorum_met
                    && st.request.config.robust.fallback == FallbackPolicy::SeasonalNaive
                {
                    obs.record(TraceEvent {
                        req: st.fp,
                        ctx: st.ctx_fp,
                        kind: EventKind::Fallback,
                    });
                    point_span(obs, st.fp, SpanKind::Fallback);
                }
            }
            let engine_run = EngineRun::new(run, st.request.config, cost);
            let forecast = catch_unwind(AssertUnwindSafe(|| {
                engine_run.resolve(&st.request.train, st.request.horizon)
            }))
            .unwrap_or_else(|_| {
                Err(pipeline_error("serve-resolve", format!("request {} panicked", id.0)))
            });
            let cost = engine_run.cost();
            ServeOutcome {
                id,
                forecast,
                report: Some(engine_run.into_report()),
                cost,
                context: Some(st.context),
            }
        }
        Err(e) => {
            // The run failed on infrastructure, but its completed draws
            // were still paid for — keep attribution conserved.
            cost.absorb(generated);
            ServeOutcome { id, forecast: Err(e), report: None, cost, context: Some(st.context) }
        }
    };
    if obs.enabled() {
        obs.span(SpanEvent::close(st.fp, SpanKind::Request));
    }
    outcome
}

/// Serves a batch of requests over `config.workers` threads and shared,
/// deduplicated frozen contexts. Per-request failures land in the
/// request's own [`ServeOutcome::forecast`]; the batch itself always
/// completes. Outcomes are returned in submission order.
pub fn serve_all(requests: &[ForecastRequest], config: &ServeConfig) -> ServeRun {
    serve_all_observed(requests, config, Arc::new(NoopRecorder))
}

/// [`serve_all`] with telemetry: every scheduler and sampling step emits
/// trace events into `obs` (which also folds them into its metrics
/// registry, when it is an `mc_obs::Observer`). Forecasts and costs are
/// identical to [`serve_all`] — the recorder only watches. With identical
/// request content + seeds and a logical-clock observer, the canonical
/// JSONL export is byte-identical across worker counts and submission
/// orders (for runs without infrastructure failures, which truncate other
/// samples' retries schedule-dependently).
pub fn serve_all_observed(
    requests: &[ForecastRequest],
    config: &ServeConfig,
    obs: Arc<dyn Recorder>,
) -> ServeRun {
    // One-shot batches get a fresh overload state and a fresh cache:
    // quotas, breakers and context warmth accumulate across flushes of a
    // [`ServeHandle`], not across independent `serve_all` calls.
    let overload = OverloadState::new();
    let cache = config.cache.map(LmCache::new);
    let submissions = requests.iter().cloned().map(Ok).collect();
    let (outcomes, contexts) = run_batch(submissions, config, &overload, cache.as_ref(), 0, &obs);
    ServeRun { outcomes, contexts }
}

/// Incremental front-end over [`serve_all`]: submit requests one at a
/// time, collect results by id. Submitted requests are batched until the
/// first [`ServeHandle::collect`] (or explicit [`ServeHandle::flush`])
/// forces execution; context sharing happens within a flush.
pub struct ServeHandle {
    config: ServeConfig,
    /// Pending slots: admitted requests, or rejections already decided at
    /// submit time (queue full). Rejections keep their slot so ids stay
    /// submission indices.
    pending: Vec<Submission>,
    outcomes: Vec<ServeOutcome>,
    contexts: Vec<ContextStats>,
    overload: OverloadState,
    /// Cross-batch frozen-context cache ([`ServeConfig::cache`]); lives
    /// as long as the handle so later flushes reuse earlier fits.
    cache: Option<LmCache>,
    obs: Arc<dyn Recorder>,
}

impl ServeHandle {
    /// A handle with the given scheduler knobs and no pending requests.
    pub fn new(config: ServeConfig) -> Self {
        Self::with_recorder(config, Arc::new(NoopRecorder))
    }

    /// A handle whose flushes emit trace events into `obs` (see
    /// [`serve_all_observed`]).
    pub fn with_recorder(config: ServeConfig, obs: Arc<dyn Recorder>) -> Self {
        Self {
            cache: config.cache.map(LmCache::new),
            config,
            pending: Vec::new(),
            outcomes: Vec::new(),
            contexts: Vec::new(),
            overload: OverloadState::new(),
            obs,
        }
    }

    /// Enqueues a request; the returned id is its submission index.
    ///
    /// With [`ServeConfig::submit_cap`] set, submissions beyond the cap
    /// are rejected on the spot: the id is still handed out, but
    /// collecting it yields [`TsError::Overloaded`] (kind `queue-full`) —
    /// backpressure is a typed outcome, not unbounded buffering.
    pub fn submit(&mut self, request: ForecastRequest) -> RequestId {
        let admitted = self.pending.iter().filter(|slot| slot.is_ok()).count();
        let slot = match self.config.submit_cap {
            Some(cap) if admitted >= cap => {
                if self.obs.enabled() {
                    self.obs.record(TraceEvent { req: 0, ctx: 0, kind: EventKind::QueueFull });
                }
                Err(ServeDefect::QueueFull { cap })
            }
            _ => Ok(request),
        };
        self.pending.push(slot);
        RequestId(self.outcomes.len() + self.pending.len() - 1)
    }

    /// Executes every pending request as one batch.
    pub fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let submissions = std::mem::take(&mut self.pending);
        let (outcomes, contexts) = run_batch(
            submissions,
            &self.config,
            &self.overload,
            self.cache.as_ref(),
            self.outcomes.len(),
            &self.obs,
        );
        self.outcomes.extend(outcomes);
        self.contexts.extend(contexts);
    }

    /// The outcome of a submitted request, flushing pending work if the
    /// request has not run yet.
    ///
    /// # Errors
    /// [`TsError::UnknownRequest`] when `id` was never returned by
    /// [`ServeHandle::submit`]. The probe still flushes pending work
    /// first, so a handle is never left half-executed by a bad lookup.
    pub fn collect(&mut self, id: RequestId) -> Result<ServeOutcome> {
        if id.0 >= self.outcomes.len() {
            self.flush();
        }
        self.outcomes.get(id.0).cloned().ok_or(TsError::UnknownRequest { id: id.0 })
    }

    /// Every outcome executed so far (submission order).
    pub fn outcomes(&self) -> &[ServeOutcome] {
        &self.outcomes
    }

    /// Context accounting across every flush so far.
    pub fn contexts(&self) -> &[ContextStats] {
        &self.contexts
    }

    /// The handle's overload state (quota ledger, circuit breakers) —
    /// read-only introspection for reports and tests.
    pub fn overload(&self) -> &OverloadState {
        &self.overload
    }

    /// Counter snapshot of the cross-batch context cache (`None` when
    /// [`ServeConfig::cache`] is off). Hit rate here is the bench gate's
    /// `hit_rate` key.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(LmCache::stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_datasets::generators::sinusoids;

    fn series(n: usize) -> MultivariateSeries {
        let a = sinusoids(n, &[(1.0, 12.0, 0.0)]);
        let b: Vec<f64> = a.iter().map(|&v| 4.0 + 0.5 * v).collect();
        MultivariateSeries::from_columns(vec!["a".into(), "b".into()], vec![a, b]).unwrap()
    }

    fn request(horizon: usize, method: MuxMethod, seed: u64) -> ForecastRequest {
        let config = ForecastConfig { samples: 2, seed, ..ForecastConfig::default() };
        ForecastRequest::digit(series(48), horizon, method, config)
    }

    #[test]
    fn same_history_and_codec_share_one_context() {
        // Different horizons and seeds — but one prompt, so one context.
        let requests = vec![
            request(4, MuxMethod::ValueInterleave, 1),
            request(7, MuxMethod::ValueInterleave, 99),
        ];
        let run = serve_all(&requests, &ServeConfig::with_workers(2));
        assert_eq!(run.contexts.len(), 1);
        assert_eq!(run.contexts[0].requests, 2);
        assert!(run.outcomes.iter().all(|o| o.context == Some(0)));
        // Prompt charged exactly once, to exactly one request.
        let prompt = run.contexts[0].prompt_cost.prompt_tokens;
        assert!(prompt > 0);
        let charged: Vec<u64> = run.outcomes.iter().map(|o| o.cost.prompt_tokens).collect();
        assert_eq!(charged.iter().sum::<u64>(), prompt);
        assert_eq!(charged.iter().filter(|&&c| c > 0).count(), 1);
    }

    #[test]
    fn different_codecs_get_distinct_contexts() {
        let requests =
            vec![request(4, MuxMethod::ValueInterleave, 1), request(4, MuxMethod::ValueConcat, 1)];
        let run = serve_all(&requests, &ServeConfig::default());
        assert_eq!(run.contexts.len(), 2);
        assert_eq!(run.outcomes[0].context, Some(0));
        assert_eq!(run.outcomes[1].context, Some(1));
    }

    #[test]
    fn forecasts_have_requested_shapes() {
        let requests =
            vec![request(3, MuxMethod::ValueInterleave, 7), request(9, MuxMethod::ValueConcat, 8)];
        let run = serve_all(&requests, &ServeConfig::with_workers(3));
        for (req, outcome) in requests.iter().zip(&run.outcomes) {
            let fc = outcome.forecast.as_ref().unwrap();
            assert_eq!(fc.len(), req.horizon);
            assert_eq!(fc.dims(), 2);
            assert!(outcome.report.is_some());
        }
    }

    #[test]
    fn handle_collect_flushes_and_rejects_unknown_ids() {
        let mut handle = ServeHandle::new(ServeConfig::with_workers(2));
        let a = handle.submit(request(4, MuxMethod::ValueInterleave, 1));
        let b = handle.submit(request(5, MuxMethod::ValueInterleave, 2));
        assert_eq!(a, RequestId(0));
        assert_eq!(b, RequestId(1));
        assert!(handle.collect(RequestId(2)).is_err(), "unsubmitted id must be rejected");
        let out_b = handle.collect(b).unwrap();
        assert_eq!(out_b.forecast.unwrap().len(), 5);
        // Both ran in the flush triggered by the first collect.
        assert_eq!(handle.outcomes().len(), 2);
        let out_a = handle.collect(a).unwrap();
        assert_eq!(out_a.forecast.unwrap().len(), 4);
        // A later submit starts a new batch with its own context.
        let c = handle.submit(request(6, MuxMethod::ValueInterleave, 3));
        assert_eq!(c, RequestId(2));
        assert_eq!(handle.collect(c).unwrap().forecast.unwrap().len(), 6);
        assert_eq!(handle.contexts().len(), 2);
    }

    #[test]
    fn empty_batch_serves_nothing() {
        let run = serve_all(&[], &ServeConfig::default());
        assert!(run.outcomes.is_empty());
        assert!(run.contexts.is_empty());
        assert_eq!(run.attributed_cost(), InferenceCost::default());
    }

    #[test]
    fn zero_worker_config_is_clamped() {
        let run = serve_all(
            &[request(4, MuxMethod::ValueInterleave, 1)],
            &ServeConfig { workers: 0, ..ServeConfig::default() },
        );
        assert!(run.outcomes[0].forecast.is_ok());
    }

    #[test]
    fn queue_cap_sheds_lowest_priority_first() {
        let mut interactive = request(4, MuxMethod::ValueInterleave, 1);
        interactive.priority = Priority::Interactive;
        let mut batch = request(5, MuxMethod::ValueInterleave, 2);
        batch.priority = Priority::Batch;
        let normal = request(6, MuxMethod::ValueInterleave, 3);
        let config = ServeConfig { queue_cap: Some(2), ..ServeConfig::with_workers(2) };
        let run = serve_all(&[batch.clone(), normal.clone(), interactive.clone()], &config);
        assert!(run.outcomes[1].forecast.is_ok(), "normal priority survives");
        assert!(run.outcomes[2].forecast.is_ok(), "interactive survives");
        match &run.outcomes[0].forecast {
            Err(TsError::Overloaded { kind, .. }) => assert_eq!(*kind, "shed"),
            other => panic!("batch priority must be shed, got {other:?}"),
        }
        assert_eq!(run.outcomes[0].cost, InferenceCost::default(), "shed requests cost nothing");
        // The shed *set* is order-invariant: reversed submission, same loser.
        let run2 = serve_all(&[interactive, normal, batch], &config);
        match &run2.outcomes[2].forecast {
            Err(TsError::Overloaded { kind, .. }) => assert_eq!(*kind, "shed"),
            other => panic!("batch priority must be shed regardless of order, got {other:?}"),
        }
    }

    #[test]
    fn submit_cap_rejects_with_queue_full() {
        let config = ServeConfig { submit_cap: Some(1), ..ServeConfig::with_workers(2) };
        let mut handle = ServeHandle::new(config);
        let a = handle.submit(request(4, MuxMethod::ValueInterleave, 1));
        let b = handle.submit(request(5, MuxMethod::ValueInterleave, 2));
        assert!(handle.collect(a).unwrap().forecast.is_ok());
        match handle.collect(b).unwrap().forecast {
            Err(TsError::Overloaded { kind, .. }) => assert_eq!(kind, "queue-full"),
            other => panic!("expected queue-full rejection, got {other:?}"),
        }
        // The cap is per flush: after the flush the handle admits again.
        let c = handle.submit(request(6, MuxMethod::ValueInterleave, 3));
        assert!(handle.collect(c).unwrap().forecast.is_ok());
    }

    #[test]
    fn quota_exhaustion_rejects_across_flushes() {
        let config = ServeConfig { quota_tokens: Some(1), ..ServeConfig::with_workers(2) };
        let mut handle = ServeHandle::new(config);
        let a = handle.submit(request(4, MuxMethod::ValueInterleave, 1));
        assert!(handle.collect(a).unwrap().forecast.is_ok(), "ledger starts empty: admitted");
        assert!(handle.overload().quota().spent(0) > 0, "flush charged the client");
        let b = handle.submit(request(5, MuxMethod::ValueInterleave, 2));
        match handle.collect(b).unwrap().forecast {
            Err(TsError::Overloaded { kind, .. }) => assert_eq!(kind, "quota"),
            other => panic!("expected quota rejection, got {other:?}"),
        }
        // A different client is unaffected.
        let mut other = request(4, MuxMethod::ValueInterleave, 3);
        other.client = 1;
        let c = handle.submit(other);
        assert!(handle.collect(c).unwrap().forecast.is_ok());
    }

    #[test]
    fn breaker_trips_on_rigged_failures_and_recovers() {
        use crate::overload::BreakerState;
        use crate::robust::FaultSpec;
        let config = ServeConfig {
            breaker: Some(BreakerPolicy { trip_failures: 1, cooldown_flushes: 1 }),
            ..ServeConfig::with_workers(2)
        };
        let mut handle = ServeHandle::new(config);
        let mut rigged = request(4, MuxMethod::ValueInterleave, 1);
        rigged.source = SampleSource::FaultInjected(FaultSpec {
            rate: 1.0,
            seed: 7,
            panic_sample: None,
            latency_tokens: 0,
        });
        let a = handle.submit(rigged);
        // The rigged flush fails every attempt; the boundary trips the breaker.
        assert!(handle.collect(a).is_ok());
        let preset = ForecastConfig::default().preset;
        let breaker = handle.overload().breaker(preset);
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.trips(), 1);
        // While open, admission rejects before any work.
        let b = handle.submit(request(5, MuxMethod::ValueInterleave, 2));
        match handle.collect(b).unwrap().forecast {
            Err(TsError::Overloaded { kind, .. }) => assert_eq!(kind, "breaker-open"),
            other => panic!("expected breaker-open rejection, got {other:?}"),
        }
        // That (empty-of-attempts) flush spends the cooldown: half-open.
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        // A healthy probe flush closes it again.
        let c = handle.submit(request(4, MuxMethod::ValueInterleave, 3));
        assert!(handle.collect(c).unwrap().forecast.is_ok());
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.trips(), 1, "trips are monotone and only count real trips");
    }

    #[test]
    fn deadline_budget_degrades_to_fallback_not_error() {
        let mut req = request(4, MuxMethod::ValueInterleave, 1);
        req.config.robust.deadline_tokens = Some(1);
        let run = serve_all(&[req], &ServeConfig::with_workers(2));
        let outcome = &run.outcomes[0];
        let fc = outcome.forecast.as_ref().expect("deadline degrades, never errors");
        assert_eq!(fc.len(), 4);
        let report = outcome.report.as_ref().unwrap();
        assert_eq!(report.valid_samples, 0, "every sample expired");
        assert!(report.degraded(), "seasonal-naive fallback produced the forecast");
    }

    fn cached_config(workers: usize) -> ServeConfig {
        ServeConfig { cache: Some(CacheConfig::default()), ..ServeConfig::with_workers(workers) }
    }

    #[test]
    fn warm_flush_reuses_the_cached_context() {
        let mut handle = ServeHandle::new(cached_config(2));
        let a = handle.submit(request(4, MuxMethod::ValueInterleave, 1));
        handle.flush();
        // Same history and codec again: the second flush must hit.
        let b = handle.submit(request(7, MuxMethod::ValueInterleave, 99));
        handle.flush();
        let stats = handle.cache_stats().unwrap();
        assert_eq!((stats.misses, stats.hits), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        // Warm and cold contexts share one trace fingerprint and both
        // report the full prompt cost (re-metered per flush).
        assert_eq!(handle.contexts().len(), 2);
        assert_eq!(handle.contexts()[0].fingerprint, handle.contexts()[1].fingerprint);
        assert_eq!(handle.contexts()[0].prompt_cost, handle.contexts()[1].prompt_cost);
        assert!(handle.collect(a).unwrap().forecast.is_ok());
        assert!(handle.collect(b).unwrap().forecast.is_ok());
    }

    #[test]
    fn warm_forecasts_are_bit_identical_to_cold() {
        let reqs =
            vec![request(4, MuxMethod::ValueInterleave, 1), request(6, MuxMethod::ValueConcat, 2)];
        let cold = serve_all(&reqs, &ServeConfig::with_workers(2));
        let mut handle = ServeHandle::new(cached_config(3));
        // Two flushes of the same batch: the second is fully warm.
        for _ in 0..2 {
            for r in &reqs {
                handle.submit(r.clone());
            }
            handle.flush();
        }
        let stats = handle.cache_stats().unwrap();
        assert_eq!((stats.misses, stats.hits), (2, 2));
        for (flush, chunk) in handle.outcomes().chunks(reqs.len()).enumerate() {
            for (cold_o, warm_o) in cold.outcomes.iter().zip(chunk) {
                let c = cold_o.forecast.as_ref().unwrap();
                let w = warm_o.forecast.as_ref().unwrap();
                for (cc, wc) in c.columns().iter().zip(w.columns()) {
                    let cb: Vec<u64> = cc.iter().map(|v| v.to_bits()).collect();
                    let wb: Vec<u64> = wc.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(cb, wb, "flush {flush} diverged from cold serve");
                }
                assert_eq!(cold_o.cost, warm_o.cost, "warm attribution must match cold");
            }
        }
    }

    #[test]
    fn flush_boundary_unpins_every_cached_context() {
        let mut handle = ServeHandle::new(cached_config(2));
        handle.submit(request(4, MuxMethod::ValueInterleave, 1));
        handle.submit(request(4, MuxMethod::ValueConcat, 2));
        handle.flush();
        assert_eq!(handle.contexts().len(), 2);
        // Both contexts were pinned during the flush and settled after:
        // a capacity-1 cache can now evict them for a new insertion.
        let stats = handle.cache_stats().unwrap();
        assert_eq!(stats.insertions, 2);
        let one = ServeConfig {
            cache: Some(CacheConfig { capacity: 1, shards: 1, ..CacheConfig::default() }),
            ..ServeConfig::with_workers(2)
        };
        let mut tiny = ServeHandle::new(one);
        tiny.submit(request(4, MuxMethod::ValueInterleave, 1));
        tiny.submit(request(4, MuxMethod::ValueConcat, 2));
        tiny.flush();
        // Within the flush both stayed resident (pinned ≻ capacity);
        // eviction only happened when the over-capacity insert ran.
        let s = tiny.cache_stats().unwrap();
        assert_eq!(s.insertions, 2);
        assert_eq!(s.evictions, 0, "both contexts were pinned during the flush");
        // An unrelated history is a genuine miss: its insert now finds
        // both earlier entries unpinned and evicts down to capacity.
        let fresh = ForecastConfig { samples: 2, seed: 3, ..ForecastConfig::default() };
        let alt = sinusoids(40, &[(2.0, 7.0, 0.4)]);
        let alt2: Vec<f64> = alt.iter().map(|&v| 1.0 - v).collect();
        let train = MultivariateSeries::from_columns(vec!["a".into(), "b".into()], vec![alt, alt2])
            .unwrap();
        tiny.submit(ForecastRequest::digit(train, 4, MuxMethod::ValueInterleave, fresh));
        tiny.flush();
        assert!(tiny.cache_stats().unwrap().evictions > 0, "unpinned entries evict after settle");
    }

    #[test]
    fn streamed_history_refits_incrementally() {
        // The same stream, observed longer: the grown prompt strictly
        // extends the cached one, so the second flush delta-updates the
        // resident context instead of fitting from scratch.
        let grown = ForecastConfig { samples: 2, seed: 9, ..ForecastConfig::default() };
        let long = ForecastRequest::digit(series(52), 4, MuxMethod::ValueInterleave, grown);
        let mut handle = ServeHandle::new(cached_config(2));
        handle.submit(request(4, MuxMethod::ValueInterleave, 1));
        handle.flush();
        handle.submit(long.clone());
        handle.flush();
        let stats = handle.cache_stats().unwrap();
        assert_eq!(stats.refits, 1, "grown history must delta-update the cached ancestor");
        assert_eq!(stats.insertions, 1, "no second from-scratch fit");
        // Bit-identical to a cold fit of the grown history.
        let cold = serve_all(&[long], &ServeConfig::with_workers(2));
        let c = cold.outcomes[0].forecast.as_ref().unwrap();
        let w = handle.outcomes()[1].forecast.as_ref().unwrap();
        for (cc, wc) in c.columns().iter().zip(w.columns()) {
            let cb: Vec<u64> = cc.iter().map(|v| v.to_bits()).collect();
            let wb: Vec<u64> = wc.iter().map(|v| v.to_bits()).collect();
            assert_eq!(cb, wb, "refit context diverged from a from-scratch fit");
        }
        // The refit context is a distinct trace identity: its epoch is
        // stamped into the fingerprint, so it matches neither the
        // ancestor nor the cold fit of the same grown prompt.
        let fps: Vec<u64> = handle.contexts().iter().map(|c| c.fingerprint).collect();
        assert_ne!(fps[0], fps[1]);
        assert_ne!(cold.contexts[0].fingerprint, fps[1]);
    }

    #[test]
    fn one_shot_serve_all_stays_cold_across_calls() {
        let reqs = vec![request(4, MuxMethod::ValueInterleave, 1)];
        let config = cached_config(2);
        let first = serve_all(&reqs, &config);
        let second = serve_all(&reqs, &config);
        // A fresh cache per call: identical context accounting, no warmth.
        assert_eq!(first.contexts[0].fingerprint, second.contexts[0].fingerprint);
        assert_eq!(first.contexts[0].prompt_cost, second.contexts[0].prompt_cost);
    }
}
