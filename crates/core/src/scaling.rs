//! Fixed-digit rescaling (paper §III-A: "after each dimension has been
//! rescaled to avoid decimals").
//!
//! Each dimension is affinely mapped into `[0, 10^b - 1]` and rounded, so
//! every timestamp serializes to **exactly `b` digit characters**
//! (zero-padded). The fixed width is not cosmetic: the DI and VI
//! demultiplexers can only invert the token stream if every value
//! contributes the same digit count — formulas (1)–(3) in the paper all
//! assume `b` digits per timestamp.
//!
//! A configurable *headroom* extends the observed range before mapping so
//! the forecast can move beyond the training extremes without clipping
//! (the LLM may legitimately continue a trend past the historical max).

use mc_tslib::error::{invalid_param, Result, TsError};

/// Per-dimension affine scaler into fixed-width integers.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedDigitScaler {
    /// Digits per value (`b` in the paper's formulas).
    digits: u32,
    /// Lower bound of the mapped range, per dimension.
    lo: Vec<f64>,
    /// Upper bound of the mapped range, per dimension.
    hi: Vec<f64>,
}

impl FixedDigitScaler {
    /// Fits a scaler to the columns of a series.
    ///
    /// `headroom` is the fraction of the observed range added on both ends
    /// (0.15 is the library default, see [`crate::config::ForecastConfig`]).
    ///
    /// # Errors
    /// If `digits` is 0 or > 9, any column is empty, or contains
    /// non-finite values.
    pub fn fit(columns: &[Vec<f64>], digits: u32, headroom: f64) -> Result<Self> {
        if digits == 0 || digits > 9 {
            return Err(invalid_param("digits", format!("{digits} not in 1..=9")));
        }
        if !(0.0..=10.0).contains(&headroom) {
            return Err(invalid_param("headroom", format!("{headroom} not in [0, 10]")));
        }
        if columns.is_empty() {
            return Err(TsError::Empty);
        }
        let mut lo = Vec::with_capacity(columns.len());
        let mut hi = Vec::with_capacity(columns.len());
        for col in columns {
            if col.is_empty() {
                return Err(TsError::Empty);
            }
            if col.iter().any(|v| !v.is_finite()) {
                return Err(invalid_param("values", "non-finite value in series"));
            }
            let (mut mn, mut mx) = (f64::MAX, f64::MIN);
            for &v in col {
                mn = mn.min(v);
                mx = mx.max(v);
            }
            let range = (mx - mn).max(1e-9);
            lo.push(mn - headroom * range);
            hi.push(mx + headroom * range);
        }
        Ok(Self { digits, lo, hi })
    }

    /// Digits per value.
    pub fn digits(&self) -> u32 {
        self.digits
    }

    /// Number of dimensions this scaler was fitted on.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Largest representable integer (`10^b - 1`).
    pub fn max_int(&self) -> u64 {
        10u64.pow(self.digits) - 1
    }

    /// Scales one value of dimension `d` to its integer code (clamped to
    /// the representable range).
    pub fn scale_value(&self, d: usize, v: f64) -> Result<u64> {
        self.check_dim(d)?;
        let frac = (v - self.lo[d]) / (self.hi[d] - self.lo[d]);
        let code = (frac * self.max_int() as f64).round();
        Ok(code.clamp(0.0, self.max_int() as f64) as u64)
    }

    /// Inverse of [`Self::scale_value`]; codes beyond the digit budget are
    /// clamped first (defensive against malformed LLM output).
    pub fn descale_value(&self, d: usize, code: u64) -> Result<f64> {
        self.check_dim(d)?;
        let code = code.min(self.max_int());
        let frac = code as f64 / self.max_int() as f64;
        Ok(self.lo[d] + frac * (self.hi[d] - self.lo[d]))
    }

    /// Scales a whole column.
    pub fn scale_column(&self, d: usize, col: &[f64]) -> Result<Vec<u64>> {
        col.iter().map(|&v| self.scale_value(d, v)).collect()
    }

    /// Descales a whole column of codes.
    pub fn descale_column(&self, d: usize, codes: &[u64]) -> Result<Vec<f64>> {
        codes.iter().map(|&c| self.descale_value(d, c)).collect()
    }

    /// Quantization step of dimension `d` (the worst-case round-trip error
    /// is half of this).
    pub fn step(&self, d: usize) -> Result<f64> {
        self.check_dim(d)?;
        Ok((self.hi[d] - self.lo[d]) / self.max_int() as f64)
    }

    fn check_dim(&self, d: usize) -> Result<()> {
        if d >= self.lo.len() {
            return Err(TsError::DimensionOutOfBounds { dim: d, dims: self.lo.len() });
        }
        Ok(())
    }
}

/// Renders an integer code as exactly `digits` zero-padded characters.
pub fn format_code(code: u64, digits: u32) -> String {
    format!("{code:0width$}", width = digits as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_bounded_by_step() {
        let col: Vec<f64> = (0..50).map(|t| 40.0 + (t as f64 * 0.3).sin() * 7.0).collect();
        let s = FixedDigitScaler::fit(std::slice::from_ref(&col), 3, 0.15).unwrap();
        let step = s.step(0).unwrap();
        for &v in &col {
            let code = s.scale_value(0, v).unwrap();
            let back = s.descale_value(0, code).unwrap();
            assert!((back - v).abs() <= step / 2.0 + 1e-12, "v={v} back={back} step={step}");
        }
    }

    #[test]
    fn codes_fit_digit_budget() {
        let col = vec![-5.0, 0.0, 5.0];
        for digits in 1..=4u32 {
            let s = FixedDigitScaler::fit(std::slice::from_ref(&col), digits, 0.0).unwrap();
            for &v in &col {
                let code = s.scale_value(0, v).unwrap();
                assert!(code <= s.max_int());
                assert_eq!(format_code(code, digits).len(), digits as usize);
            }
        }
    }

    #[test]
    fn headroom_leaves_room_beyond_extremes() {
        let col = vec![0.0, 10.0];
        let s = FixedDigitScaler::fit(&[col], 3, 0.15).unwrap();
        // Values moderately outside the training range stay distinguishable.
        let over = s.scale_value(0, 11.0).unwrap();
        let max = s.scale_value(0, 10.0).unwrap();
        assert!(over > max, "headroom must leave codes above the train max");
        assert!(over < s.max_int(), "11.0 is inside the 15% headroom band");
        // Far outside clamps.
        assert_eq!(s.scale_value(0, 1e9).unwrap(), s.max_int());
        assert_eq!(s.scale_value(0, -1e9).unwrap(), 0);
    }

    #[test]
    fn zero_padding_is_fixed_width() {
        assert_eq!(format_code(7, 3), "007");
        assert_eq!(format_code(42, 3), "042");
        assert_eq!(format_code(999, 3), "999");
        assert_eq!(format_code(7, 1), "7");
    }

    #[test]
    fn constant_column_does_not_collapse() {
        let s = FixedDigitScaler::fit(&[vec![5.0, 5.0, 5.0]], 2, 0.15).unwrap();
        let code = s.scale_value(0, 5.0).unwrap();
        let back = s.descale_value(0, code).unwrap();
        assert!((back - 5.0).abs() < 1e-6);
    }

    #[test]
    fn per_dimension_independence() {
        let s = FixedDigitScaler::fit(&[vec![0.0, 1.0], vec![100.0, 200.0]], 3, 0.0).unwrap();
        assert_eq!(s.dims(), 2);
        // Same physical value scales differently per dimension.
        let a = s.scale_value(0, 0.5).unwrap();
        let b = s.scale_value(1, 150.0).unwrap();
        assert_eq!(a, 500); // midpoint of dim 0
        assert_eq!(b, 500); // midpoint of dim 1
        assert!(s.scale_value(2, 1.0).is_err());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(FixedDigitScaler::fit(&[vec![1.0]], 0, 0.1).is_err());
        assert!(FixedDigitScaler::fit(&[vec![1.0]], 10, 0.1).is_err());
        assert!(FixedDigitScaler::fit(&[vec![1.0]], 3, -0.1).is_err());
        assert!(FixedDigitScaler::fit(&[], 3, 0.1).is_err());
        assert!(FixedDigitScaler::fit(&[vec![]], 3, 0.1).is_err());
        assert!(FixedDigitScaler::fit(&[vec![f64::NAN]], 3, 0.1).is_err());
    }

    #[test]
    fn descale_clamps_overflow_codes() {
        let s = FixedDigitScaler::fit(&[vec![0.0, 1.0]], 2, 0.0).unwrap();
        let at_max = s.descale_value(0, 99).unwrap();
        let beyond = s.descale_value(0, 10_000).unwrap();
        assert_eq!(at_max, beyond);
    }
}
