//! Bounded-exhaustive model checking of the observability layer.
//!
//! Runs only under `--cfg loom` (the dedicated CI job):
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p multicast-core --test loom_obs --release
//! ```
//!
//! Under that cfg the [`mc_sync`] shim inside `mc-obs` resolves to the
//! [`mc_loom`] primitives, so the *production* [`MetricsRegistry`],
//! [`LogicalClock`] and [`Observer`] are explored across thread
//! interleavings. The properties proved here are the ones the serve
//! path's emitters rely on: concurrent recording loses no increments and
//! no events, whatever the schedule.
#![cfg(loom)]

use mc_loom::sync::Arc;
use mc_loom::{explore, model, thread};

use mc_obs::{
    pair_spans, Clock, Counter, EventKind, LogicalClock, MetricsRegistry, Observer, Recorder,
    SpanGuard, SpanKind, TraceEvent,
};

/// Racing `fetch_add`s on the registry's counters, defect slots and a
/// histogram: every increment lands, in every interleaving.
#[test]
fn metrics_registry_loses_no_increments() {
    let stats = explore(|| {
        let reg = Arc::new(MetricsRegistry::new());
        let workers: Vec<_> = (0..2u64)
            .map(|i| {
                let reg = Arc::clone(&reg);
                thread::spawn(move || {
                    reg.incr(Counter::Attempts);
                    reg.add(Counter::GeneratedTokens, 3 + i);
                    reg.add_defect(i as usize);
                    reg.attempt_tokens().observe(5);
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
        assert_eq!(reg.get(Counter::Attempts), 2, "no lost attempt increments");
        assert_eq!(reg.get(Counter::GeneratedTokens), 7, "no lost token adds");
        assert_eq!(reg.defect_count(0), 1);
        assert_eq!(reg.defect_count(1), 1);
        assert_eq!(reg.attempt_tokens().count(), 2);
        assert_eq!(reg.attempt_tokens().sum(), 10);
    });
    assert!(stats.iterations > 1, "expected schedule exploration, got {stats:?}");
}

/// The logical clock never repeats or skips under contention: two racing
/// tickers observe distinct values and the final tick count equals the
/// number of reads.
#[test]
fn logical_clock_ticks_are_unique_across_interleavings() {
    model(|| {
        let clock = Arc::new(LogicalClock::new());
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let clock = Arc::clone(&clock);
                thread::spawn(move || [clock.now(), clock.now()])
            })
            .collect();
        let mut ticks = Vec::new();
        for w in workers {
            ticks.extend(w.join().expect("worker"));
        }
        ticks.sort_unstable();
        ticks.dedup();
        assert_eq!(ticks.len(), 4, "every tick is unique");
        assert_eq!(clock.now(), 4, "the counter saw exactly four reads");
    });
}

/// Event-count conservation through the full recording path (clock stamp,
/// registry fold, buffer push): everything recorded by racing emitters is
/// buffered and counted, and the `events` counter equals the buffer
/// length in every interleaving.
#[test]
fn observer_conserves_concurrent_events() {
    model(|| {
        let obs = Arc::new(Observer::logical());
        let workers: Vec<_> = (0..2u64)
            .map(|i| {
                let obs = Arc::clone(&obs);
                thread::spawn(move || {
                    obs.record(TraceEvent { req: i, ctx: 0, kind: EventKind::ContextJoin });
                    obs.record(TraceEvent {
                        req: i,
                        ctx: 0,
                        kind: EventKind::Retry { sample: 0, attempt: 1 },
                    });
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
        let events = obs.events();
        assert_eq!(events.len(), 4, "no recorded event is lost");
        assert_eq!(obs.metrics().get(Counter::Events), 4, "registry agrees with the buffer");
        assert_eq!(obs.metrics().get(Counter::ContextJoins), 2);
        assert_eq!(obs.metrics().get(Counter::Retries), 2);
        let mut stamps: Vec<u64> = events.iter().map(|s| s.t).collect();
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), 4, "logical stamps never collide");
    });
}

/// Span-pairing safety under contention: two racing emitters, each
/// opening and closing nested spans through RAII [`SpanGuard`]s (one of
/// them unwinding out of a panicking closure), leave a buffer in which no
/// span is orphaned or double-closed, in every interleaving — and the
/// per-kind open counters agree with the buffer.
#[test]
fn racing_span_guards_never_orphan_or_double_close() {
    model(|| {
        let obs = Arc::new(Observer::logical());
        let workers: Vec<_> = (0..2u64)
            .map(|i| {
                let obs = Arc::clone(&obs);
                thread::spawn(move || {
                    let inner = {
                        let _attempt = SpanGuard::open(
                            obs.as_ref(),
                            i,
                            SpanKind::Attempt { sample: i as u32, attempt: 0 },
                        );
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let _draw = SpanGuard::open(
                                obs.as_ref(),
                                i,
                                SpanKind::Draw { sample: i as u32, attempt: 0 },
                            );
                            if i == 1 {
                                panic!("rigged draw");
                            }
                        }))
                    };
                    assert_eq!(inner.is_err(), i == 1, "exactly worker 1 unwinds");
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
        let spans = obs.spans();
        assert_eq!(spans.len(), 8, "2 workers x (attempt + draw) x (open + close)");
        let paired = pair_spans(&spans).expect("no orphaned or double-closed span");
        assert_eq!(paired.len(), 4);
        for p in &paired {
            assert!(p.close_t > p.open_t, "closes stamp after opens");
        }
        let metrics = obs.metrics();
        assert_eq!(metrics.span_open_count(&SpanKind::Attempt { sample: 0, attempt: 0 }), 2);
        assert_eq!(metrics.span_open_count(&SpanKind::Draw { sample: 0, attempt: 0 }), 2);
    });
}
