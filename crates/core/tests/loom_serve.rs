//! Bounded-exhaustive model checking of the serve scheduler's
//! concurrency core.
//!
//! Runs only under `--cfg loom` (the dedicated CI job):
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p multicast-core --test loom_serve --release
//! ```
//!
//! Under that cfg the [`mc_sync`] shim resolves to the [`mc_loom`]
//! primitives, so the *production* [`TaskQueue`] and [`CostLedger`] —
//! not copies — are explored across every thread interleaving the
//! preemption bound admits (`LOOM_MAX_PREEMPTIONS`, default 2). The
//! properties proved here are exactly the ones `crate::serve::run_batch`
//! relies on; see DESIGN.md §8.
#![cfg(loom)]

use std::panic::{catch_unwind, AssertUnwindSafe};

use mc_loom::sync::Arc;
use mc_loom::{explore, model, thread};

use mc_lm::cost::InferenceCost;
use mc_lm::metered::CostLedger;
use multicast_core::overload::{BreakerPolicy, BreakerState, CircuitBreaker};
use multicast_core::sched::TaskQueue;

/// Workers racing over a seeded queue: every task is consumed exactly
/// once, every worker terminates, in every interleaving.
#[test]
fn worker_pool_drains_without_lost_tasks_or_deadlock() {
    let stats = explore(|| {
        let queue = Arc::new(TaskQueue::new(vec![0usize, 1, 2], 3));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    let mut seen = Vec::new();
                    while let Some(task) = queue.next() {
                        seen.push(task);
                        queue.settle_one();
                    }
                    seen
                })
            })
            .collect();
        let mut all: Vec<usize> = Vec::new();
        for w in workers {
            all.extend(w.join().expect("worker"));
        }
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2], "each task settles exactly once");
        assert_eq!(queue.next(), None, "termination is observable after the drain");
    });
    assert!(stats.iterations > 1, "expected schedule exploration, got {stats:?}");
}

/// The termination race the `outstanding` counter exists for: with the
/// queue empty but one task mid-execution, a sleeping worker must not
/// miss the retry that task pushes. A lost `notify` here deadlocks, which
/// the checker reports.
#[test]
fn retry_pushed_while_peer_sleeps_is_not_lost() {
    model(|| {
        let queue = Arc::new(TaskQueue::new(vec![0usize], 1));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    let mut done = 0usize;
                    while let Some(task) = queue.next() {
                        if task == 0 {
                            // First attempt fails validation: re-queue the
                            // retry instead of settling, as run_task does.
                            queue.push(1);
                        } else {
                            done += 1;
                            queue.settle_one();
                        }
                    }
                    done
                })
            })
            .collect();
        let done: usize = workers.into_iter().map(|w| w.join().expect("worker")).sum();
        assert_eq!(done, 1, "the retried sample settles exactly once");
    });
}

/// Pool exhaustion: more admitted work than workers still drains — a
/// single worker alone must observe termination after the last settle.
#[test]
fn single_worker_drains_backlog() {
    model(|| {
        let queue = Arc::new(TaskQueue::new(vec![0usize, 1, 2, 3], 4));
        let q = Arc::clone(&queue);
        let worker = thread::spawn(move || {
            let mut done = 0usize;
            while let Some(_task) = q.next() {
                done += 1;
                q.settle_one();
            }
            done
        });
        assert_eq!(worker.join().expect("worker"), 4);
    });
}

/// Panic isolation: a task whose execution panics is caught at the worker
/// (as `serve::finalize` catches resolve panics) and still settles, so
/// the failure resolves to an error without wedging the pool — the
/// sibling worker and the remaining tasks complete in every interleaving.
#[test]
fn panicking_task_settles_without_wedging_the_pool() {
    // The deliberate panics below would otherwise print one backtrace per
    // explored schedule.
    std::panic::set_hook(Box::new(|_| {}));
    model(|| {
        let queue = Arc::new(TaskQueue::new(vec![0usize, 1], 2));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    let mut ok = 0usize;
                    let mut failed = 0usize;
                    while let Some(task) = queue.next() {
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            assert!(task != 0, "task 0 is the poisoned request");
                        }));
                        match outcome {
                            Ok(()) => ok += 1,
                            Err(_) => failed += 1,
                        }
                        // Settled either way: a panic resolves the sample
                        // as failed, it does not leak the settlement.
                        queue.settle_one();
                    }
                    (ok, failed)
                })
            })
            .collect();
        let (mut ok, mut failed) = (0, 0);
        for w in workers {
            let (o, f) = w.join().expect("worker");
            ok += o;
            failed += f;
        }
        assert_eq!((ok, failed), (1, 1), "both tasks settle, one as a failure");
        assert_eq!(queue.next(), None);
    });
    let _ = std::panic::take_hook();
}

/// Shedding must not lose wakeups: when a producer's `offer` races a
/// sleeping worker on a bounded queue, either the task is admitted (the
/// worker runs and settles it) or it is rejected and the *producer*
/// settles — in every interleaving the settlement count reaches the
/// outstanding total and the worker observes termination. A dropped
/// rejection (shed without settle) would deadlock here, which the checker
/// reports as a hang.
#[test]
fn shed_offer_never_loses_the_settlement_wakeup() {
    model(|| {
        // Capacity 1, one pre-admitted task, two expected settlements.
        let queue = Arc::new(TaskQueue::bounded(vec![0usize], 2, Some(1)));
        let worker = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                let mut seen = 0usize;
                while let Some(_task) = queue.next() {
                    seen += 1;
                    queue.settle_one();
                }
                seen
            })
        };
        let producer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                if queue.offer(1) {
                    false
                } else {
                    // Rejected at capacity: the producer owns the
                    // settlement, exactly as `ServeHandle::submit` turns a
                    // full queue into an immediate typed outcome.
                    queue.settle_one();
                    true
                }
            })
        };
        let shed = producer.join().expect("producer");
        let seen = worker.join().expect("worker");
        assert_eq!(
            seen + usize::from(shed),
            2,
            "admitted tasks + shed settlements cover every expected settlement"
        );
        assert_eq!(queue.next(), None, "termination observable after the drain");
    });
}

/// Breaker trips are monotone and failure counts are never lost: two
/// workers recording failures concurrently, then a single settle at the
/// flush boundary, must see both failures and trip exactly once — in
/// every interleaving of the atomic counter updates.
#[test]
fn breaker_failure_counts_survive_racing_workers() {
    model(|| {
        let breaker = Arc::new(CircuitBreaker::new());
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let breaker = Arc::clone(&breaker);
                thread::spawn(move || breaker.record(false))
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
        // trip_failures: 2 — a lost increment would keep the breaker
        // closed and fail the assertion.
        let policy = BreakerPolicy { trip_failures: 2, cooldown_flushes: 1 };
        let transition = breaker.settle_flush(policy);
        assert!(transition.is_some(), "both failures observed: the breaker trips");
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.trips(), 1, "exactly one trip for one window");
    });
}

/// Cost conservation including rejected requests: a shed submission
/// attributes exactly zero cost, an admitted one attributes exactly what
/// the ledger metered — so attributed == metered holds whichever side of
/// the capacity race each submission lands on.
#[test]
fn rejected_requests_conserve_cost_at_zero() {
    model(|| {
        let queue = Arc::new(TaskQueue::bounded(vec![7usize], 2, Some(1)));
        let ledger = Arc::new(CostLedger::new());
        let worker = {
            let queue = Arc::clone(&queue);
            let ledger = Arc::clone(&ledger);
            thread::spawn(move || {
                let mut attributed = InferenceCost::default();
                while let Some(task) = queue.next() {
                    let cost = InferenceCost {
                        prompt_tokens: 0,
                        generated_tokens: task as u64,
                        work_units: 1,
                    };
                    ledger.record(cost);
                    attributed.absorb(cost);
                    queue.settle_one();
                }
                attributed
            })
        };
        let producer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                if !queue.offer(9) {
                    // Shed: zero cost, immediate settlement.
                    queue.settle_one();
                }
            })
        };
        producer.join().expect("producer");
        let attributed = worker.join().expect("worker");
        assert_eq!(
            ledger.snapshot(),
            attributed,
            "metered equals attributed; shed submissions contribute exactly zero"
        );
    });
}

/// Cost conservation: concurrent `record` calls from racing sessions
/// never lose tokens — the metered snapshot equals the sum of what each
/// thread attributed locally, across every interleaving of the atomic
/// operations.
#[test]
fn cost_ledger_conserves_attribution_across_interleavings() {
    model(|| {
        let ledger = Arc::new(CostLedger::new());
        let costs = [
            InferenceCost { prompt_tokens: 1, generated_tokens: 3, work_units: 5 },
            InferenceCost { prompt_tokens: 0, generated_tokens: 7, work_units: 11 },
        ];
        let workers: Vec<_> = costs
            .into_iter()
            .map(|cost| {
                let ledger = Arc::clone(&ledger);
                thread::spawn(move || {
                    // What run_task attributes to the request...
                    ledger.record(cost);
                    // ...is exactly what the model boundary metered.
                    cost
                })
            })
            .collect();
        let mut attributed = InferenceCost::default();
        for w in workers {
            attributed.absorb(w.join().expect("worker"));
        }
        assert_eq!(
            ledger.snapshot(),
            attributed,
            "attributed == metered must hold in every interleaving"
        );
    });
}
