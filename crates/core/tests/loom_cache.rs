//! Bounded-exhaustive model checking of the multi-tenant context cache.
//!
//! Runs only under `--cfg loom` (the dedicated CI job):
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p multicast-core --test loom_cache --release
//! ```
//!
//! Under that cfg the [`mc_sync`] shim inside `mc-lm` resolves to the
//! [`mc_loom`] primitives, so the *production* [`LmCache`] shard locks
//! are explored across thread interleavings. The properties proved here
//! are the ones `crate::serve::fit_context` relies on:
//!
//! - eviction racing a live fork never frees a pinned context;
//! - incremental refit never mutates a context another tenant is
//!   decoding from (pin + unique-ownership gate), and whichever path a
//!   schedule takes, the served distribution is bit-identical to a cold
//!   fit;
//! - racing tenants of one spec converge on a single resident context
//!   with the prompt accounted once;
//! - the lookup ledger is conserved and pins settle to zero at the
//!   flush boundary, in every interleaving.
#![cfg(loom)]

use mc_loom::sync::Arc;
use mc_loom::{explore, model, thread};

use mc_lm::cache::{CacheConfig, Found, LmCache};
use mc_lm::model::FrozenLm;
use mc_lm::presets::{fit_model, ModelPreset};
use mc_lm::vocab::TokenId;

const VOCAB: usize = 3;
const FAM: u64 = 5;

fn fit(tokens: &[TokenId]) -> std::sync::Arc<dyn FrozenLm> {
    std::sync::Arc::from(fit_model(ModelPreset::Small, VOCAB, tokens))
}

/// First-token distribution a tenant would decode from this context.
fn first_dist(frozen: &dyn FrozenLm) -> Vec<f64> {
    let mut p = vec![0.0; VOCAB];
    frozen.fork().next_distribution(&mut p);
    p
}

fn bits(p: &[f64]) -> Vec<u64> {
    p.iter().map(|x| x.to_bits()).collect()
}

/// A capacity-1 cache with its only slot pinned (a flush in progress):
/// a second tenant inserting a different context must run the cache
/// over capacity rather than evict the pinned entry, and a concurrent
/// reader of the pinned entry always finds it resident. Once the flush
/// boundary releases every pin, the next insert settles the cache back
/// under capacity.
#[test]
fn eviction_never_frees_a_pinned_context() {
    let stats = explore(|| {
        let cache = Arc::new(LmCache::new(CacheConfig {
            capacity: 1,
            shards: 1,
            ..CacheConfig::default()
        }));
        let x_tokens: Vec<TokenId> = vec![0, 1, 0, 1];
        let y_tokens: Vec<TokenId> = vec![1, 0, 1, 0];
        let _x = cache.insert(FAM, 1, &x_tokens, fit(&x_tokens));

        let reader = {
            let cache = Arc::clone(&cache);
            let x_tokens = x_tokens.clone();
            thread::spawn(move || {
                // Mid-flush lookup of the pinned context: must hit.
                let resident = match cache.acquire(FAM, 1, &x_tokens) {
                    Found::Hit { frozen, epoch: 0 } => {
                        first_dist(frozen.as_ref());
                        cache.release(FAM, 1);
                        true
                    }
                    _ => false,
                };
                resident
            })
        };
        let filler = {
            let cache = Arc::clone(&cache);
            let y_tokens = y_tokens.clone();
            thread::spawn(move || {
                // A second tenant fills the only slot past capacity.
                cache.insert(FAM, 2, &y_tokens, fit(&y_tokens));
                cache.release(FAM, 2);
            })
        };
        assert!(reader.join().expect("reader"), "pinned context stayed resident");
        filler.join().expect("filler");

        assert_eq!(cache.stats().evictions, 0, "nothing evictable while X is pinned");
        assert_eq!(cache.len(), 2, "over capacity rather than freeing a pinned context");

        // Flush boundary: the batch releases its pin, and the next
        // insert settles the cache back under capacity.
        cache.release(FAM, 1);
        let z_tokens: Vec<TokenId> = vec![2, 2, 2];
        cache.insert(FAM, 3, &z_tokens, fit(&z_tokens));
        cache.release(FAM, 3);
        assert_eq!(cache.len(), 1, "unpinned entries evict at the next insert");
        assert_eq!(cache.stats().evictions, 2);
    });
    assert!(stats.iterations > 1, "expected schedule exploration, got {stats:?}");
}

/// Two tenants racing the same spec through the miss/insert path
/// converge on one resident context — whoever inserts second shares the
/// winner's `Arc` — the lookup ledger accounts both tenants exactly
/// once, the prompt is costed identically for both, and pins settle to
/// zero at the flush boundary.
#[test]
fn racing_tenants_share_one_context() {
    let stats = explore(|| {
        let cache = Arc::new(LmCache::new(CacheConfig::default()));
        let tokens: Vec<TokenId> = vec![0, 1, 2, 0, 1, 2];
        let tenant = |cache: Arc<LmCache>, tokens: Vec<TokenId>| {
            thread::spawn(move || {
                let frozen = match cache.acquire(FAM, 9, &tokens) {
                    Found::Hit { frozen, .. } => frozen,
                    Found::Refit { .. } => panic!("no prefix resident to refit"),
                    Found::Miss => cache.insert(FAM, 9, &tokens, fit(&tokens)),
                };
                first_dist(frozen.as_ref());
                let cost = frozen.prompt_cost();
                cache.release(FAM, 9);
                (frozen, cost)
            })
        };
        let a = tenant(Arc::clone(&cache), tokens.clone());
        let b = tenant(Arc::clone(&cache), tokens.clone());
        let (fa, ca) = a.join().expect("tenant A");
        let (fb, cb) = b.join().expect("tenant B");

        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 2, "both lookups accounted exactly once");
        assert!(s.misses >= 1, "somebody fit the context");
        assert_eq!(s.insertions, 1, "duplicate inserts share, not duplicate");
        assert_eq!(cache.len(), 1, "one resident context");
        assert!(std::sync::Arc::ptr_eq(&fa, &fb), "both tenants share one context");
        assert_eq!(ca, cb, "prompt accounted identically for both tenants");
        assert_eq!(cache.pins(FAM, 9), Some(0), "pins settle at the flush boundary");
    });
    assert!(stats.iterations > 1, "expected schedule exploration, got {stats:?}");
}

/// The refit/fork race: tenant A decodes from the resident prefix
/// context while tenant B acquires a grown prompt. The pin +
/// unique-`Arc` gate means B refits in place only once A has fully let
/// go; otherwise B falls back to a from-scratch fit. Whichever path a
/// schedule takes, A's in-flight decode serves the prefix fit's exact
/// bytes and B serves the full fit's exact bytes.
#[test]
fn refit_never_mutates_under_an_in_flight_fork() {
    let prefix: Vec<TokenId> = vec![0, 1, 0];
    let full: Vec<TokenId> = vec![0, 1, 0, 1, 2];
    let reference_prefix = bits(&first_dist(fit(&prefix).as_ref()));
    let reference_full = bits(&first_dist(fit(&full).as_ref()));

    model(move || {
        let cache = Arc::new(LmCache::new(CacheConfig::default()));
        let resident = cache.insert(FAM, 1, &prefix, fit(&prefix));

        let reader = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                // Decode from the pinned prefix context, then let go of
                // both the Arc and the pin (the flush boundary).
                let p = first_dist(resident.as_ref());
                drop(resident);
                cache.release(FAM, 1);
                p
            })
        };
        let grower = {
            let cache = Arc::clone(&cache);
            let full = full.clone();
            thread::spawn(move || {
                let (frozen, key) = match cache.acquire(FAM, 2, &full) {
                    Found::Refit { frozen, epoch, appended } => {
                        assert_eq!((epoch, appended), (1, 2));
                        (frozen, 2)
                    }
                    Found::Miss => (cache.insert(FAM, 2, &full, fit(&full)), 2),
                    Found::Hit { .. } => panic!("grown prompt cannot be an exact hit"),
                };
                let p = first_dist(frozen.as_ref());
                cache.release(FAM, key);
                p
            })
        };

        let decoded_prefix = reader.join().expect("reader");
        let decoded_full = grower.join().expect("grower");
        assert_eq!(
            bits(&decoded_prefix),
            reference_prefix,
            "an in-flight fork observed a refit mutation"
        );
        assert_eq!(
            bits(&decoded_full),
            reference_full,
            "warm refit diverged from a cold fit of the grown prompt"
        );

        let s = cache.stats();
        assert_eq!(s.refits + s.misses, 1, "one grown lookup, accounted once");
        assert_eq!(cache.pins(FAM, 2), Some(0), "pins settle at the flush boundary");
    });
}
