//! The trace-event vocabulary of the serve path.
//!
//! [`TraceEvent`] is `Copy` and carries numeric payloads only — no
//! strings, no heap — so constructing one for a disabled
//! [`Recorder`](crate::record::Recorder) is free and the hot path stays
//! allocation-free when telemetry is off.
//!
//! Events split into two determinism classes (see
//! [`EventKind::deterministic`]):
//!
//! - **Request-scoped** events (`quota_exhausted`, `shed`, `context_fit`,
//!   `context_join`, `attempt`, `retry`, `defect`, `panic_isolated`,
//!   `backoff`, `quorum_resolve`, `fallback`) depend only on request
//!   content and seeds. Their multiset is invariant to worker count and
//!   submission order, so they form the canonical trace — admission
//!   decisions (quota, priority shedding) are made in canonical request
//!   order precisely so these events qualify.
//! - **Scheduler-scoped** events (`queue_wait`, `fit_dedup_hit`,
//!   `session_cost`, `queue_full`, `breaker_trip`, `breaker_close`,
//!   `breaker_reject`, `cache_hit`, `cache_miss`, `cache_refit`,
//!   `cache_evict`) depend on which worker ran first or which request
//!   happened to arrive ahead of its twin (queue-full rejection depends
//!   on submission order; breaker transitions on outcome arrival; cache
//!   outcomes on which flush ran first against a shared handle). They
//!   feed the metrics registry and the wall-clock (emission-order)
//!   export only.

/// Number of sample-defect classes in `multicast-core`'s taxonomy.
pub const DEFECT_CLASSES: usize = 8;

/// Stable names of the defect classes, in taxonomy order.
///
/// This mirrors `multicast-core`'s `DefectClass::ALL` (`mc-obs` cannot
/// depend on the core crate — the dependency points the other way); a
/// test in the core crate pins the two lists together so they cannot
/// drift.
pub const DEFECT_CLASS_NAMES: [&str; DEFECT_CLASSES] = [
    "truncated",
    "wrong-width",
    "non-numeric",
    "out-of-band",
    "non-finite",
    "shape",
    "panic",
    "deadline",
];

/// How one `(sample, attempt)` draw ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptClass {
    /// Decoded cleanly (possibly with repaired, non-fatal defects).
    Valid,
    /// Completed but fatally defective — the sample retries or settles
    /// invalid.
    Defective,
    /// An infrastructure error failed the whole run.
    Infra,
    /// The draw or decode panicked and was isolated.
    Panicked,
}

impl AttemptClass {
    /// Stable name for exports.
    pub fn name(self) -> &'static str {
        match self {
            AttemptClass::Valid => "valid",
            AttemptClass::Defective => "defective",
            AttemptClass::Infra => "infra",
            AttemptClass::Panicked => "panicked",
        }
    }
}

/// One serve-path happening, with its numeric payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A worker dequeued a task after waiting `ticks` clock units
    /// (scheduler-scoped: wait lengths depend on the schedule).
    QueueWait {
        /// Clock delta around the blocking dequeue.
        ticks: u64,
    },
    /// A request's codec fit resolved to an already-fitted frozen context
    /// (scheduler-scoped: which twin fitted first depends on submission
    /// order).
    FitDedupHit,
    /// A forked decode session completed and recorded its cost inside the
    /// model boundary (scheduler-scoped: drop order is racy).
    SessionCost {
        /// Tokens the session generated.
        generated_tokens: u64,
        /// Abstract work units the session consumed.
        work_units: u64,
    },
    /// A frozen context was fitted (prompt conditioned) for the first
    /// time.
    ContextFit {
        /// One-time prompt-conditioning token cost.
        prompt_tokens: u64,
        /// One-time prompt-conditioning work.
        work_units: u64,
    },
    /// A request resolved to (joined) a frozen context.
    ContextJoin,
    /// One `(sample, attempt)` draw completed.
    Attempt {
        /// Sample slot index.
        sample: u32,
        /// Attempt number (0 = first try).
        attempt: u32,
        /// How the draw ended.
        outcome: AttemptClass,
        /// Defects observed on this attempt.
        defects: u32,
        /// Generated-token cost (0 for panicked/infra attempts).
        generated_tokens: u64,
        /// Work-unit cost (0 for panicked/infra attempts).
        work_units: u64,
    },
    /// A fatally-defective sample was re-queued for another attempt.
    Retry {
        /// Sample slot index.
        sample: u32,
        /// The attempt number the retry will run as.
        attempt: u32,
    },
    /// One defect observed on an attempt.
    Defect {
        /// Sample slot index.
        sample: u32,
        /// Attempt number.
        attempt: u32,
        /// Index into [`DEFECT_CLASS_NAMES`].
        class: u8,
        /// Whether the defect invalidates the sample.
        fatal: bool,
    },
    /// A panicking attempt was caught and converted to a defect.
    PanicIsolated {
        /// Sample slot index.
        sample: u32,
        /// Attempt number.
        attempt: u32,
    },
    /// A request's quorum was checked at finalization.
    QuorumResolve {
        /// Valid samples that survived.
        valid: u32,
        /// Samples the policy required.
        required: u32,
        /// Whether the quorum was met.
        met: bool,
    },
    /// The quorum failed and the classical fallback produced the
    /// forecast.
    Fallback,
    /// A request was rejected at admission because its client's quota
    /// was already exhausted (deterministic: quotas are settled at batch
    /// boundaries and checked in canonical request order).
    QuotaExhausted {
        /// The client id whose quota ran out.
        client: u32,
    },
    /// A request was shed at admission: the batch exceeded the queue
    /// capacity and this request lost the (priority, fingerprint)
    /// ordering (deterministic: the ordering is content-based).
    Shed {
        /// The shed request's priority class (0 = highest).
        priority: u8,
    },
    /// A fatally-defective sample's retry was deferred by the bounded
    /// exponential backoff before re-queueing.
    Backoff {
        /// Sample slot index.
        sample: u32,
        /// The attempt number the retry will run as.
        attempt: u32,
        /// Logical dispatch delay applied (base · 2^(attempt−1), bounded).
        delay: u32,
    },
    /// A submission bounced off the handle's hard submission cap
    /// (scheduler-scoped: which submission arrives over the cap depends
    /// on submission order).
    QueueFull,
    /// A backend circuit breaker tripped open (scheduler-scoped: the
    /// trip is settled from racy per-attempt records).
    BreakerTrip {
        /// Monotone trip count after this transition.
        trips: u32,
    },
    /// A backend circuit breaker closed again after a clean probe batch.
    BreakerClose {
        /// Monotone trip count (unchanged by closing).
        trips: u32,
    },
    /// A request was rejected at admission because its backend's breaker
    /// was open.
    BreakerReject,
    /// A batch's context fit resolved to a frozen context cached by an
    /// earlier flush (scheduler-scoped: warmth depends on flush history,
    /// not request content).
    CacheHit,
    /// The cross-batch cache had no reusable context and a from-scratch
    /// fit was paid (scheduler-scoped: the first flush misses, reruns
    /// hit).
    CacheMiss,
    /// A cached context was delta-updated in place to cover a longer
    /// prompt instead of refitting from scratch.
    CacheRefit {
        /// Tokens appended by the incremental refit.
        appended: u64,
        /// The context's refit epoch after this delta (monotone).
        epoch: u64,
    },
    /// Unpinned contexts were evicted to make room for an insertion.
    CacheEvict {
        /// Entries evicted by this insertion.
        evictions: u64,
    },
}

impl EventKind {
    /// Stable snake_case name for exports and metrics.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::QueueWait { .. } => "queue_wait",
            EventKind::FitDedupHit => "fit_dedup_hit",
            EventKind::SessionCost { .. } => "session_cost",
            EventKind::ContextFit { .. } => "context_fit",
            EventKind::ContextJoin => "context_join",
            EventKind::Attempt { .. } => "attempt",
            EventKind::Retry { .. } => "retry",
            EventKind::Defect { .. } => "defect",
            EventKind::PanicIsolated { .. } => "panic_isolated",
            EventKind::QuorumResolve { .. } => "quorum_resolve",
            EventKind::Fallback => "fallback",
            EventKind::QuotaExhausted { .. } => "quota_exhausted",
            EventKind::Shed { .. } => "shed",
            EventKind::Backoff { .. } => "backoff",
            EventKind::QueueFull => "queue_full",
            EventKind::BreakerTrip { .. } => "breaker_trip",
            EventKind::BreakerClose { .. } => "breaker_close",
            EventKind::BreakerReject => "breaker_reject",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheMiss => "cache_miss",
            EventKind::CacheRefit { .. } => "cache_refit",
            EventKind::CacheEvict { .. } => "cache_evict",
        }
    }

    /// Whether the event's content is invariant to worker count and
    /// submission order (given identical seeds and request content).
    /// Deterministic events form the canonical trace; the rest feed
    /// metrics and wall-clock exports only.
    pub fn deterministic(&self) -> bool {
        !matches!(
            self,
            EventKind::QueueWait { .. }
                | EventKind::FitDedupHit
                | EventKind::SessionCost { .. }
                | EventKind::QueueFull
                | EventKind::BreakerTrip { .. }
                | EventKind::BreakerClose { .. }
                | EventKind::BreakerReject
                | EventKind::CacheHit
                | EventKind::CacheMiss
                | EventKind::CacheRefit { .. }
                | EventKind::CacheEvict { .. }
        )
    }

    /// Ordering rank used by the canonical export so a request's events
    /// read in pipeline order: admission, fit, join, then per-sample
    /// attempts.
    pub fn rank(&self) -> u8 {
        match self {
            EventKind::QuotaExhausted { .. } => 0,
            EventKind::Shed { .. } => 1,
            EventKind::ContextFit { .. } => 2,
            EventKind::ContextJoin => 3,
            EventKind::Defect { .. } => 4,
            EventKind::PanicIsolated { .. } => 5,
            EventKind::Attempt { .. } => 6,
            EventKind::Retry { .. } => 7,
            EventKind::Backoff { .. } => 8,
            EventKind::QuorumResolve { .. } => 9,
            EventKind::Fallback => 10,
            EventKind::QueueWait { .. }
            | EventKind::FitDedupHit
            | EventKind::SessionCost { .. }
            | EventKind::QueueFull
            | EventKind::BreakerTrip { .. }
            | EventKind::BreakerClose { .. }
            | EventKind::BreakerReject
            | EventKind::CacheHit
            | EventKind::CacheMiss
            | EventKind::CacheRefit { .. }
            | EventKind::CacheEvict { .. } => u8::MAX,
        }
    }

    /// `(sample, attempt)` coordinates, when the event has them.
    pub fn coords(&self) -> (u32, u32) {
        match *self {
            EventKind::Attempt { sample, attempt, .. }
            | EventKind::Retry { sample, attempt }
            | EventKind::Defect { sample, attempt, .. }
            | EventKind::PanicIsolated { sample, attempt }
            | EventKind::Backoff { sample, attempt, .. } => (sample, attempt),
            _ => (0, 0),
        }
    }
}

/// One recorded event: which request, which frozen context, what
/// happened. `req` and `ctx` are content fingerprints
/// ([`crate::fingerprint`]); zero means "not scoped to one".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Content fingerprint of the request (0 = not request-scoped).
    pub req: u64,
    /// Content fingerprint of the frozen context (0 = not context-scoped).
    pub ctx: u64,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_scoped_kinds_are_not_deterministic() {
        assert!(!EventKind::QueueWait { ticks: 3 }.deterministic());
        assert!(!EventKind::FitDedupHit.deterministic());
        assert!(!EventKind::SessionCost { generated_tokens: 1, work_units: 2 }.deterministic());
        assert!(!EventKind::QueueFull.deterministic());
        assert!(!EventKind::BreakerTrip { trips: 1 }.deterministic());
        assert!(!EventKind::BreakerClose { trips: 1 }.deterministic());
        assert!(!EventKind::BreakerReject.deterministic());
        assert!(!EventKind::CacheHit.deterministic());
        assert!(!EventKind::CacheMiss.deterministic());
        assert!(!EventKind::CacheRefit { appended: 4, epoch: 1 }.deterministic());
        assert!(!EventKind::CacheEvict { evictions: 1 }.deterministic());
        assert!(EventKind::ContextFit { prompt_tokens: 1, work_units: 2 }.deterministic());
        assert!(EventKind::Fallback.deterministic());
        assert!(EventKind::QuorumResolve { valid: 1, required: 1, met: true }.deterministic());
        assert!(EventKind::QuotaExhausted { client: 3 }.deterministic());
        assert!(EventKind::Shed { priority: 1 }.deterministic());
        assert!(EventKind::Backoff { sample: 0, attempt: 1, delay: 2 }.deterministic());
    }

    #[test]
    fn ranks_order_the_pipeline_stages() {
        let fit = EventKind::ContextFit { prompt_tokens: 0, work_units: 0 };
        let attempt = EventKind::Attempt {
            sample: 0,
            attempt: 0,
            outcome: AttemptClass::Valid,
            defects: 0,
            generated_tokens: 0,
            work_units: 0,
        };
        assert!(
            EventKind::QuotaExhausted { client: 0 }.rank() < EventKind::Shed { priority: 0 }.rank()
        );
        assert!(EventKind::Shed { priority: 0 }.rank() < fit.rank());
        assert!(fit.rank() < EventKind::ContextJoin.rank());
        assert!(EventKind::ContextJoin.rank() < attempt.rank());
        assert!(attempt.rank() < EventKind::Backoff { sample: 0, attempt: 1, delay: 1 }.rank());
        assert!(attempt.rank() < EventKind::Fallback.rank());
    }

    #[test]
    fn backoff_carries_sample_coordinates() {
        assert_eq!(EventKind::Backoff { sample: 3, attempt: 2, delay: 4 }.coords(), (3, 2));
        assert_eq!(EventKind::Shed { priority: 1 }.coords(), (0, 0));
    }

    #[test]
    fn events_are_copy_and_small() {
        // The no-op hot path builds events unconditionally; keep them
        // register-sized, not boxed.
        let e = TraceEvent { req: 1, ctx: 2, kind: EventKind::Fallback };
        let f = e; // Copy
        assert_eq!(e, f);
        assert!(std::mem::size_of::<TraceEvent>() <= 64);
    }
}
