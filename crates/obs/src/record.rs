//! Recorders: where trace events go.
//!
//! The serve path emits [`TraceEvent`]s unconditionally through a
//! [`Recorder`]; what happens next is the recorder's business:
//!
//! - [`NoopRecorder`] — the default. `enabled()` is `false`, `record` is
//!   an empty body, so an un-instrumented serve pays a virtual call and
//!   nothing else: no clock reads, no locking, no allocation.
//! - [`Observer`] — the real sink. Stamps each event with its
//!   [`Clock`], folds it into a [`MetricsRegistry`] and appends it to an
//!   in-memory buffer for JSONL export ([`crate::export`]).
//!
//! The buffer lock and the registry both live behind [`mc_sync`], so the
//! `--cfg loom` suite explores a recording observer like any other piece
//! of serve-path state.

use mc_sync::Mutex;

use crate::clock::{Clock, LogicalClock, WallClock};
use crate::event::TraceEvent;
use crate::export;
use crate::metrics::MetricsRegistry;
use crate::span::{SpanEvent, StampedSpan};

/// A sink for trace events. Implementations must be cheap when disabled:
/// emitters consult [`Recorder::enabled`] before doing any per-event
/// work beyond constructing the (Copy, allocation-free) event itself.
pub trait Recorder: Send + Sync {
    /// Whether events are actually being kept. Emitters may skip
    /// expensive enumeration (e.g. per-defect events) when `false`.
    fn enabled(&self) -> bool;

    /// A timestamp from the recorder's clock (0 for disabled recorders).
    /// Emitters use deltas of this for duration-style events.
    fn now(&self) -> u64;

    /// A wall-clock sidecar reading (elapsed nanos; 0 for recorders
    /// without one). Emitters capture this *before* a blocking section
    /// so a retroactive span open carries the true pre-wait stamp.
    fn wall(&self) -> u64 {
        0
    }

    /// Accepts one event.
    fn record(&self, event: TraceEvent);

    /// Accepts one span half, stamping it with both clocks now. The
    /// default drops it, so plain recorders (and [`NoopRecorder`]) are
    /// span-oblivious for free.
    fn span(&self, _span: SpanEvent) {}

    /// Accepts one span half with caller-supplied stamps — the
    /// retroactive-open path: a worker that blocked on a queue reads
    /// `now()`/`wall()` before waiting and back-dates the `queue_wait`
    /// open to them once it knows the wait actually produced work.
    fn span_at(&self, _span: SpanEvent, _t: u64, _wall: u64) {}
}

/// The default recorder: drops everything, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn now(&self) -> u64 {
        0
    }

    fn record(&self, _event: TraceEvent) {}
}

/// One buffered event with its timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped {
    /// Clock reading at record time (logical tick or elapsed nanos).
    pub t: u64,
    /// The recorded event.
    pub event: TraceEvent,
}

/// Which clock an [`Observer`] stamps with — and therefore which export
/// shape it produces (canonical vs emission-order; see [`crate::export`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Deterministic ticks; exports are canonical and byte-identical
    /// across schedules.
    Logical,
    /// Elapsed wall nanoseconds; exports keep emission order and real
    /// timestamps.
    Wall,
}

enum ClockSource {
    Logical(LogicalClock),
    Wall(WallClock),
}

/// A recording sink: clock-stamped event buffer plus metrics registry.
///
/// Spans are dual-clock stamped: `t` from the observer's own clock (the
/// determinism contract), `wall` from a sidecar [`WallClock`] started at
/// construction (real durations for humans; dropped from canonical
/// exports).
pub struct Observer {
    clock: ClockSource,
    sidecar: WallClock,
    buf: Mutex<Vec<Stamped>>,
    spans: Mutex<Vec<StampedSpan>>,
    metrics: MetricsRegistry,
}

impl Observer {
    /// An observer on a fresh [`LogicalClock`] — the deterministic
    /// default for tests and trace comparison.
    pub fn logical() -> Self {
        Self {
            clock: ClockSource::Logical(LogicalClock::new()),
            sidecar: WallClock::start(),
            buf: Mutex::new(Vec::new()),
            spans: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::new(),
        }
    }

    /// An observer on a [`WallClock`] started now — for live profiling;
    /// traces are *not* reproducible.
    pub fn wall() -> Self {
        Self {
            clock: ClockSource::Wall(WallClock::start()),
            sidecar: WallClock::start(),
            buf: Mutex::new(Vec::new()),
            spans: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Which clock this observer stamps with.
    pub fn mode(&self) -> ClockMode {
        match self.clock {
            ClockSource::Logical(_) => ClockMode::Logical,
            ClockSource::Wall(_) => ClockMode::Wall,
        }
    }

    /// The metrics registry every recorded event is folded into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A copy of everything recorded so far, in emission order.
    pub fn events(&self) -> Vec<Stamped> {
        self.buf.lock().expect("trace buffer lock").clone()
    }

    /// The JSONL export of everything recorded so far: canonical
    /// (sorted, re-stamped, deterministic events only) in
    /// [`ClockMode::Logical`], emission-order with real timestamps in
    /// [`ClockMode::Wall`]. See [`crate::export`].
    pub fn to_jsonl(&self) -> String {
        export::to_jsonl(&self.events(), self.mode())
    }

    /// A copy of every span half recorded so far, in emission order.
    pub fn spans(&self) -> Vec<StampedSpan> {
        self.spans.lock().expect("span buffer lock").clone()
    }

    /// The span JSONL export: canonical (deterministic kinds, sorted by
    /// content key, re-stamped) in [`ClockMode::Logical`],
    /// emission-order with both stamps in [`ClockMode::Wall`]. See
    /// [`crate::export::spans_to_jsonl`].
    pub fn spans_to_jsonl(&self) -> String {
        export::spans_to_jsonl(&self.spans(), self.mode())
    }
}

impl Recorder for Observer {
    fn enabled(&self) -> bool {
        true
    }

    fn now(&self) -> u64 {
        match &self.clock {
            ClockSource::Logical(c) => c.now(),
            ClockSource::Wall(c) => c.now(),
        }
    }

    fn wall(&self) -> u64 {
        self.sidecar.now()
    }

    fn record(&self, event: TraceEvent) {
        let t = self.now();
        self.metrics.record_event(&event);
        self.buf.lock().expect("trace buffer lock").push(Stamped { t, event });
    }

    fn span(&self, span: SpanEvent) {
        let t = self.now();
        let wall = self.sidecar.now();
        self.span_at(span, t, wall);
    }

    fn span_at(&self, span: SpanEvent, t: u64, wall: u64) {
        self.metrics.record_span(&span);
        self.spans.lock().expect("span buffer lock").push(StampedSpan { t, wall, span });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::metrics::Counter;

    #[test]
    fn noop_recorder_is_disabled_and_silent() {
        let noop = NoopRecorder;
        assert!(!noop.enabled());
        assert_eq!(noop.now(), 0);
        noop.record(TraceEvent { req: 1, ctx: 2, kind: EventKind::Fallback });
    }

    #[test]
    fn observer_stamps_buffers_and_counts() {
        let obs = Observer::logical();
        assert!(obs.enabled());
        assert_eq!(obs.mode(), ClockMode::Logical);
        obs.record(TraceEvent { req: 1, ctx: 0, kind: EventKind::ContextJoin });
        obs.record(TraceEvent { req: 2, ctx: 0, kind: EventKind::Fallback });
        let events = obs.events();
        assert_eq!(events.len(), 2);
        assert!(events[0].t < events[1].t, "logical stamps are ordered");
        assert_eq!(obs.metrics().get(Counter::Events), 2);
        assert_eq!(obs.metrics().get(Counter::ContextJoins), 1);
        assert_eq!(obs.metrics().get(Counter::Fallbacks), 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let obs = Observer::logical();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let obs = &obs;
                scope.spawn(move || {
                    for i in 0..250 {
                        obs.record(TraceEvent { req: i, ctx: 0, kind: EventKind::ContextJoin });
                    }
                });
            }
        });
        let events = obs.events();
        assert_eq!(events.len(), 1000);
        assert_eq!(obs.metrics().get(Counter::Events), 1000);
        let mut stamps: Vec<u64> = events.iter().map(|s| s.t).collect();
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), 1000, "logical stamps never collide");
    }

    #[test]
    fn wall_observer_reports_wall_mode() {
        let obs = Observer::wall();
        assert_eq!(obs.mode(), ClockMode::Wall);
        obs.record(TraceEvent { req: 0, ctx: 0, kind: EventKind::Fallback });
        assert_eq!(obs.events().len(), 1);
    }

    #[test]
    fn observer_dual_stamps_spans_and_counts_them() {
        use crate::span::{SpanGuard, SpanKind, SpanPhase};
        let obs = Observer::logical();
        {
            let _req = SpanGuard::open(&obs, 7, SpanKind::Request);
            let _quorum = SpanGuard::open(&obs, 7, SpanKind::Quorum);
        }
        let spans = obs.spans();
        assert_eq!(spans.len(), 4, "two opens, two closes");
        assert_eq!(spans[0].span.phase, SpanPhase::Open);
        assert_eq!(spans[3].span.phase, SpanPhase::Close);
        assert_eq!(spans[3].span.kind, SpanKind::Request, "guards close in reverse order");
        assert!(spans[0].t < spans[3].t, "logical stamps are ordered");
        assert!(spans[0].wall <= spans[3].wall, "wall sidecar is monotone");
        assert_eq!(obs.metrics().get(Counter::SpanOpens), 2);
        assert_eq!(obs.metrics().get(Counter::SpanCloses), 2);
        assert_eq!(obs.metrics().get(Counter::Events), 0, "spans are not events");
    }

    #[test]
    fn span_at_backdates_the_open_half() {
        use crate::span::{SpanEvent, SpanKind};
        let obs = Observer::logical();
        let (t0, w0) = (obs.now(), obs.wall());
        let id = crate::fingerprint::mix(t0, 0x51);
        obs.span_at(SpanEvent::open_with_id(id, 0, SpanKind::QueueWait), t0, w0);
        obs.span(SpanEvent::close_with_id(id, 0, SpanKind::QueueWait));
        let spans = obs.spans();
        assert_eq!(spans[0].t, t0, "open carries the pre-wait stamp");
        assert!(spans[1].t > t0);
    }

    #[test]
    fn noop_recorder_ignores_spans() {
        use crate::span::{point_span, SpanKind};
        let noop = NoopRecorder;
        assert_eq!(noop.wall(), 0);
        point_span(&noop, 1, SpanKind::Fallback);
        noop.span(crate::span::SpanEvent::open(1, SpanKind::Request));
    }
}
