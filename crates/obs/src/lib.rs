//! # mc-obs — deterministic tracing + metrics for the serve path
//!
//! `deny.toml` bans external crates, so this is the workspace's own
//! structured observability layer: no `tracing`, no `serde`, no
//! `prometheus` — just the pieces the serve scheduler actually needs,
//! built on the same [`mc_sync`] shim as the rest of the concurrency
//! layer so the loom model checker can explore it.
//!
//! Four pieces:
//!
//! - **[`Clock`](clock::Clock)** — timestamps come from a pluggable
//!   clock. [`LogicalClock`](clock::LogicalClock) (the default in tests)
//!   hands out deterministic ticks; [`WallClock`](clock::WallClock) reads
//!   real elapsed nanoseconds and is the *only* sanctioned `Instant::now`
//!   outside the bench harness (a justified `mc-lint.allow` entry keeps
//!   the `no-wallclock` invariant alive).
//! - **[`TraceEvent`](event::TraceEvent)** — a `Copy`, allocation-free
//!   record of one serve-path happening (`queue_wait`, `context_fit`,
//!   `attempt`, `retry`, `quorum_resolve`, `fallback`,
//!   `panic_isolated`, ...). Events carry numeric payloads only, so
//!   building one for a disabled recorder costs nothing.
//! - **[`MetricsRegistry`](metrics::MetricsRegistry)** — atomic counters
//!   and fixed-bucket histograms, routed through [`mc_sync`]'s atomics so
//!   the registry is loom-checkable exactly like `mc-lm`'s `CostLedger`.
//! - **[`Recorder`](record::Recorder) / [`Observer`](record::Observer)**
//!   — the sink. [`NoopRecorder`](record::NoopRecorder) is the default
//!   and keeps the hot path free of buffering; [`Observer`] stamps every
//!   event with its clock, folds it into a registry, and exports JSONL
//!   traces ([`export`]) plus a metrics snapshot.
//!
//! ## Determinism contract
//!
//! With identical seeds and a [`LogicalClock`](clock::LogicalClock), the
//! canonical JSONL export is **byte-identical across worker counts and
//! submission orders**, matching the serve layer's bit-identical-forecast
//! guarantee. Two mechanisms make that hold:
//!
//! 1. Events are keyed by *content fingerprints* (what was requested),
//!    never by submission indices or thread ids.
//! 2. Export distinguishes request-scoped events (attempts, retries,
//!    defects, quorum resolution — schedule-invariant multisets) from
//!    scheduler-scoped ones (`queue_wait`, `fit_dedup_hit`,
//!    `session_cost` — whose owners or orderings depend on scheduling).
//!    The canonical export sorts the former and re-stamps logical times;
//!    the latter feed the metrics registry and appear only in wall-clock
//!    (emission-order) exports.

//! ## Spans
//!
//! On top of the flat event stream, [`span`] adds causal *intervals*:
//! parent-linked [`SpanEvent`](span::SpanEvent) open/close pairs
//! (request → context_fit / attempt → draw / retry / backoff / quorum /
//! fallback, plus scheduler-scoped queue_wait / cache_lookup / session
//! lanes) with the same two determinism classes as events and
//! dual-clock stamps. [`span::pair_spans`] / [`span::build_trees`] /
//! [`span::blame`] / [`span::critical_path`] reconstruct per-request
//! trees and attribute end-to-end latency to stages;
//! [`span::chrome_trace`] renders Perfetto-loadable JSON.

pub mod clock;
pub mod event;
pub mod export;
pub mod fingerprint;
pub mod metrics;
pub mod record;
pub mod span;

pub use clock::{Clock, LogicalClock, WallClock};
pub use event::{AttemptClass, EventKind, TraceEvent, DEFECT_CLASSES, DEFECT_CLASS_NAMES};
pub use fingerprint::{mix, Fingerprint};
pub use metrics::{Counter, Histogram, MetricsRegistry, MetricsSnapshot};
pub use record::{ClockMode, NoopRecorder, Observer, Recorder, Stamped};
pub use span::{
    blame, build_trees, chrome_trace, critical_path, pair_spans, parent_of, point_span, span_id,
    PairedSpan, SpanError, SpanEvent, SpanGuard, SpanKind, SpanNode, SpanPhase, SpanTree,
    StampedSpan, SPAN_KINDS,
};
