//! Causal spans: parent-linked intervals over the serve pipeline.
//!
//! Where a [`TraceEvent`](crate::event::TraceEvent) records that
//! something *happened*, a [`SpanEvent`] records that something *took
//! time*: every span opens once and closes once, carries a stable
//! [`SpanId`]-style identifier plus its parent's, and the pair of
//! (open, close) stamps bounds the interval. The vocabulary mirrors the
//! pipeline's causal structure:
//!
//! ```text
//! request ─┬─ context_fit            (one per frozen context, ctx-keyed)
//!          ├─ attempt(sample, n) ─┬─ draw
//!          │                      ├─ retry     (point span)
//!          │                      └─ backoff   (point span)
//!          ├─ quorum
//!          └─ fallback              (point span)
//! shed                              (point span, admission rejection)
//! queue_wait / cache_lookup / session   (scheduler-scoped sidecar lanes)
//! ```
//!
//! ## Determinism contract (dual clocks)
//!
//! Spans split into the same two determinism classes as events:
//!
//! - **Deterministic** kinds ([`SpanKind::deterministic`]) have ids that
//!   are *pure functions* of content fingerprints and `(sample, attempt)`
//!   coordinates ([`span_id`]), and parents drawn from a fixed structural
//!   table ([`parent_of`]) — no emitter state, no clock reads. Their
//!   multiset is invariant to worker count and submission order, so the
//!   canonical export ([`crate::export::spans_to_jsonl`] in logical mode)
//!   is byte-identical across schedules.
//! - **Scheduler-scoped** kinds (`queue_wait`, `cache_lookup`, `session`)
//!   key their ids off a logical tick at open time; they appear only in
//!   the wall-clock sidecar export and the metrics registry.
//!
//! Every recorded span carries *both* stamps ([`StampedSpan`]): the
//! observer's own clock (`t`, logical ticks in deterministic runs) and a
//! wall-clock sidecar reading (`wall`, elapsed nanoseconds) — canonical
//! exports drop the wall stamp, human-facing exports (the Chrome
//! trace-event JSON from [`chrome_trace`]) use it for real durations.
//!
//! ## Analysis
//!
//! [`pair_spans`] re-pairs opens with closes (orphans and double-closes
//! are typed errors — the loom suite proves the emitters produce
//! neither), [`build_trees`] nests the pairs into per-request trees,
//! [`blame`] partitions each request's interval into per-stage latency
//! blame that sums *exactly* to the end-to-end duration, and
//! [`critical_path`] walks the chain of spans that bounded completion.

use std::fmt::Write as _;

use crate::fingerprint::mix;

/// Whether a [`SpanEvent`] opens or closes its interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// The interval starts.
    Open,
    /// The interval ends.
    Close,
}

impl SpanPhase {
    /// Stable name for exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanPhase::Open => "open",
            SpanPhase::Close => "close",
        }
    }
}

/// What a span's interval covers. `Copy` and payload-light for the same
/// reason [`crate::event::EventKind`] is: building one for a disabled
/// recorder must cost nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A request's whole life inside a flush: opened when preparation
    /// starts, closed when finalization resolves the outcome.
    Request,
    /// A frozen context's one-time prompt-conditioning fit. Keyed by the
    /// *context* fingerprint (which request triggered the fit depends on
    /// submission order; the context set does not).
    ContextFit,
    /// One `(sample, attempt)` draw-validate-decode unit.
    Attempt {
        /// Sample slot index.
        sample: u32,
        /// Attempt number (0 = first try).
        attempt: u32,
    },
    /// The backend decode inside an attempt (the tokens-out loop).
    Draw {
        /// Sample slot index.
        sample: u32,
        /// Attempt number.
        attempt: u32,
    },
    /// A fatally-defective sample was re-queued (point span).
    Retry {
        /// Sample slot index.
        sample: u32,
        /// The attempt number the retry will run as.
        attempt: u32,
    },
    /// A retry was deferred by exponential backoff (point span).
    Backoff {
        /// Sample slot index.
        sample: u32,
        /// The attempt number the retry will run as.
        attempt: u32,
    },
    /// Quorum check plus median/fallback resolution at finalization.
    Quorum,
    /// The classical fallback produced the forecast (point span).
    Fallback,
    /// The request was shed at admission (point span; no `request` span
    /// is ever opened for it).
    Shed,
    /// A worker's blocking dequeue (scheduler-scoped: wait lengths depend
    /// on the schedule). Opened retroactively via
    /// [`Recorder::span_at`](crate::record::Recorder::span_at) with the
    /// pre-wait stamps.
    QueueWait,
    /// A cross-batch cache probe (scheduler-scoped: warmth depends on
    /// flush history). Keyed by the context fingerprint.
    CacheLookup,
    /// A forked decode session's life from fork to drop
    /// (scheduler-scoped: drop order is racy). Keyed by the context
    /// fingerprint.
    Session,
}

/// Number of span kinds (slots in the per-kind metrics table).
pub const SPAN_KINDS: usize = 12;

impl SpanKind {
    /// Stable snake_case name for exports and metrics.
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::ContextFit => "context_fit",
            SpanKind::Attempt { .. } => "attempt",
            SpanKind::Draw { .. } => "draw",
            SpanKind::Retry { .. } => "retry",
            SpanKind::Backoff { .. } => "backoff",
            SpanKind::Quorum => "quorum",
            SpanKind::Fallback => "fallback",
            SpanKind::Shed => "shed",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::CacheLookup => "cache_lookup",
            SpanKind::Session => "session",
        }
    }

    /// Whether the span's id and multiset are invariant to worker count
    /// and submission order (given identical seeds and request content).
    /// Deterministic spans form the canonical span export; the rest feed
    /// metrics and the wall-clock sidecar only.
    pub fn deterministic(&self) -> bool {
        !matches!(self, SpanKind::QueueWait | SpanKind::CacheLookup | SpanKind::Session)
    }

    /// Ordering rank used by the canonical export so a request's spans
    /// read in pipeline order.
    pub fn rank(&self) -> u8 {
        match self {
            SpanKind::Request => 0,
            SpanKind::Shed => 1,
            SpanKind::ContextFit => 2,
            SpanKind::Attempt { .. } => 3,
            SpanKind::Draw { .. } => 4,
            SpanKind::Retry { .. } => 5,
            SpanKind::Backoff { .. } => 6,
            SpanKind::Quorum => 7,
            SpanKind::Fallback => 8,
            SpanKind::QueueWait | SpanKind::CacheLookup | SpanKind::Session => u8::MAX,
        }
    }

    /// `(sample, attempt)` coordinates, when the span has them.
    pub fn coords(&self) -> (u32, u32) {
        match *self {
            SpanKind::Attempt { sample, attempt }
            | SpanKind::Draw { sample, attempt }
            | SpanKind::Retry { sample, attempt }
            | SpanKind::Backoff { sample, attempt } => (sample, attempt),
            _ => (0, 0),
        }
    }

    /// Fixed slot in the per-kind metrics table
    /// ([`crate::metrics::MetricsRegistry::span_opens`]).
    pub fn index(&self) -> usize {
        match self {
            SpanKind::Request => 0,
            SpanKind::ContextFit => 1,
            SpanKind::Attempt { .. } => 2,
            SpanKind::Draw { .. } => 3,
            SpanKind::Retry { .. } => 4,
            SpanKind::Backoff { .. } => 5,
            SpanKind::Quorum => 6,
            SpanKind::Fallback => 7,
            SpanKind::Shed => 8,
            SpanKind::QueueWait => 9,
            SpanKind::CacheLookup => 10,
            SpanKind::Session => 11,
        }
    }

    /// Stable names of every kind, in [`SpanKind::index`] order.
    pub const NAMES: [&'static str; SPAN_KINDS] = [
        "request",
        "context_fit",
        "attempt",
        "draw",
        "retry",
        "backoff",
        "quorum",
        "fallback",
        "shed",
        "queue_wait",
        "cache_lookup",
        "session",
    ];

    /// Per-kind id salt, so the same key fingerprint yields distinct span
    /// ids for distinct kinds.
    fn salt(&self) -> u64 {
        // Arbitrary distinct constants; stability matters, values do not.
        0x5350_414e_0000_0000 | self.index() as u64
    }
}

/// Deterministic span id: a pure function of the scoping fingerprint,
/// the kind and its `(sample, attempt)` coordinates — never of emitter
/// state or clocks, which is what keeps canonical span multisets
/// schedule-invariant.
pub fn span_id(key: u64, kind: &SpanKind) -> u64 {
    let (sample, attempt) = kind.coords();
    mix(mix(key, kind.salt()), (u64::from(sample) << 32) | u64::from(attempt))
}

/// The structural parent table: who owns each span kind.
///
/// `request`, `context_fit` and `shed` are roots (shed requests never
/// open a `request` span; fit is keyed by the context, not a request).
/// Per-sample spans nest under their attempt; everything else
/// request-scoped nests under the request. Scheduler-scoped kinds are
/// sidecar lanes with no parent.
pub fn parent_of(key: u64, kind: &SpanKind) -> u64 {
    match *kind {
        SpanKind::Request
        | SpanKind::ContextFit
        | SpanKind::Shed
        | SpanKind::QueueWait
        | SpanKind::CacheLookup
        | SpanKind::Session => 0,
        SpanKind::Attempt { .. } | SpanKind::Quorum | SpanKind::Fallback => {
            span_id(key, &SpanKind::Request)
        }
        SpanKind::Draw { sample, attempt }
        | SpanKind::Retry { sample, attempt }
        | SpanKind::Backoff { sample, attempt } => {
            span_id(key, &SpanKind::Attempt { sample, attempt })
        }
    }
}

/// One half of a span: its identity, lineage, scope and phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span id ([`span_id`] for deterministic kinds; tick-seeded for
    /// scheduler-scoped ones).
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Content fingerprint scoping the span: the request fingerprint for
    /// request-scoped kinds, the context fingerprint for
    /// `context_fit`/`cache_lookup`/`session`, 0 for `queue_wait`.
    pub req: u64,
    /// What the interval covers.
    pub kind: SpanKind,
    /// Open or close.
    pub phase: SpanPhase,
}

impl SpanEvent {
    /// The opening half of a deterministic span scoped to `key`.
    pub fn open(key: u64, kind: SpanKind) -> Self {
        Self {
            id: span_id(key, &kind),
            parent: parent_of(key, &kind),
            req: key,
            kind,
            phase: SpanPhase::Open,
        }
    }

    /// The closing half of a deterministic span scoped to `key`.
    pub fn close(key: u64, kind: SpanKind) -> Self {
        Self { phase: SpanPhase::Close, ..Self::open(key, kind) }
    }

    /// The opening half of a scheduler-scoped span with a caller-minted
    /// id (typically [`mix`]`(tick, salt)` — unique per occurrence, not
    /// schedule-invariant).
    pub fn open_with_id(id: u64, key: u64, kind: SpanKind) -> Self {
        Self { id, parent: parent_of(key, &kind), req: key, kind, phase: SpanPhase::Open }
    }

    /// The closing half matching [`SpanEvent::open_with_id`].
    pub fn close_with_id(id: u64, key: u64, kind: SpanKind) -> Self {
        Self { phase: SpanPhase::Close, ..Self::open_with_id(id, key, kind) }
    }
}

/// One buffered span half with both clock stamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StampedSpan {
    /// The observer's own clock at record time (logical tick or elapsed
    /// nanos, per [`crate::record::ClockMode`]).
    pub t: u64,
    /// The wall-clock sidecar reading (elapsed nanoseconds since the
    /// observer was built) — real durations for humans, dropped from
    /// canonical exports.
    pub wall: u64,
    /// The span half.
    pub span: SpanEvent,
}

/// RAII emitter: records the `Open` half on construction and the `Close`
/// half on drop — including drops during unwinding, so a panicking
/// attempt isolated by `catch_unwind` still closes every span it opened.
/// Free when the recorder is disabled.
pub struct SpanGuard<'a> {
    obs: &'a dyn crate::record::Recorder,
    close: Option<SpanEvent>,
}

impl<'a> SpanGuard<'a> {
    /// Opens a deterministic span scoped to `key`, closing it when the
    /// guard drops.
    pub fn open(obs: &'a dyn crate::record::Recorder, key: u64, kind: SpanKind) -> Self {
        let close = if obs.enabled() {
            obs.span(SpanEvent::open(key, kind));
            Some(SpanEvent::close(key, kind))
        } else {
            None
        };
        Self { obs, close }
    }

    /// Opens a scheduler-scoped span with a caller-minted id.
    pub fn open_with_id(
        obs: &'a dyn crate::record::Recorder,
        id: u64,
        key: u64,
        kind: SpanKind,
    ) -> Self {
        let close = if obs.enabled() {
            obs.span(SpanEvent::open_with_id(id, key, kind));
            Some(SpanEvent::close_with_id(id, key, kind))
        } else {
            None
        };
        Self { obs, close }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(close) = self.close.take() {
            self.obs.span(close);
        }
    }
}

/// Emits a zero-width (open immediately followed by close) span — for
/// instants that belong in the causal tree (`retry`, `backoff`,
/// `fallback`, `shed`).
pub fn point_span(obs: &dyn crate::record::Recorder, key: u64, kind: SpanKind) {
    if obs.enabled() {
        obs.span(SpanEvent::open(key, kind));
        obs.span(SpanEvent::close(key, kind));
    }
}

/// Why a span buffer failed to pair up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanError {
    /// An `Open` with no matching `Close` (or vice versa).
    Orphaned {
        /// The unpaired span id.
        id: u64,
        /// Stable kind name of the orphan.
        kind: &'static str,
        /// Which half was left dangling.
        phase: &'static str,
    },
    /// A second `Close` arrived for an id with no open interval.
    DoubleClose {
        /// The over-closed span id.
        id: u64,
        /// Stable kind name.
        kind: &'static str,
    },
}

impl std::fmt::Display for SpanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpanError::Orphaned { id, kind, phase } => {
                write!(f, "span {id:016x} ({kind}): {phase} half never paired")
            }
            SpanError::DoubleClose { id, kind } => {
                write!(f, "span {id:016x} ({kind}): closed with no open interval")
            }
        }
    }
}

/// A completed interval: one `Open` paired with one `Close`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairedSpan {
    /// Span id.
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Scoping fingerprint (see [`SpanEvent::req`]).
    pub req: u64,
    /// What the interval covers.
    pub kind: SpanKind,
    /// Observer-clock stamp of the open half.
    pub open_t: u64,
    /// Observer-clock stamp of the close half.
    pub close_t: u64,
    /// Wall sidecar stamp of the open half.
    pub open_wall: u64,
    /// Wall sidecar stamp of the close half.
    pub close_wall: u64,
}

impl PairedSpan {
    /// Interval length on the observer clock.
    pub fn ticks(&self) -> u64 {
        self.close_t.saturating_sub(self.open_t)
    }

    /// Interval length on the wall sidecar (nanoseconds).
    pub fn wall_nanos(&self) -> u64 {
        self.close_wall.saturating_sub(self.open_wall)
    }
}

/// Pairs every open with its close, in emission order per id (the same
/// id may recur across flushes; occurrences pair first-in-first-out).
///
/// # Errors
/// [`SpanError::DoubleClose`] on a close with no open interval;
/// [`SpanError::Orphaned`] when any half is left unpaired at the end.
pub fn pair_spans(spans: &[StampedSpan]) -> Result<Vec<PairedSpan>, SpanError> {
    let mut open: Vec<(u64, StampedSpan)> = Vec::new();
    let mut paired = Vec::new();
    for s in spans {
        match s.span.phase {
            SpanPhase::Open => open.push((s.span.id, *s)),
            SpanPhase::Close => {
                let Some(pos) = open.iter().position(|(id, _)| *id == s.span.id) else {
                    return Err(SpanError::DoubleClose { id: s.span.id, kind: s.span.kind.name() });
                };
                let (_, o) = open.remove(pos);
                paired.push(PairedSpan {
                    id: s.span.id,
                    parent: o.span.parent,
                    req: o.span.req,
                    kind: o.span.kind,
                    open_t: o.t,
                    close_t: s.t,
                    open_wall: o.wall,
                    close_wall: s.wall,
                });
            }
        }
    }
    if let Some((id, s)) = open.first() {
        return Err(SpanError::Orphaned { id: *id, kind: s.span.kind.name(), phase: "open" });
    }
    Ok(paired)
}

/// One node of a reconstructed span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The interval.
    pub span: PairedSpan,
    /// Child nodes, in open order.
    pub children: Vec<SpanNode>,
}

/// A per-request (or per-root) span tree.
#[derive(Debug, Clone)]
pub struct SpanTree {
    /// The root interval (`request`, `context_fit`, `shed`, or a
    /// scheduler-scoped lane).
    pub root: SpanNode,
}

/// Attaches `node` under the span with id `parent` anywhere in the
/// forest; hands the node back if no such ancestor exists.
fn attach(nodes: &mut [SpanNode], parent: u64, node: SpanNode) -> Option<SpanNode> {
    let mut pending = Some(node);
    for candidate in nodes.iter_mut() {
        let Some(node) = pending.take() else { break };
        if candidate.span.id == parent {
            candidate.children.push(node);
            return None;
        }
        pending = attach(&mut candidate.children, parent, node);
    }
    pending
}

/// Nests paired spans into trees by parent id. Spans whose parent never
/// appears (scheduler-scoped lanes, roots) become their own trees, in
/// open order.
pub fn build_trees(paired: &[PairedSpan]) -> Vec<SpanTree> {
    let mut ordered: Vec<&PairedSpan> = paired.iter().collect();
    ordered.sort_by_key(|s| (s.open_t, s.id));
    let mut roots: Vec<SpanNode> = Vec::new();
    for span in ordered {
        let node = SpanNode { span: *span, children: Vec::new() };
        if span.parent == 0 {
            roots.push(node);
            continue;
        }
        if let Some(back) = attach(&mut roots, span.parent, node) {
            roots.push(back);
        }
    }
    roots.into_iter().map(|root| SpanTree { root }).collect()
}

/// Per-stage latency blame for one tree: the root interval is partitioned
/// at every descendant boundary, each segment is blamed on the *deepest*
/// span covering it (ties to the latest-closing one), and segments only
/// the root covers are blamed on `"queue_wait"` — scheduling and queueing
/// are exactly the time a request spends not actively in any stage.
/// Because the segments partition the root interval, the returned stage
/// durations sum to the end-to-end duration **exactly**.
pub fn blame(tree: &SpanTree) -> Vec<(&'static str, u64)> {
    let root = &tree.root.span;
    let mut cuts = vec![root.open_t, root.close_t];
    let mut covers: Vec<(u64, u64, usize, &'static str)> = Vec::new();
    fn walk(
        node: &SpanNode,
        depth: usize,
        cuts: &mut Vec<u64>,
        covers: &mut Vec<(u64, u64, usize, &'static str)>,
    ) {
        for child in &node.children {
            let s = &child.span;
            cuts.push(s.open_t);
            cuts.push(s.close_t);
            covers.push((s.open_t, s.close_t, depth + 1, s.kind.name()));
            walk(child, depth + 1, cuts, covers);
        }
    }
    walk(&tree.root, 0, &mut cuts, &mut covers);
    cuts.sort_unstable();
    cuts.dedup();
    let mut stages: Vec<(&'static str, u64)> = Vec::new();
    for pair in cuts.windows(2) {
        let (lo, hi) = (pair[0], pair[1]);
        if lo < root.open_t || hi > root.close_t {
            continue;
        }
        let owner = covers
            .iter()
            .filter(|&&(o, c, ..)| o <= lo && hi <= c)
            .max_by_key(|&&(o, c, depth, _)| (depth, c, std::cmp::Reverse(o)))
            .map_or("queue_wait", |&(.., name)| name);
        match stages.iter_mut().find(|(name, _)| *name == owner) {
            Some((_, total)) => *total += hi - lo,
            None => stages.push((owner, hi - lo)),
        }
    }
    stages
}

/// The chain of spans that bounded this tree's completion: starting at
/// the root, repeatedly descend into the latest-closing child. The last
/// element is the span whose close coincides with the tree's.
pub fn critical_path(tree: &SpanTree) -> Vec<PairedSpan> {
    let mut path = vec![tree.root.span];
    let mut node = &tree.root;
    while let Some(next) = node.children.iter().max_by_key(|c| (c.span.close_t, c.span.open_t)) {
        path.push(next.span);
        node = next;
    }
    path
}

/// Renders paired spans as Chrome trace-event JSON (the `traceEvents`
/// array format) loadable in Perfetto or `chrome://tracing`. Timestamps
/// and durations come from the wall sidecar (microseconds, fractional);
/// each distinct scope fingerprint gets its own `tid` lane, in first-use
/// order, so a request's spans stack in one track.
pub fn chrome_trace(paired: &[PairedSpan]) -> String {
    let mut lanes: Vec<u64> = Vec::new();
    let mut ordered: Vec<&PairedSpan> = paired.iter().collect();
    ordered.sort_by_key(|s| (s.open_wall, s.id));
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, s) in ordered.iter().enumerate() {
        let tid = match lanes.iter().position(|&fp| fp == s.req) {
            Some(pos) => pos + 1,
            None => {
                lanes.push(s.req);
                lanes.len()
            }
        };
        let ts = s.open_wall as f64 / 1_000.0;
        let dur = s.wall_nanos() as f64 / 1_000.0;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"serve\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\
             \"pid\":1,\"tid\":{tid},\"args\":{{\"id\":\"{:016x}\",\"parent\":\"{:016x}\",\
             \"req\":\"{:016x}\",\"ticks\":{}}}}}",
            s.kind.name(),
            s.id,
            s.parent,
            s.req,
            s.ticks(),
        );
        out.push_str(if i + 1 == ordered.len() { "\n" } else { ",\n" });
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamped(t: u64, span: SpanEvent) -> StampedSpan {
        StampedSpan { t, wall: t * 10, span }
    }

    #[test]
    fn ids_are_pure_and_kind_distinct() {
        let a = span_id(7, &SpanKind::Request);
        assert_eq!(a, span_id(7, &SpanKind::Request));
        assert_ne!(a, span_id(8, &SpanKind::Request));
        assert_ne!(a, span_id(7, &SpanKind::Quorum));
        let s0 = span_id(7, &SpanKind::Attempt { sample: 0, attempt: 0 });
        let s1 = span_id(7, &SpanKind::Attempt { sample: 1, attempt: 0 });
        let r1 = span_id(7, &SpanKind::Attempt { sample: 0, attempt: 1 });
        assert!(s0 != s1 && s0 != r1 && s1 != r1);
    }

    #[test]
    fn parents_follow_the_structural_table() {
        let req = span_id(7, &SpanKind::Request);
        let attempt = SpanKind::Attempt { sample: 2, attempt: 1 };
        assert_eq!(parent_of(7, &SpanKind::Request), 0);
        assert_eq!(parent_of(7, &SpanKind::Shed), 0);
        assert_eq!(parent_of(7, &attempt), req);
        assert_eq!(parent_of(7, &SpanKind::Quorum), req);
        assert_eq!(
            parent_of(7, &SpanKind::Draw { sample: 2, attempt: 1 }),
            span_id(7, &attempt),
            "draw nests under its own attempt"
        );
    }

    #[test]
    fn kind_table_is_consistent() {
        let kinds = [
            SpanKind::Request,
            SpanKind::ContextFit,
            SpanKind::Attempt { sample: 0, attempt: 0 },
            SpanKind::Draw { sample: 0, attempt: 0 },
            SpanKind::Retry { sample: 0, attempt: 1 },
            SpanKind::Backoff { sample: 0, attempt: 1 },
            SpanKind::Quorum,
            SpanKind::Fallback,
            SpanKind::Shed,
            SpanKind::QueueWait,
            SpanKind::CacheLookup,
            SpanKind::Session,
        ];
        assert_eq!(kinds.len(), SPAN_KINDS);
        for kind in &kinds {
            assert_eq!(SpanKind::NAMES[kind.index()], kind.name());
        }
        assert!(!SpanKind::QueueWait.deterministic());
        assert!(!SpanKind::CacheLookup.deterministic());
        assert!(!SpanKind::Session.deterministic());
        assert!(SpanKind::Request.deterministic());
        assert!(SpanKind::Shed.deterministic());
    }

    #[test]
    fn pairing_rejects_orphans_and_double_closes() {
        let open = SpanEvent::open(1, SpanKind::Request);
        let close = SpanEvent::close(1, SpanKind::Request);
        let ok = pair_spans(&[stamped(0, open), stamped(5, close)]).unwrap();
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].ticks(), 5);
        assert_eq!(ok[0].wall_nanos(), 50);

        let orphan = pair_spans(&[stamped(0, open)]);
        assert!(matches!(orphan, Err(SpanError::Orphaned { phase: "open", .. })), "{orphan:?}");
        let double = pair_spans(&[stamped(0, open), stamped(1, close), stamped(2, close)]);
        assert!(matches!(double, Err(SpanError::DoubleClose { .. })), "{double:?}");
    }

    #[test]
    fn recurring_ids_pair_fifo() {
        let open = SpanEvent::open(1, SpanKind::Request);
        let close = SpanEvent::close(1, SpanKind::Request);
        let paired =
            pair_spans(&[stamped(0, open), stamped(1, close), stamped(2, open), stamped(9, close)])
                .unwrap();
        assert_eq!(paired.len(), 2);
        assert_eq!((paired[0].open_t, paired[0].close_t), (0, 1));
        assert_eq!((paired[1].open_t, paired[1].close_t), (2, 9));
    }

    fn request_fixture() -> Vec<StampedSpan> {
        // request [0, 20]: attempt(0,0) [2, 10] with draw [3, 8],
        // quorum [14, 18]; ticks 0-2, 10-14 and 18-20 are unblamed.
        let attempt = SpanKind::Attempt { sample: 0, attempt: 0 };
        let draw = SpanKind::Draw { sample: 0, attempt: 0 };
        vec![
            stamped(0, SpanEvent::open(7, SpanKind::Request)),
            stamped(2, SpanEvent::open(7, attempt)),
            stamped(3, SpanEvent::open(7, draw)),
            stamped(8, SpanEvent::close(7, draw)),
            stamped(10, SpanEvent::close(7, attempt)),
            stamped(14, SpanEvent::open(7, SpanKind::Quorum)),
            stamped(18, SpanEvent::close(7, SpanKind::Quorum)),
            stamped(20, SpanEvent::close(7, SpanKind::Request)),
        ]
    }

    #[test]
    fn trees_nest_by_parent_and_blame_partitions_exactly() {
        let paired = pair_spans(&request_fixture()).unwrap();
        let trees = build_trees(&paired);
        assert_eq!(trees.len(), 1);
        let root = &trees[0].root;
        assert_eq!(root.span.kind, SpanKind::Request);
        assert_eq!(root.children.len(), 2, "attempt and quorum");
        assert_eq!(root.children[0].children.len(), 1, "draw under attempt");

        let stages = blame(&trees[0]);
        let get = |name: &str| stages.iter().find(|(n, _)| *n == name).map_or(0, |&(_, v)| v);
        assert_eq!(get("draw"), 5, "deepest span owns its segment");
        assert_eq!(get("attempt"), 3, "attempt minus its draw");
        assert_eq!(get("quorum"), 4);
        assert_eq!(get("queue_wait"), 8, "uncovered root time");
        let total: u64 = stages.iter().map(|&(_, v)| v).sum();
        assert_eq!(total, 20, "blame partitions the end-to-end interval exactly");
    }

    #[test]
    fn critical_path_descends_latest_closing_children() {
        let paired = pair_spans(&request_fixture()).unwrap();
        let trees = build_trees(&paired);
        let path: Vec<&'static str> =
            critical_path(&trees[0]).iter().map(|s| s.kind.name()).collect();
        assert_eq!(path, vec!["request", "quorum"]);
    }

    #[test]
    fn chrome_trace_renders_complete_events() {
        let paired = pair_spans(&request_fixture()).unwrap();
        let json = chrome_trace(&paired);
        assert!(json.starts_with("{\"traceEvents\":[\n"), "{json}");
        assert!(json.trim_end().ends_with("]}"), "{json}");
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 4);
        assert!(json.contains("\"name\":\"draw\""), "{json}");
        assert!(json.contains("\"dur\":0.050"), "draw lasts 5 ticks = 50ns = 0.05us: {json}");
        assert_eq!(json.matches(",\n").count(), 3, "valid JSON array separators");
    }
}
