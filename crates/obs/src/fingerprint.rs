//! Stable content fingerprints for trace keys.
//!
//! Trace events must not be keyed by submission indices or thread ids —
//! both vary with scheduling, and the canonical export promises
//! byte-identical traces across worker counts and submission orders.
//! Instead, requests and contexts are keyed by a fingerprint of their
//! *content* (history bits, horizon, codec, configuration), computed with
//! the 64-bit FNV-1a hash below: stable across platforms and runs, with
//! no dependence on `std::hash`'s randomized state.

/// Incremental 64-bit FNV-1a hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fingerprint {
    /// A fresh hasher at the FNV offset basis.
    pub const fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Folds raw bytes into the fingerprint.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a string's UTF-8 bytes into the fingerprint.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Folds a `u64` (little-endian bytes) into the fingerprint.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

/// Combines two fingerprints into one (splitmix64 finalizer over the
/// pair), used to disambiguate the k-th occurrence of identical content.
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let mut a = Fingerprint::new();
        a.write_str("prompt");
        a.write_u64(7);
        let mut b = Fingerprint::new();
        b.write_str("prompt");
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fingerprint::new();
        c.write_str("prompt");
        c.write_u64(8);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn byte_boundaries_matter() {
        // "ab" + "c" must differ from "a" + "bc" only if the hash saw the
        // same byte stream — FNV is a pure byte fold, so they collide by
        // design; u64 framing is what callers add to separate fields.
        let mut a = Fingerprint::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fingerprint::new();
        b.write_str("a");
        b.write_str("bc");
        assert_eq!(a.finish(), b.finish());
        let mut framed_a = Fingerprint::new();
        framed_a.write_u64(2);
        framed_a.write_str("ab");
        framed_a.write_str("c");
        let mut framed_b = Fingerprint::new();
        framed_b.write_u64(1);
        framed_b.write_str("a");
        framed_b.write_str("bc");
        assert_ne!(framed_a.finish(), framed_b.finish());
    }

    #[test]
    fn mix_disambiguates_occurrences() {
        let base = Fingerprint::new().finish();
        assert_ne!(mix(base, 0), mix(base, 1));
        assert_ne!(mix(base, 1), mix(base, 2));
        assert_eq!(mix(base, 1), mix(base, 1));
    }
}
