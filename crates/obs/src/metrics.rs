//! Atomic counters and fixed-bucket histograms.
//!
//! [`MetricsRegistry`] is the aggregate side of observability: where the
//! trace answers "what happened to request X", the registry answers "how
//! much of everything happened". It is built exclusively on
//! [`mc_sync::atomic`], so a `--cfg loom` build model-checks it exactly
//! like `mc-lm`'s `CostLedger` — lost increments would be found by the
//! loom suite, not production.
//!
//! Counters are a closed set ([`Counter`]) rather than string-keyed: the
//! registry never allocates, updates are single `fetch_add`s, and the
//! defect taxonomy gets one fixed slot per class
//! ([`crate::event::DEFECT_CLASSES`]).

use mc_sync::atomic::{AtomicU64, Ordering};

use crate::event::{AttemptClass, EventKind, TraceEvent, DEFECT_CLASSES, DEFECT_CLASS_NAMES};
use crate::span::{SpanEvent, SpanKind, SpanPhase, SPAN_KINDS};

/// Every counter the registry tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Events recorded (any kind).
    Events,
    /// Task dequeues observed by the worker pool.
    QueueWaits,
    /// Requests that reused an already-fitted frozen context.
    DedupHits,
    /// Decode sessions that completed inside the model boundary.
    Sessions,
    /// Tokens generated across completed sessions (metered ground truth).
    SessionTokens,
    /// Work units across completed sessions (metered ground truth).
    SessionWork,
    /// Frozen contexts fitted (prompt conditioned).
    ContextFits,
    /// Requests joined to a frozen context.
    ContextJoins,
    /// One-time prompt-conditioning tokens across fitted contexts.
    PromptTokens,
    /// `(sample, attempt)` draws executed.
    Attempts,
    /// Attempts that produced a valid sample.
    AttemptsValid,
    /// Attempts that completed but were fatally defective.
    AttemptsDefective,
    /// Attempts that failed on infrastructure.
    AttemptsInfra,
    /// Attempts that panicked and were isolated.
    AttemptsPanicked,
    /// Generated tokens attributed to attempts.
    GeneratedTokens,
    /// Work units attributed to attempts.
    WorkUnits,
    /// Samples re-queued for another attempt.
    Retries,
    /// Defects observed (all classes).
    Defects,
    /// Panics caught and converted to defects.
    PanicsIsolated,
    /// Requests whose quorum was checked at finalization.
    QuorumResolves,
    /// Quorum checks that failed.
    QuorumFailures,
    /// Forecasts produced by the classical fallback.
    Fallbacks,
    /// Requests rejected at admission on an exhausted client quota.
    QuotaRejections,
    /// Requests shed at admission by the queue-capacity ordering.
    Sheds,
    /// Retries deferred by the bounded exponential backoff.
    Backoffs,
    /// Submissions bounced off the hard submission cap.
    QueueFullRejections,
    /// Circuit-breaker open transitions (trips).
    BreakerTrips,
    /// Circuit-breaker close transitions.
    BreakerCloses,
    /// Requests rejected at admission while a breaker was open.
    BreakerRejections,
    /// Context fits served from the cross-batch frozen-context cache.
    CacheHits,
    /// Context fits the cache could not serve (from-scratch fit paid).
    CacheMisses,
    /// Cached contexts delta-updated in place by incremental refit.
    CacheRefits,
    /// Cache entries evicted to make room for insertions.
    CacheEvictions,
    /// Span open halves recorded (any kind).
    SpanOpens,
    /// Span close halves recorded (any kind).
    SpanCloses,
}

impl Counter {
    /// All counters, in display order.
    pub const ALL: [Counter; 35] = [
        Counter::Events,
        Counter::QueueWaits,
        Counter::DedupHits,
        Counter::Sessions,
        Counter::SessionTokens,
        Counter::SessionWork,
        Counter::ContextFits,
        Counter::ContextJoins,
        Counter::PromptTokens,
        Counter::Attempts,
        Counter::AttemptsValid,
        Counter::AttemptsDefective,
        Counter::AttemptsInfra,
        Counter::AttemptsPanicked,
        Counter::GeneratedTokens,
        Counter::WorkUnits,
        Counter::Retries,
        Counter::Defects,
        Counter::PanicsIsolated,
        Counter::QuorumResolves,
        Counter::QuorumFailures,
        Counter::Fallbacks,
        Counter::QuotaRejections,
        Counter::Sheds,
        Counter::Backoffs,
        Counter::QueueFullRejections,
        Counter::BreakerTrips,
        Counter::BreakerCloses,
        Counter::BreakerRejections,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheRefits,
        Counter::CacheEvictions,
        Counter::SpanOpens,
        Counter::SpanCloses,
    ];

    /// Stable snake_case name for snapshots.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Events => "events",
            Counter::QueueWaits => "queue_waits",
            Counter::DedupHits => "fit_dedup_hits",
            Counter::Sessions => "sessions",
            Counter::SessionTokens => "session_tokens",
            Counter::SessionWork => "session_work",
            Counter::ContextFits => "context_fits",
            Counter::ContextJoins => "context_joins",
            Counter::PromptTokens => "prompt_tokens",
            Counter::Attempts => "attempts",
            Counter::AttemptsValid => "attempts_valid",
            Counter::AttemptsDefective => "attempts_defective",
            Counter::AttemptsInfra => "attempts_infra",
            Counter::AttemptsPanicked => "attempts_panicked",
            Counter::GeneratedTokens => "generated_tokens",
            Counter::WorkUnits => "work_units",
            Counter::Retries => "retries",
            Counter::Defects => "defects",
            Counter::PanicsIsolated => "panics_isolated",
            Counter::QuorumResolves => "quorum_resolves",
            Counter::QuorumFailures => "quorum_failures",
            Counter::Fallbacks => "fallbacks",
            Counter::QuotaRejections => "quota_rejections",
            Counter::Sheds => "sheds",
            Counter::Backoffs => "backoffs",
            Counter::QueueFullRejections => "queue_full_rejections",
            Counter::BreakerTrips => "breaker_trips",
            Counter::BreakerCloses => "breaker_closes",
            Counter::BreakerRejections => "breaker_rejections",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::CacheRefits => "cache_refits",
            Counter::CacheEvictions => "cache_evictions",
            Counter::SpanOpens => "span_opens",
            Counter::SpanCloses => "span_closes",
        }
    }
}

/// Histogram bucket count: 8 finite upper bounds plus one overflow slot.
const BUCKETS: usize = 9;

/// A fixed-bucket histogram over `u64` observations.
///
/// Bounds are inclusive upper edges; anything above the last bound lands
/// in the overflow bucket. Count and sum are tracked alongside, so mean
/// and totals come for free.
#[derive(Debug)]
pub struct Histogram {
    bounds: [u64; BUCKETS - 1],
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bucket bounds
    /// (ascending).
    pub fn new(bounds: [u64; BUCKETS - 1]) -> Self {
        Self {
            bounds,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let slot = self.bounds.iter().position(|&b| value <= b).unwrap_or(BUCKETS - 1);
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (last slot is overflow).
    pub fn buckets(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// The inclusive upper bounds this histogram was built with.
    pub fn bounds(&self) -> [u64; BUCKETS - 1] {
        self.bounds
    }
}

/// The serve path's metrics: one atomic slot per [`Counter`], one per
/// defect class, plus queue-wait and attempt-token histograms.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: [AtomicU64; Counter::ALL.len()],
    defects: [AtomicU64; DEFECT_CLASSES],
    span_opens: [AtomicU64; SPAN_KINDS],
    queue_wait: Histogram,
    attempt_tokens: Histogram,
}

impl MetricsRegistry {
    /// A registry with every counter at zero.
    pub fn new() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            defects: std::array::from_fn(|_| AtomicU64::new(0)),
            span_opens: std::array::from_fn(|_| AtomicU64::new(0)),
            // Queue waits in clock units (ticks or nanoseconds): decade
            // buckets cover sub-microsecond dequeues through second-long
            // stalls.
            queue_wait: Histogram::new([
                10,
                100,
                1_000,
                10_000,
                100_000,
                1_000_000,
                10_000_000,
                1_000_000_000,
            ]),
            // Attempt sizes in generated tokens: power-of-4 buckets.
            attempt_tokens: Histogram::new([4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536]),
        }
    }

    /// Adds `n` to a counter.
    pub fn add(&self, counter: Counter, n: u64) {
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to a counter.
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Current value of a counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Adds one defect of the given taxonomy class (out-of-range classes
    /// are clamped into the last slot rather than dropped).
    pub fn add_defect(&self, class: usize) {
        self.defects[class.min(DEFECT_CLASSES - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Defects of one taxonomy class recorded so far.
    pub fn defect_count(&self, class: usize) -> u64 {
        self.defects[class.min(DEFECT_CLASSES - 1)].load(Ordering::Relaxed)
    }

    /// The queue-wait histogram (clock units per dequeue).
    pub fn queue_wait(&self) -> &Histogram {
        &self.queue_wait
    }

    /// The attempt-size histogram (generated tokens per attempt).
    pub fn attempt_tokens(&self) -> &Histogram {
        &self.attempt_tokens
    }

    /// Folds one trace event into the counters and histograms. This is
    /// the single routing table from the event vocabulary to metrics;
    /// [`crate::record::Observer`] calls it for every recorded event.
    pub fn record_event(&self, event: &TraceEvent) {
        self.incr(Counter::Events);
        match event.kind {
            EventKind::QueueWait { ticks } => {
                self.incr(Counter::QueueWaits);
                self.queue_wait.observe(ticks);
            }
            EventKind::FitDedupHit => self.incr(Counter::DedupHits),
            EventKind::SessionCost { generated_tokens, work_units } => {
                self.incr(Counter::Sessions);
                self.add(Counter::SessionTokens, generated_tokens);
                self.add(Counter::SessionWork, work_units);
            }
            EventKind::ContextFit { prompt_tokens, work_units: _ } => {
                self.incr(Counter::ContextFits);
                self.add(Counter::PromptTokens, prompt_tokens);
            }
            EventKind::ContextJoin => self.incr(Counter::ContextJoins),
            EventKind::Attempt { outcome, generated_tokens, work_units, .. } => {
                self.incr(Counter::Attempts);
                self.incr(match outcome {
                    AttemptClass::Valid => Counter::AttemptsValid,
                    AttemptClass::Defective => Counter::AttemptsDefective,
                    AttemptClass::Infra => Counter::AttemptsInfra,
                    AttemptClass::Panicked => Counter::AttemptsPanicked,
                });
                self.add(Counter::GeneratedTokens, generated_tokens);
                self.add(Counter::WorkUnits, work_units);
                self.attempt_tokens.observe(generated_tokens);
            }
            EventKind::Retry { .. } => self.incr(Counter::Retries),
            EventKind::Defect { class, .. } => {
                self.incr(Counter::Defects);
                self.add_defect(class as usize);
            }
            EventKind::PanicIsolated { .. } => self.incr(Counter::PanicsIsolated),
            EventKind::QuorumResolve { met, .. } => {
                self.incr(Counter::QuorumResolves);
                if !met {
                    self.incr(Counter::QuorumFailures);
                }
            }
            EventKind::Fallback => self.incr(Counter::Fallbacks),
            EventKind::QuotaExhausted { .. } => self.incr(Counter::QuotaRejections),
            EventKind::Shed { .. } => self.incr(Counter::Sheds),
            EventKind::Backoff { .. } => self.incr(Counter::Backoffs),
            EventKind::QueueFull => self.incr(Counter::QueueFullRejections),
            EventKind::BreakerTrip { .. } => self.incr(Counter::BreakerTrips),
            EventKind::BreakerClose { .. } => self.incr(Counter::BreakerCloses),
            EventKind::BreakerReject => self.incr(Counter::BreakerRejections),
            EventKind::CacheHit => self.incr(Counter::CacheHits),
            EventKind::CacheMiss => self.incr(Counter::CacheMisses),
            EventKind::CacheRefit { .. } => self.incr(Counter::CacheRefits),
            EventKind::CacheEvict { evictions } => {
                self.add(Counter::CacheEvictions, evictions);
            }
        }
    }

    /// Folds one span half into the counters: open/close totals plus a
    /// per-kind open count. This is the single routing table from the
    /// span vocabulary to metrics — one arm per [`SpanKind`] variant, so
    /// the `span-drift` analyzer pass can hold it exhaustive against
    /// the enum; [`crate::record::Observer`] calls it for every span.
    pub fn record_span(&self, span: &SpanEvent) {
        match span.phase {
            SpanPhase::Open => self.incr(Counter::SpanOpens),
            SpanPhase::Close => {
                self.incr(Counter::SpanCloses);
                return;
            }
        }
        let slot = match span.kind {
            SpanKind::Request => 0,
            SpanKind::ContextFit => 1,
            SpanKind::Attempt { .. } => 2,
            SpanKind::Draw { .. } => 3,
            SpanKind::Retry { .. } => 4,
            SpanKind::Backoff { .. } => 5,
            SpanKind::Quorum => 6,
            SpanKind::Fallback => 7,
            SpanKind::Shed => 8,
            SpanKind::QueueWait => 9,
            SpanKind::CacheLookup => 10,
            SpanKind::Session => 11,
        };
        debug_assert_eq!(slot, span.kind.index(), "routing table mirrors SpanKind::index");
        self.span_opens[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Spans of one kind opened so far.
    pub fn span_open_count(&self, kind: &SpanKind) -> u64 {
        self.span_opens[kind.index()].load(Ordering::Relaxed)
    }

    /// A plain-data copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: Counter::ALL.iter().map(|&c| (c.name(), self.get(c))).collect(),
            defects: std::array::from_fn(|i| self.defects[i].load(Ordering::Relaxed)),
            spans: SpanKind::NAMES
                .iter()
                .enumerate()
                .map(|(i, &name)| (name, self.span_opens[i].load(Ordering::Relaxed)))
                .collect(),
            histograms: vec![
                HistogramSnapshot::of("queue_wait", &self.queue_wait),
                HistogramSnapshot::of("attempt_tokens", &self.attempt_tokens),
            ],
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// Plain-data copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: &'static str,
    /// Inclusive upper bucket bounds.
    pub bounds: [u64; BUCKETS - 1],
    /// Per-bucket counts (last slot is overflow).
    pub buckets: [u64; BUCKETS],
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
}

impl HistogramSnapshot {
    fn of(name: &'static str, h: &Histogram) -> Self {
        Self { name, bounds: h.bounds(), buckets: h.buckets(), count: h.count(), sum: h.sum() }
    }
}

/// Plain-data copy of a whole registry, render-able as markdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Per-class defect counts, in taxonomy order.
    pub defects: [u64; DEFECT_CLASSES],
    /// `(name, opens)` per span kind, in [`SpanKind::NAMES`] order.
    pub spans: Vec<(&'static str, u64)>,
    /// Histogram snapshots.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a named counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| *n == name).map_or(0, |&(_, v)| v)
    }

    /// Renders the snapshot as markdown tables (for
    /// `results/serving_telemetry.md` and `--metrics` output).
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write;
        let mut md = String::new();
        md.push_str("| counter | value |\n|---|---:|\n");
        for &(name, value) in &self.counters {
            let _ = writeln!(md, "| {name} | {value} |");
        }
        md.push_str("\n| defect class | count |\n|---|---:|\n");
        for (name, count) in DEFECT_CLASS_NAMES.iter().zip(self.defects) {
            let _ = writeln!(md, "| {name} | {count} |");
        }
        md.push_str("\n| span kind | opens |\n|---|---:|\n");
        for &(name, opens) in &self.spans {
            let _ = writeln!(md, "| {name} | {opens} |");
        }
        for h in &self.histograms {
            let _ = write!(
                md,
                "\n`{}` histogram (count {}, sum {}):\n\n| ≤ bound | count |\n|---:|---:|\n",
                h.name, h.count, h.sum
            );
            for (i, &n) in h.buckets.iter().enumerate() {
                match h.bounds.get(i) {
                    Some(b) => {
                        let _ = writeln!(md, "| {b} | {n} |");
                    }
                    None => {
                        let _ = writeln!(md, "| overflow | {n} |");
                    }
                }
            }
        }
        md
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_independently() {
        let reg = MetricsRegistry::new();
        reg.incr(Counter::Attempts);
        reg.add(Counter::Attempts, 2);
        reg.incr(Counter::Retries);
        assert_eq!(reg.get(Counter::Attempts), 3);
        assert_eq!(reg.get(Counter::Retries), 1);
        assert_eq!(reg.get(Counter::Fallbacks), 0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new([1, 2, 4, 8, 16, 32, 64, 128]);
        for v in [0, 1, 2, 3, 200] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 206);
        let buckets = h.buckets();
        assert_eq!(buckets[0], 2, "0 and 1 land in the first bucket");
        assert_eq!(buckets[1], 1);
        assert_eq!(buckets[2], 1, "3 lands in the ≤4 bucket");
        assert_eq!(buckets[BUCKETS - 1], 1, "200 overflows");
    }

    #[test]
    fn empty_histogram_snapshots_and_exports_cleanly() {
        let reg = MetricsRegistry::new();
        let snap = reg.snapshot();
        for h in &snap.histograms {
            assert_eq!(h.count, 0);
            assert_eq!(h.sum, 0);
            assert_eq!(h.buckets, [0; BUCKETS]);
        }
        let md = snap.to_markdown();
        assert!(md.contains("`queue_wait` histogram (count 0, sum 0):"), "{md}");
        assert!(md.contains("`attempt_tokens` histogram (count 0, sum 0):"), "{md}");
        assert_eq!(md.matches("| overflow | 0 |").count(), 2, "{md}");
    }

    #[test]
    fn top_bucket_saturation_lands_in_overflow_without_wrapping() {
        let h = Histogram::new([1, 2, 4, 8, 16, 32, 64, 128]);
        h.observe(128);
        h.observe(129);
        h.observe(u64::MAX);
        let buckets = h.buckets();
        assert_eq!(buckets[BUCKETS - 2], 1, "exactly-on-bound stays finite");
        assert_eq!(buckets[BUCKETS - 1], 2, "above-bound saturates into overflow");
        assert_eq!(h.count(), 3);
        assert_eq!(
            h.sum(),
            128u64.wrapping_add(129).wrapping_add(u64::MAX),
            "sum wraps, by design"
        );
    }

    #[test]
    fn snapshots_are_deterministic_across_worker_interleavings() {
        // The same observation multiset must produce byte-identical
        // snapshots no matter how many mc-sync workers raced to record
        // it or how the scheduler interleaved them.
        let snapshot_with = |workers: usize| {
            let reg = MetricsRegistry::new();
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let reg = &reg;
                    scope.spawn(move || {
                        for i in (w..240).step_by(workers) {
                            reg.queue_wait().observe((i as u64 % 6) * 30);
                            reg.incr(Counter::Attempts);
                            reg.record_span(&SpanEvent::open(i as u64, SpanKind::Quorum));
                        }
                    });
                }
            });
            reg.snapshot()
        };
        let reference = snapshot_with(1);
        for workers in [2, 3, 8] {
            assert_eq!(snapshot_with(workers), reference, "workers={workers}");
        }
    }

    #[test]
    fn event_routing_covers_every_kind() {
        let reg = MetricsRegistry::new();
        let ev = |kind| TraceEvent { req: 1, ctx: 2, kind };
        reg.record_event(&ev(EventKind::QueueWait { ticks: 5 }));
        reg.record_event(&ev(EventKind::FitDedupHit));
        reg.record_event(&ev(EventKind::SessionCost { generated_tokens: 7, work_units: 70 }));
        reg.record_event(&ev(EventKind::ContextFit { prompt_tokens: 11, work_units: 110 }));
        reg.record_event(&ev(EventKind::ContextJoin));
        reg.record_event(&ev(EventKind::Attempt {
            sample: 0,
            attempt: 0,
            outcome: AttemptClass::Valid,
            defects: 0,
            generated_tokens: 7,
            work_units: 70,
        }));
        reg.record_event(&ev(EventKind::Retry { sample: 0, attempt: 1 }));
        reg.record_event(&ev(EventKind::Defect { sample: 0, attempt: 0, class: 6, fatal: true }));
        reg.record_event(&ev(EventKind::PanicIsolated { sample: 0, attempt: 0 }));
        reg.record_event(&ev(EventKind::QuorumResolve { valid: 0, required: 1, met: false }));
        reg.record_event(&ev(EventKind::Fallback));
        reg.record_event(&ev(EventKind::QuotaExhausted { client: 3 }));
        reg.record_event(&ev(EventKind::Shed { priority: 2 }));
        reg.record_event(&ev(EventKind::Backoff { sample: 0, attempt: 1, delay: 2 }));
        reg.record_event(&ev(EventKind::QueueFull));
        reg.record_event(&ev(EventKind::BreakerTrip { trips: 1 }));
        reg.record_event(&ev(EventKind::BreakerClose { trips: 1 }));
        reg.record_event(&ev(EventKind::BreakerReject));
        reg.record_event(&ev(EventKind::CacheHit));
        reg.record_event(&ev(EventKind::CacheMiss));
        reg.record_event(&ev(EventKind::CacheRefit { appended: 12, epoch: 1 }));
        reg.record_event(&ev(EventKind::CacheEvict { evictions: 3 }));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("events"), 22);
        assert_eq!(snap.counter("queue_waits"), 1);
        assert_eq!(snap.counter("fit_dedup_hits"), 1);
        assert_eq!(snap.counter("sessions"), 1);
        assert_eq!(snap.counter("session_tokens"), 7);
        assert_eq!(snap.counter("prompt_tokens"), 11);
        assert_eq!(snap.counter("attempts"), 1);
        assert_eq!(snap.counter("attempts_valid"), 1);
        assert_eq!(snap.counter("generated_tokens"), 7);
        assert_eq!(snap.counter("retries"), 1);
        assert_eq!(snap.counter("defects"), 1);
        assert_eq!(snap.defects[6], 1, "panic defect class");
        assert_eq!(snap.counter("panics_isolated"), 1);
        assert_eq!(snap.counter("quorum_resolves"), 1);
        assert_eq!(snap.counter("quorum_failures"), 1);
        assert_eq!(snap.counter("fallbacks"), 1);
        assert_eq!(snap.counter("quota_rejections"), 1);
        assert_eq!(snap.counter("sheds"), 1);
        assert_eq!(snap.counter("backoffs"), 1);
        assert_eq!(snap.counter("queue_full_rejections"), 1);
        assert_eq!(snap.counter("breaker_trips"), 1);
        assert_eq!(snap.counter("breaker_closes"), 1);
        assert_eq!(snap.counter("breaker_rejections"), 1);
        assert_eq!(snap.counter("cache_hits"), 1);
        assert_eq!(snap.counter("cache_misses"), 1);
        assert_eq!(snap.counter("cache_refits"), 1);
        assert_eq!(snap.counter("cache_evictions"), 3);
        assert_eq!(reg.queue_wait().count(), 1);
        assert_eq!(reg.attempt_tokens().sum(), 7);
    }

    #[test]
    fn span_routing_covers_every_kind() {
        let reg = MetricsRegistry::new();
        let kinds = [
            SpanKind::Request,
            SpanKind::ContextFit,
            SpanKind::Attempt { sample: 0, attempt: 0 },
            SpanKind::Draw { sample: 0, attempt: 0 },
            SpanKind::Retry { sample: 0, attempt: 1 },
            SpanKind::Backoff { sample: 0, attempt: 1 },
            SpanKind::Quorum,
            SpanKind::Fallback,
            SpanKind::Shed,
            SpanKind::QueueWait,
            SpanKind::CacheLookup,
            SpanKind::Session,
        ];
        assert_eq!(kinds.len(), SPAN_KINDS);
        for kind in kinds {
            reg.record_span(&SpanEvent::open(9, kind));
            reg.record_span(&SpanEvent::close(9, kind));
        }
        reg.record_span(&SpanEvent::open(10, SpanKind::Request));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("span_opens"), SPAN_KINDS as u64 + 1);
        assert_eq!(snap.counter("span_closes"), SPAN_KINDS as u64);
        assert_eq!(reg.span_open_count(&SpanKind::Request), 2);
        assert_eq!(reg.span_open_count(&SpanKind::Session), 1);
        assert_eq!(snap.spans.len(), SPAN_KINDS);
        assert_eq!(snap.spans[0], ("request", 2));
        assert_eq!(snap.counter("events"), 0, "spans do not inflate the event counter");
    }

    #[test]
    fn registry_is_thread_safe() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let reg = &reg;
                scope.spawn(move || {
                    for _ in 0..1000 {
                        reg.incr(Counter::Attempts);
                        reg.add_defect(3);
                        reg.queue_wait().observe(42);
                    }
                });
            }
        });
        assert_eq!(reg.get(Counter::Attempts), 8000);
        assert_eq!(reg.defect_count(3), 8000);
        assert_eq!(reg.queue_wait().count(), 8000);
        assert_eq!(reg.queue_wait().sum(), 8000 * 42);
    }

    #[test]
    fn markdown_snapshot_names_every_counter_and_class() {
        let reg = MetricsRegistry::new();
        reg.incr(Counter::Fallbacks);
        let md = reg.snapshot().to_markdown();
        for c in Counter::ALL {
            assert!(md.contains(c.name()), "missing counter {}", c.name());
        }
        for name in DEFECT_CLASS_NAMES {
            assert!(md.contains(name), "missing defect class {name}");
        }
        for name in SpanKind::NAMES {
            assert!(md.contains(name), "missing span kind {name}");
        }
        assert!(md.contains("| fallbacks | 1 |"));
        assert!(md.contains("queue_wait"));
        assert!(md.contains("overflow"));
    }
}
