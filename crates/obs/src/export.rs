//! JSONL trace export.
//!
//! One event per line, hand-rolled (no `serde` — the workspace is
//! dependency-free by policy). Two shapes, keyed by the observer's
//! [`ClockMode`]:
//!
//! - **Canonical** ([`ClockMode::Logical`]) — the determinism contract.
//!   Scheduler-scoped events are dropped (their multiset depends on the
//!   schedule), the rest are sorted by `(request fingerprint, context
//!   fingerprint, pipeline rank, sample, attempt)`, and `t` is
//!   re-stamped as the canonical index. Given identical seeds, the
//!   result is byte-identical across worker counts and submission
//!   orders.
//! - **Emission order** ([`ClockMode::Wall`]) — every event, in the
//!   order the buffer received them, with real elapsed-nanosecond
//!   timestamps. For humans profiling a live run.

use std::fmt::Write;

use crate::event::{EventKind, TraceEvent};
use crate::record::{ClockMode, Stamped};
use crate::span::{SpanEvent, SpanPhase, StampedSpan};

/// Renders buffered events as JSONL in the given mode.
pub fn to_jsonl(events: &[Stamped], mode: ClockMode) -> String {
    match mode {
        ClockMode::Logical => canonical(events),
        ClockMode::Wall => emission_order(events),
    }
}

fn canonical(events: &[Stamped]) -> String {
    let mut rows: Vec<(u64, u64, u8, u32, u32, String)> = events
        .iter()
        .filter(|s| s.event.kind.deterministic())
        .map(|s| {
            let (sample, attempt) = s.event.kind.coords();
            (s.event.req, s.event.ctx, s.event.kind.rank(), sample, attempt, body(&s.event))
        })
        .collect();
    rows.sort();
    let mut out = String::new();
    for (i, (.., line)) in rows.iter().enumerate() {
        let _ = writeln!(out, "{{\"t\":{i},{line}}}");
    }
    out
}

fn emission_order(events: &[Stamped]) -> String {
    let mut out = String::new();
    for s in events {
        let _ = writeln!(out, "{{\"t\":{},{}}}", s.t, body(&s.event));
    }
    out
}

/// The event's JSON fields after `t` (no surrounding braces).
fn body(event: &TraceEvent) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "\"req\":\"{:016x}\",\"ctx\":\"{:016x}\",\"kind\":\"{}\"",
        event.req,
        event.ctx,
        event.kind.name()
    );
    match event.kind {
        EventKind::QueueWait { ticks } => {
            let _ = write!(s, ",\"ticks\":{ticks}");
        }
        EventKind::FitDedupHit | EventKind::ContextJoin | EventKind::Fallback => {}
        EventKind::SessionCost { generated_tokens, work_units } => {
            let _ =
                write!(s, ",\"generated_tokens\":{generated_tokens},\"work_units\":{work_units}");
        }
        EventKind::ContextFit { prompt_tokens, work_units } => {
            let _ = write!(s, ",\"prompt_tokens\":{prompt_tokens},\"work_units\":{work_units}");
        }
        EventKind::Attempt { sample, attempt, outcome, defects, generated_tokens, work_units } => {
            let _ = write!(
                s,
                ",\"sample\":{sample},\"attempt\":{attempt},\"outcome\":\"{}\",\"defects\":{defects},\"generated_tokens\":{generated_tokens},\"work_units\":{work_units}",
                outcome.name()
            );
        }
        EventKind::Retry { sample, attempt } => {
            let _ = write!(s, ",\"sample\":{sample},\"attempt\":{attempt}");
        }
        EventKind::Defect { sample, attempt, class, fatal } => {
            let _ = write!(
                s,
                ",\"sample\":{sample},\"attempt\":{attempt},\"class\":{class},\"fatal\":{fatal}"
            );
        }
        EventKind::PanicIsolated { sample, attempt } => {
            let _ = write!(s, ",\"sample\":{sample},\"attempt\":{attempt}");
        }
        EventKind::QuorumResolve { valid, required, met } => {
            let _ = write!(s, ",\"valid\":{valid},\"required\":{required},\"met\":{met}");
        }
        EventKind::QuotaExhausted { client } => {
            let _ = write!(s, ",\"client\":{client}");
        }
        EventKind::Shed { priority } => {
            let _ = write!(s, ",\"priority\":{priority}");
        }
        EventKind::Backoff { sample, attempt, delay } => {
            let _ = write!(s, ",\"sample\":{sample},\"attempt\":{attempt},\"delay\":{delay}");
        }
        EventKind::QueueFull | EventKind::BreakerReject => {}
        EventKind::BreakerTrip { trips } | EventKind::BreakerClose { trips } => {
            let _ = write!(s, ",\"trips\":{trips}");
        }
        EventKind::CacheHit | EventKind::CacheMiss => {}
        EventKind::CacheRefit { appended, epoch } => {
            let _ = write!(s, ",\"appended\":{appended},\"epoch\":{epoch}");
        }
        EventKind::CacheEvict { evictions } => {
            let _ = write!(s, ",\"evictions\":{evictions}");
        }
    }
    s
}

/// Renders buffered span halves as JSONL in the given mode.
///
/// - **Canonical** ([`ClockMode::Logical`]) — scheduler-scoped kinds are
///   dropped, the rest are sorted by `(scope fingerprint, pipeline rank,
///   sample, attempt, phase, id)` and `t` is re-stamped as the canonical
///   index; the wall sidecar stamp is omitted. Deterministic span ids
///   are pure content functions ([`crate::span::span_id`]), so the
///   result is byte-identical across worker counts and submission
///   orders.
/// - **Emission order** ([`ClockMode::Wall`]) — every half, in buffer
///   order, with both stamps (`t` and `wall`).
pub fn spans_to_jsonl(spans: &[StampedSpan], mode: ClockMode) -> String {
    match mode {
        ClockMode::Logical => canonical_spans(spans),
        ClockMode::Wall => emission_order_spans(spans),
    }
}

fn canonical_spans(spans: &[StampedSpan]) -> String {
    let mut rows: Vec<(u64, u8, u32, u32, u8, u64, String)> = spans
        .iter()
        .filter(|s| s.span.kind.deterministic())
        .map(|s| {
            let (sample, attempt) = s.span.kind.coords();
            let phase = match s.span.phase {
                SpanPhase::Open => 0,
                SpanPhase::Close => 1,
            };
            (s.span.req, s.span.kind.rank(), sample, attempt, phase, s.span.id, span_body(&s.span))
        })
        .collect();
    rows.sort();
    let mut out = String::new();
    for (i, (.., line)) in rows.iter().enumerate() {
        let _ = writeln!(out, "{{\"t\":{i},{line}}}");
    }
    out
}

fn emission_order_spans(spans: &[StampedSpan]) -> String {
    let mut out = String::new();
    for s in spans {
        let _ = writeln!(out, "{{\"t\":{},\"wall\":{},{}}}", s.t, s.wall, span_body(&s.span));
    }
    out
}

/// The span's JSON fields after the stamps (no surrounding braces).
/// One arm per [`SpanKind`](crate::span::SpanKind) — the `span-drift`
/// analyzer pass holds this exhaustive against the enum.
fn span_body(span: &SpanEvent) -> String {
    use crate::span::SpanKind;
    let mut s = String::with_capacity(128);
    let _ = write!(
        s,
        "\"id\":\"{:016x}\",\"parent\":\"{:016x}\",\"req\":\"{:016x}\",\"kind\":\"{}\",\"phase\":\"{}\"",
        span.id,
        span.parent,
        span.req,
        span.kind.name(),
        span.phase.name()
    );
    match span.kind {
        SpanKind::Request
        | SpanKind::ContextFit
        | SpanKind::Quorum
        | SpanKind::Fallback
        | SpanKind::Shed
        | SpanKind::QueueWait
        | SpanKind::CacheLookup
        | SpanKind::Session => {}
        SpanKind::Attempt { sample, attempt }
        | SpanKind::Draw { sample, attempt }
        | SpanKind::Retry { sample, attempt }
        | SpanKind::Backoff { sample, attempt } => {
            let _ = write!(s, ",\"sample\":{sample},\"attempt\":{attempt}");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AttemptClass;

    fn stamped(t: u64, req: u64, kind: EventKind) -> Stamped {
        Stamped { t, event: TraceEvent { req, ctx: 7, kind } }
    }

    #[test]
    fn canonical_drops_scheduler_scoped_events_and_restamps() {
        let events = vec![
            stamped(5, 2, EventKind::QueueWait { ticks: 3 }),
            stamped(9, 2, EventKind::ContextJoin),
            stamped(1, 1, EventKind::ContextJoin),
            stamped(3, 1, EventKind::FitDedupHit),
        ];
        let jsonl = to_jsonl(&events, ClockMode::Logical);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2, "queue_wait and dedup hit are excluded");
        assert!(lines[0].starts_with("{\"t\":0,"));
        assert!(lines[1].starts_with("{\"t\":1,"));
        assert!(lines[0].contains("\"req\":\"0000000000000001\""), "sorted by fingerprint");
        assert!(lines[1].contains("\"req\":\"0000000000000002\""));
    }

    #[test]
    fn canonical_is_invariant_to_emission_order() {
        let attempt = |sample, attempt| EventKind::Attempt {
            sample,
            attempt,
            outcome: AttemptClass::Valid,
            defects: 0,
            generated_tokens: 12,
            work_units: 44,
        };
        let a = vec![
            stamped(0, 1, attempt(0, 0)),
            stamped(1, 1, attempt(1, 0)),
            stamped(2, 2, EventKind::QuorumResolve { valid: 2, required: 1, met: true }),
        ];
        let mut b = a.clone();
        b.reverse();
        // Different stamps too — canonical export must not care.
        for (i, s) in b.iter_mut().enumerate() {
            s.t = 100 + i as u64;
        }
        assert_eq!(to_jsonl(&a, ClockMode::Logical), to_jsonl(&b, ClockMode::Logical));
    }

    #[test]
    fn emission_order_keeps_everything_with_real_stamps() {
        let events = vec![
            stamped(17, 1, EventKind::QueueWait { ticks: 3 }),
            stamped(29, 1, EventKind::SessionCost { generated_tokens: 5, work_units: 9 }),
        ];
        let jsonl = to_jsonl(&events, ClockMode::Wall);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"t\":17"));
        assert!(lines[0].contains("\"ticks\":3"));
        assert!(lines[1].contains("\"t\":29"));
        assert!(lines[1].contains("\"generated_tokens\":5"));
    }

    #[test]
    fn every_kind_renders_its_payload() {
        let kinds = [
            EventKind::QueueWait { ticks: 1 },
            EventKind::FitDedupHit,
            EventKind::SessionCost { generated_tokens: 2, work_units: 3 },
            EventKind::ContextFit { prompt_tokens: 4, work_units: 5 },
            EventKind::ContextJoin,
            EventKind::Attempt {
                sample: 1,
                attempt: 2,
                outcome: AttemptClass::Defective,
                defects: 3,
                generated_tokens: 6,
                work_units: 7,
            },
            EventKind::Retry { sample: 1, attempt: 2 },
            EventKind::Defect { sample: 1, attempt: 2, class: 4, fatal: true },
            EventKind::PanicIsolated { sample: 1, attempt: 2 },
            EventKind::QuorumResolve { valid: 1, required: 2, met: false },
            EventKind::Fallback,
            EventKind::QuotaExhausted { client: 4 },
            EventKind::Shed { priority: 1 },
            EventKind::Backoff { sample: 1, attempt: 2, delay: 4 },
            EventKind::QueueFull,
            EventKind::BreakerTrip { trips: 1 },
            EventKind::BreakerClose { trips: 1 },
            EventKind::BreakerReject,
            EventKind::CacheHit,
            EventKind::CacheMiss,
            EventKind::CacheRefit { appended: 8, epoch: 1 },
            EventKind::CacheEvict { evictions: 2 },
        ];
        for kind in kinds {
            let line = body(&TraceEvent { req: 0xabc, ctx: 0xdef, kind });
            assert!(line.contains(&format!("\"kind\":\"{}\"", kind.name())), "{line}");
            assert!(line.starts_with("\"req\":\"0000000000000abc\""), "{line}");
        }
        let defect = body(&TraceEvent {
            req: 0,
            ctx: 0,
            kind: EventKind::Defect { sample: 1, attempt: 2, class: 4, fatal: true },
        });
        assert!(defect.contains("\"class\":4,\"fatal\":true"), "{defect}");
    }

    mod spans {
        use super::super::*;
        use crate::span::SpanKind;

        fn half(t: u64, span: SpanEvent) -> StampedSpan {
            StampedSpan { t, wall: t * 7, span }
        }

        #[test]
        fn canonical_drops_scheduler_scoped_spans_and_restamps() {
            let halves = vec![
                half(4, SpanEvent::open_with_id(9, 0, SpanKind::QueueWait)),
                half(5, SpanEvent::close_with_id(9, 0, SpanKind::QueueWait)),
                half(6, SpanEvent::open(2, SpanKind::Request)),
                half(8, SpanEvent::close(2, SpanKind::Request)),
            ];
            let jsonl = spans_to_jsonl(&halves, ClockMode::Logical);
            let lines: Vec<&str> = jsonl.lines().collect();
            assert_eq!(lines.len(), 2, "queue_wait halves are excluded: {jsonl}");
            assert!(lines[0].starts_with("{\"t\":0,"), "{jsonl}");
            assert!(lines[0].contains("\"phase\":\"open\""), "{jsonl}");
            assert!(lines[1].contains("\"phase\":\"close\""), "{jsonl}");
            assert!(!jsonl.contains("\"wall\""), "canonical omits the sidecar stamp");
        }

        #[test]
        fn canonical_spans_are_invariant_to_emission_order() {
            let attempt = SpanKind::Attempt { sample: 1, attempt: 0 };
            let a = vec![
                half(0, SpanEvent::open(3, SpanKind::Request)),
                half(1, SpanEvent::open(3, attempt)),
                half(2, SpanEvent::close(3, attempt)),
                half(3, SpanEvent::close(3, SpanKind::Request)),
            ];
            let mut b = a.clone();
            b.reverse();
            for (i, s) in b.iter_mut().enumerate() {
                s.t = 50 + i as u64;
                s.wall = 5000 + i as u64;
            }
            assert_eq!(
                spans_to_jsonl(&a, ClockMode::Logical),
                spans_to_jsonl(&b, ClockMode::Logical)
            );
        }

        #[test]
        fn emission_order_keeps_both_stamps() {
            let halves = vec![half(3, SpanEvent::open(1, SpanKind::Quorum))];
            let jsonl = spans_to_jsonl(&halves, ClockMode::Wall);
            assert!(jsonl.starts_with("{\"t\":3,\"wall\":21,"), "{jsonl}");
            assert!(jsonl.contains("\"kind\":\"quorum\""), "{jsonl}");
        }

        #[test]
        fn every_span_kind_renders_its_payload() {
            let kinds = [
                SpanKind::Request,
                SpanKind::ContextFit,
                SpanKind::Attempt { sample: 1, attempt: 2 },
                SpanKind::Draw { sample: 1, attempt: 2 },
                SpanKind::Retry { sample: 1, attempt: 2 },
                SpanKind::Backoff { sample: 1, attempt: 2 },
                SpanKind::Quorum,
                SpanKind::Fallback,
                SpanKind::Shed,
                SpanKind::QueueWait,
                SpanKind::CacheLookup,
                SpanKind::Session,
            ];
            for kind in kinds {
                let line = span_body(&SpanEvent::open(0xabc, kind));
                assert!(line.contains(&format!("\"kind\":\"{}\"", kind.name())), "{line}");
                assert!(line.contains("\"req\":\"0000000000000abc\""), "{line}");
                if kind.coords() != (0, 0) {
                    assert!(line.contains("\"sample\":1,\"attempt\":2"), "{line}");
                }
            }
        }
    }
}
