//! Pluggable time sources for trace timestamps.
//!
//! Forecast paths are forbidden from reading ambient time (the
//! `no-wallclock` invariant), so observability cannot simply call
//! `Instant::now` wherever it wants a timestamp. Instead, every
//! timestamp comes from a [`Clock`]:
//!
//! - [`LogicalClock`] — a deterministic atomic tick counter. The default
//!   everywhere tests and reproducibility matter: identical runs produce
//!   identical tick streams, so traces can be compared byte-for-byte.
//! - [`WallClock`] — elapsed nanoseconds since construction. For humans
//!   profiling a live run; explicitly *not* deterministic. This is the
//!   one sanctioned `Instant::now` outside the bench harness, carried by
//!   a justified `mc-lint.allow` entry.

use mc_sync::atomic::{AtomicU64, Ordering};

/// A monotone timestamp source.
pub trait Clock: Send + Sync {
    /// The next timestamp: logical ticks or elapsed wall nanoseconds.
    fn now(&self) -> u64;
}

/// Deterministic ticks: every call returns the next integer.
///
/// Built on the [`mc_sync`] atomics, so a `--cfg loom` build explores its
/// interleavings like any other serve-path state.
#[derive(Debug, Default)]
pub struct LogicalClock {
    tick: AtomicU64,
}

impl LogicalClock {
    /// A clock starting at tick zero.
    pub const fn new() -> Self {
        Self { tick: AtomicU64::new(0) }
    }

    /// The current tick count without advancing the clock — how many
    /// timestamps have been minted so far. Budget checks (e.g. decode
    /// deadlines) read this to measure spent ticks without perturbing
    /// the tick stream.
    pub fn reading(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }
}

impl Clock for LogicalClock {
    fn now(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }
}

/// Elapsed wall-clock nanoseconds since the clock was started.
///
/// Timestamps from this clock are *not* reproducible across runs; use it
/// for live profiling, never in tests that compare traces.
#[derive(Debug)]
pub struct WallClock {
    origin: std::time::Instant,
}

impl WallClock {
    /// A clock whose epoch is the moment of this call.
    pub fn start() -> Self {
        Self { origin: std::time::Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::start()
    }
}

impl Clock for WallClock {
    fn now(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_clock_ticks_deterministically() {
        let clock = LogicalClock::new();
        assert_eq!(clock.now(), 0);
        assert_eq!(clock.now(), 1);
        assert_eq!(clock.now(), 2);
    }

    #[test]
    fn reading_observes_without_advancing() {
        let clock = LogicalClock::new();
        assert_eq!(clock.reading(), 0);
        clock.now();
        clock.now();
        assert_eq!(clock.reading(), 2);
        assert_eq!(clock.reading(), 2, "reading is a pure observation");
        assert_eq!(clock.now(), 2, "the tick stream is unperturbed");
    }

    #[test]
    fn logical_clock_never_repeats_across_threads() {
        let clock = LogicalClock::new();
        let mut all: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| (0..100).map(|_| clock.now()).collect::<Vec<_>>()))
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("clock thread")).collect()
        });
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400, "every tick is unique");
        assert_eq!(clock.now(), 400);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let clock = WallClock::start();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }
}
