//! Regenerates Table I (datasets) and Table II (parameters).

fn main() {
    mc_bench::tables::table1_datasets()
        .emit(mc_bench::RESULTS_DIR, "table1.md")
        .expect("write results");
    mc_bench::tables::table2_parameters()
        .emit(mc_bench::RESULTS_DIR, "table2.md")
        .expect("write results");
}
