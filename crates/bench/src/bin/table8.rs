//! Regenerates Table VIII — increasing SAX segment length (3, 6, 9) on
//! the Gas Rate CO2 dimension.

fn main() {
    mc_bench::tables::table8_segment_sweep(&[3, 6, 9], 5)
        .expect("experiment")
        .emit(mc_bench::RESULTS_DIR, "table8.md")
        .expect("write results");
}
