//! Regenerates Table IV — forecasting RMSE for the Gas Rate dataset.

fn main() {
    mc_bench::tables::table4_gas_rate(5)
        .expect("experiment")
        .emit(mc_bench::RESULTS_DIR, "table4.md")
        .expect("write results");
}
