//! Regenerates Table III — LLM model comparison (LLaMA2-7B vs Phi-2
//! stand-ins) on Gas Rate with MultiCast (VI).

fn main() {
    mc_bench::tables::table3_model_comparison(5)
        .expect("experiment")
        .emit(mc_bench::RESULTS_DIR, "table3.md")
        .expect("write results");
}
