//! Regenerates Table V — forecasting RMSE for the Electricity dataset.

fn main() {
    mc_bench::tables::table5_electricity(5)
        .expect("experiment")
        .emit(mc_bench::RESULTS_DIR, "table5.md")
        .expect("write results");
}
