//! Quantitative evaluation of the future-work tasks (beyond the paper),
//! as the `tasks_eval` scenario: the zero-shot imputation / anomaly /
//! change-point machinery of `mc-tasks`, measured on seeded synthetic
//! workloads with known ground truth. Writes `results/tasks_eval_*.md`.

use mc_spec::cli::Cli;
use mc_spec::{Runner, ScenarioKind};

fn main() {
    let cli = Cli::from_env();
    cli.finish().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    Runner::default().run_kind(ScenarioKind::TasksEval).expect("tasks_eval scenario");
}
