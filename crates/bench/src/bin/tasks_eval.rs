//! Quantitative evaluation of the future-work tasks (beyond the paper):
//! the zero-shot imputation / anomaly / change-point machinery of
//! `mc-tasks`, measured on seeded synthetic workloads with known ground
//! truth. Writes `results/tasks_eval.md`.
//!
//! - **Anomaly detection**: precision/recall over injected spikes on the
//!   Gas Rate CO2 dimension (a flag within ±1 of an injection counts);
//! - **Imputation**: RMSE inside masked windows of growing length,
//!   zero-shot vs linear interpolation;
//! - **Change points**: localization error on synthetic regime shifts.

use mc_bench::report::{fmt_metric, Table};
use mc_bench::RESULTS_DIR;
use mc_datasets::PaperDataset;
use mc_tasks::imputation::linear_interpolate;
use mc_tasks::{AnomalyDetector, ChangePointDetector, Imputer};

fn main() {
    anomaly_eval();
    imputation_eval();
    changepoint_eval();
}

fn anomaly_eval() {
    let series = PaperDataset::GasRate.load();
    let base = series.column(1).expect("CO2 dimension").to_vec();
    let amplitude = {
        let (mn, mx) = base.iter().fold((f64::MAX, f64::MIN), |(a, b), &v| (a.min(v), b.max(v)));
        mx - mn
    };
    let mut t = Table::new(
        "Tasks A — zero-shot anomaly detection (Gas Rate CO2, injected spikes)",
        &["Spike size (x range)", "Injected", "Hits", "Precision", "Recall"],
    );
    let injections = [60usize, 120, 200, 260];
    for &scale in &[0.5, 0.8, 1.2] {
        let mut xs = base.clone();
        for (k, &at) in injections.iter().enumerate() {
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            xs[at] += sign * scale * amplitude;
        }
        let report = AnomalyDetector::default().detect(&xs).expect("detect");
        let hit = |at: usize| report.anomalies.iter().any(|&i| (i as i64 - at as i64).abs() <= 1);
        let hits = injections.iter().filter(|&&at| hit(at)).count();
        // A flagged index is a true positive if it is within ±1 of any
        // injection (the point after a spike is legitimately surprising).
        let tp = report
            .anomalies
            .iter()
            .filter(|&&i| injections.iter().any(|&at| (i as i64 - at as i64).abs() <= 1))
            .count();
        let precision = if report.anomalies.is_empty() {
            1.0
        } else {
            tp as f64 / report.anomalies.len() as f64
        };
        let recall = hits as f64 / injections.len() as f64;
        t.row(vec![
            format!("{scale}"),
            injections.len().to_string(),
            hits.to_string(),
            fmt_metric(precision),
            fmt_metric(recall),
        ]);
    }
    t.emit(RESULTS_DIR, "tasks_eval_anomaly.md").expect("write");
}

fn imputation_eval() {
    let series = PaperDataset::GasRate.load();
    let truth = series.column(1).expect("CO2 dimension").to_vec();
    let mut t = Table::new(
        "Tasks B — zero-shot imputation vs linear interpolation (Gas Rate CO2)",
        &["Gap length", "Zero-shot RMSE", "Linear RMSE"],
    );
    for &gap in &[4usize, 8, 16, 24] {
        let start = 180;
        let mut masked = truth.clone();
        for v in &mut masked[start..start + gap] {
            *v = f64::NAN;
        }
        let imputed = Imputer::default().impute(&masked).expect("impute");
        let linear = linear_interpolate(&masked);
        let score = |candidate: &[f64]| -> f64 {
            let acc: f64 = (start..start + gap).map(|i| (candidate[i] - truth[i]).powi(2)).sum();
            (acc / gap as f64).sqrt()
        };
        t.row(vec![gap.to_string(), fmt_metric(score(&imputed)), fmt_metric(score(&linear))]);
    }
    t.emit(RESULTS_DIR, "tasks_eval_imputation.md").expect("write");
}

fn changepoint_eval() {
    let mut t = Table::new(
        "Tasks C — zero-shot change-point localization (synthetic regime shifts)",
        &["True change at", "Detected", "Localization error"],
    );
    for &at in &[80usize, 120, 160] {
        let n = at + 80;
        let xs: Vec<f64> = (0..n)
            .map(|i| {
                if i < at {
                    50.0 + 10.0 * (i as f64 * std::f64::consts::PI / 8.0).sin()
                } else {
                    25.0 + 4.0 * (i as f64 * std::f64::consts::PI / 3.0).sin()
                }
            })
            .collect();
        let cps = ChangePointDetector::default().detect(&xs).expect("detect");
        let (detected, err) = cps
            .iter()
            .map(|&c| (c, (c as i64 - at as i64).unsigned_abs() as usize))
            .min_by_key(|&(_, e)| e)
            .map_or_else(|| ("—".into(), "missed".into()), |(c, e)| (c.to_string(), e.to_string()));
        t.row(vec![at.to_string(), detected, err]);
    }
    t.emit(RESULTS_DIR, "tasks_eval_changepoint.md").expect("write");
}
