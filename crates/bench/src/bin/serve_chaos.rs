//! Chaos harness for the overload-resilient serve scheduler.
//!
//! Drives a saturating, fault-injected request load through a
//! [`ServeHandle`] with every overload knob engaged — admission shedding
//! (`--queue-cap`), submit backpressure, per-client quotas (profile
//! `quota=`), per-preset circuit breakers, deadline budgets
//! (`--deadline-tokens`) and backoff — and reports how the batch
//! degraded: shed / queue-full / quota / breaker rejection rates,
//! deadline-expiry (timeout) rates, completion and fallback rates, and
//! p50/p99 of the per-request generated-token spend (the deterministic
//! latency proxy: the serve path runs on the logical clock, so token
//! spend *is* the request's service time).
//!
//! The fault load itself is declarative: `--faults rate=0.4,seed=7,...`
//! is the shared [`FaultProfile`] grammar, the same format
//! `backtest_eval --faults --profile ...` and the test-suite drills
//! parse — one chaos vocabulary across every entry point.
//!
//! Two invariants are asserted, not just reported:
//!
//! - **Zero worker stalls** — every submitted id collects to a typed
//!   outcome; a lost settlement would hang the flush and fail the run.
//! - **Scheduling-independent traces** — the canonical JSONL export of
//!   the same admitted load is byte-identical across worker counts, chaos
//!   and all (deterministic shedding + deterministic deadlines).
//!
//! Writes `results/serve_chaos.md`. `--fast` shrinks the load for CI.

use std::sync::Arc;

use mc_bench::report::Table;
use mc_bench::{RESULTS_DIR, TEST_FRACTION};
use mc_datasets::PaperDataset;
use mc_obs::Observer;
use mc_tslib::error::TsError;
use mc_tslib::split::holdout_split;
use multicast_core::robust::{DefectClass, FaultProfile};
use multicast_core::serve::{serve_all_observed, ForecastRequest, ServeConfig, ServeHandle};
use multicast_core::{BreakerPolicy, ForecastConfig, MuxMethod, Priority};

/// Value at quantile `q` of an ascending-sorted slice (nearest-rank).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn pct(part: usize, total: usize) -> String {
    if total == 0 {
        return "0%".into();
    }
    format!("{:.1}%", 100.0 * part as f64 / total as f64)
}

/// The chaos load: `waves x per_wave` requests over one shared history,
/// cycling priorities and two clients, every draw filtered through the
/// fault profile. Deterministic by construction — seeds derive from the
/// request index alone.
fn chaos_load(
    waves: usize,
    per_wave: usize,
    profile: FaultProfile,
    deadline: Option<u64>,
) -> Vec<Vec<ForecastRequest>> {
    let series = PaperDataset::GasRate.load();
    let (train, test) = holdout_split(&series, TEST_FRACTION).expect("split");
    let horizon = test.len().min(8);
    (0..waves)
        .map(|w| {
            (0..per_wave)
                .map(|i| {
                    let n = w * per_wave + i;
                    let mut config =
                        ForecastConfig { samples: 3, seed: 9000 + n as u64, ..Default::default() };
                    config.robust.deadline_tokens = deadline;
                    config.robust.backoff_base = 2;
                    let mut request = ForecastRequest::digit(
                        train.clone(),
                        horizon,
                        MuxMethod::ValueInterleave,
                        config,
                    );
                    // Decorrelate corruption decisions across requests:
                    // FaultSpec hashes (seed, sample, attempt), so a shared
                    // seed would corrupt every request identically.
                    request.source =
                        FaultProfile { seed: profile.seed.wrapping_add(n as u64), ..profile }
                            .source();
                    request.priority = match n % 3 {
                        0 => Priority::Batch,
                        1 => Priority::Normal,
                        _ => Priority::Interactive,
                    };
                    request.client = (n % 2) as u32;
                    request
                })
                .collect()
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .map(|i| args.get(i + 1).unwrap_or_else(|| panic!("{name} needs a value")).clone())
    };
    let fast = args.iter().any(|a| a == "--fast");
    let profile = flag("--faults").map_or_else(
        || FaultProfile::parse("rate=0.3,seed=77,latency=8,quota=2500").expect("default"),
        |spec| FaultProfile::parse(&spec).expect("--faults"),
    );
    let queue_cap: usize =
        flag("--queue-cap").map_or(if fast { 3 } else { 6 }, |v| v.parse().expect("--queue-cap"));
    let deadline: u64 =
        flag("--deadline-tokens").map_or(240, |v| v.parse().expect("--deadline-tokens"));
    let workers: usize = flag("--workers").map_or(8, |v| v.parse().expect("--workers"));
    let (waves, per_wave) = if fast { (2, 5) } else { (3, 8) };

    // The injected panics below are intentional; silence their backtraces.
    if profile.panic_sample.is_some() {
        std::panic::set_hook(Box::new(|_| {}));
    }

    let config = ServeConfig {
        workers,
        queue_cap: Some(queue_cap),
        submit_cap: Some(queue_cap + 2),
        quota_tokens: profile.quota_tokens,
        breaker: Some(BreakerPolicy::default()),
    };
    let load = chaos_load(waves, per_wave, profile, Some(deadline));
    let submitted: usize = load.iter().map(Vec::len).sum();

    let obs = Arc::new(Observer::logical());
    let mut handle = ServeHandle::with_recorder(config, obs.clone());
    let mut ids = Vec::with_capacity(submitted);
    for wave in &load {
        for request in wave {
            ids.push(handle.submit(request.clone()));
        }
        handle.flush();
    }

    // Zero worker stalls: every id resolves to a typed outcome. A lost
    // settlement would have hung flush() before we ever got here; an
    // unknown id would return a typed error and fail this loop.
    let outcomes: Vec<_> =
        ids.iter().map(|&id| handle.collect(id).expect("every submitted id collects")).collect();
    assert_eq!(outcomes.len(), submitted, "zero worker stalls: all ids resolved");

    let mut shed = 0usize;
    let mut queue_full = 0usize;
    let mut quota = 0usize;
    let mut breaker = 0usize;
    let mut completed = 0usize;
    let mut fallbacks = 0usize;
    let mut expiries = 0usize;
    let mut spends: Vec<u64> = Vec::new();
    for outcome in &outcomes {
        match &outcome.forecast {
            Ok(_) => {
                completed += 1;
                spends.push(outcome.cost.generated_tokens);
                if let Some(report) = &outcome.report {
                    if report.degraded() {
                        fallbacks += 1;
                    }
                    expiries += report.defect_count(DefectClass::DeadlineExpired);
                }
            }
            Err(TsError::Overloaded { kind, .. }) => match *kind {
                "shed" => shed += 1,
                "queue-full" => queue_full += 1,
                "quota" => quota += 1,
                "breaker-open" => breaker += 1,
                other => panic!("unexpected overload kind `{other}`"),
            },
            Err(e) => panic!("chaos run must degrade, not error: {e}"),
        }
    }
    spends.sort_unstable();

    // Scheduling independence under chaos: one admitted wave, canonical
    // trace byte-identical across worker counts.
    let reference_wave = &load[0];
    let trace_at = |w: usize| {
        let obs = Arc::new(Observer::logical());
        let cfg = ServeConfig { workers: w, ..config };
        serve_all_observed(reference_wave, &cfg, obs.clone());
        obs.to_jsonl()
    };
    let reference = trace_at(1);
    for w in [2usize, workers.max(2)] {
        assert_eq!(trace_at(w), reference, "{w} workers changed the canonical chaos trace");
    }

    let mut t = Table::new(
        format!(
            "Serve chaos — {submitted} requests ({waves} flushes), faults `{profile}`, \
             queue cap {queue_cap}, deadline {deadline} tokens, {workers} workers"
        ),
        &["outcome", "count", "rate"],
    );
    t.row(vec!["completed".into(), completed.to_string(), pct(completed, submitted)]);
    t.row(vec!["  of which fallback".into(), fallbacks.to_string(), pct(fallbacks, submitted)]);
    t.row(vec!["shed (admission)".into(), shed.to_string(), pct(shed, submitted)]);
    t.row(vec!["queue-full (submit)".into(), queue_full.to_string(), pct(queue_full, submitted)]);
    t.row(vec!["quota-rejected".into(), quota.to_string(), pct(quota, submitted)]);
    t.row(vec!["breaker-rejected".into(), breaker.to_string(), pct(breaker, submitted)]);
    t.row(vec!["deadline expiries (samples)".into(), expiries.to_string(), "-".into()]);
    t.row(vec![
        "p50 spend (generated tokens)".into(),
        percentile(&spends, 0.50).to_string(),
        "-".into(),
    ]);
    t.row(vec![
        "p99 spend (generated tokens)".into(),
        percentile(&spends, 0.99).to_string(),
        "-".into(),
    ]);
    t.row(vec!["worker stalls".into(), "0".into(), "asserted".into()]);
    t.row(vec![
        "trace determinism (1/2/N workers)".into(),
        format!("{} events", reference.lines().count()),
        "byte-identical".into(),
    ]);
    t.emit(RESULTS_DIR, "serve_chaos.md").expect("write results");

    assert_eq!(
        completed + shed + queue_full + quota + breaker,
        submitted,
        "every request accounted for exactly once"
    );
}
