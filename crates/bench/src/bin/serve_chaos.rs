//! Chaos harness for the overload-resilient serve scheduler.
//!
//! A thin wrapper over the `serve_chaos` scenario: a saturating,
//! fault-injected request load through a serve handle with every
//! overload knob engaged — admission shedding (`--queue-cap`), submit
//! backpressure, per-client quotas (profile `quota=`), per-preset
//! circuit breakers, deadline budgets (`--deadline-tokens`) and backoff.
//! The runner reports how the batch degraded and *asserts* (not just
//! reports) zero worker stalls and scheduling-independent traces.
//!
//! The fault load is declarative: `--faults rate=0.4,seed=7,...` is the
//! shared `FaultProfile` grammar, the same format
//! `backtest_eval --faults --profile ...` and the test-suite drills
//! parse — one chaos vocabulary across every entry point.
//!
//! Writes `results/serve_chaos.md` and `results/BENCH_serve_chaos.json`
//! (schedule-independent counters and p50/p99 token spends; the file is
//! byte-identical across worker counts). `--fast` shrinks the load.

use mc_spec::cli::Cli;
use mc_spec::{RunOptions, Runner, ScenarioKind, ScenarioSpec};
use multicast_core::robust::FaultProfile;

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("{message}");
    std::process::exit(2);
}

fn main() {
    let mut cli = Cli::from_env();
    let fast = cli.flag("--fast");
    let faults = cli.value("--faults").unwrap_or_else(|e| fail(e));
    let mut spec = ScenarioSpec::new(ScenarioKind::ServeChaos);
    if let Some(raw) = faults {
        spec.faults = Some(FaultProfile::parse(&raw).unwrap_or_else(|e| fail(e)));
    }
    if let Some(v) = cli.value("--queue-cap").unwrap_or_else(|e| fail(e)) {
        spec.serve.queue_cap =
            Some(v.parse().unwrap_or_else(|e| fail(format!("--queue-cap: {e}"))));
    }
    if let Some(v) = cli.value("--deadline-tokens").unwrap_or_else(|e| fail(e)) {
        spec.robust.deadline_tokens =
            Some(v.parse().unwrap_or_else(|e| fail(format!("--deadline-tokens: {e}"))));
    }
    if let Some(v) = cli.value("--workers").unwrap_or_else(|e| fail(e)) {
        spec.serve.workers = Some(v.parse().unwrap_or_else(|e| fail(format!("--workers: {e}"))));
    }
    cli.finish().unwrap_or_else(|e| fail(e));

    // The injected panics are intentional; silence their backtraces.
    if spec.faults.is_some_and(|f| f.panic_sample.is_some()) {
        std::panic::set_hook(Box::new(|_| {}));
    }

    let opts = RunOptions { fast, bench_dir: Some("results".into()), ..RunOptions::default() };
    let summary = Runner::new(opts).run(&spec).unwrap_or_else(|e| fail(e));
    for note in &summary.notes {
        println!("{note}");
    }
}
