//! Regenerates Table IX — increasing SAX alphabet size (5, 10, 20; the
//! digital alphabet caps at 10, reproducing the paper's N/A cell).

fn main() {
    mc_bench::tables::table9_alphabet_sweep(&[5, 10, 20], 5)
        .expect("experiment")
        .emit(mc_bench::RESULTS_DIR, "table9.md")
        .expect("write results");
}
