//! Regenerates Figures 2–8 as SVG files under `results/`.
//!
//! Usage: `figures [fig2|fig3|...|fig8]` — no argument renders all.

use mc_spec::cli::Cli;
use mc_spec::{RunOptions, Runner, ScenarioKind};

fn main() {
    let mut cli = Cli::from_env();
    let figure = cli.positional();
    if let Err(e) = cli.finish() {
        eprintln!("{e}");
        std::process::exit(2);
    }
    if let Some(f) = figure.as_deref() {
        if !matches!(f, "all" | "fig2" | "fig3" | "fig4" | "fig5" | "fig6" | "fig7" | "fig8") {
            eprintln!("unknown figure `{f}` (expected fig2..fig8 or all)");
            std::process::exit(2);
        }
    }
    let runner = Runner::new(RunOptions { figure, ..RunOptions::default() });
    let summary = runner.run_kind(ScenarioKind::Figures).expect("figures");
    for note in &summary.notes {
        println!("{note}");
    }
}
