//! Regenerates Figures 2–8 as SVG files under `results/`.
//!
//! Usage: `figures [fig2|fig3|...|fig8]` — no argument renders all.

use std::path::Path;

fn main() {
    let arg = std::env::args().nth(1);
    let dir = Path::new(mc_bench::RESULTS_DIR);
    let samples = 5;
    let written = match arg.as_deref() {
        None | Some("all") => mc_bench::figs::all_figures(dir, samples).expect("figures"),
        Some("fig2") => mc_bench::figs::fig2(dir, samples).expect("fig2"),
        Some("fig3") => vec![mc_bench::figs::fig3(dir, samples).expect("fig3")],
        Some("fig4") => vec![mc_bench::figs::fig4(dir, samples).expect("fig4")],
        Some("fig5") => vec![mc_bench::figs::fig5(dir, samples).expect("fig5")],
        Some("fig6") => vec![mc_bench::figs::fig6(dir, samples).expect("fig6")],
        Some("fig7") => vec![mc_bench::figs::fig7(dir, samples).expect("fig7")],
        Some("fig8") => vec![mc_bench::figs::fig8(dir, samples).expect("fig8")],
        Some(other) => {
            eprintln!("unknown figure `{other}` (expected fig2..fig8 or all)");
            std::process::exit(2);
        }
    };
    for p in written {
        println!("wrote {}", p.display());
    }
}
