//! Paper tables I–IX, one bin.
//!
//! ```text
//! tables [1-9|all] [--fast]
//! ```
//!
//! No argument (or `all`) regenerates every table; a digit regenerates
//! just that table. Table 1 also renders Table II (dataset inventory and
//! parameters travel together).

use mc_spec::cli::Cli;
use mc_spec::{RunOptions, Runner, ScenarioKind};

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("{message}");
    std::process::exit(2);
}

fn main() {
    let mut cli = Cli::from_env();
    let fast = cli.flag("--fast");
    let which = cli.positional();
    cli.finish().unwrap_or_else(|e| fail(e));

    let kinds: Vec<ScenarioKind> = match which.as_deref() {
        None | Some("all") => {
            // Table 1 covers Table 2; the rest follow in paper order.
            std::iter::once(1).chain(3..=9).map(ScenarioKind::Table).collect()
        }
        Some(n) => match n.parse::<u8>() {
            Ok(n @ 1..=9) => vec![ScenarioKind::Table(n)],
            _ => fail(format!("unknown table `{n}` (expected 1-9 or all)")),
        },
    };
    let runner = Runner::new(RunOptions { fast, ..RunOptions::default() });
    for kind in kinds {
        runner.run_kind(kind).unwrap_or_else(|e| fail(format!("{kind:?}: {e}")));
    }
}
