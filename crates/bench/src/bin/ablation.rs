//! Ablation study (beyond the paper): design choices called out in
//! `DESIGN.md` §5, as the `ablation` scenario —
//!
//! 1. **Backend family** — every preset × every multiplexing scheme;
//! 2. **Sampler temperature** — accuracy across temperatures;
//! 3. **Digit budget** — digits per value vs RMSE and prompt tokens;
//! 4. **Extended classical grid** — VAR / SES / Holt / Holt-Winters.
//!
//! Writes `results/ablation_*.md`. `--fast` runs with one sample.

use mc_spec::cli::Cli;
use mc_spec::{RunOptions, Runner, ScenarioKind};

fn main() {
    let mut cli = Cli::from_env();
    let fast = cli.flag("--fast");
    cli.finish().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let opts = RunOptions { fast, ..RunOptions::default() };
    Runner::new(opts).run_kind(ScenarioKind::Ablation).expect("ablation scenario");
}
