//! Ablation study (beyond the paper): design choices called out in
//! `DESIGN.md` §5.
//!
//! 1. **Backend family** — every preset (Large / Small / Suffix) × every
//!    multiplexing scheme on Gas Rate;
//! 2. **Aggregation rule** — median vs mean over samples (the paper uses
//!    the median; this quantifies how much that robustness buys);
//! 3. **Sampler temperature** — accuracy across temperatures.

use mc_baselines::{Holt, HoltWinters, Ses, VarForecaster};
use mc_bench::report::{fmt_metric, Table};
use mc_bench::RESULTS_DIR;
use mc_datasets::PaperDataset;
use mc_lm::presets::ModelPreset;
use mc_lm::sampler::SamplerConfig;
use mc_tslib::forecast::{MultivariateForecaster, PerDimension};
use mc_tslib::metrics::rmse;
use mc_tslib::split::holdout_split;
use multicast_core::{ForecastConfig, MultiCastForecaster, MuxMethod};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let samples = if fast { 1 } else { 5 };
    let series = PaperDataset::GasRate.load();
    let (train, test) = holdout_split(&series, mc_bench::TEST_FRACTION).expect("split");

    // 1. Backend × mux grid.
    let mut grid = Table::new(
        "Ablation A — backend preset x multiplexing (Gas Rate, mean RMSE over dims)",
        &["Backend", "DI", "VI", "VC"],
    );
    for preset in ModelPreset::ALL {
        let mut row = vec![preset.display_name().to_string()];
        for mux in MuxMethod::ALL {
            let cfg = ForecastConfig { samples, preset, ..Default::default() };
            let mut f = MultiCastForecaster::new(mux, cfg);
            let fc = f.forecast(&train, test.len()).expect("forecast");
            let mean_rmse: f64 = (0..2)
                .map(|d| rmse(test.column(d).unwrap(), fc.column(d).unwrap()).unwrap())
                .sum::<f64>()
                / 2.0;
            row.push(fmt_metric(mean_rmse));
        }
        grid.row(row);
    }
    grid.emit(RESULTS_DIR, "ablation_backend_mux.md").expect("write");

    // 2. Temperature sweep (VI, Large).
    let mut temp = Table::new(
        "Ablation B — sampler temperature (Gas Rate, MultiCast VI, mean RMSE)",
        &["Temperature", "RMSE"],
    );
    for t in [0.2, 0.5, 0.7, 1.0, 1.5] {
        let cfg = ForecastConfig {
            samples,
            sampler: SamplerConfig { temperature: t, ..SamplerConfig::default() },
            ..Default::default()
        };
        let mut f = MultiCastForecaster::new(MuxMethod::ValueInterleave, cfg);
        let fc = f.forecast(&train, test.len()).expect("forecast");
        let mean_rmse: f64 = (0..2)
            .map(|d| rmse(test.column(d).unwrap(), fc.column(d).unwrap()).unwrap())
            .sum::<f64>()
            / 2.0;
        temp.row(vec![format!("{t}"), fmt_metric(mean_rmse)]);
    }
    temp.emit(RESULTS_DIR, "ablation_temperature.md").expect("write");

    // 3. Digit budget sweep (VI, Large).
    let mut digits = Table::new(
        "Ablation C — digits per value b (Gas Rate, MultiCast VI, mean RMSE / prompt tokens)",
        &["b", "RMSE", "Tokens"],
    );
    for b in [2u32, 3, 4] {
        let cfg = ForecastConfig { samples, digits: b, ..Default::default() };
        let mut f = MultiCastForecaster::new(MuxMethod::ValueInterleave, cfg);
        let fc = f.forecast(&train, test.len()).expect("forecast");
        let mean_rmse: f64 = (0..2)
            .map(|d| rmse(test.column(d).unwrap(), fc.column(d).unwrap()).unwrap())
            .sum::<f64>()
            / 2.0;
        let tokens = f.last_cost.map_or(0, |c| c.total_tokens());
        digits.row(vec![b.to_string(), fmt_metric(mean_rmse), tokens.to_string()]);
    }
    digits.emit(RESULTS_DIR, "ablation_digits.md").expect("write");

    // 4. Extended classical grid: methods beyond the paper's roster, on
    // every dataset (mean RMSE across dimensions). Separates "using
    // multivariate structure helps" (VAR) from "LLMs help" (MultiCast).
    let mut grid = Table::new(
        "Ablation E — extended classical comparison (mean RMSE across dimensions)",
        &["Method", "Gas Rate", "Electricity", "Weather"],
    );
    type Entry = (&'static str, Box<dyn Fn() -> Box<dyn MultivariateForecaster>>);
    let sample_count = samples;
    let entries: Vec<Entry> = vec![
        (
            "MultiCast (VI)",
            Box::new(move || {
                Box::new(MultiCastForecaster::new(
                    MuxMethod::ValueInterleave,
                    ForecastConfig { samples: sample_count, ..Default::default() },
                ))
            }),
        ),
        ("VAR (AIC order)", Box::new(|| Box::new(VarForecaster::default()))),
        ("SES", Box::new(|| Box::new(PerDimension(Ses { alpha: None })))),
        ("Holt", Box::new(|| Box::new(PerDimension(Holt { alpha: None, beta: None })))),
        ("Holt-Winters (m=12)", Box::new(|| Box::new(PerDimension(HoltWinters::with_period(12))))),
    ];
    for (name, make) in &entries {
        let mut row = vec![name.to_string()];
        for ds in PaperDataset::ALL {
            let series = ds.load();
            let (train, test) = holdout_split(&series, mc_bench::TEST_FRACTION).expect("split");
            let cell = match make().forecast(&train, test.len()) {
                Ok(fc) => {
                    let mean_rmse: f64 = (0..series.dims())
                        .map(|d| rmse(test.column(d).unwrap(), fc.column(d).unwrap()).unwrap())
                        .sum::<f64>()
                        / series.dims() as f64;
                    fmt_metric(mean_rmse)
                }
                Err(e) => format!("err: {e}"),
            };
            row.push(cell);
        }
        grid.row(row);
    }
    grid.emit(RESULTS_DIR, "ablation_extended.md").expect("write");
}
