//! Regenerates Table VI — forecasting RMSE for the Weather dataset.

fn main() {
    mc_bench::tables::table6_weather(5)
        .expect("experiment")
        .emit(mc_bench::RESULTS_DIR, "table6.md")
        .expect("write results");
}
