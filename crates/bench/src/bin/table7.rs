//! Regenerates Table VII — RMSE and execution time for an increasing
//! number of samples (5, 10, 20) on Gas Rate.

fn main() {
    mc_bench::tables::table7_samples_sweep(&[5, 10, 20])
        .expect("experiment")
        .emit(mc_bench::RESULTS_DIR, "table7.md")
        .expect("write results");
}
