//! Tokenization ablation: digit-level (char) vs subword (BPE)
//! serialization, as the `tokenization` scenario.
//!
//! The LLMTime/MultiCast pipelines *force* one-token-per-digit
//! serialization; this experiment measures why. The same in-context
//! backend forecasts the Gas Rate dataset twice — once over char-level
//! tokens, once over BPE tokens trained on the prompt — with everything
//! else identical. Writes `results/ablation_tokenization.md` and
//! `results/BENCH_tokenization.json`.

use mc_spec::cli::Cli;
use mc_spec::{RunOptions, Runner, ScenarioKind};

fn main() {
    let cli = Cli::from_env();
    cli.finish().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let opts = RunOptions { bench_dir: Some("results".into()), ..RunOptions::default() };
    Runner::new(opts).run_kind(ScenarioKind::Tokenization).expect("tokenization scenario");
}
