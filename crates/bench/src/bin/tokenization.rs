//! Tokenization ablation: digit-level (char) vs subword (BPE) serialization.
//!
//! The LLMTime/MultiCast pipelines *force* one-token-per-digit
//! serialization; this experiment measures why. The same in-context
//! backend forecasts the Gas Rate dataset twice — once over char-level
//! tokens, once over BPE tokens trained on the prompt — with everything
//! else identical. Reported per variant: RMSE on both dimensions, tokens
//! consumed, and the token-count variance across same-width values (the
//! chunking-inconsistency measure).
//!
//! Writes `results/ablation_tokenization.md`.

use mc_bench::report::{fmt_metric, Table};
use mc_bench::{RESULTS_DIR, TEST_FRACTION};
use mc_datasets::PaperDataset;
use mc_lm::bpe::BpeTokenizer;
use mc_lm::generate::{generate, GenerateOptions};
use mc_lm::model::observe_all;
use mc_lm::model::LanguageModel;
use mc_lm::ngram::NGramLm;
use mc_lm::sampler::{Sampler, SamplerConfig};
use mc_lm::tokenizer::{CharTokenizer, Tokenizer};
use mc_lm::vocab::Vocab;
use mc_tslib::metrics::rmse;
use mc_tslib::split::holdout_split;
use multicast_core::mux::{Multiplexer, ValueInterleave};
use multicast_core::pipeline::median_aggregate;
use multicast_core::scaling::FixedDigitScaler;

const DIGITS: u32 = 3;
const SAMPLES: usize = 5;

fn main() {
    let series = PaperDataset::GasRate.load();
    let (train, test) = holdout_split(&series, TEST_FRACTION).expect("split");
    let horizon = test.len();
    let dims = train.dims();

    let scaler = FixedDigitScaler::fit(train.columns(), DIGITS, 0.15).expect("scaler");
    let codes: Vec<Vec<u64>> =
        (0..dims).map(|d| scaler.scale_column(d, train.column(d).unwrap()).unwrap()).collect();
    let mux = ValueInterleave;
    let prompt_text = mux.mux(&codes, DIGITS);

    let mut t = Table::new(
        "Ablation D — digit-level vs BPE tokenization (Gas Rate, MultiCast VI)",
        &["Tokenizer", "GasRate RMSE", "CO2 RMSE", "Prompt tokens", "Chunking variance"],
    );

    // --- Char-level (the paper's scheme). ---
    let char_tok = CharTokenizer::numeric();
    let (char_rmse, char_tokens) =
        run_variant(&char_tok, Vocab::numeric().len(), &prompt_text, &scaler, horizon, dims, &test);
    t.row(vec![
        "char (one token per digit)".into(),
        fmt_metric(char_rmse[0]),
        fmt_metric(char_rmse[1]),
        char_tokens.to_string(),
        fmt_metric(chunking_variance(&char_tok, &codes)),
    ]);

    // --- BPE trained on the prompt itself. ---
    let bpe = BpeTokenizer::train(Vocab::numeric(), &prompt_text, 48);
    let (bpe_rmse, bpe_tokens) =
        run_variant(&bpe, bpe.vocab_size(), &prompt_text, &scaler, horizon, dims, &test);
    t.row(vec![
        format!("BPE ({} merges)", bpe.merge_count()),
        fmt_metric(bpe_rmse[0]),
        fmt_metric(bpe_rmse[1]),
        bpe_tokens.to_string(),
        fmt_metric(chunking_variance(&bpe, &codes)),
    ]);

    t.emit(RESULTS_DIR, "ablation_tokenization.md").expect("write");
}

/// Runs the VI forecast pipeline with an arbitrary tokenizer; the decoded
/// *text* is demultiplexed, so the pipeline is tokenizer-agnostic.
fn run_variant(
    tokenizer: &dyn Tokenizer,
    vocab_size: usize,
    prompt_text: &str,
    scaler: &FixedDigitScaler,
    horizon: usize,
    dims: usize,
    test: &mc_tslib::MultivariateSeries,
) -> (Vec<f64>, u64) {
    let mux = ValueInterleave;
    let prompt = tokenizer.encode(prompt_text).expect("prompt encodes");
    let mut decoded_samples = Vec::with_capacity(SAMPLES);
    let mut total_tokens = 0u64;
    for s in 0..SAMPLES {
        let mut model = NGramLm::new(vocab_size, 10, 0.25, "ablation");
        observe_all(&mut model, &prompt);
        let mut sampler = Sampler::new(SamplerConfig {
            temperature: 0.7,
            top_k: None,
            top_p: Some(0.95),
            seed: s as u64,
            epsilon: 0.0,
        });
        // Token-count budget: BPE tokens spell multiple chars, so stop by
        // budget and let the lenient demux take the first `horizon` groups.
        let options = GenerateOptions {
            max_tokens: horizon * (dims * DIGITS as usize + 1) * 2,
            stop_token: None,
            stop_count: 0,
        };
        let out = generate(&mut model, &mut sampler, |_| true, &options);
        let text = tokenizer.decode(&out).expect("generated tokens decode");
        let code_cols = mux.demux(&text, dims, DIGITS, horizon);
        let cols: Vec<Vec<f64>> = code_cols
            .iter()
            .enumerate()
            .map(|(d, col)| scaler.descale_column(d, col).unwrap())
            .collect();
        decoded_samples.push(cols);
        total_tokens += model.cost().total_tokens();
    }
    let median = median_aggregate(&decoded_samples).expect("uniform sample shapes");
    let rmses: Vec<f64> =
        (0..dims).map(|d| rmse(test.column(d).unwrap(), &median[d]).unwrap()).collect();
    (rmses, total_tokens)
}

/// Variance of tokens-per-timestamp across the serialized history: zero
/// for the char scheme (fixed width), positive when BPE chunks values
/// inconsistently.
fn chunking_variance(tokenizer: &dyn Tokenizer, codes: &[Vec<u64>]) -> f64 {
    let mux = ValueInterleave;
    let n = codes[0].len();
    let mut lengths = Vec::with_capacity(n);
    for t in 0..n {
        let one: Vec<Vec<u64>> = codes.iter().map(|c| vec![c[t]]).collect();
        let text = mux.mux(&one, DIGITS);
        lengths.push(tokenizer.encode(&text).expect("encodes").len() as f64);
    }
    let mean = lengths.iter().sum::<f64>() / n as f64;
    lengths.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / n as f64
}
