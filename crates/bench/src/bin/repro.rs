//! Umbrella reproduction binary: regenerates every table (I–IX) and every
//! figure (2–8) of the paper, writing markdown and SVGs under `results/`.
//!
//! `repro --fast` runs all experiments with one sample per forecast
//! (useful for smoke-testing the harness; the paper numbers use the
//! defaults).

use mc_bench::{figs, tables, RESULTS_DIR};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let samples = if fast { 1 } else { 5 };

    println!("# MultiCast reproduction run (samples = {samples})\n");

    tables::table1_datasets().emit(RESULTS_DIR, "table1.md").expect("table1");
    tables::table2_parameters().emit(RESULTS_DIR, "table2.md").expect("table2");
    tables::table3_model_comparison(samples)
        .expect("table3")
        .emit(RESULTS_DIR, "table3.md")
        .expect("table3 write");
    tables::table4_gas_rate(samples)
        .expect("table4")
        .emit(RESULTS_DIR, "table4.md")
        .expect("table4 write");
    tables::table5_electricity(samples)
        .expect("table5")
        .emit(RESULTS_DIR, "table5.md")
        .expect("table5 write");
    tables::table6_weather(samples)
        .expect("table6")
        .emit(RESULTS_DIR, "table6.md")
        .expect("table6 write");
    let sample_sweep: &[usize] = if fast { &[1, 2] } else { &[5, 10, 20] };
    tables::table7_samples_sweep(sample_sweep)
        .expect("table7")
        .emit(RESULTS_DIR, "table7.md")
        .expect("table7 write");
    tables::table8_segment_sweep(&[3, 6, 9], samples)
        .expect("table8")
        .emit(RESULTS_DIR, "table8.md")
        .expect("table8 write");
    tables::table9_alphabet_sweep(&[5, 10, 20], samples)
        .expect("table9")
        .emit(RESULTS_DIR, "table9.md")
        .expect("table9 write");

    println!("Rendering figures 2–8…");
    let written = figs::all_figures(RESULTS_DIR, samples).expect("figures");
    for p in &written {
        println!("wrote {}", p.display());
    }
    println!("\nAll artifacts are under `{RESULTS_DIR}/`.");
}
