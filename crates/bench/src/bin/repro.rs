//! Umbrella reproduction binary: regenerates every table (I–IX) and every
//! figure (2–8) of the paper, writing markdown and SVGs under `results/`.
//!
//! `repro --fast` runs all experiments with one sample per forecast
//! (useful for smoke-testing the harness; the paper numbers use the
//! defaults).

use mc_spec::cli::Cli;
use mc_spec::{RunOptions, Runner, ScenarioKind, RESULTS_DIR};

fn main() {
    let mut cli = Cli::from_env();
    let fast = cli.flag("--fast");
    cli.finish().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let samples = if fast { 1 } else { 5 };

    println!("# MultiCast reproduction run (samples = {samples})\n");

    let runner = Runner::new(RunOptions { fast, ..RunOptions::default() });
    for kind in std::iter::once(1).chain(3..=9).map(ScenarioKind::Table) {
        runner.run_kind(kind).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
    }

    println!("Rendering figures 2–8…");
    let figures = runner.run_kind(ScenarioKind::Figures).expect("figures");
    for note in &figures.notes {
        println!("{note}");
    }
    println!("\nAll artifacts are under `{RESULTS_DIR}/`.");
}
