//! Generic scenario driver: runs any `.spec` file through the engine.
//!
//! ```text
//! scenario <file.spec>... [--fast] [--results-dir DIR] [--bench-dir DIR]
//!          [--figure figN] [--trace PATH] [--spans PATH] [--metrics]
//! ```
//!
//! Each file is parsed as a [`ScenarioSpec`] (unknown keys, duplicate
//! keys and malformed values are typed errors), lowered onto the
//! engine/serve seams and executed. `--bench-dir` additionally writes
//! the scenario's canonical `BENCH_<name>.json` there; `--trace` exports
//! the telemetry scenario's canonical JSONL trace and `--spans` the
//! latency audit's Chrome trace-event (Perfetto) JSON — they are
//! different formats, so pointing both at one path is a typed conflict.

use mc_spec::cli::{Cli, CliError};
use mc_spec::{RunOptions, Runner, ScenarioSpec};

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("{message}");
    std::process::exit(2);
}

fn main() {
    let mut cli = Cli::from_env();
    let fast = cli.flag("--fast");
    let print_metrics = cli.flag("--metrics");
    let results_dir =
        cli.value("--results-dir").unwrap_or_else(|e| fail(e)).unwrap_or_else(|| "results".into());
    let bench_dir = cli.value("--bench-dir").unwrap_or_else(|e| fail(e));
    let figure = cli.value("--figure").unwrap_or_else(|e| fail(e));
    let trace = cli.value("--trace").unwrap_or_else(|e| fail(e));
    let spans = cli.value("--spans").unwrap_or_else(|e| fail(e));
    if let (Some(t), Some(s)) = (&trace, &spans) {
        if t == s {
            fail(CliError::conflict(
                "--trace",
                "--spans",
                format!("both would write `{t}` (JSONL trace vs Chrome trace-event JSON)"),
            ));
        }
    }
    let mut files = Vec::new();
    while let Some(p) = cli.positional() {
        files.push(p);
    }
    cli.finish().unwrap_or_else(|e| fail(e));
    if files.is_empty() {
        fail("usage: scenario <file.spec>... [--fast] [--results-dir DIR] [--bench-dir DIR]");
    }

    let runner = Runner::new(RunOptions {
        fast,
        results_dir: results_dir.into(),
        bench_dir: bench_dir.map(Into::into),
        figure,
        trace_path: trace.map(Into::into),
        spans_path: spans.map(Into::into),
        print_metrics,
    });
    for file in files {
        let text = std::fs::read_to_string(&file).unwrap_or_else(|e| fail(format!("{file}: {e}")));
        let spec = ScenarioSpec::parse(&text).unwrap_or_else(|e| fail(format!("{file}: {e}")));
        let summary = runner.run(&spec).unwrap_or_else(|e| fail(format!("{}: {e}", spec.name)));
        for note in &summary.notes {
            println!("{note}");
        }
        println!("{}: ok ({} artifact(s))", summary.name, summary.artifacts.len());
    }
}
