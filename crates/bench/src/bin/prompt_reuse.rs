//! Fit-once vs refit-per-sample: what the `FrozenLm` split buys, as the
//! `prompt_reuse` scenario.
//!
//! The pre-refactor pipeline rebuilt and re-conditioned the backend on
//! the full prompt for every one of the `S` sampled continuations; the
//! engine now fits the backend once and draws every sample through a
//! forked decode session. Both paths produce bit-identical forecasts
//! (see `tests/equivalence.rs`); the scenario measures the wall-clock
//! difference at the paper's sampling widths.
//!
//! Writes `results/prompt_reuse.md`.

use mc_spec::cli::Cli;
use mc_spec::{Runner, ScenarioKind};

fn main() {
    let cli = Cli::from_env();
    cli.finish().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    Runner::default().run_kind(ScenarioKind::PromptReuse).expect("prompt_reuse scenario");
}
