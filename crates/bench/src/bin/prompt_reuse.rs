//! Fit-once vs refit-per-sample: what the `FrozenLm` split buys.
//!
//! The pre-refactor pipeline rebuilt and re-conditioned the backend on the
//! full prompt for every one of the `S` sampled continuations
//! ([`run_continuation`] per sample). The engine now fits the backend once
//! ([`PreparedBackend::fit`]) and draws every sample through a forked
//! decode session. Both paths produce bit-identical forecasts (see
//! `tests/equivalence.rs`); this experiment measures the wall-clock
//! difference on the Gas Rate dataset at the paper's sampling widths.
//!
//! Writes `results/prompt_reuse.md`.

use mc_bench::report::Table;
use mc_bench::timing::{format_seconds, timed};
use mc_bench::{RESULTS_DIR, TEST_FRACTION};
use mc_datasets::PaperDataset;
use mc_tslib::split::holdout_split;
use multicast_core::codec::{Codec, DigitCodec};
use multicast_core::engine::PreparedBackend;
use multicast_core::pipeline::run_continuation;
use multicast_core::{ForecastConfig, ForecastEngine, MuxMethod};

fn main() {
    let series = PaperDataset::GasRate.load();
    let (train, test) = holdout_split(&series, TEST_FRACTION).expect("split");
    let horizon = test.len();
    let config = ForecastConfig::default();
    let codec = DigitCodec::from_config(MuxMethod::ValueInterleave, &config);
    let fitted = codec.fit(&train).expect("fit codec");
    let spec = ForecastEngine::new(config).continuation_spec(fitted.as_ref(), horizon);

    let mut table = Table::new(
        "Prompt reuse on Gas Rate (VI): refit per sample vs fit-once + forked sessions",
        &["S", "refit per sample", "fit-once", "speedup"],
    );
    for samples in [5usize, 10, 20] {
        let (_, refit) = timed(|| {
            for i in 0..samples {
                run_continuation(&spec, config.sampler_for(i)).expect("refit draw");
            }
        });
        let (_, reuse) = timed(|| {
            let backend = PreparedBackend::fit(&spec).expect("fit backend");
            let sampler = backend.sampler(spec.separators, spec.max_tokens);
            for i in 0..samples {
                sampler.draw(config.sampler_for(i)).expect("session draw");
            }
        });
        table.row(vec![
            samples.to_string(),
            format_seconds(refit),
            format_seconds(reuse),
            format!("{:.2}x", refit / reuse),
        ]);
    }
    table.emit(RESULTS_DIR, "prompt_reuse.md").expect("write results");
}
