//! Rolling-origin robustness study (beyond the paper's single split).
//!
//! Tables IV–VI evaluate one train/test cut; this binary refits every
//! method at several cut points (`mc_tslib::backtest`) and reports
//! mean ± std RMSE per dataset, showing how stable each ranking is.
//! LSTM is excluded (training per fold dominates runtime without changing
//! the story); the classical and LLM methods all run.
//!
//! Writes `results/backtest.md`.
//!
//! With `--faults`, runs the fault-injection study instead: the MultiCast
//! pipeline forecasts Gas Rate while a rising fraction of continuations is
//! deterministically corrupted (plus one guaranteed panicking sample),
//! measuring how RMSE degrades with the defect rate and how many defects /
//! retries / fallbacks the robust layer absorbed. Writes
//! `results/fault_injection.md`. Adding `--metrics` also folds every
//! sample report into an [`mc_obs::MetricsRegistry`] and prints the
//! aggregate snapshot (defect taxonomy included) to stdout.

use mc_baselines::{ArimaForecaster, KalmanForecaster, Ses, Theta, VarForecaster};
use mc_bench::report::{fmt_metric, Table};
use mc_bench::{RESULTS_DIR, TEST_FRACTION};
use mc_datasets::PaperDataset;
use mc_obs::MetricsRegistry;
use mc_tslib::backtest::{backtest, BacktestConfig};
use mc_tslib::forecast::{MultivariateForecaster, PerDimension};
use mc_tslib::metrics::rmse;
use mc_tslib::split::holdout_split;
use multicast_core::robust::{DefectClass, FaultProfile};
use multicast_core::{ForecastConfig, LlmTimeForecaster, MultiCastForecaster, MuxMethod};

/// RMSE degradation vs injected-defect rate, one forecaster per rate.
/// The `profile` carries every non-rate chaos knob (seed, panic sample,
/// latency inflation) in the shared [`FaultProfile`] format; the study
/// sweeps the rate on top of it.
fn fault_injection_study(samples: usize, metrics: bool, profile: FaultProfile) {
    // The study *intends* to panic inside isolated sample threads; the
    // default hook would spam a backtrace per injected panic.
    std::panic::set_hook(Box::new(|_| {}));
    let series = PaperDataset::GasRate.load();
    let (train, test) = holdout_split(&series, TEST_FRACTION).expect("split");
    let mut t = Table::new(
        "Fault injection — MultiCast (VI) on Gas Rate, deterministic corruption + 1 panicking sample",
        &["Defect rate", "RMSE (dim mean)", "Valid/Req", "Retries", "Repairs", "Panics", "Outcome"],
    );
    let registry = MetricsRegistry::new();
    for rate_pct in [0u32, 20, 40, 60, 80, 100] {
        let rate = rate_pct as f64 / 100.0;
        let source = profile.with_rate(rate).source();
        let config = ForecastConfig { samples, ..Default::default() };
        let mut f =
            MultiCastForecaster::new(MuxMethod::ValueInterleave, config).with_source(source);
        let row = match f.forecast(&train, test.len()) {
            Ok(fc) => {
                let mean_rmse = (0..train.dims())
                    .map(|d| rmse(test.column(d).unwrap(), fc.column(d).unwrap()).unwrap())
                    .sum::<f64>()
                    / train.dims() as f64;
                let report = f.last_report.as_ref().expect("forecast records a report");
                report.record_into(&registry);
                vec![
                    format!("{rate_pct}%"),
                    fmt_metric(mean_rmse),
                    format!("{}/{}", report.valid_samples, report.requested_samples),
                    report.retries_used.to_string(),
                    report.repairs_applied.to_string(),
                    report.defect_count(DefectClass::Panicked).to_string(),
                    if report.degraded() { "fallback".into() } else { "sampled".into() },
                ]
            }
            Err(e) => vec![
                format!("{rate_pct}%"),
                format!("err: {e}"),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ],
        };
        t.row(row);
    }
    t.emit(RESULTS_DIR, "fault_injection.md").expect("write");
    if metrics {
        println!("{}", registry.snapshot().to_markdown());
    }
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let metrics = std::env::args().any(|a| a == "--metrics");
    let samples = if fast { 1 } else { 5 };
    if std::env::args().any(|a| a == "--faults") {
        // `--profile key=value,...` overrides the default chaos knobs
        // (shared FaultProfile grammar; the swept rate is ignored here).
        let profile = std::env::args().skip_while(|a| a != "--profile").nth(1).map_or_else(
            || FaultProfile { seed: 0xFA017, panic_sample: Some(0), ..Default::default() },
            |spec| FaultProfile::parse(&spec).expect("--profile"),
        );
        fault_injection_study(samples.max(3), metrics, profile);
        return;
    }
    let mut t = Table::new(
        "Backtest — rolling-origin mean ± std RMSE (averaged over dimensions, 4 folds)",
        &["Method", "Gas Rate", "Electricity", "Weather"],
    );
    type Make = Box<dyn Fn() -> Box<dyn MultivariateForecaster>>;
    let entries: Vec<(&str, Make)> = vec![
        (
            "MultiCast (VI)",
            Box::new(move || {
                Box::new(MultiCastForecaster::new(
                    MuxMethod::ValueInterleave,
                    ForecastConfig { samples, ..Default::default() },
                ))
            }),
        ),
        (
            "LLMTIME",
            Box::new(move || {
                Box::new(LlmTimeForecaster::new(ForecastConfig { samples, ..Default::default() }))
            }),
        ),
        ("ARIMA", Box::new(|| Box::new(PerDimension(ArimaForecaster::default())))),
        ("VAR", Box::new(|| Box::new(VarForecaster::default()))),
        ("Theta", Box::new(|| Box::new(PerDimension(Theta)))),
        ("Kalman (LLT)", Box::new(|| Box::new(PerDimension(KalmanForecaster)))),
        ("SES", Box::new(|| Box::new(PerDimension(Ses { alpha: None })))),
    ];
    for (name, make) in &entries {
        let mut row = vec![name.to_string()];
        for ds in PaperDataset::ALL {
            let series = ds.load();
            // 4 folds: start at 60 % of the series, horizon 10 % of it.
            let initial = (series.len() as f64 * 0.6) as usize;
            let horizon = (series.len() as f64 * 0.1) as usize;
            let step = (series.len() - initial - horizon) / 3;
            let config = BacktestConfig { initial_train: initial, horizon, step };
            let mut f = make();
            let cell = match backtest(f.as_mut(), &series, config) {
                Ok(report) => {
                    let mean = report.grand_mean();
                    let spread = report.std_rmse.iter().sum::<f64>() / report.std_rmse.len() as f64;
                    format!("{} ± {}", fmt_metric(mean), fmt_metric(spread))
                }
                Err(e) => format!("err: {e}"),
            };
            row.push(cell);
        }
        t.row(row);
    }
    t.emit(RESULTS_DIR, "backtest.md").expect("write");
}
