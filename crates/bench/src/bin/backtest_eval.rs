//! Rolling-origin robustness study (beyond the paper's single split).
//!
//! Tables IV–VI evaluate one train/test cut; this wrapper runs the
//! `backtest` scenario, which refits every method at several cut points
//! (`mc_tslib::backtest`) and reports mean ± std RMSE per dataset.
//! Writes `results/backtest.md` and `results/BENCH_backtest.json`.
//!
//! With `--faults`, runs the `fault_injection` scenario instead: the
//! MultiCast pipeline forecasts Gas Rate while a rising fraction of
//! continuations is deterministically corrupted (plus one guaranteed
//! panicking sample). Writes `results/fault_injection.md` and its BENCH
//! file. `--profile key=value,...` overrides the default chaos knobs
//! (shared `FaultProfile` grammar); `--metrics` also prints the
//! aggregate `mc_obs` snapshot.

use mc_spec::cli::Cli;
use mc_spec::{RunOptions, Runner, ScenarioKind, ScenarioSpec};
use multicast_core::robust::FaultProfile;

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("{message}");
    std::process::exit(2);
}

fn main() {
    let mut cli = Cli::from_env();
    let fast = cli.flag("--fast");
    let metrics = cli.flag("--metrics");
    let faults = cli.flag("--faults");
    let profile = cli.value("--profile").unwrap_or_else(|e| fail(e));
    cli.finish().unwrap_or_else(|e| fail(e));

    let mut spec = ScenarioSpec::new(if faults {
        ScenarioKind::FaultInjection
    } else {
        ScenarioKind::Backtest
    });
    if faults {
        // The study *intends* to panic inside isolated sample threads; the
        // default hook would spam a backtrace per injected panic.
        std::panic::set_hook(Box::new(|_| {}));
        if let Some(p) = profile {
            spec.faults = Some(FaultProfile::parse(&p).unwrap_or_else(|e| fail(e)));
        }
    } else if profile.is_some() {
        fail("--profile requires --faults");
    }

    let opts = RunOptions {
        fast,
        print_metrics: metrics,
        bench_dir: Some("results".into()),
        ..RunOptions::default()
    };
    let summary = Runner::new(opts).run(&spec).unwrap_or_else(|e| fail(e));
    for note in &summary.notes {
        println!("{note}");
    }
}
