//! Rolling-origin robustness study (beyond the paper's single split).
//!
//! Tables IV–VI evaluate one train/test cut; this binary refits every
//! method at several cut points (`mc_tslib::backtest`) and reports
//! mean ± std RMSE per dataset, showing how stable each ranking is.
//! LSTM is excluded (training per fold dominates runtime without changing
//! the story); the classical and LLM methods all run.
//!
//! Writes `results/backtest.md`.

use mc_baselines::{ArimaForecaster, KalmanForecaster, Ses, Theta, VarForecaster};
use mc_bench::report::{fmt_metric, Table};
use mc_bench::RESULTS_DIR;
use mc_datasets::PaperDataset;
use mc_tslib::backtest::{backtest, BacktestConfig};
use mc_tslib::forecast::{MultivariateForecaster, PerDimension};
use multicast_core::{ForecastConfig, LlmTimeForecaster, MultiCastForecaster, MuxMethod};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let samples = if fast { 1 } else { 5 };
    let mut t = Table::new(
        "Backtest — rolling-origin mean ± std RMSE (averaged over dimensions, 4 folds)",
        &["Method", "Gas Rate", "Electricity", "Weather"],
    );
    type Make = Box<dyn Fn() -> Box<dyn MultivariateForecaster>>;
    let entries: Vec<(&str, Make)> = vec![
        (
            "MultiCast (VI)",
            Box::new(move || {
                Box::new(MultiCastForecaster::new(
                    MuxMethod::ValueInterleave,
                    ForecastConfig { samples, ..Default::default() },
                ))
            }),
        ),
        (
            "LLMTIME",
            Box::new(move || {
                Box::new(LlmTimeForecaster::new(ForecastConfig {
                    samples,
                    ..Default::default()
                }))
            }),
        ),
        ("ARIMA", Box::new(|| Box::new(PerDimension(ArimaForecaster::default())))),
        ("VAR", Box::new(|| Box::new(VarForecaster::default()))),
        ("Theta", Box::new(|| Box::new(PerDimension(Theta)))),
        ("Kalman (LLT)", Box::new(|| Box::new(PerDimension(KalmanForecaster)))),
        ("SES", Box::new(|| Box::new(PerDimension(Ses { alpha: None })))),
    ];
    for (name, make) in &entries {
        let mut row = vec![name.to_string()];
        for ds in PaperDataset::ALL {
            let series = ds.load();
            // 4 folds: start at 60 % of the series, horizon 10 % of it.
            let initial = (series.len() as f64 * 0.6) as usize;
            let horizon = (series.len() as f64 * 0.1) as usize;
            let step = (series.len() - initial - horizon) / 3;
            let config = BacktestConfig { initial_train: initial, horizon, step };
            let mut f = make();
            let cell = match backtest(f.as_mut(), &series, config) {
                Ok(report) => {
                    let mean = report.grand_mean();
                    let spread = report.std_rmse.iter().sum::<f64>()
                        / report.std_rmse.len() as f64;
                    format!("{} ± {}", fmt_metric(mean), fmt_metric(spread))
                }
                Err(e) => format!("err: {e}"),
            };
            row.push(cell);
        }
        t.row(row);
    }
    t.emit(RESULTS_DIR, "backtest.md").expect("write");
}
