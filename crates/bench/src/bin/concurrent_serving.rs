//! Sequential refit vs shared-frozen concurrent serving.
//!
//! `R` independent forecast requests against the same history used to mean
//! `R` full pipeline runs, each re-conditioning its own backend on the full
//! prompt ([`MultiCastForecaster`] per request). The serve scheduler
//! ([`serve_all`]) instead deduplicates the frozen context — one prompt
//! pass serves all `R` requests — and fans the `R x S` sample draws across
//! a worker pool of forked decode sessions. Forecasts are bit-identical by
//! construction (checked below, and in `tests/serving.rs`); this
//! experiment measures the wall-clock difference on the paper's three
//! datasets at varying request counts and sampling widths.
//!
//! Writes `results/concurrent_serving.md`.

use mc_bench::report::Table;
use mc_bench::timing::{format_seconds, timed};
use mc_bench::{RESULTS_DIR, TEST_FRACTION};
use mc_datasets::PaperDataset;
use mc_tslib::forecast::MultivariateForecaster;
use mc_tslib::split::holdout_split;
use multicast_core::serve::{serve_all, ForecastRequest, ServeConfig};
use multicast_core::{ForecastConfig, MultiCastForecaster, MuxMethod};

const WORKERS: usize = 8;

/// Best-of-3 wall clock: one-shot timings of millisecond-scale runs are
/// dominated by scheduler noise; the minimum is the stable estimate.
fn best_of<T>(mut f: impl FnMut() -> (T, f64)) -> (T, f64) {
    let mut best = f();
    for _ in 0..2 {
        let next = f();
        if next.1 < best.1 {
            best = next;
        }
    }
    best
}

fn main() {
    let mut table = Table::new(
        "Concurrent serving (VI): R sequential refits vs one shared frozen context + 8 workers",
        &["dataset", "R", "S", "sequential refit", "shared serve", "speedup"],
    );
    for dataset in PaperDataset::ALL {
        let series = dataset.load();
        let (train, test) = holdout_split(&series, TEST_FRACTION).expect("split");
        let horizon = test.len();
        for requests in [1usize, 2, 4, 8] {
            for samples in [5usize, 10] {
                let configs: Vec<ForecastConfig> = (0..requests)
                    .map(|r| ForecastConfig {
                        samples,
                        seed: 1000 + r as u64,
                        ..ForecastConfig::default()
                    })
                    .collect();

                let (sequential, seq_time) = best_of(|| {
                    timed(|| {
                        configs
                            .iter()
                            .map(|cfg| {
                                MultiCastForecaster::new(MuxMethod::ValueInterleave, *cfg)
                                    .forecast(&train, horizon)
                                    .expect("sequential forecast")
                            })
                            .collect::<Vec<_>>()
                    })
                });

                let batch: Vec<ForecastRequest> = configs
                    .iter()
                    .map(|cfg| {
                        ForecastRequest::digit(
                            train.clone(),
                            horizon,
                            MuxMethod::ValueInterleave,
                            *cfg,
                        )
                    })
                    .collect();
                let (run, serve_time) =
                    best_of(|| timed(|| serve_all(&batch, &ServeConfig::with_workers(WORKERS))));

                // The scheduler must not change the numbers, only the clock.
                assert_eq!(run.contexts.len(), 1, "one history, one frozen context");
                for (solo, outcome) in sequential.iter().zip(&run.outcomes) {
                    let served = outcome.forecast.as_ref().expect("served forecast");
                    for d in 0..solo.dims() {
                        let (a, b) = (solo.column(d).unwrap(), served.column(d).unwrap());
                        assert!(
                            a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
                            "{dataset}: served forecast diverged from sequential"
                        );
                    }
                }

                table.row(vec![
                    dataset.to_string(),
                    requests.to_string(),
                    samples.to_string(),
                    format_seconds(seq_time),
                    format_seconds(serve_time),
                    format!("{:.2}x", seq_time / serve_time),
                ]);
            }
        }
    }
    table.emit(RESULTS_DIR, "concurrent_serving.md").expect("write results");
}
