//! Sequential refit vs shared-frozen concurrent serving.
//!
//! A thin wrapper over the `concurrent_serving` scenario: `R` sequential
//! pipeline runs vs one shared frozen context fanned across a worker
//! pool, bit-identical by construction (the runner asserts it), timed on
//! the paper's three datasets at varying request counts and sampling
//! widths. Writes `results/concurrent_serving.md`.
//!
//! With `--trace <path>` (and/or `--metrics`), runs the `telemetry`
//! scenario instead: one representative batch served bare, through a
//! no-op recorder, and under a recording observer on the logical clock.
//! The canonical JSONL trace goes to `<path>`, `--metrics` prints the
//! metrics snapshot, and both measurements land in
//! `results/serving_telemetry.md`.

use mc_spec::cli::Cli;
use mc_spec::{RunOptions, Runner, ScenarioKind};

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("{message}");
    std::process::exit(2);
}

fn main() {
    let mut cli = Cli::from_env();
    let trace = cli.value("--trace").unwrap_or_else(|e| fail(e));
    let metrics = cli.flag("--metrics");
    cli.finish().unwrap_or_else(|e| fail(e));

    let kind = if trace.is_some() || metrics {
        ScenarioKind::Telemetry
    } else {
        ScenarioKind::ConcurrentServing
    };
    let opts = RunOptions {
        trace_path: trace.map(Into::into),
        print_metrics: metrics,
        ..RunOptions::default()
    };
    let summary = Runner::new(opts).run_kind(kind).unwrap_or_else(|e| fail(e));
    for note in &summary.notes {
        println!("{note}");
    }
}
