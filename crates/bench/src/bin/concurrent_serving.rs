//! Sequential refit vs shared-frozen concurrent serving.
//!
//! `R` independent forecast requests against the same history used to mean
//! `R` full pipeline runs, each re-conditioning its own backend on the full
//! prompt ([`MultiCastForecaster`] per request). The serve scheduler
//! ([`serve_all`]) instead deduplicates the frozen context — one prompt
//! pass serves all `R` requests — and fans the `R x S` sample draws across
//! a worker pool of forked decode sessions. Forecasts are bit-identical by
//! construction (checked below, and in `tests/serving.rs`); this
//! experiment measures the wall-clock difference on the paper's three
//! datasets at varying request counts and sampling widths.
//!
//! Writes `results/concurrent_serving.md`.
//!
//! With `--trace <path>` (and/or `--metrics`), runs the telemetry study
//! instead: one representative batch is served three ways — bare
//! `serve_all`, through a no-op `Recorder` (measuring the instrumentation
//! overhead when observability is off), and under a recording
//! `Observer` on the deterministic logical clock. The canonical JSONL
//! trace goes to `<path>`, `--metrics` prints the metrics snapshot to
//! stdout, and both measurements land in `results/serving_telemetry.md`.

use std::fmt::Write as _;
use std::sync::Arc;

use mc_bench::report::Table;
use mc_bench::timing::{format_seconds, timed};
use mc_bench::{RESULTS_DIR, TEST_FRACTION};
use mc_datasets::PaperDataset;
use mc_obs::{NoopRecorder, Observer, Recorder};
use mc_tslib::forecast::MultivariateForecaster;
use mc_tslib::split::holdout_split;
use multicast_core::serve::{serve_all, serve_all_observed, ForecastRequest, ServeConfig};
use multicast_core::{ForecastConfig, MultiCastForecaster, MuxMethod};

const WORKERS: usize = 8;

/// Best-of-3 wall clock: one-shot timings of millisecond-scale runs are
/// dominated by scheduler noise; the minimum is the stable estimate.
fn best_of<T>(mut f: impl FnMut() -> (T, f64)) -> (T, f64) {
    let mut best = f();
    for _ in 0..2 {
        let next = f();
        if next.1 < best.1 {
            best = next;
        }
    }
    best
}

/// The telemetry study: overhead of the recorder seam, plus the traced
/// run feeding the JSONL export and `results/serving_telemetry.md`.
fn telemetry(trace_path: Option<&str>, print_metrics: bool) {
    let series = PaperDataset::GasRate.load();
    let (train, test) = holdout_split(&series, TEST_FRACTION).expect("split");
    let horizon = test.len();
    let batch: Vec<ForecastRequest> = (0..8usize)
        .map(|r| {
            let config =
                ForecastConfig { samples: 5, seed: 1000 + r as u64, ..ForecastConfig::default() };
            ForecastRequest::digit(train.clone(), horizon, MuxMethod::ValueInterleave, config)
        })
        .collect();
    let serve_config = ServeConfig::with_workers(WORKERS);

    // Overhead of the recorder seam itself: bare serve_all vs the same
    // batch through a disabled recorder (one virtual call per probe).
    // One untimed pass first so dataset/codec warm-up is not charged to
    // whichever variant happens to run first.
    serve_all(&batch, &serve_config);
    let (_, bare) = best_of(|| timed(|| serve_all(&batch, &serve_config)));
    let noop: Arc<dyn Recorder> = Arc::new(NoopRecorder);
    let (_, disabled) =
        best_of(|| timed(|| serve_all_observed(&batch, &serve_config, noop.clone())));

    // The recording run: logical clock, canonical export.
    let obs = Arc::new(Observer::logical());
    let (run, traced) = timed(|| serve_all_observed(&batch, &serve_config, obs.clone()));
    for outcome in &run.outcomes {
        assert!(outcome.forecast.is_ok(), "telemetry batch request failed");
    }
    let jsonl = obs.to_jsonl();
    if let Some(path) = trace_path {
        std::fs::write(path, &jsonl).expect("write trace JSONL");
        println!("wrote {path} ({} events)", jsonl.lines().count());
    }
    let snapshot = obs.metrics().snapshot();
    if print_metrics {
        println!("{}", snapshot.to_markdown());
    }

    let mut md = String::new();
    md.push_str("# Serving telemetry\n\n");
    let _ = writeln!(
        md,
        "One shared-context batch on Gas Rate: 8 requests x 5 samples, {WORKERS} workers.\n"
    );
    md.push_str("| serve path | wall clock |\n|---|---:|\n");
    let _ = writeln!(md, "| `serve_all` (no recorder seam) | {} |", format_seconds(bare));
    let _ =
        writeln!(md, "| `serve_all_observed` + `NoopRecorder` | {} |", format_seconds(disabled));
    let _ = writeln!(
        md,
        "| `serve_all_observed` + `Observer` (logical clock) | {} |",
        format_seconds(traced)
    );
    let _ = writeln!(
        md,
        "\nNo-op overhead: {:+.1} % (best-of-3; the disabled recorder adds one \
         virtual call per probe and must stay in the noise). Canonical trace: \
         {} JSONL events, byte-identical across worker counts and submission \
         orders (`tests/serving.rs`).\n",
        (disabled / bare - 1.0) * 100.0,
        jsonl.lines().count()
    );
    md.push_str("## Metrics snapshot (recorded run)\n\n");
    md.push_str(&snapshot.to_markdown());
    std::fs::create_dir_all(RESULTS_DIR).expect("results dir");
    let out = format!("{RESULTS_DIR}/serving_telemetry.md");
    std::fs::write(&out, md).expect("write telemetry report");
    println!("wrote {out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| args.get(i + 1).expect("--trace needs a path").clone());
    let metrics = args.iter().any(|a| a == "--metrics");
    if trace.is_some() || metrics {
        telemetry(trace.as_deref(), metrics);
        return;
    }
    let mut table = Table::new(
        "Concurrent serving (VI): R sequential refits vs one shared frozen context + 8 workers",
        &["dataset", "R", "S", "sequential refit", "shared serve", "speedup"],
    );
    for dataset in PaperDataset::ALL {
        let series = dataset.load();
        let (train, test) = holdout_split(&series, TEST_FRACTION).expect("split");
        let horizon = test.len();
        for requests in [1usize, 2, 4, 8] {
            for samples in [5usize, 10] {
                let configs: Vec<ForecastConfig> = (0..requests)
                    .map(|r| ForecastConfig {
                        samples,
                        seed: 1000 + r as u64,
                        ..ForecastConfig::default()
                    })
                    .collect();

                let (sequential, seq_time) = best_of(|| {
                    timed(|| {
                        configs
                            .iter()
                            .map(|cfg| {
                                MultiCastForecaster::new(MuxMethod::ValueInterleave, *cfg)
                                    .forecast(&train, horizon)
                                    .expect("sequential forecast")
                            })
                            .collect::<Vec<_>>()
                    })
                });

                let batch: Vec<ForecastRequest> = configs
                    .iter()
                    .map(|cfg| {
                        ForecastRequest::digit(
                            train.clone(),
                            horizon,
                            MuxMethod::ValueInterleave,
                            *cfg,
                        )
                    })
                    .collect();
                let (run, serve_time) =
                    best_of(|| timed(|| serve_all(&batch, &ServeConfig::with_workers(WORKERS))));

                // The scheduler must not change the numbers, only the clock.
                assert_eq!(run.contexts.len(), 1, "one history, one frozen context");
                for (solo, outcome) in sequential.iter().zip(&run.outcomes) {
                    let served = outcome.forecast.as_ref().expect("served forecast");
                    for d in 0..solo.dims() {
                        let (a, b) = (solo.column(d).unwrap(), served.column(d).unwrap());
                        assert!(
                            a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
                            "{dataset}: served forecast diverged from sequential"
                        );
                    }
                }

                table.row(vec![
                    dataset.to_string(),
                    requests.to_string(),
                    samples.to_string(),
                    format_seconds(seq_time),
                    format_seconds(serve_time),
                    format!("{:.2}x", seq_time / serve_time),
                ]);
            }
        }
    }
    table.emit(RESULTS_DIR, "concurrent_serving.md").expect("write results");
}
