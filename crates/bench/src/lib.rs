//! # mc-bench — the reproduction harness
//!
//! Regenerates every table and figure of the paper's evaluation (§IV).
//! One binary per artifact plus an umbrella `repro` binary:
//!
//! | Binary    | Paper artifact |
//! |-----------|----------------|
//! | `table1`  | Table I (datasets) + Table II (parameters) |
//! | `table3`  | Table III (LLaMA2 vs Phi-2 stand-ins) |
//! | `table4`  | Table IV (Gas Rate RMSE, 6 methods) |
//! | `table5`  | Table V (Electricity RMSE) |
//! | `table6`  | Table VI (Weather RMSE) |
//! | `table7`  | Table VII (sample-count sweep, RMSE + time) |
//! | `table8`  | Table VIII (SAX segment sweep, RMSE + time) |
//! | `table9`  | Table IX (SAX alphabet sweep, RMSE + time) |
//! | `figures` | Figures 2–8 (forecast trajectory SVGs) |
//! | `ablation`| extra: mux × backend × dataset grid, aggregation rules |
//! | `repro`   | everything above, writing `results/` |
//!
//! Shared machinery lives here: the method roster ([`runner`]), timing,
//! markdown [`report`]ing, and a dependency-free SVG [`plot`]ter.

pub mod figs;
pub mod plot;
pub mod report;
pub mod runner;
pub mod tables;
pub mod timing;

/// Holdout fraction used across all experiments (the final 15 % of each
/// series is forecast, mirroring the paper's tail-forecast setup).
pub const TEST_FRACTION: f64 = 0.15;

/// Root directory for generated artifacts (created on demand).
pub const RESULTS_DIR: &str = "results";
