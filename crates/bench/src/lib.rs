//! # mc-bench — the reproduction harness bins
//!
//! Every experiment is a [`mc_spec::ScenarioSpec`] executed by the
//! [`mc_spec::Runner`]; the binaries in `src/bin/` are thin wrappers
//! that translate flags into a spec and print the runner's notes:
//!
//! | Binary               | Scenario(s) |
//! |----------------------|-------------|
//! | `scenario`           | any `.spec` file (the generic driver) |
//! | `tables`             | Tables I–IX (`tables 4`, `tables all`) |
//! | `figures`            | Figures 2–8 (forecast trajectory SVGs) |
//! | `repro`              | everything above, writing `results/` |
//! | `backtest_eval`      | rolling-origin backtest; `--faults` = fault injection |
//! | `ablation`           | ablations A/B/C/E |
//! | `tokenization`       | ablation D (char vs BPE) |
//! | `tasks_eval`         | anomaly / imputation / change-point studies |
//! | `prompt_reuse`       | fit-once vs refit-per-sample |
//! | `concurrent_serving` | serve scheduler speedup; `--trace` = telemetry |
//! | `serve_chaos`        | overload drill with fault injection |
//!
//! The experiment machinery itself — grammar, lowering, execution,
//! `BENCH_*.json` emission — lives in the `mc-spec` crate. The
//! `no-adhoc-bench` lint keeps these bins declarative: they may not
//! touch the engine or serve seams directly.
//!
//! Criterion microbenchmarks stay under `benches/`.

pub use mc_spec::{RESULTS_DIR, TEST_FRACTION};
