//! Criterion microbenchmarks for the hot components of the pipeline:
//! tokenization, SAX encode/decode, multiplex/demultiplex, backend
//! prediction and end-to-end single-sample forecasts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mc_datasets::PaperDataset;
use mc_lm::model::{observe_all, LanguageModel as _};
use mc_lm::ppm::PpmLm;
use mc_lm::presets::{build_model, ModelPreset};
use mc_lm::tokenizer::{CharTokenizer, Tokenizer};
use mc_lm::vocab::Vocab;
use mc_sax::alphabet::{SaxAlphabet, SaxAlphabetKind};
use mc_sax::encoder::{SaxConfig, SaxEncoder};
use mc_tslib::forecast::MultivariateForecaster;
use mc_tslib::split::holdout_split;
use multicast_core::{ForecastConfig, MultiCastForecaster, MuxMethod};

fn bench_tokenizer(c: &mut Criterion) {
    let t = CharTokenizer::numeric();
    let text = "123,456,789,".repeat(200);
    c.bench_function("tokenizer/encode_2400_chars", |b| {
        b.iter(|| t.encode(std::hint::black_box(&text)).unwrap());
    });
    let ids = t.encode(&text).unwrap();
    c.bench_function("tokenizer/decode_2400_tokens", |b| {
        b.iter(|| t.decode(std::hint::black_box(&ids)).unwrap());
    });
}

fn bench_sax(c: &mut Criterion) {
    let series = PaperDataset::GasRate.load();
    let xs = series.column(1).unwrap().to_vec();
    for seg in [3usize, 6, 9] {
        let enc = SaxEncoder::new(SaxConfig {
            segment_len: seg,
            alphabet: SaxAlphabet::new(SaxAlphabetKind::Alphabetic, 5).unwrap(),
        });
        c.bench_with_input(BenchmarkId::new("sax/encode_296pts_seg", seg), &xs, |b, xs| {
            b.iter(|| enc.encode(std::hint::black_box(xs)));
        });
        let e = enc.encode(&xs);
        c.bench_with_input(BenchmarkId::new("sax/decode_seg", seg), &e, |b, e| {
            b.iter(|| enc.decode_expanded(&e.symbols, e.znorm, xs.len()));
        });
    }
}

fn bench_mux(c: &mut Criterion) {
    let codes: Vec<Vec<u64>> =
        (0..4).map(|d| (0..300).map(|t| ((t * 37 + d * 11) % 1000) as u64).collect()).collect();
    for method in MuxMethod::ALL {
        let m = method.build();
        c.bench_with_input(
            BenchmarkId::new("mux/serialize_4x300", method.tag()),
            &codes,
            |b, codes| b.iter(|| m.mux(std::hint::black_box(codes), 3)),
        );
        let text = m.mux(&codes, 3);
        c.bench_with_input(BenchmarkId::new("mux/demux_4x300", method.tag()), &text, |b, text| {
            b.iter(|| m.demux(std::hint::black_box(text), 4, 3, 300));
        });
    }
}

fn bench_lm(c: &mut Criterion) {
    let vocab = Vocab::numeric();
    let tok = CharTokenizer::new(vocab.clone());
    let prompt = tok.encode(&"123,456,789,".repeat(80)).unwrap();
    for preset in [ModelPreset::Large, ModelPreset::Small, ModelPreset::Suffix] {
        c.bench_function(&format!("lm/observe_960_tokens/{preset:?}"), |b| {
            b.iter(|| {
                let mut m = build_model(preset, vocab.len());
                observe_all(m.as_mut(), std::hint::black_box(&prompt));
                m
            });
        });
        let mut model = build_model(preset, vocab.len());
        observe_all(model.as_mut(), &prompt);
        let mut dist = vec![0.0; vocab.len()];
        c.bench_function(&format!("lm/next_distribution/{preset:?}"), |b| {
            b.iter(|| model.next_distribution(std::hint::black_box(&mut dist)));
        });
    }
}

fn bench_ppm(c: &mut Criterion) {
    let vocab = Vocab::numeric();
    let tok = CharTokenizer::new(vocab.clone());
    let prompt = tok.encode(&"123,456,789,".repeat(80)).unwrap();
    c.bench_function("lm/observe_960_tokens/Ppm", |b| {
        b.iter(|| {
            let mut m = PpmLm::new(vocab.len(), 8, "ppm");
            observe_all(&mut m, std::hint::black_box(&prompt));
            m
        });
    });
    let mut model = PpmLm::new(vocab.len(), 8, "ppm");
    observe_all(&mut model, &prompt);
    let mut dist = vec![0.0; vocab.len()];
    c.bench_function("lm/next_distribution/Ppm", |b| {
        b.iter(|| model.next_distribution(std::hint::black_box(&mut dist)));
    });
}

fn bench_tasks(c: &mut Criterion) {
    use mc_tasks::surprisal::{surprisal_profile, SurprisalConfig};
    let xs: Vec<f64> =
        (0..128).map(|t| 50.0 + 10.0 * (t as f64 * std::f64::consts::PI / 8.0).sin()).collect();
    let mut group = c.benchmark_group("tasks");
    group.sample_size(20);
    group.bench_function("surprisal_profile_128pts", |b| {
        b.iter(|| {
            surprisal_profile(std::hint::black_box(&xs), SurprisalConfig::default()).unwrap()
        });
    });
    let mut gappy = xs.clone();
    for v in &mut gappy[60..72] {
        *v = f64::NAN;
    }
    group.bench_function("impute_12pt_gap", |b| {
        b.iter(|| mc_tasks::Imputer::default().impute(std::hint::black_box(&gappy)).unwrap());
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let series = PaperDataset::GasRate.load();
    let (train, test) = holdout_split(&series, 0.15).unwrap();
    let mut group = c.benchmark_group("forecast/gasrate_single_sample");
    group.sample_size(10);
    for method in MuxMethod::ALL {
        group.bench_function(method.tag(), |b| {
            b.iter(|| {
                let cfg = ForecastConfig { samples: 1, ..Default::default() };
                let mut f = MultiCastForecaster::new(method, cfg);
                f.forecast(std::hint::black_box(&train), test.len()).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tokenizer,
    bench_sax,
    bench_mux,
    bench_lm,
    bench_ppm,
    bench_tasks,
    bench_end_to_end
);
criterion_main!(benches);
