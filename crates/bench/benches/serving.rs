//! Criterion benchmark for the serve scheduler: `R` requests against one
//! history, forecast sequentially with a refit per request (the
//! [`MultiCastForecaster`] path) vs batched through [`serve_all`] over a
//! shared frozen context and a worker pool. A third case runs the batch
//! through [`serve_all_observed`] with a [`NoopRecorder`]: the recorder
//! seam is always compiled in, so its disabled cost must stay in the
//! noise relative to `shared_serve`. Companion to the
//! `concurrent_serving` binary, which writes `results/concurrent_serving.md`
//! and (with `--trace`) `results/serving_telemetry.md`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mc_datasets::PaperDataset;
use mc_obs::{NoopRecorder, Recorder};
use mc_tslib::forecast::MultivariateForecaster;
use mc_tslib::split::holdout_split;
use mc_tslib::MultivariateSeries;
use multicast_core::serve::{serve_all, serve_all_observed, ForecastRequest, ServeConfig};
use multicast_core::{ForecastConfig, MultiCastForecaster, MuxMethod};

fn gas_rate_train() -> (MultivariateSeries, usize) {
    let series = PaperDataset::GasRate.load();
    let (train, test) = holdout_split(&series, 0.15).expect("split");
    let horizon = test.len();
    (train, horizon)
}

fn configs(requests: usize) -> Vec<ForecastConfig> {
    (0..requests)
        .map(|r| ForecastConfig { samples: 5, seed: 1000 + r as u64, ..ForecastConfig::default() })
        .collect()
}

fn bench_serving(c: &mut Criterion) {
    let (train, horizon) = gas_rate_train();
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    for requests in [2usize, 4, 8] {
        let cfgs = configs(requests);
        group.bench_with_input(BenchmarkId::new("sequential_refit", requests), &cfgs, |b, cfgs| {
            b.iter(|| {
                for cfg in cfgs {
                    MultiCastForecaster::new(MuxMethod::ValueInterleave, *cfg)
                        .forecast(std::hint::black_box(&train), horizon)
                        .unwrap();
                }
            });
        });
        let batch: Vec<ForecastRequest> = cfgs
            .iter()
            .map(|cfg| {
                ForecastRequest::digit(train.clone(), horizon, MuxMethod::ValueInterleave, *cfg)
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("shared_serve", requests), &batch, |b, batch| {
            b.iter(|| serve_all(std::hint::black_box(batch), &ServeConfig::with_workers(8)));
        });
        let noop: Arc<dyn Recorder> = Arc::new(NoopRecorder);
        group.bench_with_input(
            BenchmarkId::new("shared_serve_noop_obs", requests),
            &batch,
            |b, batch| {
                b.iter(|| {
                    serve_all_observed(
                        std::hint::black_box(batch),
                        &ServeConfig::with_workers(8),
                        noop.clone(),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
