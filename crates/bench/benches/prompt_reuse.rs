//! Criterion benchmark for the fit-once/sample-many split: draws `S`
//! continuations with the prompt refit every sample (the pre-refactor
//! path, [`run_continuation`]) vs fit once and fork a decode session per
//! sample (the engine path). Companion to the `prompt_reuse` binary,
//! which writes `results/prompt_reuse.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mc_datasets::PaperDataset;
use mc_tslib::split::holdout_split;
use multicast_core::codec::{Codec, DigitCodec};
use multicast_core::engine::PreparedBackend;
use multicast_core::pipeline::{run_continuation, ContinuationSpec};
use multicast_core::{ForecastConfig, ForecastEngine, MuxMethod};

fn gas_rate_spec(config: &ForecastConfig) -> ContinuationSpec {
    let series = PaperDataset::GasRate.load();
    let (train, test) = holdout_split(&series, 0.15).expect("split");
    let codec = DigitCodec::from_config(MuxMethod::ValueInterleave, config);
    let fitted = codec.fit(&train).expect("fit codec");
    ForecastEngine::new(*config).continuation_spec(fitted.as_ref(), test.len())
}

fn bench_prompt_reuse(c: &mut Criterion) {
    let config = ForecastConfig::default();
    let spec = gas_rate_spec(&config);
    let mut group = c.benchmark_group("prompt_reuse");
    for samples in [5usize, 10, 20] {
        group.bench_with_input(BenchmarkId::new("refit_per_sample", samples), &spec, |b, spec| {
            b.iter(|| {
                for i in 0..samples {
                    run_continuation(std::hint::black_box(spec), config.sampler_for(i)).unwrap();
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("fit_once", samples), &spec, |b, spec| {
            b.iter(|| {
                let backend = PreparedBackend::fit(std::hint::black_box(spec)).unwrap();
                let sampler = backend.sampler(spec.separators, spec.max_tokens);
                for i in 0..samples {
                    sampler.draw(config.sampler_for(i)).unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prompt_reuse);
criterion_main!(benches);
