//! Differential property tests for the incremental-refit contract
//! ([`FrozenLm::refit_extend`]): for every concrete backend, fitting
//! `prefix ++ suffix` in one pass and fitting `prefix` then refitting
//! with `suffix` must be indistinguishable — bit-identical
//! distributions along a whole decode, identical sampled tokens under a
//! fixed seed, and identical prompt accounting. This is the correctness
//! heart of the multi-tenant context cache: a warm refit hit must serve
//! the same bytes a cold fit would.

use proptest::prelude::*;

use mc_lm::model::FrozenLm;
use mc_lm::presets::{fit_model, ModelPreset};
use mc_lm::sampler::{Sampler, SamplerConfig};
use mc_lm::vocab::TokenId;

/// Decodes `steps` tokens from both models in lockstep, asserting the
/// distributions agree bit-for-bit and the seeded samplers draw the
/// same token at every step.
fn assert_decodes_identically(
    full: &dyn FrozenLm,
    refit: &dyn FrozenLm,
    vocab: usize,
    steps: usize,
    seed: u64,
) {
    let config = SamplerConfig { seed, ..SamplerConfig::default() };
    let (mut draw_full, mut draw_refit) = (Sampler::new(config), Sampler::new(config));
    let (mut a, mut b) = (full.fork(), refit.fork());
    let (mut pa, mut pb) = (vec![0.0; vocab], vec![0.0; vocab]);
    for step in 0..steps {
        a.next_distribution(&mut pa);
        b.next_distribution(&mut pb);
        for (i, (x, y)) in pa.iter().zip(&pb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "step {step}, token {i}: refit distribution diverged ({x} vs {y})"
            );
        }
        let ta = draw_full.sample(&pa, |_| true);
        let tb = draw_refit.sample(&pb, |_| true);
        assert_eq!(ta, tb, "step {step}: seeded draws diverged");
        a.observe(ta);
        b.observe(tb);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// fit(prefix ++ suffix) == fit(prefix) + refit_extend(suffix), for
    /// every preset, at arbitrary split points of arbitrary token
    /// sequences.
    #[test]
    fn refit_extend_is_bit_identical_to_full_fit(
        preset_idx in 0usize..ModelPreset::ALL.len(),
        vocab in 2usize..12,
        raw in prop::collection::vec(0u32..64, 2..80),
        split_frac in 0.0f64..1.0,
        seed in 0u64..1_000,
    ) {
        let preset = ModelPreset::ALL[preset_idx];
        let tokens: Vec<TokenId> = raw.iter().map(|&t| t as TokenId % vocab as TokenId).collect();
        // A non-trivial split: both halves non-empty.
        let split = 1 + ((tokens.len() - 2) as f64 * split_frac) as usize;

        let full = fit_model(preset, vocab, &tokens);
        let mut refit = fit_model(preset, vocab, &tokens[..split]);
        prop_assert!(refit.refit_extend(&tokens[split..]), "concrete backends support refit");

        prop_assert_eq!(refit.prompt_cost(), full.prompt_cost(), "refit tokens are prompt tokens");
        assert_decodes_identically(full.as_ref(), refit.as_ref(), vocab, 24, seed);
    }

    /// Refitting in several increments lands in the same state as one
    /// increment (and hence, by the property above, as one full fit).
    #[test]
    fn chained_refits_compose(
        preset_idx in 0usize..ModelPreset::ALL.len(),
        vocab in 2usize..10,
        raw in prop::collection::vec(0u32..64, 3..60),
        seed in 0u64..1_000,
    ) {
        let preset = ModelPreset::ALL[preset_idx];
        let tokens: Vec<TokenId> = raw.iter().map(|&t| t as TokenId % vocab as TokenId).collect();
        let (a, b) = (tokens.len() / 3, 2 * tokens.len() / 3);

        let full = fit_model(preset, vocab, &tokens);
        let mut chained = fit_model(preset, vocab, &tokens[..a]);
        prop_assert!(chained.refit_extend(&tokens[a..b]));
        prop_assert!(chained.refit_extend(&tokens[b..]));

        prop_assert_eq!(chained.prompt_cost(), full.prompt_cost());
        assert_decodes_identically(full.as_ref(), chained.as_ref(), vocab, 16, seed);
    }
}
