//! Constrained stochastic sampling from next-token distributions.
//!
//! Reproduces the decoding side of LLMTime/MultiCast: the output alphabet
//! is *hard-restricted* (e.g. to `[0-9,]`), the distribution is sharpened
//! with a temperature, optionally truncated (top-k / nucleus), and a token
//! is drawn. Sampling is seeded so every experiment is replayable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::vocab::TokenId;

/// Sampler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerConfig {
    /// Softmax-style temperature applied in probability space
    /// (`p^(1/T)`, renormalized). `1.0` = sample from the model.
    pub temperature: f64,
    /// Keep only the `k` most probable tokens (before renormalizing).
    pub top_k: Option<usize>,
    /// Nucleus sampling: keep the smallest set of tokens whose cumulative
    /// probability reaches `p`.
    pub top_p: Option<f64>,
    /// Exploration floor: after temperature and truncation, the final
    /// distribution is mixed with `epsilon` of uniform mass over the
    /// surviving candidates. Zero (the default) samples the model as-is;
    /// the prediction-interval path uses a small positive value to model
    /// token-level uncertainty a pathologically confident in-context
    /// backend underestimates.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self { temperature: 0.9, top_k: None, top_p: Some(0.95), epsilon: 0.0, seed: 0 }
    }
}

/// A seeded sampler over token distributions.
#[derive(Debug, Clone)]
pub struct Sampler {
    config: SamplerConfig,
    rng: StdRng,
}

impl Sampler {
    /// Creates a sampler from a config (seed included in the config).
    pub fn new(config: SamplerConfig) -> Self {
        assert!(config.temperature > 0.0, "temperature must be positive");
        if let Some(p) = config.top_p {
            assert!(p > 0.0 && p <= 1.0, "top_p must be in (0, 1]");
        }
        if let Some(k) = config.top_k {
            assert!(k > 0, "top_k must be positive");
        }
        assert!((0.0..1.0).contains(&config.epsilon), "epsilon must be in [0, 1)");
        Self { rng: StdRng::seed_from_u64(config.seed), config }
    }

    /// Draws a token from `dist`, considering only ids where
    /// `allowed(id)` is true.
    ///
    /// # Panics
    /// If no allowed token has positive probability mass *and* uniform
    /// fallback over the allowed set is impossible (empty allowed set).
    pub fn sample(&mut self, dist: &[f64], allowed: impl Fn(TokenId) -> bool) -> TokenId {
        // 1. Mask.
        let mut probs: Vec<(TokenId, f64)> = dist
            .iter()
            .enumerate()
            .filter(|(i, _)| allowed(*i as TokenId))
            .map(|(i, &p)| (i as TokenId, p.max(0.0)))
            .collect();
        assert!(!probs.is_empty(), "constraint excludes every token");
        let mass: f64 = probs.iter().map(|(_, p)| p).sum();
        if mass <= 0.0 {
            // Model put no mass on the allowed set: fall back to uniform.
            let u = 1.0 / probs.len() as f64;
            for p in &mut probs {
                p.1 = u;
            }
        } else {
            for p in &mut probs {
                p.1 /= mass;
            }
        }

        // 2. Temperature in probability space.
        if (self.config.temperature - 1.0).abs() > 1e-12 {
            let inv_t = 1.0 / self.config.temperature;
            let mut total = 0.0;
            for p in &mut probs {
                p.1 = p.1.powf(inv_t);
                total += p.1;
            }
            for p in &mut probs {
                p.1 /= total;
            }
        }

        // 3. Truncation: sort by probability descending once for both rules.
        probs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        if let Some(k) = self.config.top_k {
            probs.truncate(k.max(1));
        }
        if let Some(top_p) = self.config.top_p {
            let mut cum = 0.0;
            let mut keep = probs.len();
            for (i, (_, p)) in probs.iter().enumerate() {
                cum += p;
                if cum >= top_p {
                    keep = i + 1;
                    break;
                }
            }
            probs.truncate(keep);
        }
        let mut total: f64 = probs.iter().map(|(_, p)| p).sum();

        // 4. Exploration floor over the surviving candidates.
        if self.config.epsilon > 0.0 {
            let uniform = total / probs.len() as f64;
            for p in &mut probs {
                p.1 = (1.0 - self.config.epsilon) * p.1 + self.config.epsilon * uniform;
            }
            total = probs.iter().map(|(_, p)| p).sum();
        }

        // 5. Draw.
        let mut u = self.rng.gen::<f64>() * total;
        for &(id, p) in &probs {
            u -= p;
            if u <= 0.0 {
                return id;
            }
        }
        probs.last().expect("non-empty after truncation").0
    }

    /// The configuration this sampler was built with.
    pub fn config(&self) -> SamplerConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(sampler: &mut Sampler, dist: &[f64], n: usize) -> Vec<usize> {
        let mut c = vec![0usize; dist.len()];
        for _ in 0..n {
            c[sampler.sample(dist, |_| true) as usize] += 1;
        }
        c
    }

    #[test]
    fn respects_hard_constraint() {
        let mut s = Sampler::new(SamplerConfig { seed: 1, ..Default::default() });
        let dist = [0.7, 0.1, 0.1, 0.1];
        for _ in 0..200 {
            let t = s.sample(&dist, |id| id % 2 == 1);
            assert!(t == 1 || t == 3, "sampled disallowed token {t}");
        }
    }

    #[test]
    fn falls_back_to_uniform_when_mass_excluded() {
        let mut s = Sampler::new(SamplerConfig {
            temperature: 1.0,
            top_k: None,
            top_p: None,
            seed: 2,
            epsilon: 0.0,
        });
        // All mass on token 0, but only 1 and 2 are allowed.
        let dist = [1.0, 0.0, 0.0];
        let c = counts_with(&mut s, &dist, |id| id != 0, 400);
        assert_eq!(c[0], 0);
        assert!(c[1] > 100 && c[2] > 100, "uniform fallback expected: {c:?}");
    }

    fn counts_with(
        sampler: &mut Sampler,
        dist: &[f64],
        allowed: impl Fn(TokenId) -> bool + Copy,
        n: usize,
    ) -> Vec<usize> {
        let mut c = vec![0usize; dist.len()];
        for _ in 0..n {
            c[sampler.sample(dist, allowed) as usize] += 1;
        }
        c
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let dist = [0.25, 0.25, 0.25, 0.25];
        let cfg = SamplerConfig { seed: 99, ..Default::default() };
        let a: Vec<TokenId> = {
            let mut s = Sampler::new(cfg);
            (0..50).map(|_| s.sample(&dist, |_| true)).collect()
        };
        let b: Vec<TokenId> = {
            let mut s = Sampler::new(cfg);
            (0..50).map(|_| s.sample(&dist, |_| true)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn low_temperature_sharpens() {
        let dist = [0.6, 0.4];
        let mut cold = Sampler::new(SamplerConfig {
            temperature: 0.05,
            top_k: None,
            top_p: None,
            seed: 3,
            epsilon: 0.0,
        });
        let c = counts(&mut cold, &dist, 300);
        assert!(c[0] > 290, "cold sampling should almost always pick the mode: {c:?}");
        let mut warm = Sampler::new(SamplerConfig {
            temperature: 1.0,
            top_k: None,
            top_p: None,
            seed: 3,
            epsilon: 0.0,
        });
        let w = counts(&mut warm, &dist, 300);
        assert!(w[1] > 60, "warm sampling keeps diversity: {w:?}");
    }

    #[test]
    fn top_k_truncates() {
        let dist = [0.5, 0.3, 0.15, 0.05];
        let mut s = Sampler::new(SamplerConfig {
            temperature: 1.0,
            top_k: Some(2),
            top_p: None,
            seed: 4,
            epsilon: 0.0,
        });
        let c = counts(&mut s, &dist, 500);
        assert_eq!(c[2] + c[3], 0, "top-2 must exclude tail tokens: {c:?}");
    }

    #[test]
    fn top_p_keeps_nucleus() {
        let dist = [0.9, 0.05, 0.03, 0.02];
        let mut s = Sampler::new(SamplerConfig {
            temperature: 1.0,
            top_k: None,
            top_p: Some(0.5),
            seed: 5,
            epsilon: 0.0,
        });
        let c = counts(&mut s, &dist, 300);
        assert_eq!(c[1] + c[2] + c[3], 0, "nucleus of 0.5 is just the mode: {c:?}");
    }

    #[test]
    #[should_panic(expected = "excludes every token")]
    fn empty_constraint_panics() {
        let mut s = Sampler::new(SamplerConfig::default());
        s.sample(&[0.5, 0.5], |_| false);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_rejected() {
        Sampler::new(SamplerConfig {
            temperature: 0.0,
            top_k: None,
            top_p: None,
            seed: 0,
            epsilon: 0.0,
        });
    }
}
