//! Multi-tenant cache of fitted [`FrozenLm`] contexts.
//!
//! The zero-shot pipeline pays a full prompt fit per forecast cohort;
//! the serve scheduler's frozen-context dedup (PR 3) only shares that
//! fit *within* one batch. [`LmCache`] is the cross-batch half of "fit
//! once, serve many": a bounded, sharded map from spec fingerprint to
//! fitted context, shared across `serve_all` batches and tenants, with
//! **incremental refit** — when a tenant streams new observations, the
//! cached ancestor whose prompt is a prefix of the new one is
//! delta-updated in place via [`FrozenLm::refit_extend`] instead of
//! being refit from scratch. Refit is bit-identical to a from-scratch
//! fit (the differential proptests in `crates/lm/tests` are the proof),
//! so a warm cache can never change a forecast.
//!
//! # Pinning vs eviction
//!
//! A context handed out by [`LmCache::acquire`]/[`LmCache::insert`] is
//! **pinned**: in-flight `DecodeSession` forks borrow the frozen base,
//! so eviction while pinned would free memory under a live reader.
//! Eviction therefore skips pinned entries unconditionally — the cache
//! runs over capacity rather than freeing a pinned context — and the
//! caller unpins via [`LmCache::release`] at its flush boundary. All
//! locking routes through `mc_sync`, so the loom model check
//! (`crates/core/tests/loom_cache.rs`) explores pin/evict interleavings
//! exhaustively.
//!
//! # Sharding
//!
//! Entries shard by **family** fingerprint (every spec component except
//! the prompt), not by the full fingerprint: all prompts of one tenant
//! family colocate, so the prefix scan behind incremental refit touches
//! exactly one shard lock.

use crate::model::FrozenLm;
use crate::vocab::TokenId;
use mc_obs::{mix, Recorder, SpanEvent, SpanKind};
use mc_sync::atomic::{AtomicU64, Ordering};
use mc_sync::{Arc, Mutex};

/// Eviction policy for [`LmCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Evict the least-recently-touched unpinned entry.
    #[default]
    Lru,
    /// Segmented LRU (ARC-flavoured, scan-resistant): entries that have
    /// never been hit since insertion are on probation and evict first;
    /// proven entries evict only when no probationary one is available.
    Slru,
}

/// How the cache reacts to a prompt that strictly extends a cached one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefitMode {
    /// Delta-update the cached ancestor in place via
    /// [`FrozenLm::refit_extend`] (bit-identical to a full fit).
    #[default]
    Incremental,
    /// Always fit extended prompts from scratch (the ancestor stays
    /// cached for exact hits).
    Rebuild,
}

/// Shape knobs for [`LmCache`] (small and `Copy` so serve configs can
/// embed it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum resident contexts across all shards. Pinned entries are
    /// never evicted, so the cache may transiently exceed this.
    pub capacity: usize,
    /// Number of independent shard locks.
    pub shards: usize,
    /// Eviction policy.
    pub policy: CachePolicy,
    /// Refit behaviour for prefix-extended prompts.
    pub refit: RefitMode,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self { capacity: 32, shards: 4, policy: CachePolicy::Lru, refit: RefitMode::Incremental }
    }
}

/// Counter snapshot (see [`LmCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Exact-fingerprint hits.
    pub hits: u64,
    /// Lookups that found nothing usable (caller fits from scratch).
    pub misses: u64,
    /// Prefix hits resolved by incremental refit.
    pub refits: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache (exact hits + refits).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.refits + self.misses;
        if lookups == 0 {
            return 0.0;
        }
        (self.hits + self.refits) as f64 / lookups as f64
    }
}

/// Outcome of [`LmCache::acquire`].
pub enum Found {
    /// Exact fingerprint hit; the entry is pinned. The epoch is the
    /// entry's refit epoch (0 for a never-refit context).
    Hit {
        /// The cached frozen context.
        frozen: Arc<dyn FrozenLm>,
        /// Monotone refit epoch of the entry.
        epoch: u64,
    },
    /// A cached ancestor (strict prompt prefix, same family) was
    /// delta-updated in place to cover the requested prompt; the entry
    /// is pinned and now keyed under the requested fingerprint with a
    /// bumped epoch.
    Refit {
        /// The refit frozen context (bit-identical to a full fit).
        frozen: Arc<dyn FrozenLm>,
        /// Monotone refit epoch after the bump (≥ 1).
        epoch: u64,
        /// Tokens appended by the delta update.
        appended: usize,
    },
    /// Nothing usable cached; fit from scratch and [`LmCache::insert`].
    Miss,
}

struct Entry {
    fingerprint: u64,
    family: u64,
    prompt: Vec<TokenId>,
    frozen: Arc<dyn FrozenLm>,
    pins: usize,
    epoch: u64,
    last_touch: u64,
    hits: u64,
}

struct Shard {
    entries: Vec<Entry>,
}

/// Bounded, sharded multi-tenant cache of fitted contexts. See the
/// [module docs](self).
pub struct LmCache {
    config: CacheConfig,
    shards: Vec<Mutex<Shard>>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    refits: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
}

impl LmCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    /// If `capacity` or `shards` is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.capacity > 0, "cache capacity must be positive");
        assert!(config.shards > 0, "cache shard count must be positive");
        Self {
            config,
            shards: (0..config.shards).map(|_| Mutex::new(Shard { entries: Vec::new() })).collect(),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            refits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    fn shard(&self, family: u64) -> &Mutex<Shard> {
        &self.shards[(family % self.shards.len() as u64) as usize]
    }

    fn touch(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Looks up a context for `(family, fingerprint, prompt)` and pins
    /// it on success.
    ///
    /// Resolution order: exact fingerprint hit; else (in
    /// [`RefitMode::Incremental`]) the longest cached strict prompt
    /// prefix in the same family that is unpinned and uniquely owned is
    /// refit-extended in place and re-keyed under `fingerprint`; else
    /// [`Found::Miss`]. Every `Hit`/`Refit` must be balanced by one
    /// [`LmCache::release`] with the same `(family, fingerprint)`.
    pub fn acquire(&self, family: u64, fingerprint: u64, prompt: &[TokenId]) -> Found {
        let now = self.touch();
        let mut shard = self.shard(family).lock().expect("cache shard lock");
        if let Some(e) = shard.entries.iter_mut().find(|e| e.fingerprint == fingerprint) {
            e.pins += 1;
            e.hits += 1;
            e.last_touch = now;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Found::Hit { frozen: Arc::clone(&e.frozen), epoch: e.epoch };
        }
        if self.config.refit == RefitMode::Incremental {
            // Longest strict-prefix ancestor that nothing else holds:
            // refit mutates the context in place, so it must be both
            // unpinned and uniquely owned by the cache.
            let candidate = shard
                .entries
                .iter_mut()
                .filter(|e| {
                    e.family == family
                        && e.pins == 0
                        && e.prompt.len() < prompt.len()
                        && prompt.starts_with(&e.prompt)
                })
                .max_by_key(|e| e.prompt.len());
            if let Some(e) = candidate {
                let extendable = Arc::get_mut(&mut e.frozen)
                    .is_some_and(|m| m.refit_extend(&prompt[e.prompt.len()..]));
                if extendable {
                    let appended = prompt.len() - e.prompt.len();
                    e.prompt = prompt.to_vec();
                    e.fingerprint = fingerprint;
                    e.epoch += 1;
                    e.pins = 1;
                    e.hits += 1;
                    e.last_touch = now;
                    self.refits.fetch_add(1, Ordering::Relaxed);
                    return Found::Refit {
                        frozen: Arc::clone(&e.frozen),
                        epoch: e.epoch,
                        appended,
                    };
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        Found::Miss
    }

    /// [`LmCache::acquire`] wrapped in a `cache_lookup` span keyed by the
    /// context fingerprint. Cache warmth depends on flush history, so the
    /// span is scheduler-scoped (tick-minted id, sidecar export only); a
    /// disabled recorder makes this identical to `acquire`.
    pub fn acquire_observed(
        &self,
        family: u64,
        fingerprint: u64,
        prompt: &[TokenId],
        obs: &dyn Recorder,
    ) -> Found {
        if !obs.enabled() {
            return self.acquire(family, fingerprint, prompt);
        }
        let id = mix(obs.now(), SpanKind::CacheLookup.index() as u64);
        obs.span(SpanEvent::open_with_id(id, fingerprint, SpanKind::CacheLookup));
        let found = self.acquire(family, fingerprint, prompt);
        obs.span(SpanEvent::close_with_id(id, fingerprint, SpanKind::CacheLookup));
        found
    }

    /// Inserts a freshly fitted context and pins it.
    ///
    /// If the fingerprint is already resident (two tenants fit the same
    /// spec concurrently), the existing entry wins — it is pinned and
    /// returned, and `frozen` is dropped — so both callers share one
    /// context. Inserting may evict unpinned entries per the policy;
    /// pinned entries are never evicted, even over capacity.
    pub fn insert(
        &self,
        family: u64,
        fingerprint: u64,
        prompt: &[TokenId],
        frozen: Arc<dyn FrozenLm>,
    ) -> Arc<dyn FrozenLm> {
        let now = self.touch();
        let mut shard = self.shard(family).lock().expect("cache shard lock");
        if let Some(e) = shard.entries.iter_mut().find(|e| e.fingerprint == fingerprint) {
            e.pins += 1;
            e.last_touch = now;
            return Arc::clone(&e.frozen);
        }
        shard.entries.push(Entry {
            fingerprint,
            family,
            prompt: prompt.to_vec(),
            frozen: Arc::clone(&frozen),
            pins: 1,
            epoch: 0,
            last_touch: now,
            hits: 0,
        });
        self.insertions.fetch_add(1, Ordering::Relaxed);
        // Per-shard share of the global capacity, rounded up so small
        // caches still hold at least one entry per shard.
        let per_shard = self.config.capacity.div_ceil(self.shards.len());
        while shard.entries.len() > per_shard {
            let victim = match self.config.policy {
                CachePolicy::Lru => shard
                    .entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.pins == 0)
                    .min_by_key(|(_, e)| e.last_touch)
                    .map(|(i, _)| i),
                CachePolicy::Slru => {
                    let probation = shard
                        .entries
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.pins == 0 && e.hits == 0)
                        .min_by_key(|(_, e)| e.last_touch)
                        .map(|(i, _)| i);
                    probation.or_else(|| {
                        shard
                            .entries
                            .iter()
                            .enumerate()
                            .filter(|(_, e)| e.pins == 0)
                            .min_by_key(|(_, e)| e.last_touch)
                            .map(|(i, _)| i)
                    })
                }
            };
            match victim {
                Some(i) => {
                    shard.entries.remove(i);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                // Everything is pinned: run over capacity rather than
                // free a context a live fork may be reading.
                None => break,
            }
        }
        // The freshly inserted (pinned) entry can never be the victim.
        let e = shard
            .entries
            .iter()
            .find(|e| e.fingerprint == fingerprint)
            .expect("pinned insert survived eviction");
        Arc::clone(&e.frozen)
    }

    /// Unpins one acquisition of `(family, fingerprint)`.
    ///
    /// Call exactly once per successful [`LmCache::acquire`] (`Hit` or
    /// `Refit`) or [`LmCache::insert`], at the caller's flush boundary.
    /// Releasing an entry evicted while pinned is impossible (pinned
    /// entries are never evicted); releasing an unknown fingerprint is
    /// a caller bug and panics.
    pub fn release(&self, family: u64, fingerprint: u64) {
        let mut shard = self.shard(family).lock().expect("cache shard lock");
        let e = shard
            .entries
            .iter_mut()
            .find(|e| e.fingerprint == fingerprint)
            .expect("release of unknown cache entry");
        assert!(e.pins > 0, "release without matching acquire");
        e.pins -= 1;
    }

    /// Current pin count of a resident entry (tests and invariants).
    pub fn pins(&self, family: u64, fingerprint: u64) -> Option<usize> {
        let shard = self.shard(family).lock().expect("cache shard lock");
        shard.entries.iter().find(|e| e.fingerprint == fingerprint).map(|e| e.pins)
    }

    /// Number of resident contexts.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard lock").entries.len()).sum()
    }

    /// Whether the cache holds no contexts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            refits: self.refits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for LmCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LmCache")
            .field("config", &self.config)
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::observe_all;
    use crate::presets::{fit_model, ModelPreset};

    fn fit(prompt: &[TokenId]) -> Arc<dyn FrozenLm> {
        Arc::from(fit_model(ModelPreset::Small, 4, prompt))
    }

    fn small_cache(capacity: usize) -> LmCache {
        LmCache::new(CacheConfig { capacity, shards: 1, ..CacheConfig::default() })
    }

    #[test]
    fn miss_insert_hit_release_cycle() {
        let cache = small_cache(4);
        let prompt = [0u32, 1, 2, 3];
        assert!(matches!(cache.acquire(7, 100, &prompt), Found::Miss));
        cache.insert(7, 100, &prompt, fit(&prompt));
        assert_eq!(cache.pins(7, 100), Some(1));
        match cache.acquire(7, 100, &prompt) {
            Found::Hit { epoch, .. } => assert_eq!(epoch, 0),
            _ => panic!("expected exact hit"),
        }
        assert_eq!(cache.pins(7, 100), Some(2));
        cache.release(7, 100);
        cache.release(7, 100);
        assert_eq!(cache.pins(7, 100), Some(0));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prefix_extension_refits_in_place() {
        let cache = small_cache(4);
        let prefix = [0u32, 1, 2, 0, 1, 2];
        let full = [0u32, 1, 2, 0, 1, 2, 0, 1];
        cache.insert(7, 100, &prefix, fit(&prefix));
        cache.release(7, 100);
        let refit = match cache.acquire(7, 200, &full) {
            Found::Refit { frozen, epoch, appended } => {
                assert_eq!(epoch, 1);
                assert_eq!(appended, 2);
                frozen
            }
            _ => panic!("expected prefix refit"),
        };
        // Bit-identical to a from-scratch fit of the full prompt.
        let cold = fit(&full);
        let mut warm_p = vec![0.0; 4];
        let mut cold_p = vec![0.0; 4];
        refit.fork().next_distribution(&mut warm_p);
        cold.fork().next_distribution(&mut cold_p);
        assert_eq!(
            warm_p.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            cold_p.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(refit.prompt_cost(), cold.prompt_cost());
        // Old key is gone; new key hits exactly.
        assert_eq!(cache.pins(7, 100), None);
        assert_eq!(cache.pins(7, 200), Some(1));
        assert_eq!(cache.len(), 1);
        cache.release(7, 200);
        assert_eq!(cache.stats().refits, 1);
    }

    #[test]
    fn refit_refuses_pinned_and_shared_ancestors() {
        let cache = small_cache(4);
        let prefix = [0u32, 1];
        let full = [0u32, 1, 2];
        // Still pinned: the ancestor must not be mutated under a reader.
        let held = cache.insert(7, 100, &prefix, fit(&prefix));
        assert!(matches!(cache.acquire(7, 200, &full), Found::Miss));
        drop(held);
        cache.release(7, 100);
        // Unpinned but another Arc is still alive outside the cache: the
        // uniqueness check must also refuse.
        let Found::Hit { frozen: outside, .. } = cache.acquire(7, 100, &prefix) else {
            panic!("expected hit")
        };
        cache.release(7, 100);
        assert!(matches!(cache.acquire(7, 200, &full), Found::Miss));
        drop(outside);
        assert!(matches!(cache.acquire(7, 200, &full), Found::Refit { .. }));
        cache.release(7, 200);
    }

    #[test]
    fn rebuild_mode_never_refits() {
        let cache = LmCache::new(CacheConfig {
            capacity: 4,
            shards: 1,
            refit: RefitMode::Rebuild,
            ..CacheConfig::default()
        });
        let prefix = [0u32, 1];
        let full = [0u32, 1, 2];
        cache.insert(7, 100, &prefix, fit(&prefix));
        cache.release(7, 100);
        assert!(matches!(cache.acquire(7, 200, &full), Found::Miss));
        assert_eq!(cache.stats().refits, 0);
    }

    #[test]
    fn eviction_is_lru_and_skips_pinned() {
        let cache = small_cache(2);
        let p = [0u32];
        cache.insert(1, 10, &p, fit(&p)); // pinned — immune
        cache.insert(2, 20, &p, fit(&p));
        cache.release(2, 20);
        // 10 is older but pinned, so 30's insertion must evict 20.
        cache.insert(3, 30, &p, fit(&p));
        cache.release(3, 30);
        assert_eq!(cache.len(), 2);
        assert!(cache.pins(1, 10).is_some(), "pinned entry must survive");
        assert_eq!(cache.stats().evictions, 1);
        // All pinned: capacity may be exceeded, nothing is freed.
        cache.release(1, 10);
        let held_a = cache.acquire(1, 10, &p);
        let held_b = cache.acquire(3, 30, &p);
        assert!(matches!(held_a, Found::Hit { .. }) && matches!(held_b, Found::Hit { .. }));
        cache.insert(4, 40, &p, fit(&p));
        assert_eq!(cache.len(), 3, "fully pinned cache must run over capacity");
    }

    #[test]
    fn slru_prefers_probationary_victims() {
        let cache = LmCache::new(CacheConfig {
            capacity: 2,
            shards: 1,
            policy: CachePolicy::Slru,
            ..CacheConfig::default()
        });
        let p = [0u32];
        cache.insert(1, 10, &p, fit(&p));
        cache.release(1, 10);
        cache.acquire(1, 10, &p); // entry 10 is now proven (1 hit)
        cache.release(1, 10);
        cache.insert(2, 20, &p, fit(&p)); // probation, but more recent
        cache.release(2, 20);
        cache.insert(3, 30, &p, fit(&p));
        cache.release(3, 30);
        // LRU would evict 10 (oldest); SLRU protects it and takes 20.
        assert!(cache.pins(1, 10).is_some());
        assert!(cache.pins(2, 20).is_none());
    }

    #[test]
    fn duplicate_insert_shares_the_existing_entry() {
        let cache = small_cache(4);
        let p = [0u32, 1];
        let first = cache.insert(7, 100, &p, fit(&p));
        let second = cache.insert(7, 100, &p, fit(&p));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.pins(7, 100), Some(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn refit_matches_streamed_observation_semantics() {
        // The refit context must behave like a model that observed the
        // whole stream: same distribution as a mutable model fed
        // prefix ++ suffix.
        let cache = small_cache(4);
        let prefix: Vec<TokenId> = [0u32, 1, 2, 3].iter().cycle().take(12).copied().collect();
        let full: Vec<TokenId> = [0u32, 1, 2, 3].iter().cycle().take(19).copied().collect();
        cache.insert(9, 1, &prefix, fit(&prefix));
        cache.release(9, 1);
        let Found::Refit { frozen: refit, .. } = cache.acquire(9, 2, &full) else {
            panic!("expected refit")
        };
        let mut live = crate::presets::build_model(ModelPreset::Small, 4);
        observe_all(live.as_mut(), &full);
        let mut p_warm = vec![0.0; 4];
        let mut p_live = vec![0.0; 4];
        refit.fork().next_distribution(&mut p_warm);
        live.next_distribution(&mut p_live);
        assert_eq!(
            p_warm.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            p_live.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        cache.release(9, 2);
    }

    #[test]
    #[should_panic(expected = "release of unknown cache entry")]
    fn release_of_unknown_entry_panics() {
        small_cache(2).release(1, 999);
    }
}
