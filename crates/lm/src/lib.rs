//! # mc-lm — language-model substrate for the MultiCast reproduction
//!
//! The paper runs MultiCast on LLaMA2-7B and Phi-2 through the HuggingFace
//! API. Neither model can be shipped inside this repository, so this crate
//! provides the substitution documented in `DESIGN.md` §2: **in-context
//! sequence models** over the same character-level token alphabet, with the
//! same interface contract a frozen LLM offers the MultiCast pipeline:
//!
//! 1. a [`Tokenizer`] mapping text to corpus ids and back
//!    ([`CharTokenizer`] implements the digit-level scheme LLMTime forces);
//! 2. a [`LanguageModel`] that consumes a prompt token-by-token and yields
//!    a next-token distribution — pattern learning happens *in context*,
//!    exactly like zero-shot prompting (no training phase, no labels);
//! 3. a constrained, temperature-controlled [`sampler`] reproducing the
//!    paper's restriction of the output alphabet to digits and commas;
//! 4. autoregressive [`generate`] with per-token cost accounting, so the
//!    wall-clock/token-budget experiments (Tables VII–IX) are meaningful.
//!
//! Two model families are provided: [`NGramLm`] (interpolated back-off
//! context mixing, cheap per token) and [`SuffixLm`] (longest-suffix
//! matching over the whole context, O(context) per token — the same
//! asymptotic cost shape as transformer decoding). The [`presets`] module
//! maps the paper's backends to capacity tiers: `Large` ↔ LLaMA2-7B,
//! `Small` ↔ Phi-2.

pub mod bpe;
pub mod cache;
pub mod concrete;
pub mod cost;
pub mod ensemble;
pub mod generate;
pub mod metered;
pub mod model;
pub mod ngram;
pub mod ppm;
pub mod presets;
pub mod sampler;
pub mod suffix;
pub mod tokenizer;
pub mod vocab;

pub use bpe::BpeTokenizer;
pub use cache::{CacheConfig, CachePolicy, CacheStats, Found, LmCache, RefitMode};
pub use concrete::ConcreteLm;
pub use cost::InferenceCost;
pub use ensemble::{EnsembleLm, EnsembleSession, FrozenEnsemble};
pub use generate::{
    generate, generate_session, generate_session_budgeted, DecodeBudget, GenerateOptions,
};
pub use metered::{CostLedger, MeteredLm};
pub use model::{DecodeSession, FrozenLm, LanguageModel};
pub use ngram::{FrozenNGram, NGramLm, NGramSession};
pub use ppm::{FrozenPpm, PpmLm, PpmSession};
pub use presets::{build_model, fit_model, ModelPreset};
pub use sampler::{Sampler, SamplerConfig};
pub use suffix::{FrozenSuffix, SuffixLm, SuffixSession};
pub use tokenizer::{CharTokenizer, Tokenizer};
pub use vocab::{TokenId, Vocab};
