//! Token vocabulary: character ↔ corpus-id mapping.
//!
//! The paper (following LLMTime) tokenizes series text at the character
//! level: every digit, comma, space and SAX symbol is one token, "assigned
//! with the corresponding corpus id" before inference. [`Vocab`] is that
//! corpus-id table.

use std::collections::HashMap;

/// A token's corpus id. Kept at 32 bits: vocabularies here are tiny
/// (digits + separators + SAX letters), but ids are used as array indices
/// throughout, so a dedicated type documents intent.
pub type TokenId = u32;

/// Character-level vocabulary with stable, dense ids `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vocab {
    id_to_char: Vec<char>,
    char_to_id: HashMap<char, TokenId>,
}

impl Vocab {
    /// Builds a vocabulary from a set of characters. Duplicates are
    /// ignored; ids follow first-occurrence order.
    pub fn new(chars: impl IntoIterator<Item = char>) -> Self {
        let mut id_to_char = Vec::new();
        let mut char_to_id = HashMap::new();
        for c in chars {
            if let std::collections::hash_map::Entry::Vacant(e) = char_to_id.entry(c) {
                e.insert(id_to_char.len() as TokenId);
                id_to_char.push(c);
            }
        }
        Self { id_to_char, char_to_id }
    }

    /// The vocabulary used for numeric (non-SAX) series text:
    /// digits, comma, space and minus sign.
    ///
    /// This matches the paper's note that "the model's output is limited to
    /// producing only digits and commas (i.e., `[0-9,]`)"; space and minus
    /// appear only on the input side (separators, negative rescaled values).
    pub fn numeric() -> Self {
        Self::new("0123456789, -".chars().filter(|c| *c != ' ').chain([' ']))
    }

    /// Vocabulary for SAX-quantized series with an alphabetical alphabet of
    /// the given size (≤ 26): `a..`, comma and space.
    pub fn sax_alphabetic(alphabet_size: usize) -> Self {
        assert!(
            (2..=26).contains(&alphabet_size),
            "alphabetical SAX alphabet must have 2..=26 symbols, got {alphabet_size}"
        );
        let letters = (0..alphabet_size).map(|i| (b'a' + i as u8) as char);
        Self::new(letters.chain([',', ' ']))
    }

    /// Vocabulary for SAX-quantized series with a digital alphabet of the
    /// given size (≤ 10): `0..`, comma and space.
    ///
    /// The paper notes "for digits we can only go up to an alphabet of
    /// size 10" (Table IX's `N/A` cell) — enforced here by the assert.
    pub fn sax_digital(alphabet_size: usize) -> Self {
        assert!(
            (2..=10).contains(&alphabet_size),
            "digital SAX alphabet must have 2..=10 symbols, got {alphabet_size}"
        );
        let digits = (0..alphabet_size).map(|i| (b'0' + i as u8) as char);
        Self::new(digits.chain([',', ' ']))
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.id_to_char.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.id_to_char.is_empty()
    }

    /// Corpus id of a character, if present.
    pub fn id(&self, c: char) -> Option<TokenId> {
        self.char_to_id.get(&c).copied()
    }

    /// Character of a corpus id, if valid.
    pub fn char(&self, id: TokenId) -> Option<char> {
        self.id_to_char.get(id as usize).copied()
    }

    /// Ids of every character in `set`, skipping absentees.
    pub fn ids_of(&self, set: &str) -> Vec<TokenId> {
        set.chars().filter_map(|c| self.id(c)).collect()
    }

    /// All characters in id order.
    pub fn chars(&self) -> &[char] {
        &self.id_to_char
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let v = Vocab::new("abca".chars());
        assert_eq!(v.len(), 3);
        assert_eq!(v.id('a'), Some(0));
        assert_eq!(v.id('b'), Some(1));
        assert_eq!(v.id('c'), Some(2));
        assert_eq!(v.char(1), Some('b'));
        assert_eq!(v.char(3), None);
        assert_eq!(v.id('z'), None);
    }

    #[test]
    fn numeric_vocab_covers_series_text() {
        let v = Vocab::numeric();
        for c in "0123456789, -".chars() {
            assert!(v.id(c).is_some(), "missing `{c}`");
        }
        assert_eq!(v.len(), 13);
    }

    #[test]
    fn sax_alphabetic_sizes() {
        let v = Vocab::sax_alphabetic(5);
        assert_eq!(v.len(), 7); // a-e + comma + space
        assert!(v.id('e').is_some());
        assert!(v.id('f').is_none());
        let v20 = Vocab::sax_alphabetic(20);
        assert!(v20.id('t').is_some());
        assert!(v20.id('u').is_none());
    }

    #[test]
    #[should_panic(expected = "2..=26")]
    fn sax_alphabetic_rejects_oversize() {
        Vocab::sax_alphabetic(27);
    }

    #[test]
    fn sax_digital_sizes() {
        let v = Vocab::sax_digital(10);
        assert_eq!(v.len(), 12);
        assert!(v.id('9').is_some());
    }

    #[test]
    #[should_panic(expected = "2..=10")]
    fn sax_digital_rejects_oversize() {
        // This is the paper's Table IX `N/A` cell: no 20-symbol digital SAX.
        Vocab::sax_digital(20);
    }

    #[test]
    fn ids_of_filters_unknown() {
        let v = Vocab::numeric();
        let ids = v.ids_of("0,x");
        assert_eq!(ids.len(), 2);
    }
}
