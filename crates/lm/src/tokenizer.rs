//! Character-level tokenization against a [`Vocab`].
//!
//! LLMTime showed that LLM forecasting only works when numbers are broken
//! into *individual digit tokens*; MultiCast inherits that requirement
//! ("each digit is treated separately... tokens are replaced with their
//! corresponding corpus id"). [`CharTokenizer`] is exactly that scheme.

use crate::vocab::{TokenId, Vocab};

/// Errors from tokenization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenizeError {
    /// The input contained a character outside the vocabulary.
    UnknownChar {
        /// The offending character.
        c: char,
        /// Byte offset in the input.
        at: usize,
    },
    /// A token id outside the vocabulary was passed to `decode`.
    UnknownId(TokenId),
}

impl std::fmt::Display for TokenizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenizeError::UnknownChar { c, at } => {
                write!(f, "character `{c}` at byte {at} is not in the vocabulary")
            }
            TokenizeError::UnknownId(id) => write!(f, "token id {id} is not in the vocabulary"),
        }
    }
}

impl std::error::Error for TokenizeError {}

/// Maps text to corpus-id sequences and back.
pub trait Tokenizer {
    /// The vocabulary this tokenizer speaks.
    fn vocab(&self) -> &Vocab;

    /// Encodes text to token ids. Fails on out-of-vocabulary characters.
    fn encode(&self, text: &str) -> Result<Vec<TokenId>, TokenizeError>;

    /// Decodes token ids back to text. Fails on out-of-range ids.
    fn decode(&self, ids: &[TokenId]) -> Result<String, TokenizeError>;
}

/// One character = one token.
#[derive(Debug, Clone)]
pub struct CharTokenizer {
    vocab: Vocab,
}

impl CharTokenizer {
    /// Wraps a vocabulary as a character-level tokenizer.
    pub fn new(vocab: Vocab) -> Self {
        Self { vocab }
    }

    /// Tokenizer over the numeric vocabulary (digits, comma, space, minus).
    pub fn numeric() -> Self {
        Self::new(Vocab::numeric())
    }
}

impl Tokenizer for CharTokenizer {
    fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    fn encode(&self, text: &str) -> Result<Vec<TokenId>, TokenizeError> {
        let mut out = Vec::with_capacity(text.len());
        for (at, c) in text.char_indices() {
            match self.vocab.id(c) {
                Some(id) => out.push(id),
                None => return Err(TokenizeError::UnknownChar { c, at }),
            }
        }
        Ok(out)
    }

    fn decode(&self, ids: &[TokenId]) -> Result<String, TokenizeError> {
        let mut out = String::with_capacity(ids.len());
        for &id in ids {
            match self.vocab.char(id) {
                Some(c) => out.push(c),
                None => return Err(TokenizeError::UnknownId(id)),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let t = CharTokenizer::numeric();
        let text = "12,34, -5";
        let ids = t.encode(text).unwrap();
        assert_eq!(ids.len(), text.chars().count());
        assert_eq!(t.decode(&ids).unwrap(), text);
    }

    #[test]
    fn unknown_char_position_reported() {
        let t = CharTokenizer::numeric();
        let err = t.encode("12x").unwrap_err();
        assert_eq!(err, TokenizeError::UnknownChar { c: 'x', at: 2 });
    }

    #[test]
    fn unknown_id_rejected() {
        let t = CharTokenizer::numeric();
        let err = t.decode(&[9999]).unwrap_err();
        assert_eq!(err, TokenizeError::UnknownId(9999));
    }

    #[test]
    fn digits_are_separate_tokens() {
        // The LLMTime requirement: "17" is two tokens, never one.
        let t = CharTokenizer::numeric();
        let ids = t.encode("17").unwrap();
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn sax_tokenizer_round_trip() {
        let t = CharTokenizer::new(crate::vocab::Vocab::sax_alphabetic(5));
        let ids = t.encode("ab,ce").unwrap();
        assert_eq!(t.decode(&ids).unwrap(), "ab,ce");
        assert!(t.encode("z").is_err());
    }
}
