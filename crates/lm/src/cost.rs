//! Inference cost accounting.
//!
//! The paper motivates both SAX quantization and the sample-count trade-off
//! with *token budgets*: hosted LLMs "charge queries by token", and CPU
//! inference time scales with tokens processed. Every model in this crate
//! tracks the tokens it consumes and emits plus an abstract work counter,
//! so the benchmark harness can report token counts next to wall-clock
//! times (Tables VII–IX).

/// Running totals of one inference session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InferenceCost {
    /// Tokens consumed from the prompt.
    pub prompt_tokens: u64,
    /// Tokens generated autoregressively.
    pub generated_tokens: u64,
    /// Abstract work units: for [`crate::SuffixLm`] this counts context
    /// positions scanned (the transformer-like O(context²) total); for
    /// [`crate::NGramLm`] it counts hash-table probes.
    pub work_units: u64,
}

impl InferenceCost {
    /// Total tokens that passed through the model.
    pub fn total_tokens(&self) -> u64 {
        self.prompt_tokens + self.generated_tokens
    }

    /// Dollar cost under a simple per-token price (e.g. hosted-API style
    /// pricing, defaults in [`Pricing`]).
    pub fn price(&self, pricing: Pricing) -> f64 {
        self.prompt_tokens as f64 * pricing.per_prompt_token
            + self.generated_tokens as f64 * pricing.per_generated_token
    }

    /// Accumulates another session's cost into this one.
    pub fn absorb(&mut self, other: InferenceCost) {
        self.prompt_tokens += other.prompt_tokens;
        self.generated_tokens += other.generated_tokens;
        self.work_units += other.work_units;
    }
}

/// A per-token price sheet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pricing {
    /// Price per prompt token.
    pub per_prompt_token: f64,
    /// Price per generated token.
    pub per_generated_token: f64,
}

impl Default for Pricing {
    /// Representative hosted-LLM pricing at the time of the paper
    /// (order of magnitude only; used for relative comparisons).
    fn default() -> Self {
        Self { per_prompt_token: 0.5e-6, per_generated_token: 1.5e-6 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_absorb() {
        let mut a = InferenceCost { prompt_tokens: 10, generated_tokens: 5, work_units: 100 };
        let b = InferenceCost { prompt_tokens: 1, generated_tokens: 2, work_units: 3 };
        a.absorb(b);
        assert_eq!(a.total_tokens(), 18);
        assert_eq!(a.work_units, 103);
    }

    #[test]
    fn pricing_weights_generation_higher() {
        let c = InferenceCost { prompt_tokens: 1000, generated_tokens: 1000, work_units: 0 };
        let p = c.price(Pricing::default());
        assert!(p > 0.0);
        let gen_only = InferenceCost { prompt_tokens: 0, generated_tokens: 1000, work_units: 0 };
        let prompt_only = InferenceCost { prompt_tokens: 1000, generated_tokens: 0, work_units: 0 };
        assert!(gen_only.price(Pricing::default()) > prompt_only.price(Pricing::default()));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(InferenceCost::default().total_tokens(), 0);
    }
}
