//! Autoregressive generation: prompt → constrained continuation.
//!
//! Mirrors how LLMTime/MultiCast query the backend: feed the serialized
//! series as the prompt, then decode token-by-token under the output
//! constraint until the continuation contains enough separators to cover
//! the forecast horizon (each separator delimits one timestamp's value).

use mc_obs::{Clock, LogicalClock};

use crate::model::{observe_all, DecodeSession, LanguageModel};
use crate::sampler::Sampler;
use crate::vocab::TokenId;

/// A cooperative per-attempt decode deadline, measured in tokens.
///
/// Built on the `mc-obs` clock seam — each budget owns its *own*
/// [`LogicalClock`], ticked once per generated token, so exhaustion
/// depends only on this attempt's output, never on wall time or on what
/// other workers are doing. The generate loop consults [`try_tick`]
/// before every draw and stops cleanly when the budget runs dry; the
/// truncated continuation then flows through the ordinary defect
/// validation instead of blocking a worker.
///
/// [`try_tick`]: DecodeBudget::try_tick
#[derive(Debug)]
pub struct DecodeBudget {
    clock: LogicalClock,
    limit: u64,
}

impl DecodeBudget {
    /// A budget allowing at most `limit` generated tokens.
    pub fn new(limit: u64) -> Self {
        Self { clock: LogicalClock::new(), limit }
    }

    /// Consumes one token of budget. Returns `false` — without
    /// consuming — once the limit is reached; the decode loop must then
    /// stop.
    pub fn try_tick(&self) -> bool {
        if self.clock.reading() >= self.limit {
            return false;
        }
        self.clock.now();
        true
    }

    /// Tokens consumed so far.
    pub fn spent(&self) -> u64 {
        self.clock.reading()
    }

    /// Whether the budget has been fully consumed.
    pub fn exhausted(&self) -> bool {
        self.clock.reading() >= self.limit
    }

    /// The token limit this budget was built with.
    pub fn limit(&self) -> u64 {
        self.limit
    }
}

/// Stopping rule and budget for one continuation.
#[derive(Debug, Clone)]
pub struct GenerateOptions {
    /// Hard cap on generated tokens (guards against degenerate loops).
    pub max_tokens: usize,
    /// Stop once this token has been emitted `stop_count` times.
    /// In the forecasting pipeline this is the separator (`,`): emitting
    /// `horizon` separators means `horizon` values have been produced.
    pub stop_token: Option<TokenId>,
    /// Number of `stop_token` occurrences to wait for.
    pub stop_count: usize,
}

impl GenerateOptions {
    /// Stop after `count` occurrences of `separator`, with a sane token cap.
    pub fn until_separators(separator: TokenId, count: usize, max_tokens: usize) -> Self {
        Self { max_tokens, stop_token: Some(separator), stop_count: count }
    }
}

/// Generates a constrained continuation.
///
/// The model must already have consumed the prompt (via
/// [`observe_all`] or incremental [`LanguageModel::observe`] calls).
/// Returns the generated token ids, *excluding* nothing — the final
/// separator (if the stop rule fired) is included so the decoder sees
/// complete values.
pub fn generate(
    model: &mut dyn LanguageModel,
    sampler: &mut Sampler,
    allowed: impl Fn(TokenId) -> bool,
    options: &GenerateOptions,
) -> Vec<TokenId> {
    generate_session(&mut LiveSession(model), sampler, allowed, options)
}

/// Generates a constrained continuation through a [`DecodeSession`].
///
/// The session-cursor analogue of [`generate`]: the prompt lives in the
/// frozen base the session was forked from, so the loop only reads
/// distributions, samples, and feeds generated tokens back. The decode
/// loop is shared with [`generate`], so both paths sample identically.
pub fn generate_session(
    session: &mut dyn DecodeSession,
    sampler: &mut Sampler,
    allowed: impl Fn(TokenId) -> bool,
    options: &GenerateOptions,
) -> Vec<TokenId> {
    generate_session_budgeted(session, sampler, allowed, options, None)
}

/// [`generate_session`] under an optional cooperative deadline.
///
/// When `budget` is given, every token first consumes one unit of it;
/// the loop stops mid-continuation as soon as the budget runs dry. A
/// budget-truncated continuation is returned as-is — the robust layer's
/// validation classifies the truncation, so cancellation degrades to the
/// ordinary defect/fallback ladder instead of blocking.
pub fn generate_session_budgeted(
    session: &mut dyn DecodeSession,
    sampler: &mut Sampler,
    allowed: impl Fn(TokenId) -> bool,
    options: &GenerateOptions,
    budget: Option<&DecodeBudget>,
) -> Vec<TokenId> {
    let mut out = Vec::new();
    let mut dist = vec![0.0; session.vocab_size()];
    let mut seen_stops = 0usize;
    for _ in 0..options.max_tokens {
        if let Some(b) = budget {
            if !b.try_tick() {
                break;
            }
        }
        session.next_distribution(&mut dist);
        let token = sampler.sample(&dist, &allowed);
        session.observe(token);
        out.push(token);
        if Some(token) == options.stop_token {
            seen_stops += 1;
            if seen_stops >= options.stop_count {
                break;
            }
        }
    }
    out
}

/// Adapts a mutable [`LanguageModel`] to the [`DecodeSession`] interface
/// (every observed token is a generated one).
struct LiveSession<'a>(&'a mut dyn LanguageModel);

impl DecodeSession for LiveSession<'_> {
    fn vocab_size(&self) -> usize {
        self.0.vocab_size()
    }

    fn observe(&mut self, token: TokenId) {
        self.0.observe(token, true);
    }

    fn next_distribution(&mut self, out: &mut [f64]) {
        self.0.next_distribution(out);
    }

    fn cost(&self) -> crate::cost::InferenceCost {
        self.0.cost()
    }
}

/// Convenience: feed `prompt`, then generate under `allowed`.
pub fn prompt_and_generate(
    model: &mut dyn LanguageModel,
    prompt: &[TokenId],
    sampler: &mut Sampler,
    allowed: impl Fn(TokenId) -> bool,
    options: &GenerateOptions,
) -> Vec<TokenId> {
    model.reset();
    observe_all(model, prompt);
    generate(model, sampler, allowed, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ngram::NGramLm;
    use crate::sampler::SamplerConfig;

    #[test]
    fn stops_on_separator_count() {
        // Prompt: "01,01,01," as token ids over a 3-token vocab {0,1,sep=2}.
        let mut m = NGramLm::new(3, 4, 0.3, "t");
        let prompt: Vec<TokenId> = [0u32, 1, 2].iter().cycle().take(30).copied().collect();
        let mut s = Sampler::new(SamplerConfig { temperature: 0.2, seed: 1, ..Default::default() });
        let opts = GenerateOptions::until_separators(2, 3, 100);
        let out = prompt_and_generate(&mut m, &prompt, &mut s, |_| true, &opts);
        let seps = out.iter().filter(|&&t| t == 2).count();
        assert_eq!(seps, 3, "must stop exactly at the 3rd separator: {out:?}");
        assert_eq!(*out.last().unwrap(), 2);
    }

    #[test]
    fn max_tokens_caps_runaway() {
        let mut m = NGramLm::new(3, 2, 0.5, "t");
        let mut s = Sampler::new(SamplerConfig { seed: 2, ..Default::default() });
        // Stop token never allowed → generation runs to the cap.
        let opts = GenerateOptions::until_separators(2, 1, 17);
        let out = prompt_and_generate(&mut m, &[0, 1, 0, 1], &mut s, |t| t != 2, &opts);
        assert_eq!(out.len(), 17);
        assert!(out.iter().all(|&t| t != 2));
    }

    #[test]
    fn learned_pattern_continues() {
        // Strongly periodic prompt: generation at low temperature should
        // reproduce the period.
        let mut m = NGramLm::new(4, 6, 0.2, "t");
        let prompt: Vec<TokenId> = [0u32, 1, 2, 3].iter().cycle().take(80).copied().collect();
        let mut s = Sampler::new(SamplerConfig {
            temperature: 0.05,
            top_k: None,
            top_p: None,
            seed: 3,
            epsilon: 0.0,
        });
        let opts = GenerateOptions { max_tokens: 8, stop_token: None, stop_count: 0 };
        let out = prompt_and_generate(&mut m, &prompt, &mut s, |_| true, &opts);
        assert_eq!(out, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn budget_cancels_mid_continuation() {
        let mut m = NGramLm::new(3, 2, 0.5, "t");
        let mut s = Sampler::new(SamplerConfig { seed: 5, ..Default::default() });
        let opts = GenerateOptions { max_tokens: 50, stop_token: None, stop_count: 0 };
        m.reset();
        observe_all(&mut m, &[0, 1, 2, 0, 1, 2]);
        let budget = DecodeBudget::new(7);
        let out = generate_session_budgeted(
            &mut LiveSession(&mut m),
            &mut s,
            |_| true,
            &opts,
            Some(&budget),
        );
        assert_eq!(out.len(), 7, "the budget, not max_tokens, bounds the draw");
        assert_eq!(budget.spent(), 7);
        assert!(budget.exhausted());
        assert!(!budget.try_tick(), "an exhausted budget refuses further ticks");
        assert_eq!(budget.spent(), 7, "a refused tick consumes nothing");
    }

    #[test]
    fn zero_budget_draws_nothing() {
        let mut m = NGramLm::new(3, 2, 0.5, "t");
        let mut s = Sampler::new(SamplerConfig { seed: 6, ..Default::default() });
        let opts = GenerateOptions { max_tokens: 10, stop_token: None, stop_count: 0 };
        m.reset();
        observe_all(&mut m, &[0, 1, 2]);
        let budget = DecodeBudget::new(0);
        let out = generate_session_budgeted(
            &mut LiveSession(&mut m),
            &mut s,
            |_| true,
            &opts,
            Some(&budget),
        );
        assert!(out.is_empty());
        assert_eq!(budget.limit(), 0);
    }

    #[test]
    fn unbudgeted_and_roomy_budget_sample_identically() {
        let run = |budget: Option<&DecodeBudget>| {
            let mut m = NGramLm::new(3, 4, 0.3, "t");
            let mut s =
                Sampler::new(SamplerConfig { temperature: 0.2, seed: 1, ..Default::default() });
            let opts = GenerateOptions::until_separators(2, 3, 100);
            m.reset();
            let prompt: Vec<TokenId> = [0u32, 1, 2].iter().cycle().take(30).copied().collect();
            observe_all(&mut m, &prompt);
            generate_session_budgeted(&mut LiveSession(&mut m), &mut s, |_| true, &opts, budget)
        };
        let roomy = DecodeBudget::new(10_000);
        assert_eq!(run(None), run(Some(&roomy)), "a slack budget must not perturb sampling");
    }

    #[test]
    fn generated_tokens_counted_in_cost() {
        let mut m = NGramLm::new(3, 2, 0.5, "t");
        let mut s = Sampler::new(SamplerConfig { seed: 4, ..Default::default() });
        let opts = GenerateOptions { max_tokens: 10, stop_token: None, stop_count: 0 };
        prompt_and_generate(&mut m, &[0, 1, 2], &mut s, |_| true, &opts);
        let c = m.cost();
        assert_eq!(c.prompt_tokens, 3);
        assert_eq!(c.generated_tokens, 10);
    }
}
