//! Suffix-matching language model ("attention-lite").
//!
//! The second LLM stand-in: instead of bounded-order counts, it keeps the
//! *entire* context and, for each prediction, scores every context position
//! by the length of the common suffix between that position's left context
//! and the current one — then votes for the token that followed, weighted
//! exponentially in match length. This is an unbounded-order PPM*-style
//! predictor and also a deliberately transformer-shaped cost model: every
//! generated token scans the whole context (O(context) per token,
//! O(context²) per continuation), which is what makes the SAX token-count
//! reductions in Tables VIII–IX translate to the order-of-magnitude
//! wall-clock wins the paper reports.

use crate::cost::InferenceCost;
use crate::model::{DecodeSession, FrozenLm, LanguageModel};
use crate::vocab::TokenId;

/// Longest-suffix-match LM. See the module docs.
#[derive(Debug, Clone)]
pub struct SuffixLm {
    vocab_size: usize,
    /// Cap on counted match length (keeps weights finite).
    max_match: usize,
    /// Exponential base for match-length weighting (> 1).
    decay: f64,
    /// Uniform smoothing mass.
    smoothing: f64,
    context: Vec<TokenId>,
    cost: InferenceCost,
    name: String,
}

impl SuffixLm {
    /// Creates a suffix-matching model.
    ///
    /// # Panics
    /// If `vocab_size == 0`, `max_match == 0`, `decay <= 1`, or
    /// `smoothing <= 0`.
    pub fn new(
        vocab_size: usize,
        max_match: usize,
        decay: f64,
        smoothing: f64,
        name: impl Into<String>,
    ) -> Self {
        assert!(vocab_size > 0, "vocab_size must be positive");
        assert!(max_match > 0, "max_match must be positive");
        assert!(decay > 1.0, "decay must exceed 1");
        assert!(smoothing > 0.0, "smoothing must be positive");
        Self {
            vocab_size,
            max_match,
            decay,
            smoothing,
            context: Vec::new(),
            cost: InferenceCost::default(),
            name: name.into(),
        }
    }

    /// Current context length.
    pub fn context_len(&self) -> usize {
        self.context.len()
    }

    /// Freezes the model after prompt conditioning; decode via
    /// [`FrozenLm::fork`] sessions.
    pub fn into_frozen(self) -> FrozenSuffix {
        FrozenSuffix { base: self }
    }
}

/// A prompt-conditioned [`SuffixLm`] frozen for sampling.
#[derive(Debug)]
pub struct FrozenSuffix {
    base: SuffixLm,
}

impl FrozenLm for FrozenSuffix {
    fn vocab_size(&self) -> usize {
        self.base.vocab_size
    }

    fn prompt_cost(&self) -> InferenceCost {
        self.base.cost
    }

    fn name(&self) -> &str {
        &self.base.name
    }

    fn fork(&self) -> Box<dyn DecodeSession + '_> {
        Box::new(SuffixSession::new(&self.base))
    }

    fn refit_extend(&mut self, tokens: &[TokenId]) -> bool {
        // Fitting is observing: appending the suffix to the stored
        // context is exactly the state a from-scratch fit would build.
        for &t in tokens {
            self.base.observe(t, false);
        }
        true
    }
}

/// One sample's decode cursor over a frozen [`SuffixLm`].
///
/// The session's logical context is the frozen prompt followed by the
/// session's own generated tail; scoring iterates positions in the same
/// order as the mutable model, so distributions are bit-identical to a
/// clone that observed the same tokens.
#[derive(Debug)]
pub struct SuffixSession<'a> {
    base: &'a SuffixLm,
    tail: Vec<TokenId>,
    cost: InferenceCost,
}

impl<'a> SuffixSession<'a> {
    pub(crate) fn new(base: &'a SuffixLm) -> Self {
        Self { base, tail: Vec::new(), cost: InferenceCost::default() }
    }

    fn at(&self, i: usize) -> TokenId {
        let prompt_len = self.base.context.len();
        if i < prompt_len {
            self.base.context[i]
        } else {
            self.tail[i - prompt_len]
        }
    }
}

impl DecodeSession for SuffixSession<'_> {
    fn vocab_size(&self) -> usize {
        self.base.vocab_size
    }

    fn observe(&mut self, token: TokenId) {
        assert!((token as usize) < self.base.vocab_size, "token {token} out of range");
        self.tail.push(token);
        self.cost.generated_tokens += 1;
    }

    fn next_distribution(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.base.vocab_size, "distribution buffer size");
        let n = self.base.context.len() + self.tail.len();
        let mut scores =
            vec![self.base.smoothing / self.base.vocab_size as f64; self.base.vocab_size];
        for i in 0..n {
            self.cost.work_units += 1;
            let mut l = 0usize;
            while l < self.base.max_match && l < i && self.at(i - 1 - l) == self.at(n - 1 - l) {
                l += 1;
            }
            if l > 0 {
                scores[self.at(i) as usize] += self.base.decay.powi(l as i32) - 1.0;
            }
        }
        let total: f64 = scores.iter().sum();
        for (o, s) in out.iter_mut().zip(&scores) {
            *o = s / total;
        }
    }

    fn cost(&self) -> InferenceCost {
        self.cost
    }
}

impl LanguageModel for SuffixLm {
    fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    fn reset(&mut self) {
        self.context.clear();
        self.cost = InferenceCost::default();
    }

    fn observe(&mut self, token: TokenId, generated: bool) {
        assert!((token as usize) < self.vocab_size, "token {token} out of range");
        self.context.push(token);
        if generated {
            self.cost.generated_tokens += 1;
        } else {
            self.cost.prompt_tokens += 1;
        }
    }

    fn next_distribution(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.vocab_size, "distribution buffer size");
        let n = self.context.len();
        let mut scores = vec![self.smoothing / self.vocab_size as f64; self.vocab_size];
        // Score every position i (a candidate "what came next after a
        // context like ours"): match length of context[..i] against
        // context[..n], both read backwards.
        for i in 0..n {
            self.cost.work_units += 1;
            let mut l = 0usize;
            while l < self.max_match && l < i && self.context[i - 1 - l] == self.context[n - 1 - l]
            {
                l += 1;
            }
            if l > 0 {
                scores[self.context[i] as usize] += self.decay.powi(l as i32) - 1.0;
            }
        }
        let total: f64 = scores.iter().sum();
        for (o, s) in out.iter_mut().zip(&scores) {
            *o = s / total;
        }
    }

    fn cost(&self) -> InferenceCost {
        self.cost
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{is_distribution, observe_all};

    #[test]
    fn uniform_before_any_context() {
        let mut m = SuffixLm::new(4, 16, 1.8, 1.0, "t");
        let mut p = vec![0.0; 4];
        m.next_distribution(&mut p);
        assert!(is_distribution(&p));
        for &x in &p {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn completes_long_periodic_pattern() {
        let mut m = SuffixLm::new(4, 16, 1.8, 0.5, "t");
        let pattern: Vec<TokenId> =
            [0u32, 1, 2, 3, 2, 1].iter().cycle().take(120).copied().collect();
        observe_all(&mut m, &pattern);
        // 120 = 20 full cycles; the next token restarts the cycle at 0.
        let mut p = vec![0.0; 4];
        m.next_distribution(&mut p);
        assert!(is_distribution(&p));
        assert!(p[0] > 0.8, "expected cycle restart, got {p:?}");
    }

    #[test]
    fn longer_matches_outvote_frequency() {
        // Token 1 follows 0 twice as often overall, but the *long* context
        // "2 2 2 0" is always followed by 3. Suffix matching must prefer 3.
        let mut m = SuffixLm::new(4, 16, 2.0, 0.1, "t");
        let mut seq: Vec<TokenId> = Vec::new();
        for _ in 0..10 {
            seq.extend_from_slice(&[0, 1, 0, 1]);
        }
        for _ in 0..5 {
            seq.extend_from_slice(&[2, 2, 2, 0, 3]);
        }
        seq.extend_from_slice(&[2, 2, 2, 0]);
        observe_all(&mut m, &seq);
        let mut p = vec![0.0; 4];
        m.next_distribution(&mut p);
        assert!(p[3] > p[1], "long-context match should win: {p:?}");
    }

    #[test]
    fn work_scales_linearly_with_context() {
        let mut m = SuffixLm::new(3, 8, 1.5, 1.0, "t");
        observe_all(&mut m, &vec![0; 100]);
        let mut p = vec![0.0; 3];
        m.next_distribution(&mut p);
        let w1 = m.cost().work_units;
        m.next_distribution(&mut p);
        let w2 = m.cost().work_units;
        assert_eq!(w2 - w1, 100, "each prediction scans the whole context");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut m = SuffixLm::new(3, 8, 1.5, 1.0, "t");
        observe_all(&mut m, &[0, 1, 2]);
        m.reset();
        assert_eq!(m.context_len(), 0);
        assert_eq!(m.cost(), InferenceCost::default());
    }

    #[test]
    fn distribution_valid_under_random_feed() {
        let mut m = SuffixLm::new(6, 12, 1.7, 0.5, "t");
        let mut state = 7u64;
        let mut p = vec![0.0; 6];
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            m.observe(((state >> 33) % 6) as TokenId, false);
            m.next_distribution(&mut p);
            assert!(is_distribution(&p));
        }
    }

    #[test]
    #[should_panic(expected = "decay must exceed 1")]
    fn rejects_non_amplifying_decay() {
        SuffixLm::new(4, 8, 1.0, 1.0, "t");
    }
}
