//! Backend presets mapping the paper's LLMs to stand-in capacities.
//!
//! Table III of the paper compares MultiCast on **LLaMA2-7B** against
//! **Phi-2 (2.7B)** and finds the larger model roughly 2× more accurate —
//! attributing the gap to capacity. The presets reproduce that axis:
//!
//! - [`ModelPreset::Large`] — deep context (order 10), low interpolation
//!   resistance: locks onto long repetitive structure the way a 7B model's
//!   induction heads do. Stands in for LLaMA2-7B.
//! - [`ModelPreset::Small`] — shallow context (order 2), heavily smoothed:
//!   sees only local digit statistics, producing the systematic offsets
//!   Figure 2b shows for Phi-2. Stands in for Phi-2.
//! - [`ModelPreset::Suffix`] — the unbounded-order suffix matcher with
//!   transformer-shaped per-token cost; used in the ablation harness.

use crate::ensemble::EnsembleLm;
use crate::model::LanguageModel;
use crate::ngram::NGramLm;
use crate::ppm::PpmLm;
use crate::suffix::SuffixLm;

/// Capacity tiers for the LLM stand-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelPreset {
    /// High-capacity in-context learner (LLaMA2-7B stand-in).
    Large,
    /// Low-capacity in-context learner (Phi-2 stand-in).
    Small,
    /// Unbounded-order suffix matcher with O(context)/token cost.
    Suffix,
    /// Product-of-experts over the n-gram and suffix families — the
    /// "frontier model" tier the paper speculates about in §IV-C
    /// ("using very large LLMs ... will further improve performance").
    Ensemble,
    /// PPM-C with escape probabilities and exclusion (ablation backend:
    /// hard back-off instead of soft interpolation).
    Ppm,
}

impl ModelPreset {
    /// All presets.
    pub const ALL: [ModelPreset; 5] = [
        ModelPreset::Large,
        ModelPreset::Small,
        ModelPreset::Suffix,
        ModelPreset::Ensemble,
        ModelPreset::Ppm,
    ];

    /// The display name used in reports (paper backend it stands in for).
    pub fn display_name(self) -> &'static str {
        match self {
            ModelPreset::Large => "InContext-Large (LLaMA2-7B stand-in)",
            ModelPreset::Small => "InContext-Small (Phi-2 stand-in)",
            ModelPreset::Suffix => "SuffixMatch (ablation backend)",
            ModelPreset::Ensemble => "PoE-Ensemble (frontier-model stand-in)",
            ModelPreset::Ppm => "PPM-C (ablation backend)",
        }
    }
}

/// Builds a model for a preset over the given vocabulary size.
pub fn build_model(preset: ModelPreset, vocab_size: usize) -> Box<dyn LanguageModel> {
    match preset {
        ModelPreset::Large => {
            Box::new(NGramLm::new(vocab_size, 10, 0.25, preset.display_name()))
        }
        ModelPreset::Small => {
            Box::new(NGramLm::new(vocab_size, 2, 2.0, preset.display_name()))
        }
        ModelPreset::Suffix => {
            Box::new(SuffixLm::new(vocab_size, 24, 1.8, 0.5, preset.display_name()))
        }
        ModelPreset::Ensemble => Box::new(EnsembleLm::new(
            vec![
                (
                    Box::new(NGramLm::new(vocab_size, 10, 0.25, "member:ngram"))
                        as Box<dyn LanguageModel>,
                    1.0,
                ),
                (
                    Box::new(SuffixLm::new(vocab_size, 24, 1.8, 0.5, "member:suffix"))
                        as Box<dyn LanguageModel>,
                    1.0,
                ),
            ],
            preset.display_name(),
        )),
        ModelPreset::Ppm => Box::new(PpmLm::new(vocab_size, 8, preset.display_name())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::observe_all;
    use crate::vocab::TokenId;

    /// Large preset must beat Small on long-period pattern completion —
    /// this is the mechanism behind the paper's Table III gap.
    #[test]
    fn large_outpredicts_small_on_periodic_data() {
        let vocab = 5;
        let pattern: Vec<TokenId> =
            [0u32, 1, 2, 3, 4, 3, 2, 1].iter().cycle().take(160).copied().collect();
        let mut scores = Vec::new();
        for preset in [ModelPreset::Large, ModelPreset::Small] {
            let mut m = build_model(preset, vocab);
            observe_all(m.as_mut(), &pattern);
            // Walk the next full period and accumulate log-likelihood of
            // the true continuation.
            let mut ll = 0.0;
            let mut dist = vec![0.0; vocab];
            for &truth in pattern.iter().take(8) {
                // The continuation repeats the cycle from its start.
                m.next_distribution(&mut dist);
                ll += dist[truth as usize].max(1e-12).ln();
                m.observe(truth, true);
            }
            scores.push(ll);
        }
        assert!(
            scores[0] > scores[1] + 0.1,
            "Large should dominate Small: {scores:?}"
        );
    }

    #[test]
    fn presets_build_with_matching_vocab() {
        for preset in ModelPreset::ALL {
            let m = build_model(preset, 13);
            assert_eq!(m.vocab_size(), 13);
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn display_names_mention_paper_backends() {
        assert!(ModelPreset::Large.display_name().contains("LLaMA2"));
        assert!(ModelPreset::Small.display_name().contains("Phi-2"));
    }
}
