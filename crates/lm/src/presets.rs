//! Backend presets mapping the paper's LLMs to stand-in capacities.
//!
//! Table III of the paper compares MultiCast on **LLaMA2-7B** against
//! **Phi-2 (2.7B)** and finds the larger model roughly 2× more accurate —
//! attributing the gap to capacity. The presets reproduce that axis:
//!
//! - [`ModelPreset::Large`] — deep context (order 10), low interpolation
//!   resistance: locks onto long repetitive structure the way a 7B model's
//!   induction heads do. Stands in for LLaMA2-7B.
//! - [`ModelPreset::Small`] — shallow context (order 2), heavily smoothed:
//!   sees only local digit statistics, producing the systematic offsets
//!   Figure 2b shows for Phi-2. Stands in for Phi-2.
//! - [`ModelPreset::Suffix`] — the unbounded-order suffix matcher with
//!   transformer-shaped per-token cost; used in the ablation harness.

use crate::ensemble::{EnsembleLm, FrozenEnsemble};
use crate::model::{observe_all, FrozenLm, LanguageModel};
use crate::ngram::NGramLm;
use crate::ppm::PpmLm;
use crate::suffix::SuffixLm;
use crate::vocab::TokenId;

/// Capacity tiers for the LLM stand-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelPreset {
    /// High-capacity in-context learner (LLaMA2-7B stand-in).
    Large,
    /// Low-capacity in-context learner (Phi-2 stand-in).
    Small,
    /// Unbounded-order suffix matcher with O(context)/token cost.
    Suffix,
    /// Product-of-experts over the n-gram and suffix families — the
    /// "frontier model" tier the paper speculates about in §IV-C
    /// ("using very large LLMs ... will further improve performance").
    Ensemble,
    /// PPM-C with escape probabilities and exclusion (ablation backend:
    /// hard back-off instead of soft interpolation).
    Ppm,
}

impl ModelPreset {
    /// All presets.
    pub const ALL: [ModelPreset; 5] = [
        ModelPreset::Large,
        ModelPreset::Small,
        ModelPreset::Suffix,
        ModelPreset::Ensemble,
        ModelPreset::Ppm,
    ];

    /// The display name used in reports (paper backend it stands in for).
    pub fn display_name(self) -> &'static str {
        match self {
            ModelPreset::Large => "InContext-Large (LLaMA2-7B stand-in)",
            ModelPreset::Small => "InContext-Small (Phi-2 stand-in)",
            ModelPreset::Suffix => "SuffixMatch (ablation backend)",
            ModelPreset::Ensemble => "PoE-Ensemble (frontier-model stand-in)",
            ModelPreset::Ppm => "PPM-C (ablation backend)",
        }
    }
}

/// Builds a model for a preset over the given vocabulary size.
pub fn build_model(preset: ModelPreset, vocab_size: usize) -> Box<dyn LanguageModel> {
    match preset {
        ModelPreset::Large => Box::new(NGramLm::new(vocab_size, 10, 0.25, preset.display_name())),
        ModelPreset::Small => Box::new(NGramLm::new(vocab_size, 2, 2.0, preset.display_name())),
        ModelPreset::Suffix => {
            Box::new(SuffixLm::new(vocab_size, 24, 1.8, 0.5, preset.display_name()))
        }
        ModelPreset::Ensemble => Box::new(EnsembleLm::new(
            vec![
                (
                    Box::new(NGramLm::new(vocab_size, 10, 0.25, "member:ngram"))
                        as Box<dyn LanguageModel>,
                    1.0,
                ),
                (
                    Box::new(SuffixLm::new(vocab_size, 24, 1.8, 0.5, "member:suffix"))
                        as Box<dyn LanguageModel>,
                    1.0,
                ),
            ],
            preset.display_name(),
        )),
        ModelPreset::Ppm => Box::new(PpmLm::new(vocab_size, 8, preset.display_name())),
    }
}

/// Builds a preset model, conditions it on `prompt` once, and freezes it.
///
/// The fit-once half of the fit/sample split: the returned [`FrozenLm`]
/// holds the fully prompt-conditioned state (its
/// [`FrozenLm::prompt_cost`] covers exactly one prompt pass) and every
/// sample decodes through a cheap [`FrozenLm::fork`] session. Parameters
/// mirror [`build_model`] exactly, so session decoding is bit-identical
/// to the mutable path.
pub fn fit_model(preset: ModelPreset, vocab_size: usize, prompt: &[TokenId]) -> Box<dyn FrozenLm> {
    fn fit<M: LanguageModel>(mut m: M, prompt: &[TokenId]) -> M {
        observe_all(&mut m, prompt);
        m
    }
    match preset {
        ModelPreset::Large => Box::new(
            fit(NGramLm::new(vocab_size, 10, 0.25, preset.display_name()), prompt).into_frozen(),
        ),
        ModelPreset::Small => Box::new(
            fit(NGramLm::new(vocab_size, 2, 2.0, preset.display_name()), prompt).into_frozen(),
        ),
        ModelPreset::Suffix => Box::new(
            fit(SuffixLm::new(vocab_size, 24, 1.8, 0.5, preset.display_name()), prompt)
                .into_frozen(),
        ),
        ModelPreset::Ensemble => Box::new(FrozenEnsemble::new(
            vec![
                (
                    Box::new(
                        fit(NGramLm::new(vocab_size, 10, 0.25, "member:ngram"), prompt)
                            .into_frozen(),
                    ) as Box<dyn FrozenLm>,
                    1.0,
                ),
                (
                    Box::new(
                        fit(SuffixLm::new(vocab_size, 24, 1.8, 0.5, "member:suffix"), prompt)
                            .into_frozen(),
                    ) as Box<dyn FrozenLm>,
                    1.0,
                ),
            ],
            preset.display_name(),
        )),
        ModelPreset::Ppm => {
            Box::new(fit(PpmLm::new(vocab_size, 8, preset.display_name()), prompt).into_frozen())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::observe_all;
    use crate::vocab::TokenId;

    /// Large preset must beat Small on long-period pattern completion —
    /// this is the mechanism behind the paper's Table III gap.
    #[test]
    fn large_outpredicts_small_on_periodic_data() {
        let vocab = 5;
        let pattern: Vec<TokenId> =
            [0u32, 1, 2, 3, 4, 3, 2, 1].iter().cycle().take(160).copied().collect();
        let mut scores = Vec::new();
        for preset in [ModelPreset::Large, ModelPreset::Small] {
            let mut m = build_model(preset, vocab);
            observe_all(m.as_mut(), &pattern);
            // Walk the next full period and accumulate log-likelihood of
            // the true continuation.
            let mut ll = 0.0;
            let mut dist = vec![0.0; vocab];
            for &truth in pattern.iter().take(8) {
                // The continuation repeats the cycle from its start.
                m.next_distribution(&mut dist);
                ll += dist[truth as usize].max(1e-12).ln();
                m.observe(truth, true);
            }
            scores.push(ll);
        }
        assert!(scores[0] > scores[1] + 0.1, "Large should dominate Small: {scores:?}");
    }

    #[test]
    fn presets_build_with_matching_vocab() {
        for preset in ModelPreset::ALL {
            let m = build_model(preset, 13);
            assert_eq!(m.vocab_size(), 13);
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn display_names_mention_paper_backends() {
        assert!(ModelPreset::Large.display_name().contains("LLaMA2"));
        assert!(ModelPreset::Small.display_name().contains("Phi-2"));
    }

    fn test_prompt(vocab: usize) -> Vec<TokenId> {
        let mut state = 11u64;
        (0..200)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) % vocab as u64) as TokenId
            })
            .collect()
    }

    /// The frozen/session split must be invisible to the math: decoding
    /// through a fork is bit-identical to mutating a model that observed
    /// the prompt and then the same generated tokens.
    #[test]
    fn session_decoding_is_bit_identical_to_mutable() {
        let vocab = 11;
        let prompt = test_prompt(vocab);
        let generated: Vec<TokenId> = (0..30).map(|i| (i * 7 % vocab) as TokenId).collect();
        for preset in ModelPreset::ALL {
            let mut mutable = build_model(preset, vocab);
            observe_all(mutable.as_mut(), &prompt);
            let frozen = fit_model(preset, vocab, &prompt);
            let mut session = frozen.fork();
            let mut pm = vec![0.0; vocab];
            let mut ps = vec![0.0; vocab];
            for &t in &generated {
                mutable.next_distribution(&mut pm);
                session.next_distribution(&mut ps);
                for (a, b) in pm.iter().zip(&ps) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{preset:?}: {pm:?} vs {ps:?}");
                }
                mutable.observe(t, true);
                session.observe(t);
            }
        }
    }

    /// Forked sessions are independent: interleaving two sessions'
    /// decode steps produces exactly what running each alone would.
    #[test]
    fn fork_sessions_are_independent() {
        let vocab = 11;
        let prompt = test_prompt(vocab);
        let gen_a: Vec<TokenId> = (0..24).map(|i| (i * 3 % vocab) as TokenId).collect();
        let gen_b: Vec<TokenId> =
            (0..24).map(|i| (i * 5 + 1) as TokenId % vocab as TokenId).collect();
        for preset in ModelPreset::ALL {
            let frozen = fit_model(preset, vocab, &prompt);
            // Sequential references: each session run to completion alone.
            let run_alone = |tokens: &[TokenId]| -> Vec<Vec<f64>> {
                let mut s = frozen.fork();
                let mut p = vec![0.0; vocab];
                let mut dists = Vec::new();
                for &t in tokens {
                    s.next_distribution(&mut p);
                    dists.push(p.clone());
                    s.observe(t);
                }
                dists
            };
            let ref_a = run_alone(&gen_a);
            let ref_b = run_alone(&gen_b);
            // Interleaved: alternate steps between two live sessions.
            let mut sa = frozen.fork();
            let mut sb = frozen.fork();
            let mut p = vec![0.0; vocab];
            for (i, (&ta, &tb)) in gen_a.iter().zip(&gen_b).enumerate() {
                sa.next_distribution(&mut p);
                for (x, y) in p.iter().zip(&ref_a[i]) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{preset:?} session A step {i}");
                }
                sa.observe(ta);
                sb.next_distribution(&mut p);
                for (x, y) in p.iter().zip(&ref_b[i]) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{preset:?} session B step {i}");
                }
                sb.observe(tb);
            }
        }
    }

    /// Prompt cost is paid once at fit time; sessions account only their
    /// own generated tokens.
    #[test]
    fn prompt_cost_counted_once_sessions_generated_only() {
        let vocab = 11;
        let prompt = test_prompt(vocab);
        for preset in ModelPreset::ALL {
            let frozen = fit_model(preset, vocab, &prompt);
            let fit_cost = frozen.prompt_cost();
            assert_eq!(fit_cost.prompt_tokens, prompt.len() as u64, "{preset:?}");
            assert_eq!(fit_cost.generated_tokens, 0, "{preset:?}");
            let mut s = frozen.fork();
            let mut p = vec![0.0; vocab];
            for t in 0..5 {
                s.next_distribution(&mut p);
                s.observe(t as TokenId);
            }
            let session_cost = s.cost();
            assert_eq!(session_cost.prompt_tokens, 0, "{preset:?}");
            assert_eq!(session_cost.generated_tokens, 5, "{preset:?}");
            // Fitting didn't change: prompt cost is frozen state, not a
            // counter sessions feed back into.
            assert_eq!(frozen.prompt_cost(), fit_cost, "{preset:?}");
        }
    }
}
