//! Log-linear ensemble of in-context backends.
//!
//! Mixes the predictions of several [`LanguageModel`]s by weighted
//! geometric averaging (product-of-experts). The combination is stronger
//! than either family alone: the bounded-order n-gram generalizes across
//! near-repeats, the unbounded suffix matcher nails long exact
//! repetitions; their product is sharp only where *both* agree — a cheap
//! analogue of how larger transformers subsume both behaviours, used by
//! the ablation harness as a fourth backend tier.

use crate::cost::InferenceCost;
use crate::model::{DecodeSession, FrozenLm, LanguageModel};
use crate::vocab::TokenId;

/// Product-of-experts over member models.
pub struct EnsembleLm {
    members: Vec<(Box<dyn LanguageModel>, f64)>,
    vocab_size: usize,
    name: String,
    scratch: Vec<f64>,
}

impl EnsembleLm {
    /// Creates an ensemble from weighted members.
    ///
    /// # Panics
    /// If `members` is empty, weights are non-positive, or vocabulary
    /// sizes disagree.
    pub fn new(members: Vec<(Box<dyn LanguageModel>, f64)>, name: impl Into<String>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        let vocab_size = members[0].0.vocab_size();
        for (m, w) in &members {
            assert_eq!(m.vocab_size(), vocab_size, "member vocabulary mismatch");
            assert!(*w > 0.0, "member weights must be positive");
        }
        Self { members, vocab_size, name: name.into(), scratch: vec![0.0; vocab_size] }
    }

    /// Number of member models.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }
}

/// Product-of-experts over frozen member models.
///
/// The frozen analogue of [`EnsembleLm`]: each member has already observed
/// the prompt; forking produces an [`EnsembleSession`] that combines the
/// member sessions with exactly the same log-space arithmetic (same
/// weights, same member order), so distributions are bit-identical.
pub struct FrozenEnsemble {
    members: Vec<(Box<dyn FrozenLm>, f64)>,
    vocab_size: usize,
    name: String,
}

impl FrozenEnsemble {
    /// Creates a frozen ensemble from prompt-conditioned members.
    ///
    /// # Panics
    /// If `members` is empty, weights are non-positive, or vocabulary
    /// sizes disagree.
    pub fn new(members: Vec<(Box<dyn FrozenLm>, f64)>, name: impl Into<String>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        let vocab_size = members[0].0.vocab_size();
        for (m, w) in &members {
            assert_eq!(m.vocab_size(), vocab_size, "member vocabulary mismatch");
            assert!(*w > 0.0, "member weights must be positive");
        }
        Self { members, vocab_size, name: name.into() }
    }
}

impl FrozenLm for FrozenEnsemble {
    fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    fn prompt_cost(&self) -> InferenceCost {
        // Token counts are identical across members (they saw the same
        // prompt); report the first member's counts with summed work.
        let mut cost = self.members[0].0.prompt_cost();
        cost.work_units = self.members.iter().map(|(m, _)| m.prompt_cost().work_units).sum();
        cost
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn fork(&self) -> Box<dyn DecodeSession + '_> {
        Box::new(EnsembleSession::new(self.members.iter().map(|(m, w)| (m.fork(), *w)).collect()))
    }

    fn refit_extend(&mut self, tokens: &[TokenId]) -> bool {
        // All members must refit or the ensemble state diverges from a
        // from-scratch fit; the concrete members never fail, so in
        // practice this is all-or-nothing only against exotic members.
        self.members.iter_mut().all(|(m, _)| m.refit_extend(tokens))
    }
}

/// One sample's decode cursor combining member [`DecodeSession`]s.
pub struct EnsembleSession<'a> {
    members: Vec<(Box<dyn DecodeSession + 'a>, f64)>,
    vocab_size: usize,
    scratch: Vec<f64>,
}

impl<'a> EnsembleSession<'a> {
    /// Combines member sessions with the given weights.
    ///
    /// # Panics
    /// If `members` is empty, weights are non-positive, or vocabulary
    /// sizes disagree.
    pub fn new(members: Vec<(Box<dyn DecodeSession + 'a>, f64)>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        let vocab_size = members[0].0.vocab_size();
        for (m, w) in &members {
            assert_eq!(m.vocab_size(), vocab_size, "member vocabulary mismatch");
            assert!(*w > 0.0, "member weights must be positive");
        }
        Self { members, vocab_size, scratch: vec![0.0; vocab_size] }
    }
}

impl DecodeSession for EnsembleSession<'_> {
    fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    fn observe(&mut self, token: TokenId) {
        for (m, _) in &mut self.members {
            m.observe(token);
        }
    }

    fn next_distribution(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.vocab_size, "distribution buffer size");
        out.iter_mut().for_each(|v| *v = 0.0);
        let total_weight: f64 = self.members.iter().map(|(_, w)| w).sum();
        for (m, w) in &mut self.members {
            m.next_distribution(&mut self.scratch);
            for (acc, &p) in out.iter_mut().zip(&self.scratch) {
                *acc += *w / total_weight * p.max(1e-12).ln();
            }
        }
        let mut norm = 0.0;
        for v in out.iter_mut() {
            *v = v.exp();
            norm += *v;
        }
        for v in out.iter_mut() {
            *v /= norm;
        }
    }

    fn cost(&self) -> InferenceCost {
        let mut cost = self.members[0].0.cost();
        cost.work_units = self.members.iter().map(|(m, _)| m.cost().work_units).sum();
        cost
    }
}

impl LanguageModel for EnsembleLm {
    fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    fn reset(&mut self) {
        for (m, _) in &mut self.members {
            m.reset();
        }
    }

    fn observe(&mut self, token: TokenId, generated: bool) {
        for (m, _) in &mut self.members {
            m.observe(token, generated);
        }
    }

    fn next_distribution(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.vocab_size, "distribution buffer size");
        // Weighted geometric mean in log space, tiny floor against -inf.
        out.iter_mut().for_each(|v| *v = 0.0);
        let total_weight: f64 = self.members.iter().map(|(_, w)| w).sum();
        for (m, w) in &mut self.members {
            m.next_distribution(&mut self.scratch);
            for (acc, &p) in out.iter_mut().zip(&self.scratch) {
                *acc += *w / total_weight * p.max(1e-12).ln();
            }
        }
        let mut norm = 0.0;
        for v in out.iter_mut() {
            *v = v.exp();
            norm += *v;
        }
        for v in out.iter_mut() {
            *v /= norm;
        }
    }

    fn cost(&self) -> InferenceCost {
        // Token counts are identical across members (they see the same
        // stream); report the first member's counts with summed work.
        let mut cost = self.members[0].0.cost();
        cost.work_units = self.members.iter().map(|(m, _)| m.cost().work_units).sum();
        cost
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{is_distribution, observe_all};
    use crate::ngram::NGramLm;
    use crate::suffix::SuffixLm;

    fn ensemble() -> EnsembleLm {
        EnsembleLm::new(
            vec![
                (Box::new(NGramLm::new(4, 6, 0.3, "ng")) as Box<dyn LanguageModel>, 1.0),
                (Box::new(SuffixLm::new(4, 16, 1.8, 0.5, "sx")) as Box<dyn LanguageModel>, 1.0),
            ],
            "poe",
        )
    }

    #[test]
    fn produces_valid_distributions() {
        let mut e = ensemble();
        let mut p = vec![0.0; 4];
        e.next_distribution(&mut p);
        assert!(is_distribution(&p));
        observe_all(&mut e, &[0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
        e.next_distribution(&mut p);
        assert!(is_distribution(&p));
        assert!(p[2] > 0.5, "pattern continuation expected: {p:?}");
    }

    #[test]
    fn sharper_than_weakest_member_on_patterns() {
        let pattern: Vec<TokenId> = [0u32, 1, 2, 3].iter().cycle().take(60).copied().collect();
        let mut ng = NGramLm::new(4, 6, 0.3, "ng");
        let mut e = ensemble();
        observe_all(&mut ng, &pattern);
        observe_all(&mut e, &pattern);
        let mut p_ng = vec![0.0; 4];
        let mut p_e = vec![0.0; 4];
        ng.next_distribution(&mut p_ng);
        e.next_distribution(&mut p_e);
        // Both should predict token 0; the ensemble at least as confident
        // as the weaker member within a small tolerance.
        assert_eq!(
            p_e.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0,
            0
        );
        assert!(p_e[0] > 0.5);
    }

    #[test]
    fn reset_and_cost_propagate() {
        let mut e = ensemble();
        observe_all(&mut e, &[0, 1, 2]);
        assert_eq!(e.cost().prompt_tokens, 3);
        assert!(e.cost().work_units > 0);
        e.reset();
        assert_eq!(e.cost(), InferenceCost::default());
        assert_eq!(e.member_count(), 2);
        assert_eq!(e.name(), "poe");
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_rejected() {
        EnsembleLm::new(vec![], "empty");
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn bad_weight_rejected() {
        EnsembleLm::new(
            vec![(Box::new(NGramLm::new(4, 2, 0.5, "ng")) as Box<dyn LanguageModel>, 0.0)],
            "bad",
        );
    }
}
