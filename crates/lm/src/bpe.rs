//! Byte-pair encoding tokenizer — the *counterexample* tokenizer.
//!
//! LLMTime's core serialization insight (inherited by MultiCast, §III-A:
//! "depending on the LLM used, its tokenizer must be adapted") is that
//! subword tokenizers chunk numbers inconsistently — `1234` may become
//! `12|34` in one context and `1|234` in another — which destroys the
//! positional alignment digit-level forecasting relies on. This module
//! implements a small BPE trainer/encoder so the ablation harness can
//! *measure* that effect instead of asserting it: the same backend is run
//! over char-level and BPE-level token streams and the forecast quality
//! compared (`cargo run -p mc-bench --bin tokenization`).

use std::collections::HashMap;

use crate::tokenizer::{TokenizeError, Tokenizer};
use crate::vocab::{TokenId, Vocab};

/// A trained byte-pair encoder over a character base vocabulary.
#[derive(Debug, Clone)]
pub struct BpeTokenizer {
    /// Base character vocabulary (ids `0..base_len`).
    base: Vocab,
    /// Merge rules in application order: `(left, right) -> new id`.
    merges: Vec<(TokenId, TokenId, TokenId)>,
    /// String spelled by each token id (base chars + merged strings).
    spellings: Vec<String>,
}

impl BpeTokenizer {
    /// Trains BPE on `corpus`: repeatedly merges the most frequent
    /// adjacent pair until `num_merges` merges have been learned or no
    /// pair repeats.
    ///
    /// # Panics
    /// If the corpus contains characters outside `base`.
    pub fn train(base: Vocab, corpus: &str, num_merges: usize) -> Self {
        let mut spellings: Vec<String> = base.chars().iter().map(ToString::to_string).collect();
        let mut seq: Vec<TokenId> = corpus
            .chars()
            .map(|c| base.id(c).expect("corpus character outside base vocabulary"))
            .collect();
        let mut merges = Vec::with_capacity(num_merges);
        for _ in 0..num_merges {
            // Count adjacent pairs.
            let mut counts: HashMap<(TokenId, TokenId), usize> = HashMap::new();
            for w in seq.windows(2) {
                *counts.entry((w[0], w[1])).or_insert(0) += 1;
            }
            // Deterministic winner: highest count, ties by smallest pair.
            let Some((&pair, &count)) = counts
                .iter()
                .max_by_key(|(&(a, b), &c)| (c, std::cmp::Reverse(a), std::cmp::Reverse(b)))
            else {
                break;
            };
            if count < 2 {
                break;
            }
            let new_id = spellings.len() as TokenId;
            let mut spelling = spellings[pair.0 as usize].clone();
            spelling.push_str(&spellings[pair.1 as usize]);
            spellings.push(spelling);
            merges.push((pair.0, pair.1, new_id));
            seq = apply_merge(&seq, pair, new_id);
        }
        Self { base, merges, spellings }
    }

    /// Total vocabulary size (base + merges).
    pub fn vocab_size(&self) -> usize {
        self.spellings.len()
    }

    /// Number of learned merges.
    pub fn merge_count(&self) -> usize {
        self.merges.len()
    }

    /// The string a token id spells, if valid.
    pub fn spelling(&self, id: TokenId) -> Option<&str> {
        self.spellings.get(id as usize).map(String::as_str)
    }
}

fn apply_merge(seq: &[TokenId], pair: (TokenId, TokenId), new_id: TokenId) -> Vec<TokenId> {
    let mut out = Vec::with_capacity(seq.len());
    let mut i = 0;
    while i < seq.len() {
        if i + 1 < seq.len() && seq[i] == pair.0 && seq[i + 1] == pair.1 {
            out.push(new_id);
            i += 2;
        } else {
            out.push(seq[i]);
            i += 1;
        }
    }
    out
}

impl Tokenizer for BpeTokenizer {
    fn vocab(&self) -> &Vocab {
        &self.base
    }

    fn encode(&self, text: &str) -> Result<Vec<TokenId>, TokenizeError> {
        let mut seq = Vec::with_capacity(text.len());
        for (at, c) in text.char_indices() {
            match self.base.id(c) {
                Some(id) => seq.push(id),
                None => return Err(TokenizeError::UnknownChar { c, at }),
            }
        }
        for &(a, b, new_id) in &self.merges {
            seq = apply_merge(&seq, (a, b), new_id);
        }
        Ok(seq)
    }

    fn decode(&self, ids: &[TokenId]) -> Result<String, TokenizeError> {
        let mut out = String::new();
        for &id in ids {
            match self.spellings.get(id as usize) {
                Some(s) => out.push_str(s),
                None => return Err(TokenizeError::UnknownId(id)),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained(corpus: &str, merges: usize) -> BpeTokenizer {
        BpeTokenizer::train(Vocab::numeric(), corpus, merges)
    }

    #[test]
    fn round_trip_is_lossless() {
        let corpus = "123,456,123,456,789,123,";
        let bpe = trained(corpus, 10);
        for text in [corpus, "321,", "9,9,9,"] {
            let ids = bpe.encode(text).unwrap();
            assert_eq!(bpe.decode(&ids).unwrap(), text);
        }
    }

    #[test]
    fn merges_compress_the_training_corpus() {
        let corpus = "123,123,123,123,123,123,";
        let bpe = trained(corpus, 8);
        let ids = bpe.encode(corpus).unwrap();
        assert!(
            ids.len() < corpus.chars().count() / 2,
            "repetitive corpus should compress: {} tokens for {} chars",
            ids.len(),
            corpus.len()
        );
        assert!(bpe.merge_count() > 0);
        assert_eq!(bpe.vocab_size(), Vocab::numeric().len() + bpe.merge_count());
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = "12,34,12,34,56,12,";
        let a = trained(corpus, 6);
        let b = trained(corpus, 6);
        assert_eq!(a.encode(corpus).unwrap(), b.encode(corpus).unwrap());
    }

    #[test]
    fn chunking_is_value_dependent() {
        // The LLMTime pathology, demonstrated: the same digit can fuse
        // with its neighbour or the separator depending on frequency, so
        // equal-width values stop producing equal-length token runs.
        let corpus = "111,222,111,222,111,222,119,".repeat(4);
        let bpe = trained(&corpus, 12);
        let a = bpe.encode("111,").unwrap();
        let b = bpe.encode("119,").unwrap();
        assert_ne!(
            a.len(),
            b.len(),
            "same-width values should tokenize to different lengths under BPE"
        );
    }

    #[test]
    fn no_repeats_means_no_merges() {
        let bpe = trained("0123456789", 5);
        assert_eq!(bpe.merge_count(), 0);
        let ids = bpe.encode("0123456789").unwrap();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn unknown_chars_rejected() {
        let bpe = trained("123,", 2);
        assert!(bpe.encode("abc").is_err());
        assert!(bpe.decode(&[9999]).is_err());
    }
}
