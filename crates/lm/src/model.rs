//! The [`LanguageModel`] trait: the contract MultiCast needs from a
//! frozen LLM backend.
//!
//! Zero-shot prompting means the model never sees gradient updates; all
//! adaptation happens by *conditioning on the prompt*. The trait mirrors
//! that: [`LanguageModel::observe`] feeds one prompt (or freshly generated)
//! token, [`LanguageModel::next_distribution`] reads the conditional
//! next-token distribution, and [`LanguageModel::reset`] clears the context
//! between independent queries.

use crate::cost::InferenceCost;
use crate::vocab::TokenId;

/// An autoregressive sequence model over a fixed vocabulary.
pub trait LanguageModel {
    /// Size of the vocabulary this model emits distributions over.
    fn vocab_size(&self) -> usize;

    /// Clears all context (and cost counters start a fresh session).
    fn reset(&mut self);

    /// Consumes one token of context.
    ///
    /// Call with `generated = false` for prompt tokens and `true` for
    /// tokens the model itself produced (they still extend the context —
    /// LLM decoding conditions on everything emitted so far).
    fn observe(&mut self, token: TokenId, generated: bool);

    /// Writes `P(next token | context)` into `out`
    /// (`out.len() == vocab_size()`, entries sum to 1).
    fn next_distribution(&mut self, out: &mut [f64]);

    /// Cumulative cost of the current session.
    fn cost(&self) -> InferenceCost;

    /// A short human-readable identifier (used in reports).
    fn name(&self) -> &str;
}

/// A prompt-conditioned model frozen for sampling.
///
/// Zero-shot forecasting treats the LLM as a *frozen conditional sampler*:
/// the prompt is the only adaptation signal, and every one of the `S`
/// sampled continuations conditions on exactly the same prompt state. A
/// `FrozenLm` is that shared state, built once (see
/// [`crate::presets::fit_model`]) and then shared read-only — typically
/// behind an `Arc` — across sample threads. Each sample decodes through its
/// own [`DecodeSession`] cursor obtained from [`FrozenLm::fork`].
///
/// # Contract
///
/// - `fork()` is cheap relative to re-observing the prompt: a session holds
///   only per-sample generated-token context layered over the frozen base.
/// - Sessions are independent: interleaving `observe`/`next_distribution`
///   calls across two forks must produce exactly what running each fork to
///   completion alone would (no shared mutable state).
/// - Decoding through a session is *bit-identical* to mutating a fresh
///   model that observed the prompt and then the same generated tokens.
/// - [`FrozenLm::prompt_cost`] accounts the prompt exactly once;
///   [`DecodeSession::cost`] accounts only the session's own generated
///   tokens and prediction work. Their sum over all sessions equals the
///   refit pipeline's cost minus the `(S - 1)` redundant prompt passes.
pub trait FrozenLm: Send + Sync {
    /// Size of the vocabulary this model emits distributions over.
    fn vocab_size(&self) -> usize;

    /// Cost of observing the prompt (paid once, at fit time).
    fn prompt_cost(&self) -> InferenceCost;

    /// A short human-readable identifier (used in reports).
    fn name(&self) -> &str;

    /// Starts an independent decode cursor on top of the frozen prompt
    /// context.
    fn fork(&self) -> Box<dyn DecodeSession + '_>;

    /// Extends the frozen prompt context with `tokens` in place
    /// (incremental refit), returning `true` on success.
    ///
    /// # Contract
    ///
    /// A successful refit must be **bit-identical** to a from-scratch
    /// fit: after `refit_extend(suffix)` on a model fitted on `prefix`,
    /// every observable — distributions from forked sessions, sampled
    /// tokens under a fixed seed, and [`FrozenLm::prompt_cost`] — must
    /// equal what fitting `prefix ++ suffix` in one pass would produce.
    /// The concrete backends satisfy this by construction: fitting *is*
    /// observing tokens one at a time, so replaying the suffix through
    /// the same observe path lands in the identical state. The refit
    /// tokens are accounted as prompt tokens (they extend the prompt).
    ///
    /// The default returns `false` (refit unsupported); callers must
    /// fall back to a full fit. Wrappers that cannot uphold the
    /// bit-identity contract (e.g. metering decorators holding a shared
    /// inner model) keep the default.
    fn refit_extend(&mut self, tokens: &[TokenId]) -> bool {
        let _ = tokens;
        false
    }
}

/// One sample's decode cursor over a [`FrozenLm`].
///
/// Mirrors the mutable half of [`LanguageModel`], minus the
/// prompt-vs-generated distinction: every token a session observes is a
/// generated token (the prompt lives in the frozen base).
pub trait DecodeSession {
    /// Size of the vocabulary this session emits distributions over.
    fn vocab_size(&self) -> usize;

    /// Extends this session's context with one generated token.
    fn observe(&mut self, token: TokenId);

    /// Writes `P(next token | frozen prompt + session context)` into `out`.
    fn next_distribution(&mut self, out: &mut [f64]);

    /// Cost of this session alone (generated tokens + prediction work;
    /// the prompt is accounted by [`FrozenLm::prompt_cost`]).
    fn cost(&self) -> InferenceCost;
}

/// Feeds a whole prompt into the model.
pub fn observe_all(model: &mut dyn LanguageModel, prompt: &[TokenId]) {
    for &t in prompt {
        model.observe(t, false);
    }
}

/// Validates that a distribution is well-formed (used by tests and debug
/// assertions): finite, non-negative, summing to ~1.
pub fn is_distribution(p: &[f64]) -> bool {
    p.iter().all(|&x| x.is_finite() && x >= 0.0) && (p.iter().sum::<f64>() - 1.0).abs() < 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_distribution_checks() {
        assert!(is_distribution(&[0.25, 0.75]));
        assert!(!is_distribution(&[0.5, 0.6]));
        assert!(!is_distribution(&[-0.1, 1.1]));
        assert!(!is_distribution(&[f64::NAN, 1.0]));
    }
}
