//! The [`LanguageModel`] trait: the contract MultiCast needs from a
//! frozen LLM backend.
//!
//! Zero-shot prompting means the model never sees gradient updates; all
//! adaptation happens by *conditioning on the prompt*. The trait mirrors
//! that: [`LanguageModel::observe`] feeds one prompt (or freshly generated)
//! token, [`LanguageModel::next_distribution`] reads the conditional
//! next-token distribution, and [`LanguageModel::reset`] clears the context
//! between independent queries.

use crate::cost::InferenceCost;
use crate::vocab::TokenId;

/// An autoregressive sequence model over a fixed vocabulary.
pub trait LanguageModel {
    /// Size of the vocabulary this model emits distributions over.
    fn vocab_size(&self) -> usize;

    /// Clears all context (and cost counters start a fresh session).
    fn reset(&mut self);

    /// Consumes one token of context.
    ///
    /// Call with `generated = false` for prompt tokens and `true` for
    /// tokens the model itself produced (they still extend the context —
    /// LLM decoding conditions on everything emitted so far).
    fn observe(&mut self, token: TokenId, generated: bool);

    /// Writes `P(next token | context)` into `out`
    /// (`out.len() == vocab_size()`, entries sum to 1).
    fn next_distribution(&mut self, out: &mut [f64]);

    /// Cumulative cost of the current session.
    fn cost(&self) -> InferenceCost;

    /// A short human-readable identifier (used in reports).
    fn name(&self) -> &str;
}

/// Feeds a whole prompt into the model.
pub fn observe_all(model: &mut dyn LanguageModel, prompt: &[TokenId]) {
    for &t in prompt {
        model.observe(t, false);
    }
}

/// Validates that a distribution is well-formed (used by tests and debug
/// assertions): finite, non-negative, summing to ~1.
pub fn is_distribution(p: &[f64]) -> bool {
    p.iter().all(|&x| x.is_finite() && x >= 0.0) && (p.iter().sum::<f64>() - 1.0).abs() < 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_distribution_checks() {
        assert!(is_distribution(&[0.25, 0.75]));
        assert!(!is_distribution(&[0.5, 0.6]));
        assert!(!is_distribution(&[-0.1, 1.1]));
        assert!(!is_distribution(&[f64::NAN, 1.0]));
    }
}
