//! Clonable concrete backends.
//!
//! `Box<dyn LanguageModel>` cannot be cloned, but two use cases need a
//! *snapshot* of an in-context model's state: lookahead decoding (score a
//! hypothetical continuation without polluting the real context — used by
//! `mc-tasks`' surprise profiler) and streaming prediction (draw forecast
//! samples from a live stream without retaining them). [`ConcreteLm`]
//! wraps each preset's concrete types so `Clone` is available, while still
//! implementing [`LanguageModel`] for uniform use.

use crate::cost::InferenceCost;
use crate::ensemble::EnsembleSession;
use crate::model::{DecodeSession, FrozenLm, LanguageModel};
use crate::ngram::{NGramLm, NGramSession};
use crate::ppm::{PpmLm, PpmSession};
use crate::presets::ModelPreset;
use crate::suffix::{SuffixLm, SuffixSession};
use crate::vocab::TokenId;

/// A preset backend with value semantics (clonable snapshots).
#[derive(Debug, Clone)]
pub enum ConcreteLm {
    /// Interpolated n-gram (the `Large`/`Small` presets).
    NGram(NGramLm),
    /// Suffix matcher (the `Suffix` preset).
    Suffix(SuffixLm),
    /// Equal-weight product of experts over both families
    /// (the `Ensemble` preset).
    Pair(NGramLm, SuffixLm),
    /// PPM-C (the `Ppm` preset).
    Ppm(PpmLm),
}

impl ConcreteLm {
    /// Builds the concrete model for a preset; parameters mirror
    /// [`crate::presets::build_model`] exactly.
    pub fn build(preset: ModelPreset, vocab_size: usize) -> Self {
        match preset {
            ModelPreset::Large => {
                ConcreteLm::NGram(NGramLm::new(vocab_size, 10, 0.25, preset.display_name()))
            }
            ModelPreset::Small => {
                ConcreteLm::NGram(NGramLm::new(vocab_size, 2, 2.0, preset.display_name()))
            }
            ModelPreset::Suffix => {
                ConcreteLm::Suffix(SuffixLm::new(vocab_size, 24, 1.8, 0.5, preset.display_name()))
            }
            ModelPreset::Ensemble => ConcreteLm::Pair(
                NGramLm::new(vocab_size, 10, 0.25, "member:ngram"),
                SuffixLm::new(vocab_size, 24, 1.8, 0.5, "member:suffix"),
            ),
            ModelPreset::Ppm => ConcreteLm::Ppm(PpmLm::new(vocab_size, 8, preset.display_name())),
        }
    }
}

impl LanguageModel for ConcreteLm {
    fn vocab_size(&self) -> usize {
        match self {
            ConcreteLm::NGram(m) => m.vocab_size(),
            ConcreteLm::Suffix(m) => m.vocab_size(),
            ConcreteLm::Pair(a, _) => a.vocab_size(),
            ConcreteLm::Ppm(m) => m.vocab_size(),
        }
    }

    fn reset(&mut self) {
        match self {
            ConcreteLm::NGram(m) => m.reset(),
            ConcreteLm::Suffix(m) => m.reset(),
            ConcreteLm::Pair(a, b) => {
                a.reset();
                b.reset();
            }
            ConcreteLm::Ppm(m) => m.reset(),
        }
    }

    fn observe(&mut self, token: TokenId, generated: bool) {
        match self {
            ConcreteLm::NGram(m) => m.observe(token, generated),
            ConcreteLm::Suffix(m) => m.observe(token, generated),
            ConcreteLm::Pair(a, b) => {
                a.observe(token, generated);
                b.observe(token, generated);
            }
            ConcreteLm::Ppm(m) => m.observe(token, generated),
        }
    }

    fn next_distribution(&mut self, out: &mut [f64]) {
        match self {
            ConcreteLm::NGram(m) => m.next_distribution(out),
            ConcreteLm::Suffix(m) => m.next_distribution(out),
            ConcreteLm::Pair(a, b) => {
                // Equal-weight product of experts (matches `EnsembleLm`).
                let mut pa = vec![0.0; out.len()];
                let mut pb = vec![0.0; out.len()];
                a.next_distribution(&mut pa);
                b.next_distribution(&mut pb);
                let mut norm = 0.0;
                for ((o, &x), &y) in out.iter_mut().zip(&pa).zip(&pb) {
                    *o = (0.5 * x.max(1e-12).ln() + 0.5 * y.max(1e-12).ln()).exp();
                    norm += *o;
                }
                for o in out.iter_mut() {
                    *o /= norm;
                }
            }
            ConcreteLm::Ppm(m) => m.next_distribution(out),
        }
    }

    fn cost(&self) -> InferenceCost {
        match self {
            ConcreteLm::NGram(m) => m.cost(),
            ConcreteLm::Suffix(m) => m.cost(),
            ConcreteLm::Pair(a, b) => {
                let mut c = a.cost();
                c.work_units += b.cost().work_units;
                c
            }
            ConcreteLm::Ppm(m) => m.cost(),
        }
    }

    fn name(&self) -> &str {
        match self {
            ConcreteLm::NGram(m) => m.name(),
            ConcreteLm::Suffix(m) => m.name(),
            ConcreteLm::Pair(a, _) => a.name(),
            ConcreteLm::Ppm(m) => m.name(),
        }
    }
}

/// A live `ConcreteLm` can also serve as a frozen base: streaming keeps
/// one model current with the observed stream and forks throwaway decode
/// sessions from it at prediction time, never mutating the base.
impl FrozenLm for ConcreteLm {
    fn vocab_size(&self) -> usize {
        LanguageModel::vocab_size(self)
    }

    fn prompt_cost(&self) -> InferenceCost {
        self.cost()
    }

    fn name(&self) -> &str {
        LanguageModel::name(self)
    }

    fn fork(&self) -> Box<dyn DecodeSession + '_> {
        match self {
            ConcreteLm::NGram(m) => Box::new(NGramSession::new(m)),
            ConcreteLm::Suffix(m) => Box::new(SuffixSession::new(m)),
            // Equal weights normalize to 0.5 each, reproducing the Pair
            // product-of-experts arithmetic bit for bit.
            ConcreteLm::Pair(a, b) => Box::new(EnsembleSession::new(vec![
                (Box::new(NGramSession::new(a)) as Box<dyn DecodeSession + '_>, 1.0),
                (Box::new(SuffixSession::new(b)) as Box<dyn DecodeSession + '_>, 1.0),
            ])),
            ConcreteLm::Ppm(m) => Box::new(PpmSession::new(m)),
        }
    }

    fn refit_extend(&mut self, tokens: &[TokenId]) -> bool {
        // The live model observes directly; equivalent to the frozen
        // backends' replay because fitting *is* observing.
        for &t in tokens {
            LanguageModel::observe(self, t, false);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{is_distribution, observe_all};

    #[test]
    fn builds_every_preset_with_matching_vocab() {
        for preset in ModelPreset::ALL {
            let m = ConcreteLm::build(preset, 13);
            assert_eq!(LanguageModel::vocab_size(&m), 13, "{preset:?}");
        }
    }

    #[test]
    fn clone_is_an_independent_snapshot() {
        let mut m = ConcreteLm::build(ModelPreset::Large, 4);
        observe_all(&mut m, &[0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
        let mut snapshot = m.clone();
        // Feed divergent continuations.
        snapshot.observe(3, true);
        snapshot.observe(3, true);
        let mut p_orig = vec![0.0; 4];
        let mut p_snap = vec![0.0; 4];
        m.next_distribution(&mut p_orig);
        snapshot.next_distribution(&mut p_snap);
        assert!(is_distribution(&p_orig) && is_distribution(&p_snap));
        assert_ne!(p_orig, p_snap, "snapshot must evolve independently");
        // The original still predicts the cycle continuation (token 2).
        assert!(p_orig[2] > 0.5, "{p_orig:?}");
    }

    #[test]
    fn pair_matches_ensemble_semantics() {
        // ConcreteLm::Pair and the boxed EnsembleLm preset must produce
        // the same distribution for the same context.
        let tokens = [0u32, 1, 2, 0, 1, 2, 0, 1];
        let mut pair = ConcreteLm::build(ModelPreset::Ensemble, 3);
        let mut boxed = crate::presets::build_model(ModelPreset::Ensemble, 3);
        observe_all(&mut pair, &tokens);
        observe_all(boxed.as_mut(), &tokens);
        let mut p1 = vec![0.0; 3];
        let mut p2 = vec![0.0; 3];
        pair.next_distribution(&mut p1);
        boxed.next_distribution(&mut p2);
        for (a, b) in p1.iter().zip(&p2) {
            assert!((a - b).abs() < 1e-12, "{p1:?} vs {p2:?}");
        }
    }
}
