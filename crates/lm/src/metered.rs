//! Global cost metering for shared frozen backends.
//!
//! The serving layer attributes inference cost per request (prompt paid
//! once per frozen context, generated tokens charged to the session that
//! drew them). That attribution needs an independent ground truth to be
//! checked against: [`CostLedger`] is that ground truth — an atomic,
//! thread-safe counter that [`MeteredLm`] feeds from *inside* the model
//! boundary, recording the prompt once at wrap time and every fork's
//! session cost when the session drops. If the per-request sums and the
//! ledger disagree, tokens were double-charged or lost.
//!
//! The wrapper is transparent: [`MeteredLm`] implements [`FrozenLm`] by
//! delegation, so decoding through it is bit-identical to decoding through
//! the wrapped backend.

use mc_sync::atomic::{AtomicU64, Ordering};
use mc_sync::Arc;

use mc_obs::{mix, EventKind, NoopRecorder, Recorder, SpanEvent, SpanKind, TraceEvent};

use crate::cost::InferenceCost;
use crate::model::{DecodeSession, FrozenLm};
use crate::vocab::TokenId;

/// Thread-safe running totals of everything a metered backend consumed.
///
/// Relaxed ordering suffices: counters are independent monotone sums, and
/// readers that need a consistent view (the serving layer) only snapshot
/// after joining the threads that recorded.
#[derive(Debug, Default)]
pub struct CostLedger {
    prompt_tokens: AtomicU64,
    generated_tokens: AtomicU64,
    work_units: AtomicU64,
    sessions: AtomicU64,
}

impl CostLedger {
    /// A fresh ledger with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one cost observation to the totals.
    pub fn record(&self, cost: InferenceCost) {
        self.prompt_tokens.fetch_add(cost.prompt_tokens, Ordering::Relaxed);
        self.generated_tokens.fetch_add(cost.generated_tokens, Ordering::Relaxed);
        self.work_units.fetch_add(cost.work_units, Ordering::Relaxed);
    }

    /// Current totals as one [`InferenceCost`].
    pub fn snapshot(&self) -> InferenceCost {
        InferenceCost {
            prompt_tokens: self.prompt_tokens.load(Ordering::Relaxed),
            generated_tokens: self.generated_tokens.load(Ordering::Relaxed),
            work_units: self.work_units.load(Ordering::Relaxed),
        }
    }

    /// Decode sessions that completed (dropped) against this ledger.
    pub fn sessions(&self) -> u64 {
        self.sessions.load(Ordering::Relaxed)
    }

    fn record_session(&self, cost: InferenceCost) {
        self.record(cost);
        self.sessions.fetch_add(1, Ordering::Relaxed);
    }
}

/// A [`FrozenLm`] that records everything it consumes into a [`CostLedger`].
///
/// Wrapping records the backend's one-time [`FrozenLm::prompt_cost`]
/// immediately (the prompt was paid when the inner backend was fitted);
/// every session forked from the wrapper records its own cost exactly once,
/// when it drops. Wrap a backend at most once per ledger, or the prompt is
/// counted again.
pub struct MeteredLm {
    inner: Arc<dyn FrozenLm>,
    ledger: Arc<CostLedger>,
    recorder: Arc<dyn Recorder>,
    ctx: u64,
}

impl MeteredLm {
    /// Wraps `inner`, immediately recording its prompt cost into `ledger`.
    pub fn new(inner: Arc<dyn FrozenLm>, ledger: Arc<CostLedger>) -> Self {
        Self::observed(inner, ledger, Arc::new(NoopRecorder), 0)
    }

    /// Like [`MeteredLm::new`], but every completed session additionally
    /// emits a `session_cost` trace event tagged with the `ctx` context
    /// fingerprint. Session-drop order is scheduler-dependent, so these
    /// events feed metrics and wall-clock exports, never the canonical
    /// trace.
    pub fn observed(
        inner: Arc<dyn FrozenLm>,
        ledger: Arc<CostLedger>,
        recorder: Arc<dyn Recorder>,
        ctx: u64,
    ) -> Self {
        ledger.record(inner.prompt_cost());
        Self { inner, ledger, recorder, ctx }
    }

    /// The ledger this wrapper records into.
    pub fn ledger(&self) -> &Arc<CostLedger> {
        &self.ledger
    }
}

impl FrozenLm for MeteredLm {
    fn vocab_size(&self) -> usize {
        self.inner.vocab_size()
    }

    fn prompt_cost(&self) -> InferenceCost {
        self.inner.prompt_cost()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn fork(&self) -> Box<dyn DecodeSession + '_> {
        // A `session` span covers the fork-to-drop life of the cursor.
        // Drop order is scheduler-dependent, so the id is minted from a
        // logical tick (sidecar lane, never canonical); the close half is
        // emitted in Drop, which runs even during unwinding.
        let span = if self.recorder.enabled() {
            let id = mix(self.recorder.now(), SpanKind::Session.index() as u64);
            self.recorder.span(SpanEvent::open_with_id(id, self.ctx, SpanKind::Session));
            Some(id)
        } else {
            None
        };
        Box::new(MeteredSession {
            inner: self.inner.fork(),
            ledger: &self.ledger,
            recorder: self.recorder.as_ref(),
            ctx: self.ctx,
            span,
        })
    }
}

/// A session that records its final cost into the ledger when dropped.
struct MeteredSession<'a> {
    inner: Box<dyn DecodeSession + 'a>,
    ledger: &'a CostLedger,
    recorder: &'a dyn Recorder,
    ctx: u64,
    span: Option<u64>,
}

impl DecodeSession for MeteredSession<'_> {
    fn vocab_size(&self) -> usize {
        self.inner.vocab_size()
    }

    fn observe(&mut self, token: TokenId) {
        self.inner.observe(token);
    }

    fn next_distribution(&mut self, out: &mut [f64]) {
        self.inner.next_distribution(out);
    }

    fn cost(&self) -> InferenceCost {
        self.inner.cost()
    }
}

impl Drop for MeteredSession<'_> {
    fn drop(&mut self) {
        let cost = self.inner.cost();
        self.ledger.record_session(cost);
        if self.recorder.enabled() {
            self.recorder.record(TraceEvent {
                req: 0,
                ctx: self.ctx,
                kind: EventKind::SessionCost {
                    generated_tokens: cost.generated_tokens,
                    work_units: cost.work_units,
                },
            });
        }
        if let Some(id) = self.span {
            self.recorder.span(SpanEvent::close_with_id(id, self.ctx, SpanKind::Session));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{fit_model, ModelPreset};
    use crate::vocab::Vocab;

    fn frozen() -> Arc<dyn FrozenLm> {
        let vocab = Vocab::numeric();
        let prompt: Vec<TokenId> = "12,34,56,78,".chars().map(|c| vocab.id(c).unwrap()).collect();
        Arc::from(fit_model(ModelPreset::Small, vocab.len(), &prompt))
    }

    #[test]
    fn wrapping_records_prompt_once() {
        let inner = frozen();
        let ledger = Arc::new(CostLedger::new());
        let metered = MeteredLm::new(inner.clone(), ledger.clone());
        assert_eq!(ledger.snapshot().prompt_tokens, inner.prompt_cost().prompt_tokens);
        assert_eq!(metered.prompt_cost(), inner.prompt_cost());
        assert_eq!(ledger.sessions(), 0);
    }

    #[test]
    fn sessions_record_on_drop_and_decode_identically() {
        let inner = frozen();
        let ledger = Arc::new(CostLedger::new());
        let metered = MeteredLm::new(inner.clone(), ledger.clone());
        let before = ledger.snapshot();
        let mut plain = inner.fork();
        let mut wrapped = metered.fork();
        let n = inner.vocab_size();
        let (mut p, mut q) = (vec![0.0; n], vec![0.0; n]);
        for &tok in &[1u32, 2, 3] {
            plain.next_distribution(&mut p);
            wrapped.next_distribution(&mut q);
            assert_eq!(p, q, "metering must not perturb decoding");
            plain.observe(tok as TokenId);
            wrapped.observe(tok as TokenId);
        }
        let session_cost = wrapped.cost();
        assert_eq!(session_cost, plain.cost());
        assert_eq!(ledger.snapshot(), before, "cost records only at drop");
        drop(wrapped);
        let after = ledger.snapshot();
        assert_eq!(after.generated_tokens, before.generated_tokens + session_cost.generated_tokens);
        assert_eq!(ledger.sessions(), 1);
        drop(plain);
        assert_eq!(ledger.snapshot(), after, "unmetered sessions never record");
    }

    #[test]
    fn ledger_sums_across_threads() {
        let ledger = Arc::new(CostLedger::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let ledger = &ledger;
                scope.spawn(move || {
                    for _ in 0..100 {
                        ledger.record(InferenceCost {
                            prompt_tokens: 1,
                            generated_tokens: 2,
                            work_units: 3,
                        });
                    }
                });
            }
        });
        let total = ledger.snapshot();
        assert_eq!(total.prompt_tokens, 800);
        assert_eq!(total.generated_tokens, 1600);
        assert_eq!(total.work_units, 2400);
    }
}
