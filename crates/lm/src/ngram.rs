//! Interpolated back-off n-gram language model with in-context learning.
//!
//! This is the primary LLM stand-in (see `DESIGN.md` §2). The model keeps
//! suffix counts for every context order `0..=max_order`, updated *as the
//! prompt streams in* — which is precisely what zero-shot forecasting
//! exploits in a pretrained transformer: the prompt itself establishes the
//! patterns the continuation must follow. Prediction mixes all orders with
//! count-confidence weights (Jelinek–Mercer interpolation with a
//! Witten–Bell-flavoured λ), so sparse-but-exact long-context matches
//! dominate when available and the model degrades gracefully to shorter
//! contexts otherwise.
//!
//! Capacity is governed by `max_order` and the interpolation concentration
//! `gamma`: a deep, low-`gamma` instance locks onto long repetitive
//! patterns (the "LLaMA2" preset), a shallow high-`gamma` one can only see
//! local digit statistics (the "Phi-2" preset).

use std::collections::HashMap;

use crate::cost::InferenceCost;
use crate::model::{DecodeSession, FrozenLm, LanguageModel};
use crate::vocab::TokenId;

/// Radix-encodes the last `k` tokens of `history` into a map key — the
/// context-key scheme shared by [`NGramLm`] and [`crate::ppm::PpmLm`]
/// (and their frozen decode sessions, which must reproduce it exactly).
pub(crate) fn radix_key(history: &[TokenId], k: usize, vocab_size: usize) -> u64 {
    debug_assert!(k <= history.len());
    let mut key = 0u64;
    for &t in &history[history.len() - k..] {
        key = key * vocab_size as u64 + t as u64;
    }
    key
}

/// Interpolated n-gram LM. See the module docs.
#[derive(Debug, Clone)]
pub struct NGramLm {
    vocab_size: usize,
    max_order: usize,
    gamma: f64,
    /// `counts[k]` maps a radix-encoded `k`-token context to next-token
    /// count vectors.
    counts: Vec<HashMap<u64, Vec<u32>>>,
    /// Most recent `max_order` tokens, oldest first.
    history: Vec<TokenId>,
    cost: InferenceCost,
    name: String,
}

impl NGramLm {
    /// Creates a model over `vocab_size` tokens mixing context orders
    /// `0..=max_order` with interpolation concentration `gamma`.
    ///
    /// # Panics
    /// If `vocab_size == 0`, `gamma <= 0`, or the radix encoding of
    /// `max_order` tokens would overflow 64 bits.
    pub fn new(vocab_size: usize, max_order: usize, gamma: f64, name: impl Into<String>) -> Self {
        assert!(vocab_size > 0, "vocab_size must be positive");
        assert!(gamma > 0.0, "gamma must be positive");
        let bits = (vocab_size as f64).log2().ceil().max(1.0) * max_order as f64;
        assert!(bits <= 63.0, "max_order {max_order} too deep for vocab {vocab_size}");
        Self {
            vocab_size,
            max_order,
            gamma,
            counts: vec![HashMap::new(); max_order + 1],
            history: Vec::with_capacity(max_order),
            cost: InferenceCost::default(),
            name: name.into(),
        }
    }

    /// Context depth this model mixes up to.
    pub fn max_order(&self) -> usize {
        self.max_order
    }

    /// Radix-encodes the last `k` history tokens into a map key.
    fn key(&self, k: usize) -> u64 {
        radix_key(&self.history, k, self.vocab_size)
    }

    /// Freezes the model after prompt conditioning; decode via
    /// [`FrozenLm::fork`] sessions.
    pub fn into_frozen(self) -> FrozenNGram {
        FrozenNGram { base: self }
    }
}

/// A prompt-conditioned [`NGramLm`] frozen for sampling.
#[derive(Debug)]
pub struct FrozenNGram {
    base: NGramLm,
}

impl FrozenLm for FrozenNGram {
    fn vocab_size(&self) -> usize {
        self.base.vocab_size
    }

    fn prompt_cost(&self) -> InferenceCost {
        self.base.cost
    }

    fn name(&self) -> &str {
        &self.base.name
    }

    fn fork(&self) -> Box<dyn DecodeSession + '_> {
        Box::new(NGramSession::new(&self.base))
    }

    fn refit_extend(&mut self, tokens: &[TokenId]) -> bool {
        // Fitting is observing: replaying the suffix through the same
        // observe path reaches the exact state a from-scratch fit on the
        // extended prompt would (same counts, history, cost).
        for &t in tokens {
            self.base.observe(t, false);
        }
        true
    }
}

/// One sample's decode cursor over a frozen [`NGramLm`].
///
/// Count updates for generated tokens go into a copy-on-write overlay (the
/// affected count vector is copied from the base on first touch), so the
/// frozen base is shared read-only and the session sees exactly the counts
/// a mutated clone would — same `u32` counts, same `f64` arithmetic,
/// bit-identical distributions.
#[derive(Debug)]
pub struct NGramSession<'a> {
    base: &'a NGramLm,
    overlay: Vec<HashMap<u64, Vec<u32>>>,
    history: Vec<TokenId>,
    cost: InferenceCost,
}

impl<'a> NGramSession<'a> {
    pub(crate) fn new(base: &'a NGramLm) -> Self {
        Self {
            base,
            overlay: vec![HashMap::new(); base.max_order + 1],
            history: base.history.clone(),
            cost: InferenceCost::default(),
        }
    }

    fn counts(&self, k: usize, key: u64) -> Option<&Vec<u32>> {
        self.overlay[k].get(&key).or_else(|| self.base.counts[k].get(&key))
    }
}

impl DecodeSession for NGramSession<'_> {
    fn vocab_size(&self) -> usize {
        self.base.vocab_size
    }

    fn observe(&mut self, token: TokenId) {
        let vocab_size = self.base.vocab_size;
        assert!((token as usize) < vocab_size, "token {token} out of range");
        for k in 0..=self.base.max_order.min(self.history.len()) {
            let key = radix_key(&self.history, k, vocab_size);
            let base_counts = &self.base.counts[k];
            let slot = self.overlay[k].entry(key).or_insert_with(|| {
                base_counts.get(&key).cloned().unwrap_or_else(|| vec![0u32; vocab_size])
            });
            slot[token as usize] += 1;
            self.cost.work_units += 1;
        }
        self.history.push(token);
        if self.history.len() > self.base.max_order {
            self.history.remove(0);
        }
        self.cost.generated_tokens += 1;
    }

    fn next_distribution(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.base.vocab_size, "distribution buffer size");
        let v = self.base.vocab_size as f64;
        // Order 0 base: unigram with add-one smoothing toward uniform
        // (mirrors `NGramLm::next_distribution` operation for operation).
        let mut p: Vec<f64> = {
            self.cost.work_units += 1;
            match self.counts(0, 0) {
                Some(c) => {
                    let total: f64 = c.iter().map(|&x| x as f64).sum();
                    c.iter().map(|&x| (x as f64 + 1.0) / (total + v)).collect()
                }
                None => vec![1.0 / v; self.base.vocab_size],
            }
        };
        let deepest = self.base.max_order.min(self.history.len());
        for k in 1..=deepest {
            let key = radix_key(&self.history, k, self.base.vocab_size);
            self.cost.work_units += 1;
            if let Some(c) = self.counts(k, key) {
                let total: f64 = c.iter().map(|&x| x as f64).sum();
                if total > 0.0 {
                    let distinct = c.iter().filter(|&&x| x > 0).count() as f64;
                    let lambda = total / (total + self.base.gamma * distinct);
                    for (i, slot) in p.iter_mut().enumerate() {
                        *slot = lambda * (c[i] as f64 / total) + (1.0 - lambda) * *slot;
                    }
                }
            }
        }
        out.copy_from_slice(&p);
    }

    fn cost(&self) -> InferenceCost {
        self.cost
    }
}

impl LanguageModel for NGramLm {
    fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    fn reset(&mut self) {
        for m in &mut self.counts {
            m.clear();
        }
        self.history.clear();
        self.cost = InferenceCost::default();
    }

    fn observe(&mut self, token: TokenId, generated: bool) {
        assert!((token as usize) < self.vocab_size, "token {token} out of range");
        // Update every order's counts for the transition (context → token).
        for k in 0..=self.max_order.min(self.history.len()) {
            let key = self.key(k);
            let slot = self.counts[k].entry(key).or_insert_with(|| vec![0u32; self.vocab_size]);
            slot[token as usize] += 1;
            self.cost.work_units += 1;
        }
        self.history.push(token);
        if self.history.len() > self.max_order {
            self.history.remove(0);
        }
        if generated {
            self.cost.generated_tokens += 1;
        } else {
            self.cost.prompt_tokens += 1;
        }
    }

    fn next_distribution(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.vocab_size, "distribution buffer size");
        let v = self.vocab_size as f64;
        // Order 0 base: unigram with add-one smoothing toward uniform.
        let mut p: Vec<f64> = {
            let zero = self.counts[0].get(&0);
            self.cost.work_units += 1;
            match zero {
                Some(c) => {
                    let total: f64 = c.iter().map(|&x| x as f64).sum();
                    c.iter().map(|&x| (x as f64 + 1.0) / (total + v)).collect()
                }
                None => vec![1.0 / v; self.vocab_size],
            }
        };
        // Interpolate higher orders: λ = n / (n + gamma · distinct).
        let deepest = self.max_order.min(self.history.len());
        for k in 1..=deepest {
            let key = self.key(k);
            self.cost.work_units += 1;
            if let Some(c) = self.counts[k].get(&key) {
                let total: f64 = c.iter().map(|&x| x as f64).sum();
                if total > 0.0 {
                    let distinct = c.iter().filter(|&&x| x > 0).count() as f64;
                    let lambda = total / (total + self.gamma * distinct);
                    for (i, slot) in p.iter_mut().enumerate() {
                        *slot = lambda * (c[i] as f64 / total) + (1.0 - lambda) * *slot;
                    }
                }
            }
            // Missing context: keep the lower-order estimate (full back-off).
        }
        out.copy_from_slice(&p);
    }

    fn cost(&self) -> InferenceCost {
        self.cost
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{is_distribution, observe_all};

    fn feed(model: &mut NGramLm, tokens: &[TokenId]) {
        observe_all(model, tokens);
    }

    #[test]
    fn uniform_before_any_context() {
        let mut m = NGramLm::new(4, 3, 0.5, "t");
        let mut p = vec![0.0; 4];
        m.next_distribution(&mut p);
        assert!(is_distribution(&p));
        for &x in &p {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn learns_deterministic_cycle() {
        // Pattern 0 1 2 0 1 2 ... — after enough context the model should
        // predict the next element of the cycle with high confidence.
        let mut m = NGramLm::new(3, 4, 0.5, "t");
        let cycle: Vec<TokenId> = (0..60).map(|i| (i % 3) as TokenId).collect();
        feed(&mut m, &cycle);
        // History ends ... 0 1 2 (i=59 → token 2); next must be 0.
        let mut p = vec![0.0; 3];
        m.next_distribution(&mut p);
        assert!(is_distribution(&p));
        assert!(p[0] > 0.8, "expected confident cycle continuation, got {p:?}");
    }

    #[test]
    fn deeper_model_is_sharper_on_long_patterns() {
        // Period-4 pattern is invisible to order-1 contexts that alias.
        // Pattern: 0 1 0 2 repeated. After "0", order-1 sees P(1)≈P(2)≈0.5;
        // an order-2+ model knows which "0" this is.
        let pattern: Vec<TokenId> = [0u32, 1, 0, 2].iter().cycle().take(80).copied().collect();
        let mut shallow = NGramLm::new(3, 1, 0.5, "s");
        let mut deep = NGramLm::new(3, 4, 0.5, "d");
        feed(&mut shallow, &pattern);
        feed(&mut deep, &pattern);
        // Sequence ends ...0 2 (len 80 = 20 cycles); next is 0 then 1.
        let mut ps = vec![0.0; 3];
        let mut pd = vec![0.0; 3];
        shallow.next_distribution(&mut ps);
        deep.next_distribution(&mut pd);
        assert!(pd[0] > 0.8);
        // Feed the 0; now the interesting prediction: 1 (deep) vs aliased.
        shallow.observe(0, true);
        deep.observe(0, true);
        shallow.next_distribution(&mut ps);
        deep.next_distribution(&mut pd);
        assert!(
            pd[1] > ps[1] + 0.2,
            "deep model should disambiguate the aliased context: deep {pd:?} shallow {ps:?}"
        );
    }

    #[test]
    fn distribution_always_valid_under_random_feed() {
        let mut m = NGramLm::new(5, 3, 1.0, "t");
        let mut state = 42u64;
        let mut p = vec![0.0; 5];
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            m.observe(((state >> 33) % 5) as TokenId, false);
            m.next_distribution(&mut p);
            assert!(is_distribution(&p));
        }
    }

    #[test]
    fn reset_clears_context_and_cost() {
        let mut m = NGramLm::new(3, 2, 0.5, "t");
        feed(&mut m, &[0, 1, 2, 0, 1, 2]);
        assert!(m.cost().prompt_tokens == 6);
        m.reset();
        assert_eq!(m.cost(), InferenceCost::default());
        let mut p = vec![0.0; 3];
        m.next_distribution(&mut p);
        for &x in &p {
            assert!((x - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cost_distinguishes_prompt_and_generated() {
        let mut m = NGramLm::new(3, 2, 0.5, "t");
        m.observe(0, false);
        m.observe(1, true);
        m.observe(2, true);
        let c = m.cost();
        assert_eq!(c.prompt_tokens, 1);
        assert_eq!(c.generated_tokens, 2);
        assert!(c.work_units > 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_token_panics() {
        let mut m = NGramLm::new(3, 2, 0.5, "t");
        m.observe(3, false);
    }

    #[test]
    #[should_panic(expected = "too deep")]
    fn order_overflow_guard() {
        NGramLm::new(64, 64, 0.5, "t");
    }

    #[test]
    fn name_is_reported() {
        let m = NGramLm::new(3, 2, 0.5, "my-model");
        assert_eq!(m.name(), "my-model");
    }
}
