//! PPM-C: prediction by partial matching with escape probabilities.
//!
//! A third in-context model family, classically distinct from the
//! Jelinek–Mercer interpolation of [`crate::ngram::NGramLm`]: instead of
//! *blending* all context orders, PPM commits to the longest seen context
//! and pays an explicit **escape** probability to fall back one order,
//! excluding symbols already accounted for at higher orders (the
//! "exclusion" rule). Method C sets the escape mass to
//! `distinct / (total + distinct)`.
//!
//! PPM variants drive the best adaptive text compressors; here the model
//! serves as an ablation backend — same interface, different inductive
//! bias (hard back-off vs soft mixing).

use std::collections::HashMap;

use crate::cost::InferenceCost;
use crate::model::{DecodeSession, FrozenLm, LanguageModel};
use crate::ngram::radix_key;
use crate::vocab::TokenId;

/// PPM-C language model. See the module docs.
#[derive(Debug, Clone)]
pub struct PpmLm {
    vocab_size: usize,
    max_order: usize,
    /// `counts[k]` maps a radix-encoded `k`-token context to next-token
    /// count vectors (same layout as `NGramLm`).
    counts: Vec<HashMap<u64, Vec<u32>>>,
    history: Vec<TokenId>,
    cost: InferenceCost,
    name: String,
}

impl PpmLm {
    /// Creates a PPM-C model with contexts up to `max_order`.
    ///
    /// # Panics
    /// If `vocab_size == 0` or the radix key would overflow 64 bits.
    pub fn new(vocab_size: usize, max_order: usize, name: impl Into<String>) -> Self {
        assert!(vocab_size > 0, "vocab_size must be positive");
        let bits = (vocab_size as f64).log2().ceil().max(1.0) * max_order as f64;
        assert!(bits <= 63.0, "max_order {max_order} too deep for vocab {vocab_size}");
        Self {
            vocab_size,
            max_order,
            counts: vec![HashMap::new(); max_order + 1],
            history: Vec::with_capacity(max_order),
            cost: InferenceCost::default(),
            name: name.into(),
        }
    }

    fn key(&self, k: usize) -> u64 {
        radix_key(&self.history, k, self.vocab_size)
    }

    /// Freezes the model after prompt conditioning; decode via
    /// [`FrozenLm::fork`] sessions.
    pub fn into_frozen(self) -> FrozenPpm {
        FrozenPpm { base: self }
    }
}

/// A prompt-conditioned [`PpmLm`] frozen for sampling.
#[derive(Debug)]
pub struct FrozenPpm {
    base: PpmLm,
}

impl FrozenLm for FrozenPpm {
    fn vocab_size(&self) -> usize {
        self.base.vocab_size
    }

    fn prompt_cost(&self) -> InferenceCost {
        self.base.cost
    }

    fn name(&self) -> &str {
        &self.base.name
    }

    fn fork(&self) -> Box<dyn DecodeSession + '_> {
        Box::new(PpmSession::new(&self.base))
    }

    fn refit_extend(&mut self, tokens: &[TokenId]) -> bool {
        // Fitting is observing: replaying the suffix through the same
        // observe path reaches the exact state a from-scratch fit on the
        // extended prompt would (same counts, history, cost).
        for &t in tokens {
            self.base.observe(t, false);
        }
        true
    }
}

/// One sample's decode cursor over a frozen [`PpmLm`].
///
/// Copy-on-write: contexts touched by this session's generated tokens get
/// a private count vector (cloned from the base on first touch); untouched
/// contexts read the frozen counts directly.
#[derive(Debug)]
pub struct PpmSession<'a> {
    base: &'a PpmLm,
    overlay: Vec<HashMap<u64, Vec<u32>>>,
    history: Vec<TokenId>,
    cost: InferenceCost,
}

impl<'a> PpmSession<'a> {
    pub(crate) fn new(base: &'a PpmLm) -> Self {
        Self {
            base,
            overlay: vec![HashMap::new(); base.max_order + 1],
            history: base.history.clone(),
            cost: InferenceCost::default(),
        }
    }

    fn counts(&self, k: usize, key: u64) -> Option<&Vec<u32>> {
        self.overlay[k].get(&key).or_else(|| self.base.counts[k].get(&key))
    }
}

impl DecodeSession for PpmSession<'_> {
    fn vocab_size(&self) -> usize {
        self.base.vocab_size
    }

    fn observe(&mut self, token: TokenId) {
        assert!((token as usize) < self.base.vocab_size, "token {token} out of range");
        for k in 0..=self.base.max_order.min(self.history.len()) {
            let key = radix_key(&self.history, k, self.base.vocab_size);
            let slot = self.overlay[k].entry(key).or_insert_with(|| {
                self.base.counts[k]
                    .get(&key)
                    .cloned()
                    .unwrap_or_else(|| vec![0u32; self.base.vocab_size])
            });
            slot[token as usize] += 1;
            self.cost.work_units += 1;
        }
        self.history.push(token);
        if self.history.len() > self.base.max_order {
            self.history.remove(0);
        }
        self.cost.generated_tokens += 1;
    }

    fn next_distribution(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.base.vocab_size, "distribution buffer size");
        out.iter_mut().for_each(|v| *v = 0.0);
        let mut excluded = vec![false; self.base.vocab_size];
        let mut remaining = 1.0f64;
        let deepest = self.base.max_order.min(self.history.len());
        for k in (0..=deepest).rev() {
            let key = radix_key(&self.history, k, self.base.vocab_size);
            self.cost.work_units += 1;
            let Some(c) = self.counts(k, key) else {
                continue; // unseen context: free escape to the next order
            };
            let mut total = 0u64;
            let mut distinct = 0u64;
            for (i, &cnt) in c.iter().enumerate() {
                if cnt > 0 && !excluded[i] {
                    total += cnt as u64;
                    distinct += 1;
                }
            }
            if total == 0 {
                continue;
            }
            let denom = (total + distinct) as f64;
            for (i, &cnt) in c.iter().enumerate() {
                if cnt > 0 && !excluded[i] {
                    out[i] += remaining * cnt as f64 / denom;
                    excluded[i] = true;
                }
            }
            remaining *= distinct as f64 / denom;
            if remaining < 1e-15 {
                break;
            }
        }
        let free = excluded.iter().filter(|&&e| !e).count();
        if free > 0 {
            let share = remaining / free as f64;
            for (o, &e) in out.iter_mut().zip(&excluded) {
                if !e {
                    *o += share;
                }
            }
        } else {
            let total: f64 = out.iter().sum();
            for o in out.iter_mut() {
                *o /= total;
            }
            return;
        }
        let total: f64 = out.iter().sum();
        for o in out.iter_mut() {
            *o /= total;
        }
    }

    fn cost(&self) -> InferenceCost {
        self.cost
    }
}

impl LanguageModel for PpmLm {
    fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    fn reset(&mut self) {
        for m in &mut self.counts {
            m.clear();
        }
        self.history.clear();
        self.cost = InferenceCost::default();
    }

    fn observe(&mut self, token: TokenId, generated: bool) {
        assert!((token as usize) < self.vocab_size, "token {token} out of range");
        for k in 0..=self.max_order.min(self.history.len()) {
            let key = self.key(k);
            let slot = self.counts[k].entry(key).or_insert_with(|| vec![0u32; self.vocab_size]);
            slot[token as usize] += 1;
            self.cost.work_units += 1;
        }
        self.history.push(token);
        if self.history.len() > self.max_order {
            self.history.remove(0);
        }
        if generated {
            self.cost.generated_tokens += 1;
        } else {
            self.cost.prompt_tokens += 1;
        }
    }

    fn next_distribution(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.vocab_size, "distribution buffer size");
        out.iter_mut().for_each(|v| *v = 0.0);
        let mut excluded = vec![false; self.vocab_size];
        // Mass still to distribute (product of escapes so far).
        let mut remaining = 1.0f64;
        let deepest = self.max_order.min(self.history.len());
        for k in (0..=deepest).rev() {
            let key = self.key(k);
            self.cost.work_units += 1;
            let Some(c) = self.counts[k].get(&key) else {
                continue; // unseen context: free escape to the next order
            };
            // Counts over non-excluded symbols only (PPM exclusion).
            let mut total = 0u64;
            let mut distinct = 0u64;
            for (i, &cnt) in c.iter().enumerate() {
                if cnt > 0 && !excluded[i] {
                    total += cnt as u64;
                    distinct += 1;
                }
            }
            if total == 0 {
                continue;
            }
            // Method C: escape mass = distinct / (total + distinct).
            let denom = (total + distinct) as f64;
            for (i, &cnt) in c.iter().enumerate() {
                if cnt > 0 && !excluded[i] {
                    out[i] += remaining * cnt as f64 / denom;
                    excluded[i] = true;
                }
            }
            remaining *= distinct as f64 / denom;
            if remaining < 1e-15 {
                break;
            }
        }
        // Order -1: uniform over still-excluded-free symbols.
        let free = excluded.iter().filter(|&&e| !e).count();
        if free > 0 {
            let share = remaining / free as f64;
            for (o, &e) in out.iter_mut().zip(&excluded) {
                if !e {
                    *o += share;
                }
            }
        } else {
            // All symbols seen: renormalize (remaining mass is tiny).
            let total: f64 = out.iter().sum();
            for o in out.iter_mut() {
                *o /= total;
            }
            return;
        }
        // Normalize defensively against rounding drift.
        let total: f64 = out.iter().sum();
        for o in out.iter_mut() {
            *o /= total;
        }
    }

    fn cost(&self) -> InferenceCost {
        self.cost
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{is_distribution, observe_all};
    use crate::ngram::NGramLm;

    #[test]
    fn uniform_before_any_context() {
        let mut m = PpmLm::new(4, 3, "ppm");
        let mut p = vec![0.0; 4];
        m.next_distribution(&mut p);
        assert!(is_distribution(&p));
        for &x in &p {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn learns_deterministic_cycle_sharply() {
        let mut m = PpmLm::new(3, 4, "ppm");
        let cycle: Vec<TokenId> = (0..60).map(|i| (i % 3) as TokenId).collect();
        observe_all(&mut m, &cycle);
        let mut p = vec![0.0; 3];
        m.next_distribution(&mut p);
        assert!(is_distribution(&p));
        assert!(p[0] > 0.9, "PPM commits hard to the longest match: {p:?}");
    }

    #[test]
    fn distribution_valid_under_random_feed() {
        let mut m = PpmLm::new(6, 4, "ppm");
        let mut state = 3u64;
        let mut p = vec![0.0; 6];
        for _ in 0..400 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            m.observe(((state >> 33) % 6) as TokenId, false);
            m.next_distribution(&mut p);
            assert!(is_distribution(&p));
        }
    }

    #[test]
    fn escape_reaches_unseen_symbols() {
        // Feed only tokens 0 and 1; token 2 must still get positive mass
        // (through escapes down to the uniform base).
        let mut m = PpmLm::new(3, 3, "ppm");
        observe_all(&mut m, &[0, 1, 0, 1, 0, 1, 0, 1]);
        let mut p = vec![0.0; 3];
        m.next_distribution(&mut p);
        assert!(p[2] > 0.0, "unseen symbol needs escape mass: {p:?}");
        assert!(p[2] < 0.2, "but far less than seen symbols: {p:?}");
    }

    #[test]
    fn escape_mass_never_collapses_unlike_interpolation() {
        // The structural difference between the families: chained
        // Jelinek–Mercer interpolation compounds agreement across levels
        // and collapses to ~1 on a deterministic pattern; PPM-C always
        // reserves explicit escape mass, keeping the distribution proper
        // but never degenerate.
        let pattern: Vec<TokenId> =
            [0u32, 1, 2, 3, 2, 1].iter().cycle().take(90).copied().collect();
        let mut ppm = PpmLm::new(4, 6, "ppm");
        let mut ngram = NGramLm::new(4, 6, 0.25, "ng");
        observe_all(&mut ppm, &pattern);
        observe_all(&mut ngram, &pattern);
        let mut p1 = vec![0.0; 4];
        let mut p2 = vec![0.0; 4];
        ppm.next_distribution(&mut p1);
        ngram.next_distribution(&mut p2);
        // Both commit to the cycle restart (token 0)...
        assert!(p1[0] > 0.9, "ppm: {p1:?}");
        assert!(p2[0] > 0.9, "ngram: {p2:?}");
        // ...but PPM keeps meaningfully more reserve mass on alternatives.
        let ppm_reserve = 1.0 - p1[0];
        let ngram_reserve = 1.0 - p2[0];
        assert!(
            ppm_reserve > 10.0 * ngram_reserve,
            "escape mass {ppm_reserve:.2e} vs interpolation residue {ngram_reserve:.2e}"
        );
    }

    #[test]
    fn reset_and_cost() {
        let mut m = PpmLm::new(3, 2, "ppm");
        observe_all(&mut m, &[0, 1, 2]);
        assert_eq!(m.cost().prompt_tokens, 3);
        m.reset();
        assert_eq!(m.cost(), InferenceCost::default());
        assert_eq!(m.name(), "ppm");
    }
}
