//! `cargo xtask` — workspace automation driver.
//!
//! Subcommands:
//! - `lint` — run mc-lint over the workspace (see `xtask::run_lint`).
//!   Exits non-zero on any violation or stale allowlist entry.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // When run through cargo (`cargo xtask ...`) the manifest dir is
    // crates/xtask; the workspace root is two levels up.
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let mut root = PathBuf::from(dir);
            root.pop();
            root.pop();
            root
        }
        None => PathBuf::from("."),
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let allow_path = root.join("mc-lint.allow");
    let allowlist = match std::fs::read_to_string(&allow_path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => {
            eprintln!("mc-lint: cannot read {}: {e}", allow_path.display());
            return ExitCode::FAILURE;
        }
    };
    let report = match xtask::run_lint(&root, &allowlist) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("mc-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    for v in &report.violations {
        println!("{v}");
    }
    for e in &report.errors {
        println!("{e}");
    }
    if report.clean() {
        println!(
            "mc-lint: {} files clean ({} allowlist entr{} in use)",
            report.files,
            report.suppressions_in_use,
            if report.suppressions_in_use == 1 { "y" } else { "ies" }
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "mc-lint: {} violation(s), {} stale allowlist entr{} — fix the code or add a \
             justified entry to mc-lint.allow",
            report.violations.len(),
            report.errors.len(),
            if report.errors.len() == 1 { "y" } else { "ies" }
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (available: lint)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "usage: cargo xtask <task>\n\ntasks:\n  lint    run mc-lint over the workspace"
            );
            ExitCode::FAILURE
        }
    }
}
