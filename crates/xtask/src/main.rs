//! `cargo xtask` — workspace automation driver.
//!
//! Subcommands:
//! - `lint` — run mc-lint over the workspace (see `xtask::run_lint`).
//!   Exits non-zero on any violation or stale allowlist entry.
//! - `analyze` — run mc-analyze, the structural analysis layer (see
//!   `xtask::analyze::run_analyze`): lock-order and seam checks,
//!   exhaustiveness-drift passes, allowlist staleness, and the
//!   tree-based `no-direct-fit` / `single-construction` rules. Same
//!   deny-by-default contract and allowlist file as `lint`;
//!   `--report PATH` additionally writes a machine-readable JSON
//!   findings report.
//! - `bench-gate` — compare freshly generated `BENCH_*.json` reports
//!   against the committed baseline and fail on regressions beyond
//!   tolerance (default 10 %) in any gated metric (p99 latencies, RMSE,
//!   throughput). `--baseline DIR` defaults to `results/`; `--current
//!   DIR` is required; `--tolerance FRAC` overrides the 0.10 default.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // When run through cargo (`cargo xtask ...`) the manifest dir is
    // crates/xtask; the workspace root is two levels up.
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let mut root = PathBuf::from(dir);
            root.pop();
            root.pop();
            root
        }
        None => PathBuf::from("."),
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let allow_path = root.join("mc-lint.allow");
    let allowlist = match std::fs::read_to_string(&allow_path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => {
            eprintln!("mc-lint: cannot read {}: {e}", allow_path.display());
            return ExitCode::FAILURE;
        }
    };
    let report = match xtask::run_lint(&root, &allowlist) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("mc-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    for v in &report.violations {
        println!("{v}");
    }
    for e in &report.errors {
        println!("{e}");
    }
    if report.clean() {
        println!(
            "mc-lint: {} files clean ({} allowlist entr{} in use)",
            report.files,
            report.suppressions_in_use,
            if report.suppressions_in_use == 1 { "y" } else { "ies" }
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "mc-lint: {} violation(s), {} stale allowlist entr{} — fix the code or add a \
             justified entry to mc-lint.allow",
            report.violations.len(),
            report.errors.len(),
            if report.errors.len() == 1 { "y" } else { "ies" }
        );
        ExitCode::FAILURE
    }
}

fn analyze(args: Vec<String>) -> ExitCode {
    let mut cli = mc_spec::cli::Cli::new(args);
    let report_path = match cli.value("--report").map_err(|e| e.to_string()).and_then(|p| {
        cli.finish().map_err(|e| e.to_string())?;
        Ok(p)
    }) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mc-analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root = workspace_root();
    let allow_path = root.join("mc-lint.allow");
    let allowlist = match std::fs::read_to_string(&allow_path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => {
            eprintln!("mc-analyze: cannot read {}: {e}", allow_path.display());
            return ExitCode::FAILURE;
        }
    };
    let report = match xtask::analyze::run_analyze(&root, &allowlist) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("mc-analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = report_path {
        let path = root.join(path);
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("mc-analyze: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    for f in &report.findings {
        println!("{f}");
    }
    for e in &report.errors {
        println!("{e}");
    }
    if report.clean() {
        println!(
            "mc-analyze: {} files clean ({} lock sites covered, {} allowlist entr{} in use)",
            report.files,
            report.lock_sites,
            report.suppressions_in_use,
            if report.suppressions_in_use == 1 { "y" } else { "ies" }
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "mc-analyze: {} finding(s), {} stale allowlist entr{} — fix the code or add a \
             justified entry to mc-lint.allow",
            report.findings.len(),
            report.errors.len(),
            if report.errors.len() == 1 { "y" } else { "ies" }
        );
        ExitCode::FAILURE
    }
}

/// Loads and parses one `BENCH_*.json`, mapping both error layers into
/// one message.
fn load_report(path: &std::path::Path) -> Result<mc_spec::BenchReport, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    mc_spec::BenchReport::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn bench_gate(args: Vec<String>) -> ExitCode {
    let mut cli = mc_spec::cli::Cli::new(args);
    let run = || -> Result<Vec<String>, String> {
        let baseline =
            cli.value("--baseline").map_err(|e| e.to_string())?.unwrap_or_else(|| "results".into());
        let current = cli
            .value("--current")
            .map_err(|e| e.to_string())?
            .ok_or("bench-gate needs --current <dir> (the freshly generated reports)")?;
        let tolerance: f64 = cli.parsed_or("--tolerance", 0.10_f64).map_err(|e| e.to_string())?;
        cli.finish().map_err(|e| e.to_string())?;
        let baseline_dir = workspace_root().join(baseline);
        let current_dir = workspace_root().join(current);

        let mut names: Vec<String> = std::fs::read_dir(&baseline_dir)
            .map_err(|e| format!("read {}: {e}", baseline_dir.display()))?
            .filter_map(Result::ok)
            .filter_map(|entry| entry.file_name().into_string().ok())
            .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
            .collect();
        names.sort();
        if names.is_empty() {
            return Err(format!("no BENCH_*.json baselines under {}", baseline_dir.display()));
        }

        let mut regressions = Vec::new();
        for name in &names {
            let base = load_report(&baseline_dir.join(name))?;
            let current_path = current_dir.join(name);
            if !current_path.is_file() {
                regressions.push(format!("{name}: baseline report has no current-run counterpart"));
                continue;
            }
            let cur = load_report(&current_path)?;
            let found = mc_spec::bencher::gate(&base, &cur, tolerance);
            if found.is_empty() {
                println!("bench-gate: {name} ok ({} metrics)", base.metrics.len());
            }
            regressions.extend(found);
        }
        Ok(regressions)
    };
    match run() {
        Ok(regressions) if regressions.is_empty() => {
            println!("bench-gate: all reports within tolerance");
            ExitCode::SUCCESS
        }
        Ok(regressions) => {
            for r in &regressions {
                println!("bench-gate: REGRESSION {r}");
            }
            println!("bench-gate: {} regression(s)", regressions.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench-gate: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some("analyze") => analyze(args.collect()),
        Some("bench-gate") => bench_gate(args.collect()),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (available: lint, analyze, bench-gate)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "usage: cargo xtask <task>\n\ntasks:\n  lint          run mc-lint over the \
                 workspace\n  analyze       run mc-analyze (lock order, drift, allowlist \
                 staleness) [--report PATH]\n  bench-gate    compare BENCH_*.json reports \
                 against the committed baseline"
            );
            ExitCode::FAILURE
        }
    }
}
