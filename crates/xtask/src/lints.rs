//! mc-lint: deny-by-default workspace invariant lints.
//!
//! Six rule families over the lexed token stream (see DESIGN.md §8):
//!
//! - **`no-unwrap`** — no `.unwrap()` / `.expect(..)` / `panic!` in
//!   library code. Test spans (`#[cfg(test)]` items, `#[test]` functions)
//!   and binary targets (`src/bin/`, `main.rs`) are exempt; everything
//!   else needs an allowlist entry with a written justification.
//! - **`no-println`** — no `println!` / `eprintln!` in library code:
//!   libraries report through return values and the structured trace
//!   layer (`mc-obs`), never by writing to the process's stdio behind
//!   the caller's back. Binary targets and test spans are exempt.
//! - **`no-wallclock`** — no `SystemTime`, `Instant::now` or `thread_rng`
//!   in forecast paths: forecasts are seeded and reproducible, ambient
//!   time or entropy would silently break bit-identical replay.
//! - **`no-direct-sync`** — no `std::sync::Mutex` / `std::sync::Condvar`
//!   outside the `mc-sync` shim: locks taken behind the shim's back are
//!   invisible to the loom model checker, so the concurrency suite would
//!   vouch for code it never explored.
//! - **`no-unbounded-queue`** — no raw `VecDeque` or `std::sync::mpsc`
//!   channel use outside `sched::TaskQueue`: every work queue must flow
//!   through the bounded admission path (capacity cap, shed settlement,
//!   deferred-release backoff), so an ad-hoc queue cannot reintroduce
//!   the unbounded growth the overload layer exists to prevent.
//! - **`no-adhoc-bench`** — inside bench-land (`crates/bench/`,
//!   `crates/spec/`), no direct `ForecastEngine` / `serve_all` /
//!   `serve_all_observed` / `ServeHandle` access. Experiments go through
//!   the `mc-spec` runner — the one allowlisted seam — so every bench
//!   bin stays a thin spec wrapper and its numbers stay comparable.
//!   Binary targets are **not** exempt: the rule exists for them.
//!
//! The two scope-sensitive rules that used to live here —
//! `no-direct-fit` and `single-construction` — migrated onto the
//! structural item tree in [`crate::analyze::rules`] (DESIGN.md §13),
//! where "inside the sanctioned seam" is a function body instead of an
//! allowlist entry.
//!
//! Rules report violations; suppression and its justification live in
//! the allowlist file ([`crate::allow`]), never in the rules.

use std::fmt;

use crate::lexer::{lex, Kind, Token};

/// Lint rule names, for reports and allowlist scoping (the analyze
/// layer has its own set in [`crate::analyze::RULE_NAMES`]).
pub const RULE_NAMES: [&str; 6] = [
    "no-unwrap",
    "no-println",
    "no-wallclock",
    "no-direct-sync",
    "no-unbounded-queue",
    "no-adhoc-bench",
];

/// Rule families, used for reporting and allowlist matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    NoUnwrap,
    NoPrintln,
    NoWallclock,
    NoDirectSync,
    NoUnboundedQueue,
    NoAdhocBench,
}

impl Rule {
    /// The rule's allowlist / report name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::NoPrintln => "no-println",
            Rule::NoWallclock => "no-wallclock",
            Rule::NoDirectSync => "no-direct-sync",
            Rule::NoUnboundedQueue => "no-unbounded-queue",
            Rule::NoAdhocBench => "no-adhoc-bench",
        }
    }
}

/// One lint hit: where, which rule, and what matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub path: String,
    pub line: usize,
    pub rule: Rule,
    /// The matched symbol (`unwrap`, `Instant::now`, ...).
    pub symbol: String,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule.name(), self.message)
    }
}

/// Marks tokens covered by `#[cfg(test)]` items or `#[test]`/`#[bench]`
/// functions so library-only rules can skip them.
///
/// Returns one flag per token. The scan is structural, not syntactic: an
/// exempting attribute skips over any further attributes, then exempts
/// the next item — either up to its matching close brace or through a
/// terminating `;` (for `mod tests;` forms). Public because the analyze
/// layer applies the same exemption to its full-fidelity token streams.
pub fn test_spans(tokens: &[Token]) -> Vec<bool> {
    let mut exempt = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(after_attr) = exempting_attribute(tokens, i) {
            let end = item_end(tokens, after_attr);
            for flag in exempt.iter_mut().take(end).skip(i) {
                *flag = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
    exempt
}

/// If an exempting attribute (`#[test]`, `#[bench]`, or any `#[cfg(..)]`
/// mentioning `test`) starts at `i`, returns the index just past it.
fn exempting_attribute(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens[i].is_punct('#') || !tokens.get(i + 1)?.is_punct('[') {
        return None;
    }
    let close = matching(tokens, i + 1, '[', ']')?;
    let body = &tokens[i + 2..close];
    let exempts = match body.first() {
        Some(t) if t.is_ident("test") || t.is_ident("bench") => body.len() == 1,
        // `not(test)` guards production-only code — the opposite of
        // an exemption — so any negation disables the shortcut.
        Some(t) if t.is_ident("cfg") => {
            body.iter().any(|t| t.is_ident("test")) && !body.iter().any(|t| t.is_ident("not"))
        }
        _ => false,
    };
    if exempts {
        Some(close + 1)
    } else {
        None
    }
}

/// Index just past the item starting at `i`: skips further attributes,
/// then runs through the first `{...}` block or terminating `;`.
fn item_end(tokens: &[Token], mut i: usize) -> usize {
    // Skip any further attributes on the same item.
    while i < tokens.len() && tokens[i].is_punct('#') {
        match tokens
            .get(i + 1)
            .filter(|t| t.is_punct('['))
            .and_then(|_| matching(tokens, i + 1, '[', ']'))
        {
            Some(close) => i = close + 1,
            None => break,
        }
    }
    while i < tokens.len() {
        if tokens[i].is_punct(';') {
            return i + 1;
        }
        if tokens[i].is_punct('{') {
            return matching(tokens, i, '{', '}').map_or(tokens.len(), |c| c + 1);
        }
        i += 1;
    }
    tokens.len()
}

/// Index of the `close` matching the `open` at `start`.
fn matching(tokens: &[Token], start: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(start) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

fn violation(path: &str, t: &Token, rule: Rule, symbol: &str, message: String) -> Violation {
    Violation { path: path.to_string(), line: t.line, rule, symbol: symbol.to_string(), message }
}

/// Runs every file-local rule over one source file.
///
/// `path` is the workspace-relative label used in reports and allowlist
/// matching.
pub fn lint_file(path: &str, src: &str) -> Vec<Violation> {
    let tokens = lex(src);
    let exempt = test_spans(&tokens);
    let mut out = Vec::new();
    let in_bin = path.contains("/bin/") || path.ends_with("/main.rs");
    let in_bench_land = path.starts_with("crates/bench/") || path.starts_with("crates/spec/");
    for (i, is_exempt) in exempt.iter().enumerate() {
        if *is_exempt {
            continue;
        }
        if !in_bin {
            no_unwrap(path, &tokens, i, &mut out);
            no_println(path, &tokens, i, &mut out);
        }
        if in_bench_land {
            no_adhoc_bench(path, &tokens, i, &mut out);
        }
        no_wallclock(path, &tokens, i, &mut out);
        no_direct_sync(path, &tokens, i, &mut out);
        no_unbounded_queue(path, &tokens, i, &mut out);
    }
    out
}

fn prev_is(tokens: &[Token], i: usize, c: char) -> bool {
    i > 0 && tokens[i - 1].is_punct(c)
}

fn next_is_punct(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.is_punct(c))
}

fn no_unwrap(path: &str, tokens: &[Token], i: usize, out: &mut Vec<Violation>) {
    let t = &tokens[i];
    if t.kind != Kind::Ident {
        return;
    }
    if (t.text == "unwrap" || t.text == "expect") && prev_is(tokens, i, '.') {
        out.push(violation(
            path,
            t,
            Rule::NoUnwrap,
            &t.text,
            format!(".{}() in library code: return a typed error instead", t.text),
        ));
    } else if t.text == "panic" && next_is_punct(tokens, i, '!') {
        out.push(violation(
            path,
            t,
            Rule::NoUnwrap,
            "panic",
            "panic! in library code: return a typed error instead".to_string(),
        ));
    }
}

fn no_println(path: &str, tokens: &[Token], i: usize, out: &mut Vec<Violation>) {
    let t = &tokens[i];
    if t.kind != Kind::Ident {
        return;
    }
    if (t.text == "println" || t.text == "eprintln") && next_is_punct(tokens, i, '!') {
        out.push(violation(
            path,
            t,
            Rule::NoPrintln,
            &t.text,
            format!("{}! in library code: report through return values or the trace layer", t.text),
        ));
    }
}

fn no_wallclock(path: &str, tokens: &[Token], i: usize, out: &mut Vec<Violation>) {
    let t = &tokens[i];
    if t.kind != Kind::Ident {
        return;
    }
    if t.text == "SystemTime" || t.text == "thread_rng" {
        out.push(violation(
            path,
            t,
            Rule::NoWallclock,
            &t.text,
            format!("{}: forecast paths must stay deterministic and seeded", t.text),
        ));
    } else if t.text == "Instant"
        && next_is_punct(tokens, i, ':')
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 3).is_some_and(|t| t.is_ident("now"))
    {
        out.push(violation(
            path,
            t,
            Rule::NoWallclock,
            "Instant::now",
            "Instant::now: forecast paths must stay deterministic and seeded".to_string(),
        ));
    }
}

/// Matches `std::sync::Mutex`/`Condvar` paths and `use std::sync::{..}`
/// trees that import them.
fn no_direct_sync(path: &str, tokens: &[Token], i: usize, out: &mut Vec<Violation>) {
    if !tokens[i].is_ident("std")
        || !next_is_punct(tokens, i, ':')
        || !tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        || !tokens.get(i + 3).is_some_and(|t| t.is_ident("sync"))
        || !next_is_punct(tokens, i + 3, ':')
        || !tokens.get(i + 5).is_some_and(|t| t.is_punct(':'))
    {
        return;
    }
    let after = i + 6;
    let flagged: Vec<&Token> = match tokens.get(after) {
        Some(t) if t.is_ident("Mutex") || t.is_ident("Condvar") => vec![t],
        Some(t) if t.is_punct('{') => match matching(tokens, after, '{', '}') {
            Some(close) => tokens[after..close]
                .iter()
                .filter(|t| t.is_ident("Mutex") || t.is_ident("Condvar"))
                .collect(),
            None => Vec::new(),
        },
        _ => Vec::new(),
    };
    for t in flagged {
        out.push(violation(
            path,
            t,
            Rule::NoDirectSync,
            &t.text,
            format!(
                "std::sync::{} bypasses the mc-sync shim and hides from the loom model checker",
                t.text
            ),
        ));
    }
}

/// Flags raw queue primitives: any `VecDeque` mention (import, type or
/// constructor — importing one is how ad-hoc queues start) and any
/// `std::sync::mpsc` path or import. Queues belong behind
/// `sched::TaskQueue`, whose bounded admission the overload layer
/// depends on; the one sanctioned backing store is allowlisted.
fn no_unbounded_queue(path: &str, tokens: &[Token], i: usize, out: &mut Vec<Violation>) {
    let t = &tokens[i];
    if t.kind != Kind::Ident {
        return;
    }
    if t.text == "VecDeque" {
        out.push(violation(
            path,
            t,
            Rule::NoUnboundedQueue,
            "VecDeque",
            "raw VecDeque: queues must go through sched::TaskQueue so bounded admission \
             (capacity cap, shed settlement) cannot be bypassed"
                .to_string(),
        ));
    } else if t.text == "mpsc" {
        out.push(violation(
            path,
            t,
            Rule::NoUnboundedQueue,
            "mpsc",
            "std::sync::mpsc channel: queues must go through sched::TaskQueue, which the \
             admission layer bounds and the loom suite models"
                .to_string(),
        ));
    }
}

/// Flags direct engine/serve access in bench-land. The spec runner is
/// the one sanctioned seam (allowlisted); everything else in
/// `crates/bench/` and `crates/spec/` — bins very much included —
/// must describe its experiment as a `ScenarioSpec` instead.
fn no_adhoc_bench(path: &str, tokens: &[Token], i: usize, out: &mut Vec<Violation>) {
    let t = &tokens[i];
    if t.kind != Kind::Ident {
        return;
    }
    let banned = matches!(
        t.text.as_str(),
        "ForecastEngine" | "serve_all" | "serve_all_observed" | "ServeHandle"
    );
    if banned {
        out.push(violation(
            path,
            t,
            Rule::NoAdhocBench,
            &t.text,
            format!(
                "{} accessed directly in bench-land: drive the experiment through the \
                 mc-spec runner so the scenario stays declarative and gated",
                t.text
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_test_mod_is_exempt() {
        let src = r#"
            pub fn lib_path(x: Option<u32>) -> u32 { x.unwrap() }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); panic!("fine here"); }
            }
        "#;
        let v = lint_file("crates/demo/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].rule, Rule::NoUnwrap);
    }

    #[test]
    fn test_attribute_exempts_only_that_item() {
        let src = r#"
            #[test]
            fn covered() { panic!("ok") }
            fn exposed() { panic!("flagged") }
        "#;
        let v = lint_file("crates/demo/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn use_tree_and_path_forms_of_std_sync_are_flagged() {
        let src =
            "use std::sync::{Arc, Mutex, Condvar};\nfn f() { let _ = std::sync::Mutex::new(()); }";
        let v = lint_file("crates/demo/src/lib.rs", src);
        let symbols: Vec<&str> = v.iter().map(|v| v.symbol.as_str()).collect();
        assert_eq!(symbols, vec!["Mutex", "Condvar", "Mutex"]);
        assert!(v.iter().all(|v| v.rule == Rule::NoDirectSync));
    }

    #[test]
    fn wallclock_sources_are_flagged() {
        let src = "fn f() { let _ = Instant::now(); let _ = thread_rng(); }\nfn ok() { let _ = Instant::from_nanos; }";
        let v = lint_file("crates/demo/src/lib.rs", src);
        let symbols: Vec<&str> = v.iter().map(|v| v.symbol.as_str()).collect();
        assert_eq!(symbols, vec!["Instant::now", "thread_rng"]);
    }

    #[test]
    fn raw_queue_primitives_are_flagged_in_every_form() {
        let src = "use std::collections::VecDeque;\nfn f() { let q: VecDeque<u32> = VecDeque::new(); let (_t, _r) = std::sync::mpsc::channel::<u8>(); }";
        let v = lint_file("crates/demo/src/lib.rs", src);
        let symbols: Vec<&str> = v.iter().map(|v| v.symbol.as_str()).collect();
        assert_eq!(symbols, vec!["VecDeque", "VecDeque", "VecDeque", "mpsc"]);
        assert!(v.iter().all(|v| v.rule == Rule::NoUnboundedQueue));
        // Tests may build scratch queues.
        let test_src = "#[cfg(test)]\nmod tests { use std::collections::VecDeque; }";
        assert!(lint_file("crates/demo/src/lib.rs", test_src).is_empty());
    }

    #[test]
    fn bins_are_exempt_from_unwrap_but_not_determinism() {
        let src = "fn main() { foo().unwrap(); println!(\"x\"); let _ = thread_rng(); }";
        let v = lint_file("src/bin/tool.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NoWallclock);
        let v = lint_file("crates/xtask/src/main.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NoWallclock);
    }

    #[test]
    fn adhoc_bench_applies_only_in_bench_land_and_ignores_bin_exemption() {
        let src = "fn main() { let e = ForecastEngine::new(c); let _ = serve_all(&b, &s); }";
        // Bench bins are exactly what the rule polices — no bin exemption.
        let v = lint_file("crates/bench/src/bin/quick.rs", src);
        let symbols: Vec<&str> = v.iter().map(|v| v.symbol.as_str()).collect();
        assert_eq!(symbols, vec!["ForecastEngine", "serve_all"]);
        assert!(v.iter().all(|v| v.rule == Rule::NoAdhocBench));
        // The spec crate is in scope too (its runner is allowlisted).
        assert_eq!(lint_file("crates/spec/src/runner.rs", src).len(), 2);
        // Outside bench-land the engine is fair game.
        assert!(lint_file("crates/core/src/engine.rs", src).is_empty());
        assert!(lint_file("crates/tasks/src/lib.rs", src).is_empty());
        // `observe_all` is a different identifier, not a match.
        let near = "fn main() { observe_all(&mut m, &p); }";
        assert!(lint_file("crates/spec/src/scenarios.rs", near).is_empty());
    }

    #[test]
    fn println_in_library_code_is_flagged_but_tests_are_exempt() {
        let src = r#"
            pub fn report() { println!("lib stdout"); }
            pub fn complain() { eprintln!("lib stderr"); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { println!("fine here"); }
            }
        "#;
        let v = lint_file("crates/demo/src/lib.rs", src);
        let symbols: Vec<&str> = v.iter().map(|v| v.symbol.as_str()).collect();
        assert_eq!(symbols, vec!["println", "eprintln"]);
        assert!(v.iter().all(|v| v.rule == Rule::NoPrintln));
    }
}
