//! Scope-sensitive lint rules migrated onto the structural tree.
//!
//! These two rules used to live in the flat-token lint layer, where
//! "inside the sanctioned seam" could only be expressed as allowlist
//! entries pinned to symbol names. With the item tree the seam is a
//! *function body*, so the rules state their real invariant directly:
//!
//! - **`no-direct-fit`** — in serve-land, the banned fit entry points
//!   may appear only inside the body of the one `fn fit_context` seam.
//! - **`single-construction`** — exactly one production construction
//!   site of `SampleExpectations` (a struct literal outside any item
//!   header) and exactly one production `fn continuation_spec`.

use super::tree::{all_items, ItemKind};
use super::{Finding, SourceFile, Workspace};
use crate::lexer::Kind;

/// Serve-land: the files whose fits must route through the seam.
const SERVE_LAND: [&str; 3] =
    ["crates/core/src/serve", "crates/core/src/sched", "crates/core/src/overload"];

/// The banned direct-fit entry points (plus `PreparedBackend::fit`,
/// matched as a qualified path). Bare `fit` is deliberately not banned:
/// codec fits (`codec.fit(..)`) are a different, uncached contract.
const BANNED_FITS: [&str; 5] =
    ["fit_metered_observed", "fit_metered", "from_frozen", "meter_observed", "fit_model"];

/// Token ranges of every non-test `fn fit_context` body in the file,
/// plus the name span of each definition (for the multi-seam check).
fn seam_spans(file: &SourceFile) -> Vec<(usize, usize, usize, usize)> {
    all_items(&file.tree)
        .into_iter()
        .filter(|i| i.kind == ItemKind::Fn && i.name == "fit_context" && !i.cfg_test)
        .filter_map(|i| i.body.map(|(b0, b1)| (b0, b1, i.line, i.col)))
        .collect()
}

/// Flags direct context-fit entry points in serve-land outside the
/// `fit_context` seam. The old flat-token rule could only say "this
/// symbol is banned in this file" and leaned on four allowlist entries
/// to re-admit the seam's own calls; structurally the seam is simply
/// the one function body where the banned names are legal.
pub fn no_direct_fit(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut seams_seen = 0usize;
    for file in &ws.files {
        if !SERVE_LAND.iter().any(|p| file.path.starts_with(p)) {
            continue;
        }
        let seams = seam_spans(file);
        for &(_, _, line, col) in &seams {
            seams_seen += 1;
            if seams_seen > 1 {
                out.push(Finding {
                    path: file.path.clone(),
                    line,
                    col,
                    rule: "no-direct-fit",
                    symbol: "fit_context".to_string(),
                    message: "second `fn fit_context` definition in serve-land: the fit seam \
                              must be unique or cache reuse and cost metering can fork"
                        .to_string(),
                });
            }
        }
        let in_seam = |i: usize| seams.iter().any(|&(b0, b1, _, _)| (b0..b1).contains(&i));
        for (i, t) in file.tokens.iter().enumerate() {
            if file.test_mask[i] || t.kind != Kind::Ident || in_seam(i) {
                continue;
            }
            if BANNED_FITS.contains(&t.text.as_str()) {
                out.push(Finding {
                    path: file.path.clone(),
                    line: t.line,
                    col: t.col,
                    rule: "no-direct-fit",
                    symbol: t.text.clone(),
                    message: format!(
                        "{} called outside the fit_context seam: every serve-path context fit \
                         must go through fit_context so the cross-batch cache and cost \
                         metering cannot be bypassed",
                        t.text
                    ),
                });
            } else if t.is_ident("PreparedBackend")
                && file.tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && file.tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && file.tokens.get(i + 3).is_some_and(|t| t.is_ident("fit"))
            {
                out.push(Finding {
                    path: file.path.clone(),
                    line: t.line,
                    col: t.col,
                    rule: "no-direct-fit",
                    symbol: "PreparedBackend::fit".to_string(),
                    message: "PreparedBackend::fit called outside the fit_context seam: every \
                              serve-path context fit must go through fit_context so the \
                              cross-batch cache and cost metering cannot be bypassed"
                        .to_string(),
                });
            }
        }
    }
    out
}

/// One production construction site, for the exactly-one rule.
struct ConstructionSite {
    path: String,
    line: usize,
    col: usize,
}

/// Enforces the exactly-one rule structurally: one struct-literal
/// construction of `SampleExpectations` and one `fn continuation_spec`
/// definition in production code across the whole workspace.
///
/// The old flat-token rule guessed at type positions ("is the previous
/// token `struct`/`impl`/`->`"); here a non-constructing mention is
/// simply one inside an item *header* (struct definition, impl header,
/// fn signature), which the tree delimits exactly.
pub fn single_construction(ws: &Workspace) -> Vec<Finding> {
    let mut ctor_sites = Vec::new();
    let mut fn_sites = Vec::new();
    for file in &ws.files {
        // Header ranges: item start up to (not including) its body; the
        // whole item for bodiless ones (`struct Tuple(u8);`, `use ...`).
        let headers: Vec<(usize, usize)> = all_items(&file.tree)
            .into_iter()
            .filter(|i| i.kind != ItemKind::Const && i.kind != ItemKind::Static)
            .map(|i| (i.start, i.body.map_or(i.end, |(b0, _)| b0)))
            .collect();
        let in_header = |i: usize| headers.iter().any(|&(s, e)| (s..e).contains(&i));
        for (i, t) in file.tokens.iter().enumerate() {
            if file.test_mask[i] || t.kind != Kind::Ident {
                continue;
            }
            if t.is_ident("SampleExpectations")
                && file.tokens.get(i + 1).is_some_and(|t| t.is_punct('{'))
                && !in_header(i)
            {
                ctor_sites.push(ConstructionSite {
                    path: file.path.clone(),
                    line: t.line,
                    col: t.col,
                });
            }
        }
        for item in all_items(&file.tree) {
            if item.kind == ItemKind::Fn && item.name == "continuation_spec" && !item.cfg_test {
                fn_sites.push(ConstructionSite {
                    path: file.path.clone(),
                    line: item.line,
                    col: item.col,
                });
            }
        }
    }
    let mut out = Vec::new();
    for (what, sites) in [("SampleExpectations", ctor_sites), ("continuation_spec", fn_sites)] {
        match sites.len() {
            1 => {}
            0 => out.push(Finding {
                path: "<workspace>".to_string(),
                line: 0,
                col: 0,
                rule: "single-construction",
                symbol: what.to_string(),
                message: format!("no production construction site of {what} found"),
            }),
            n => {
                for s in sites {
                    out.push(Finding {
                        path: s.path,
                        line: s.line,
                        col: s.col,
                        rule: "single-construction",
                        symbol: what.to_string(),
                        message: format!(
                            "{what} constructed in {n} places; the contract must have exactly \
                             one production construction site"
                        ),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_fits_are_legal_only_inside_the_fit_context_seam() {
        let ws = Workspace::from_sources(vec![(
            "crates/core/src/serve.rs".to_string(),
            "fn fit_context(s: &Spec) -> Prepared {\n\
                 let b = PreparedBackend::fit(s);\n\
                 b.meter_observed(1)\n\
             }\n\
             fn sidestep(s: &Spec) -> Prepared {\n\
                 let b = PreparedBackend::fit(s);\n\
                 b.from_frozen(2)\n\
             }\n"
            .to_string(),
        )]);
        let findings = no_direct_fit(&ws);
        let got: Vec<(usize, &str)> =
            findings.iter().map(|f| (f.line, f.symbol.as_str())).collect();
        assert_eq!(got, vec![(6, "PreparedBackend::fit"), (7, "from_frozen")], "{findings:?}");
    }

    #[test]
    fn a_second_fit_context_definition_is_itself_a_finding() {
        let ws = Workspace::from_sources(vec![
            (
                "crates/core/src/serve.rs".to_string(),
                "fn fit_context(s: &Spec) -> P { fit_metered(s) }".to_string(),
            ),
            (
                "crates/core/src/sched.rs".to_string(),
                "fn fit_context(s: &Spec) -> P { fit_metered(s) }".to_string(),
            ),
        ]);
        let findings = no_direct_fit(&ws);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].path, "crates/core/src/sched.rs");
        assert!(findings[0].message.contains("must be unique"), "{}", findings[0].message);
    }

    #[test]
    fn outside_serve_land_fits_are_fair_game() {
        let ws = Workspace::from_sources(vec![(
            "crates/lm/src/presets.rs".to_string(),
            "fn g() { fit_model(1); }".to_string(),
        )]);
        assert!(no_direct_fit(&ws).is_empty());
    }

    #[test]
    fn construction_counting_distinguishes_definition_from_use() {
        let one = "pub struct SampleExpectations { x: u32 }\n\
                   impl SampleExpectations { fn f() {} }\n\
                   fn mk() -> SampleExpectations {\n\
                       SampleExpectations { x: 1 }\n\
                   }\n\
                   fn continuation_spec() -> u32 { 7 }\n";
        let ws = Workspace::from_sources(vec![("a.rs".to_string(), one.to_string())]);
        assert!(single_construction(&ws).is_empty());

        // A second struct literal (even in another file) flags both
        // sites; a test-only one does not count.
        let ws = Workspace::from_sources(vec![
            ("a.rs".to_string(), one.to_string()),
            (
                "b.rs".to_string(),
                "fn dup() -> SampleExpectations { SampleExpectations { x: 2 } }\n\
                 #[cfg(test)]\n\
                 mod tests { fn t() { let _ = SampleExpectations { x: 3 }; } }\n"
                    .to_string(),
            ),
        ]);
        let findings = single_construction(&ws);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == "single-construction"));
        assert_eq!(findings[0].line, 4);
        assert_eq!(findings[1].path, "b.rs");
    }

    #[test]
    fn absence_is_reported_against_the_workspace() {
        let ws = Workspace::from_sources(vec![("a.rs".to_string(), "fn x() {}".to_string())]);
        let findings = single_construction(&ws);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.path == "<workspace>" && f.line == 0));
    }
}
