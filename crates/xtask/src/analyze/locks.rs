//! Lock-order analysis over the structural tree.
//!
//! Static companion to the loom suite: loom vouches for the schedules
//! its test files construct; this pass vouches that the *shape* of the
//! locking code cannot deadlock by ordering, everywhere, all the time.
//!
//! The pass:
//! 1. builds a **registry** of mutex-backed fields (`name: Mutex<..>`,
//!    possibly behind containers like `Vec<Mutex<..>>`) — each field is
//!    one lock identity `Struct.field`;
//! 2. resolves **accessor functions** (`fn shard(&self, ..) -> &Mutex<..>`
//!    returning a registry field) so `self.shard(f).lock()` attributes
//!    to the field it exposes;
//! 3. finds every **acquisition site** — `.lock(` outside test spans —
//!    and resolves its receiver: the identifier before the dot, the
//!    accessor behind a call, or (for closure locals like
//!    `|s| s.lock()`) a statement-backward scan;
//! 4. approximates **held ranges** from guard scopes: a `let`-bound
//!    guard (`let g = x.lock().expect(..);`, optionally shortened by an
//!    explicit `drop(g)`) is held to the end of its block; a chained
//!    temporary (`x.lock().expect(..).method(..)`) to the end of its
//!    statement;
//! 5. derives **held-while-acquiring edges** — intra-function overlaps
//!    plus one-step inter-procedural edges through calls to
//!    lock-acquiring functions — and fails on cycles and on same-lock
//!    reacquisition while held;
//! 6. checks the **shim seam**: every file acquiring a lock must import
//!    `mc_sync` (the sync-shim and loom crates, which *are* the seam,
//!    are exempt), and every acquisition must resolve to a registered
//!    lock.

use std::collections::{BTreeMap, BTreeSet};

use super::tree::{all_items, Item, ItemKind};
use super::{Finding, SourceFile, Workspace};
use crate::lexer::{Kind, Token};

/// One lock acquisition site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSite {
    pub path: String,
    pub line: usize,
    pub col: usize,
    /// Lock identity `Struct.field`, or `?` when unresolvable.
    pub lock: String,
    /// Enclosing function.
    pub in_fn: String,
}

/// One held-while-acquiring edge in the acquisition graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    pub held: String,
    pub acquired: String,
    pub path: String,
    pub line: usize,
    pub col: usize,
}

/// The lock pass's full output; `sites` is public so coverage can be
/// asserted against an independent count.
#[derive(Debug, Default)]
pub struct LockReport {
    pub sites: Vec<LockSite>,
    pub edges: Vec<LockEdge>,
    pub findings: Vec<Finding>,
}

/// Crates that *are* the locking seam: they wrap the primitives, so
/// their internal lock use is the sanctioned implementation.
fn is_seam_crate(path: &str) -> bool {
    path.starts_with("crates/sync-shim/") || path.starts_with("crates/loom/")
}

/// Runs the pass over the whole workspace.
pub fn check(ws: &Workspace) -> LockReport {
    let files: Vec<&SourceFile> = ws.files.iter().filter(|f| !is_seam_crate(&f.path)).collect();
    let registry = mutex_registry(&files);
    let accessors = accessor_map(&files, &registry);

    let mut report = LockReport::default();
    // fn name -> locks it acquires (for one-step inter-procedural edges).
    let mut fn_locks: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    // Per-site held range, kept parallel to report.sites.
    let mut held: Vec<(usize, usize, usize)> = Vec::new(); // (file idx, site tok, held end tok)

    for (fi, file) in files.iter().enumerate() {
        let imports_shim = file.tokens.iter().any(|t| t.is_ident("mc_sync"));
        for f in functions(&file.tree) {
            let Some((b0, b1)) = f.body else { continue };
            for i in b0..b1 {
                if file.test_mask[i] || !is_lock_call(&file.tokens, i) {
                    continue;
                }
                let t = &file.tokens[i];
                let lock = resolve_receiver(file, i, b0, &registry, &accessors);
                let lock_name = match &lock {
                    Some(l) => l.clone(),
                    None => {
                        report.findings.push(Finding {
                            path: file.path.clone(),
                            line: t.line,
                            col: t.col,
                            rule: "lock-order",
                            symbol: "lock".to_string(),
                            message: format!(
                                "cannot resolve which lock `{}` acquires — the receiver is \
                                 not a registered Mutex field or accessor",
                                context(&file.tokens, i)
                            ),
                        });
                        "?".to_string()
                    }
                };
                if !imports_shim {
                    report.findings.push(Finding {
                        path: file.path.clone(),
                        line: t.line,
                        col: t.col,
                        rule: "lock-seam",
                        symbol: lock_name.clone(),
                        message: format!(
                            "lock `{lock_name}` acquired in a file that does not import the \
                             mc-sync shim — this acquisition is invisible to the loom model \
                             checker"
                        ),
                    });
                }
                let held_end = held_range_end(&file.tokens, i, b1);
                held.push((fi, i, held_end));
                if lock_name != "?" {
                    fn_locks.entry(f.name.clone()).or_default().insert(lock_name.clone());
                }
                report.sites.push(LockSite {
                    path: file.path.clone(),
                    line: t.line,
                    col: t.col,
                    lock: lock_name,
                    in_fn: f.name.clone(),
                });
            }
        }
    }

    derive_edges(&files, &fn_locks, &held, &mut report);
    find_cycles(&mut report);
    report
}

/// Is token `i` the `lock` of a `.lock(` method call?
fn is_lock_call(tokens: &[Token], i: usize) -> bool {
    tokens[i].is_ident("lock")
        && i > 0
        && tokens[i - 1].is_punct('.')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// A short source-shaped excerpt around a site, for messages.
fn context(tokens: &[Token], i: usize) -> String {
    let lo = i.saturating_sub(4);
    let texts: Vec<&str> = tokens[lo..=i]
        .iter()
        .map(|t| if t.text.is_empty() { "_" } else { t.text.as_str() })
        .collect();
    format!("{}(", texts.join(""))
}

/// Every `fn` item in the tree, at any nesting depth.
fn functions(tree: &[Item]) -> Vec<&Item> {
    all_items(tree).into_iter().filter(|i| i.kind == ItemKind::Fn && !i.cfg_test).collect()
}

/// Lock registry: mutex-backed struct fields, `field name -> lock ids`.
///
/// A field registers when its type (the tokens between `:` and the
/// field-separating `,` at depth zero) mentions `Mutex` — which covers
/// both `Mutex<T>` and containers like `Vec<Mutex<T>>`.
fn mutex_registry(files: &[&SourceFile]) -> BTreeMap<String, Vec<(String, String)>> {
    let mut registry: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
    for file in files {
        for item in all_items(&file.tree) {
            if item.kind != ItemKind::Struct || item.cfg_test {
                continue;
            }
            let Some((b0, b1)) = item.body else { continue };
            let mut i = b0;
            let mut depth = 0i32;
            let mut field: Option<String> = None;
            let mut field_has_mutex = false;
            while i < b1 {
                let t = &file.tokens[i];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') || t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct(')')
                    || t.is_punct(']')
                    || t.is_punct('}')
                    || (t.is_punct('>') && !file.tokens[i - 1].is_punct('-'))
                {
                    depth -= 1;
                } else if depth == 0
                    && t.kind == Kind::Ident
                    && file.tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && !file.tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
                {
                    // Commit any previous field, start this one.
                    field = Some(t.text.clone());
                    field_has_mutex = false;
                } else if t.is_ident("Mutex") {
                    field_has_mutex = true;
                }
                let at_separator = depth == 0 && t.is_punct(',');
                if (at_separator || i + 1 == b1) && field_has_mutex {
                    if let Some(name) = field.take() {
                        let id = format!("{}.{}", item.name, name);
                        registry.entry(name).or_default().push((file.path.clone(), id));
                        field_has_mutex = false;
                    }
                }
                i += 1;
            }
        }
    }
    registry
}

/// Accessor map: functions whose signature returns `&Mutex<..>` and
/// whose body names exactly one registered field — `fn name -> lock id`.
fn accessor_map(
    files: &[&SourceFile],
    registry: &BTreeMap<String, Vec<(String, String)>>,
) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for file in files {
        for f in functions(&file.tree) {
            let Some((b0, b1)) = f.body else { continue };
            let header = &file.tokens[f.start..b0];
            // `-> &Mutex<..>` or `-> &'a Mutex<..>` (the lexer splits a
            // lifetime into a Lifetime token plus its identifier).
            let returns_mutex_ref =
                header.windows(2).any(|w| w[0].is_punct('&') && w[1].is_ident("Mutex"))
                    || header.windows(4).any(|w| {
                        w[0].is_punct('&')
                            && w[1].kind == Kind::Lifetime
                            && w[2].kind == Kind::Ident
                            && w[3].is_ident("Mutex")
                    });
            if !returns_mutex_ref {
                continue;
            }
            let named: BTreeSet<&str> = file.tokens[b0..b1]
                .iter()
                .filter(|t| t.kind == Kind::Ident && registry.contains_key(&t.text))
                .map(|t| t.text.as_str())
                .collect();
            if let [field] = named.iter().copied().collect::<Vec<_>>()[..] {
                if let Some(lock) = lookup(registry, field, &file.path) {
                    out.insert(f.name.clone(), lock);
                }
            }
        }
    }
    out
}

/// Resolves a registered field to its lock id, preferring a same-file
/// definition, else requiring a globally unique one.
fn lookup(
    registry: &BTreeMap<String, Vec<(String, String)>>,
    field: &str,
    path: &str,
) -> Option<String> {
    let defs = registry.get(field)?;
    if let Some((_, lock)) = defs.iter().find(|(p, _)| p == path) {
        return Some(lock.clone());
    }
    match defs.as_slice() {
        [(_, lock)] => Some(lock.clone()),
        _ => None,
    }
}

/// Resolves the lock behind the `.lock(` at token `i`.
fn resolve_receiver(
    file: &SourceFile,
    i: usize,
    body_start: usize,
    registry: &BTreeMap<String, Vec<(String, String)>>,
    accessors: &BTreeMap<String, String>,
) -> Option<String> {
    // `recv.lock()` — identifier directly before the dot.
    if i >= 2 {
        let r = &file.tokens[i - 2];
        if r.kind == Kind::Ident {
            if let Some(lock) = lookup(registry, &r.text, &file.path) {
                return Some(lock);
            }
        }
        // `self.accessor(args).lock()` — call result before the dot.
        if r.is_punct(')') {
            if let Some(open) = matching_back(&file.tokens, i - 2, body_start) {
                if open > 0 {
                    let callee = &file.tokens[open - 1];
                    if callee.kind == Kind::Ident {
                        if let Some(lock) = accessors.get(&callee.text) {
                            return Some(lock.clone());
                        }
                    }
                }
            }
        }
    }
    // Closure locals and other indirections: scan the statement
    // backwards for the nearest registered field or accessor.
    let mut k = i;
    while k > body_start {
        k -= 1;
        let t = &file.tokens[k];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.kind == Kind::Ident {
            if let Some(lock) = lookup(registry, &t.text, &file.path) {
                return Some(lock);
            }
            if let Some(lock) = accessors.get(&t.text) {
                return Some(lock.clone());
            }
        }
    }
    None
}

/// Index of the `(` matching the `)` at `close`, scanning backwards.
fn matching_back(tokens: &[Token], close: usize, floor: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = close + 1;
    while j > floor {
        j -= 1;
        if tokens[j].is_punct(')') {
            depth += 1;
        } else if tokens[j].is_punct('(') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Token index one past where the guard acquired at `i` stops being
/// held (exclusive bound, capped at the fn body end `b1`).
fn held_range_end(tokens: &[Token], i: usize, b1: usize) -> usize {
    // Consume the `.lock(..)` call, then any `.expect(..)` / `.unwrap()`
    // chain — those forward the guard; anything else consumes it.
    let Some(mut j) = matching_fwd(tokens, i + 1, b1) else { return b1 };
    while tokens.get(j + 1).is_some_and(|t| t.is_punct('.'))
        && tokens.get(j + 2).is_some_and(|t| t.is_ident("expect") || t.is_ident("unwrap"))
        && tokens.get(j + 3).is_some_and(|t| t.is_punct('('))
    {
        match matching_fwd(tokens, j + 3, b1) {
            Some(close) => j = close,
            None => return b1,
        }
    }
    let after_guard = j + 1;

    // Statement start: just past the previous `;`, `{` or `}`.
    let mut s = i;
    while s > 0 {
        let t = &tokens[s - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        s -= 1;
    }
    let is_let = tokens.get(s).is_some_and(|t| t.is_ident("let"));

    if is_let && tokens.get(after_guard).is_some_and(|t| t.is_punct(';')) {
        // `let g = x.lock().expect(..);` — held to the end of the
        // enclosing block, or to an explicit `drop(g)`.
        let mut g = s + 1;
        if tokens.get(g).is_some_and(|t| t.is_ident("mut")) {
            g += 1;
        }
        let guard = tokens.get(g).filter(|t| t.kind == Kind::Ident).map(|t| t.text.clone());
        let block_end = enclosing_block_end(tokens, i, b1);
        if let Some(guard) = guard {
            let mut k = after_guard;
            while k + 3 < block_end {
                if tokens[k].is_ident("drop")
                    && tokens[k + 1].is_punct('(')
                    && tokens[k + 2].is_ident(&guard)
                    && tokens[k + 3].is_punct(')')
                {
                    return k;
                }
                k += 1;
            }
        }
        return block_end;
    }
    if tokens.get(after_guard).is_some_and(|t| t.is_punct(';') || t.is_punct('.')) {
        // Chained temporary (or bare statement): held to the end of the
        // statement — the next `;` at bracket depth zero.
        let mut depth = 0i32;
        let mut k = after_guard;
        while k < b1 {
            let t = &tokens[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct(';') && depth <= 0 {
                return k + 1;
            }
            k += 1;
        }
        return b1;
    }
    // Guard used in an unrecognized position (match scrutinee, argument,
    // ...): be conservative — held to the end of the enclosing block.
    enclosing_block_end(tokens, i, b1)
}

/// Index of the `}` closing the innermost block containing `i`
/// (exclusive-bound semantics: the returned index is the `}` itself),
/// capped at `b1`.
fn enclosing_block_end(tokens: &[Token], i: usize, b1: usize) -> usize {
    let mut depth = 0i32;
    let mut k = i;
    while k < b1 {
        let t = &tokens[k];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return k;
            }
        }
        k += 1;
    }
    b1
}

/// Index of the `)` matching the `(` at `open` (forward), capped at `b1`.
fn matching_fwd(tokens: &[Token], open: usize, b1: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = open;
    while k < b1.min(tokens.len()) {
        if tokens[k].is_punct('(') {
            depth += 1;
        } else if tokens[k].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        k += 1;
    }
    None
}

/// Derives held-while-acquiring edges: intra-function overlaps, plus
/// one-step inter-procedural edges through calls to functions that
/// acquire locks themselves.
fn derive_edges(
    files: &[&SourceFile],
    fn_locks: &BTreeMap<String, BTreeSet<String>>,
    held: &[(usize, usize, usize)],
    report: &mut LockReport,
) {
    let sites = report.sites.clone();
    let mut seen: BTreeSet<(String, String, String, usize)> = BTreeSet::new();
    for (a, &(fa, ia, ea)) in held.iter().enumerate() {
        let sa = &sites[a];
        if sa.lock == "?" {
            continue;
        }
        // Intra-function: another site acquired inside a's held range.
        for (b, &(fb, ib, _)) in held.iter().enumerate() {
            if a == b || fa != fb || sites[b].in_fn != sa.in_fn {
                continue;
            }
            if ib > ia && ib < ea {
                let sb = &sites[b];
                if sb.lock == "?" {
                    continue;
                }
                if sb.lock == sa.lock {
                    report.findings.push(Finding {
                        path: sb.path.clone(),
                        line: sb.line,
                        col: sb.col,
                        rule: "lock-order",
                        symbol: sb.lock.clone(),
                        message: format!(
                            "lock `{}` re-acquired while already held in `{}` — \
                             self-deadlock with the shim's non-reentrant mutex",
                            sb.lock, sb.in_fn
                        ),
                    });
                } else if seen.insert((sa.lock.clone(), sb.lock.clone(), sb.path.clone(), sb.line))
                {
                    report.edges.push(LockEdge {
                        held: sa.lock.clone(),
                        acquired: sb.lock.clone(),
                        path: sb.path.clone(),
                        line: sb.line,
                        col: sb.col,
                    });
                }
            }
        }
        // One-step inter-procedural: a call to a lock-acquiring fn
        // inside a's held range.
        let file = files[fa];
        for k in ia..ea.min(file.tokens.len()) {
            let t = &file.tokens[k];
            if t.kind != Kind::Ident
                || t.text == "lock"
                || t.text == sa.in_fn
                || !file.tokens.get(k + 1).is_some_and(|n| n.is_punct('('))
            {
                continue;
            }
            // A method call counts only on `self` — `other.len()` must
            // not be confused with an unrelated lock-acquiring `fn len`.
            if k >= 2 && file.tokens[k - 1].is_punct('.') && !file.tokens[k - 2].is_ident("self") {
                continue;
            }
            if let Some(locks) = fn_locks.get(&t.text) {
                for acquired in locks {
                    if *acquired == sa.lock {
                        report.findings.push(Finding {
                            path: file.path.clone(),
                            line: t.line,
                            col: t.col,
                            rule: "lock-order",
                            symbol: acquired.clone(),
                            message: format!(
                                "call to `{}` re-acquires lock `{}` already held in `{}`",
                                t.text, acquired, sa.in_fn
                            ),
                        });
                    } else if seen.insert((
                        sa.lock.clone(),
                        acquired.clone(),
                        file.path.clone(),
                        t.line,
                    )) {
                        report.edges.push(LockEdge {
                            held: sa.lock.clone(),
                            acquired: acquired.clone(),
                            path: file.path.clone(),
                            line: t.line,
                            col: t.col,
                        });
                    }
                }
            }
        }
    }
}

/// Reports every elementary cycle class in the acquisition graph (each
/// cycle reported once, anchored at one of its edges).
fn find_cycles(report: &mut LockReport) {
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in &report.edges {
        adj.entry(e.held.as_str()).or_default().push(e);
    }
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut findings = Vec::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        let mut on_path: Vec<&str> = vec![start];
        dfs(start, start, &adj, &mut on_path, &mut reported, &mut findings);
    }
    report.findings.extend(findings);
}

fn dfs<'a>(
    node: &'a str,
    start: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a LockEdge>>,
    on_path: &mut Vec<&'a str>,
    reported: &mut BTreeSet<Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    let Some(edges) = adj.get(node) else { return };
    for e in edges {
        let next = e.acquired.as_str();
        if next == start {
            // Closed a cycle back to the start.
            let mut cycle: Vec<String> = on_path.iter().map(|s| (*s).to_string()).collect();
            cycle.push(start.to_string());
            let mut key = cycle.clone();
            key.sort();
            key.dedup();
            if reported.insert(key) {
                findings.push(Finding {
                    path: e.path.clone(),
                    line: e.line,
                    col: e.col,
                    rule: "lock-order",
                    symbol: e.acquired.clone(),
                    message: format!(
                        "lock acquisition cycle: {} — two threads interleaving these \
                         acquisitions deadlock",
                        cycle.join(" -> ")
                    ),
                });
            }
            continue;
        }
        if on_path.contains(&next) {
            continue; // cycle not through `start`; found from its own start node
        }
        on_path.push(next);
        dfs(next, start, adj, on_path, reported, findings);
        on_path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            files.iter().map(|(p, s)| ((*p).to_string(), (*s).to_string())).collect(),
        )
    }

    const TWO_LOCKS: &str = r#"
        use mc_sync::Mutex;
        pub struct S { a: Mutex<u32>, b: Mutex<u32> }
        impl S {
            fn ab(&self) {
                let ga = self.a.lock().expect("a");
                let gb = self.b.lock().expect("b");
                drop(gb);
                drop(ga);
            }
        }
    "#;

    #[test]
    fn let_bound_guards_produce_ordered_edges() {
        let report = check(&ws(&[("crates/core/src/serve.rs", TWO_LOCKS)]));
        assert_eq!(report.sites.len(), 2);
        assert_eq!(report.edges.len(), 1);
        assert_eq!(
            (report.edges[0].held.as_str(), report.edges[0].acquired.as_str()),
            ("S.a", "S.b")
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn opposite_orders_in_two_functions_form_a_cycle() {
        let src = r#"
            use mc_sync::Mutex;
            pub struct S { a: Mutex<u32>, b: Mutex<u32> }
            impl S {
                fn ab(&self) {
                    let ga = self.a.lock().expect("a");
                    let gb = self.b.lock().expect("b");
                }
                fn ba(&self) {
                    let gb = self.b.lock().expect("b");
                    let ga = self.a.lock().expect("a");
                }
            }
        "#;
        let report = check(&ws(&[("crates/core/src/serve.rs", src)]));
        assert_eq!(report.edges.len(), 2);
        let cycles: Vec<&Finding> =
            report.findings.iter().filter(|f| f.message.contains("cycle")).collect();
        assert_eq!(cycles.len(), 1, "{:?}", report.findings);
        assert!(cycles[0].message.contains("S.a") && cycles[0].message.contains("S.b"));
    }

    #[test]
    fn chained_temporaries_release_at_statement_end() {
        let src = r#"
            use mc_sync::Mutex;
            pub struct S { a: Mutex<Vec<u32>> }
            impl S {
                fn twice(&self) -> usize {
                    let n = self.a.lock().expect("a").len();
                    let m = self.a.lock().expect("a").len();
                    n + m
                }
            }
        "#;
        let report = check(&ws(&[("crates/core/src/serve.rs", src)]));
        assert_eq!(report.sites.len(), 2);
        assert!(report.findings.is_empty(), "temporaries must not overlap: {:?}", report.findings);
    }

    #[test]
    fn reacquiring_a_held_lock_is_flagged() {
        let src = r#"
            use mc_sync::Mutex;
            pub struct S { a: Mutex<u32> }
            impl S {
                fn nested(&self) {
                    let g = self.a.lock().expect("a");
                    let h = self.a.lock().expect("a");
                }
            }
        "#;
        let report = check(&ws(&[("crates/core/src/serve.rs", src)]));
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "lock-order");
        assert!(report.findings[0].message.contains("re-acquired"));
        assert_eq!(report.findings[0].line, 7);
    }

    #[test]
    fn accessor_calls_and_closure_locals_resolve_to_the_field() {
        let src = r#"
            use mc_sync::Mutex;
            pub struct C { shards: Vec<Mutex<u32>> }
            impl C {
                fn shard(&self, i: usize) -> &Mutex<u32> { &self.shards[i] }
                fn get(&self, i: usize) -> u32 {
                    *self.shard(i).lock().expect("shard")
                }
                fn total(&self) -> u32 {
                    self.shards.iter().map(|s| *s.lock().expect("shard")).sum()
                }
            }
        "#;
        let report = check(&ws(&[("crates/lm/src/cache.rs", src)]));
        assert_eq!(report.sites.len(), 2);
        assert!(report.sites.iter().all(|s| s.lock == "C.shards"), "{:?}", report.sites);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn missing_shim_import_is_a_seam_finding_with_a_precise_span() {
        let src = "pub struct S { a: std::sync::Mutex<u32> }\nimpl S {\n    fn f(&self) { let g = self.a.lock().expect(\"a\"); }\n}";
        let report = check(&ws(&[("crates/core/src/rogue.rs", src)]));
        let seams: Vec<&Finding> =
            report.findings.iter().filter(|f| f.rule == "lock-seam").collect();
        assert_eq!(seams.len(), 1);
        assert_eq!((seams[0].line, seams[0].col), (3, 34));
    }

    #[test]
    fn interprocedural_edges_cross_one_call_step() {
        let src = r#"
            use mc_sync::Mutex;
            pub struct S { a: Mutex<u32>, b: Mutex<u32> }
            fn inner(s: &S) { let g = s.b.lock().expect("b"); }
            fn outer(s: &S) {
                let g = s.a.lock().expect("a");
                inner(s);
            }
        "#;
        let report = check(&ws(&[("crates/core/src/serve.rs", src)]));
        assert_eq!(report.edges.len(), 1);
        assert_eq!(
            (report.edges[0].held.as_str(), report.edges[0].acquired.as_str()),
            ("S.a", "S.b")
        );
    }

    #[test]
    fn test_spans_and_seam_crates_are_exempt() {
        let src = r#"
            use mc_sync::Mutex;
            pub struct S { a: Mutex<u32> }
            #[cfg(test)]
            mod tests {
                fn t(s: &super::S) { let g = s.a.lock().expect("a"); }
            }
        "#;
        let report = check(&ws(&[("crates/core/src/serve.rs", src)]));
        assert!(report.sites.is_empty());
        let shim = "pub struct M; impl M { pub fn lock(&self) {} fn f(&self) { self.lock(); } }";
        let report = check(&ws(&[("crates/sync-shim/src/lib.rs", shim)]));
        assert!(report.sites.is_empty() && report.findings.is_empty());
    }
}
