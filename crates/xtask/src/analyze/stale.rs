//! Allowlist-staleness pass.
//!
//! The lint layer already rejects entries that suppress nothing *this
//! run* — but an entry can also rot structurally: the file it names was
//! moved, or the symbol it names was renamed, and the entry now pins a
//! justification to code that no longer exists. That rot is invisible
//! to use-counting (the entry simply never matches again, and if its
//! rule is out of scope for the run it never even reports as unused).
//! This pass cross-references every entry against the workspace symbol
//! index and fails at the entry's own allowlist line.

use super::index::SymbolIndex;
use super::Finding;
use crate::allow::Allowlist;

/// Checks every allowlist entry against the symbol index.
///
/// Two structural conditions per entry, independent of which rules are
/// in scope for the current run:
///
/// - its path prefix must still cover at least one linted source file;
/// - its symbol (when not `*`) must still occur — each `::` segment as
///   an identifier — in some file under that prefix.
pub fn check(idx: &SymbolIndex, allowlist: &Allowlist) -> Vec<Finding> {
    let mut out = Vec::new();
    for e in &allowlist.entries {
        if !idx.any_file_under(&e.path_prefix) {
            out.push(Finding {
                path: "mc-lint.allow".to_string(),
                line: e.line,
                col: 1,
                rule: "stale-allow",
                symbol: e.path_prefix.clone(),
                message: format!(
                    "entry `{} {} {}` names path prefix `{}` which covers no linted source \
                     file — the file was moved or removed; update or delete the entry",
                    e.rule,
                    e.path_prefix,
                    e.symbol.as_deref().unwrap_or("*"),
                    e.path_prefix,
                ),
            });
            continue;
        }
        if let Some(symbol) = &e.symbol {
            let missing: Vec<&str> = symbol
                .split("::")
                .filter(|seg| !seg.is_empty() && !idx.ident_occurs_under(&e.path_prefix, seg))
                .collect();
            if !missing.is_empty() {
                out.push(Finding {
                    path: "mc-lint.allow".to_string(),
                    line: e.line,
                    col: 1,
                    rule: "stale-allow",
                    symbol: symbol.clone(),
                    message: format!(
                        "entry `{} {} {}` names symbol `{}` but `{}` no longer occurs under \
                         `{}` — the symbol was renamed or removed; update or delete the entry",
                        e.rule,
                        e.path_prefix,
                        symbol,
                        symbol,
                        missing.join("::"),
                        e.path_prefix,
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::Workspace;

    fn ws() -> Workspace {
        Workspace::from_sources(vec![(
            "crates/demo/src/lib.rs".to_string(),
            "pub fn real_symbol() { helper(); }".to_string(),
        )])
    }

    #[test]
    fn live_entries_pass_and_stale_paths_and_symbols_fail_at_their_line() {
        let allow = Allowlist::parse(
            "# header\n\
             no-unwrap crates/demo/src real_symbol -- still here\n\
             no-unwrap crates/gone/src * -- moved away\n\
             no-unwrap crates/demo/src Renamed::old_name -- renamed\n",
            &["no-unwrap"],
        )
        .expect("parses");
        let idx = SymbolIndex::build(&ws());
        let findings = check(&idx, &allow);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert_eq!((findings[0].line, findings[0].col), (3, 1));
        assert_eq!(findings[0].path, "mc-lint.allow");
        assert!(findings[0].message.contains("crates/gone/src"), "{}", findings[0].message);
        assert_eq!((findings[1].line, findings[1].col), (4, 1));
        assert!(findings[1].message.contains("Renamed::old_name"), "{}", findings[1].message);
        assert!(findings.iter().all(|f| f.rule == "stale-allow"));
    }

    #[test]
    fn partially_live_qualified_symbols_report_only_the_dead_segment() {
        let allow = Allowlist::parse(
            "no-unwrap crates/demo/src real_symbol::vanished -- half stale\n",
            &["no-unwrap"],
        )
        .expect("parses");
        let idx = SymbolIndex::build(&ws());
        let findings = check(&idx, &allow);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].message.contains("`vanished` no longer occurs"),
            "{}",
            findings[0].message
        );
    }
}
