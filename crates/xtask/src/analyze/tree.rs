//! Structural item tree over the lexed token stream.
//!
//! Parses a token stream into a nested tree of items (functions,
//! structs, enums, impls, modules, ...) with name, span, token range and
//! body range. This is deliberately a *shape* parser, not a grammar: it
//! recognizes item headers and matches their braces, which is exactly
//! what the analysis passes need — "which function body am I in",
//! "where does this enum's variant list live" — without a syntax-tree
//! dependency. Expression-level code inside `fn` bodies is left as raw
//! tokens (the passes scan it themselves); items nested in `mod`,
//! `impl` and `trait` bodies are parsed recursively.

use crate::lexer::{Kind, Token};

/// The item families the passes care to distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Struct,
    Enum,
    Union,
    Trait,
    Impl,
    Mod,
    Const,
    Static,
    TypeAlias,
    Use,
    Macro,
}

/// One parsed item.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// Item name; for `impl` blocks the implemented type's name, empty
    /// for `use` declarations.
    pub name: String,
    /// 1-based line/column of the name (or keyword when unnamed).
    pub line: usize,
    pub col: usize,
    /// Token range of the whole item, visibility/modifiers included,
    /// attributes excluded: `[start, end)`.
    pub start: usize,
    pub end: usize,
    /// Token range strictly inside the item's braces, if it has a body.
    pub body: Option<(usize, usize)>,
    /// Whether the item (or an enclosing one) is test-only:
    /// `#[cfg(test)]`, `#[test]` or `#[bench]`.
    pub cfg_test: bool,
    /// Nested items, parsed for `mod`, `impl` and `trait` bodies.
    pub children: Vec<Item>,
}

impl Item {
    /// This item and every descendant, depth-first.
    pub fn walk<'a>(&'a self, out: &mut Vec<&'a Item>) {
        out.push(self);
        for c in &self.children {
            c.walk(out);
        }
    }
}

/// Flattens a parsed tree into all items, depth-first.
pub fn all_items(tree: &[Item]) -> Vec<&Item> {
    let mut out = Vec::new();
    for item in tree {
        item.walk(&mut out);
    }
    out
}

/// Finds the first item of `kind` named `name`, anywhere in the tree.
pub fn find<'a>(tree: &'a [Item], kind: ItemKind, name: &str) -> Option<&'a Item> {
    all_items(tree).into_iter().find(|i| i.kind == kind && i.name == name)
}

/// Parses a whole token stream into a top-level item list.
pub fn parse(tokens: &[Token]) -> Vec<Item> {
    let mut out = Vec::new();
    parse_range(tokens, 0, tokens.len(), false, &mut out);
    out
}

/// Index of the `close` matching the `open` at `start`, within `[.., end)`.
fn matching_in(
    tokens: &[Token],
    start: usize,
    end: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().take(end).skip(start) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Does this attribute body mark test-only code? Mirrors the lint
/// layer's exemption: bare `#[test]` / `#[bench]`, or a `#[cfg(..)]`
/// mentioning `test` without a negation.
fn attr_is_test(body: &[Token]) -> bool {
    match body.first() {
        Some(t) if t.is_ident("test") || t.is_ident("bench") => body.len() == 1,
        Some(t) if t.is_ident("cfg") => {
            body.iter().any(|t| t.is_ident("test")) && !body.iter().any(|t| t.is_ident("not"))
        }
        _ => false,
    }
}

fn parse_range(
    tokens: &[Token],
    mut i: usize,
    end: usize,
    inherited_test: bool,
    out: &mut Vec<Item>,
) {
    while i < end {
        // Attributes (outer and inner); accumulate test-only marks.
        let mut cfg_test = inherited_test;
        let mut progressed = true;
        while progressed && i < end && tokens[i].is_punct('#') {
            progressed = false;
            let mut j = i + 1;
            if j < end && tokens[j].is_punct('!') {
                j += 1; // inner attribute #![..]
            }
            if j < end && tokens[j].is_punct('[') {
                if let Some(close) = matching_in(tokens, j, end, '[', ']') {
                    if attr_is_test(&tokens[j + 1..close]) {
                        cfg_test = true;
                    }
                    i = close + 1;
                    progressed = true;
                }
            }
        }
        if i >= end {
            break;
        }
        match parse_item(tokens, i, end, cfg_test) {
            Some(item) => {
                i = item.end;
                out.push(item);
            }
            None => {
                // Not an item start: skip the token, jumping over any
                // bracketed group so stray expression code cannot
                // desynchronize the scan.
                let t = &tokens[i];
                i = if t.is_punct('{') {
                    matching_in(tokens, i, end, '{', '}').map_or(end, |c| c + 1)
                } else if t.is_punct('(') {
                    matching_in(tokens, i, end, '(', ')').map_or(end, |c| c + 1)
                } else if t.is_punct('[') {
                    matching_in(tokens, i, end, '[', ']').map_or(end, |c| c + 1)
                } else {
                    i + 1
                };
            }
        }
    }
}

/// Tries to parse one item starting at `start` (attributes already
/// consumed). Returns `None` if `start` is not an item header.
fn parse_item(tokens: &[Token], start: usize, end: usize, cfg_test: bool) -> Option<Item> {
    let mut i = start;
    // Visibility and modifiers.
    loop {
        let t = tokens.get(i).filter(|t| t.kind == Kind::Ident)?;
        match t.text.as_str() {
            "pub" => {
                i += 1;
                if tokens.get(i).is_some_and(|t| t.is_punct('(')) {
                    i = matching_in(tokens, i, end, '(', ')')? + 1;
                }
            }
            "default" | "async" | "unsafe" => i += 1,
            // `const` is a modifier only when a function follows
            // (`const fn`, `const unsafe fn`); otherwise it is the
            // `const ITEM` keyword handled below.
            "const"
                if tokens.get(i + 1).is_some_and(|t| {
                    t.is_ident("fn") || t.is_ident("unsafe") || t.is_ident("extern")
                }) =>
            {
                i += 1;
            }
            // `extern "C" fn` — skip the ABI string.
            "extern" if tokens.get(i + 1).is_some_and(|t| t.kind == Kind::Literal) => i += 2,
            _ => break,
        }
    }
    let kw = tokens.get(i)?;
    let (kind, named) = match kw.text.as_str() {
        "fn" => (ItemKind::Fn, true),
        "struct" => (ItemKind::Struct, true),
        "enum" => (ItemKind::Enum, true),
        "union" if tokens.get(i + 1).is_some_and(|t| t.kind == Kind::Ident) => {
            (ItemKind::Union, true)
        }
        "trait" => (ItemKind::Trait, true),
        "impl" => (ItemKind::Impl, false),
        "mod" => (ItemKind::Mod, true),
        "const" => (ItemKind::Const, true),
        "static" => (ItemKind::Static, true),
        "type" => (ItemKind::TypeAlias, true),
        "use" | "extern" => (ItemKind::Use, false),
        "macro_rules" => (ItemKind::Macro, false),
        _ => return None,
    };
    let (name, name_tok) = match kind {
        ItemKind::Impl => (String::new(), i), // resolved after the header scan
        ItemKind::Use => (String::new(), i),
        ItemKind::Macro => {
            let j = i + 1; // `!`
            let t = tokens.get(j + 1).filter(|t| t.kind == Kind::Ident)?;
            (t.text.clone(), j + 1)
        }
        ItemKind::Static | ItemKind::Const => {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let t = tokens.get(j).filter(|t| t.kind == Kind::Ident)?;
            (t.text.clone(), j)
        }
        _ if named => {
            let t = tokens.get(i + 1).filter(|t| t.kind == Kind::Ident)?;
            (t.text.clone(), i + 1)
        }
        _ => (String::new(), i),
    };

    // Semicolon-terminated items: run to the `;` at bracket depth zero.
    if matches!(kind, ItemKind::Const | ItemKind::Static | ItemKind::TypeAlias | ItemKind::Use) {
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < end {
            let t = &tokens[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct(';') && depth == 0 {
                return Some(Item {
                    kind,
                    name,
                    line: tokens[name_tok].line,
                    col: tokens[name_tok].col,
                    start,
                    end: j + 1,
                    body: None,
                    cfg_test,
                    children: Vec::new(),
                });
            }
            j += 1;
        }
        return None;
    }

    // Brace-or-semicolon items: scan the header (at paren/bracket depth
    // zero) for the body `{` or a terminating `;` (tuple struct, trait
    // fn declaration, `mod x;`).
    let mut j = i + 1;
    let mut depth = 0i32;
    let item_end;
    let mut body = None;
    loop {
        let t = tokens.get(j).filter(|_| j < end)?;
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct(';') {
            item_end = j + 1;
            break;
        } else if depth == 0 && t.is_punct('{') {
            let close = matching_in(tokens, j, end, '{', '}')?;
            body = Some((j + 1, close));
            item_end = close + 1;
            break;
        }
        j += 1;
    }

    let (name, name_tok) = if kind == ItemKind::Impl {
        resolve_impl_name(tokens, i + 1, body.map_or(item_end, |(open, _)| open - 1))
            .unwrap_or((String::new(), i))
    } else {
        (name, name_tok)
    };

    let mut children = Vec::new();
    if matches!(kind, ItemKind::Mod | ItemKind::Impl | ItemKind::Trait) {
        if let Some((b0, b1)) = body {
            parse_range(tokens, b0, b1, cfg_test, &mut children);
        }
    }
    Some(Item {
        kind,
        name,
        line: tokens[name_tok].line,
        col: tokens[name_tok].col,
        start,
        end: item_end,
        body,
        cfg_test,
        children,
    })
}

/// The implemented type's name from an `impl` header: the first
/// identifier after `for` when present (`impl Trait for Type`), else
/// the first identifier after the generics (`impl<T> Type<T>`).
fn resolve_impl_name(tokens: &[Token], mut i: usize, header_end: usize) -> Option<(String, usize)> {
    // Skip the generic parameter list, guarding against the `>` of a
    // `->` inside e.g. `impl<F: Fn(u32) -> u32>`.
    if tokens.get(i).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i32;
        while i < header_end {
            let t = &tokens[i];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !(i > 0 && tokens[i - 1].is_punct('-')) {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    let header = &tokens[i..header_end];
    let for_pos = header.iter().position(|t| t.is_ident("for"));
    let scan = match for_pos {
        Some(p) => &header[p + 1..],
        None => header,
    };
    scan.iter()
        .enumerate()
        .find(|(_, t)| t.kind == Kind::Ident && !t.is_ident("dyn") && !t.is_ident("mut"))
        .map(|(off, t)| {
            let abs = i + for_pos.map_or(0, |p| p + 1) + off;
            (t.text.clone(), abs)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn names(items: &[Item]) -> Vec<(ItemKind, String)> {
        items.iter().map(|i| (i.kind, i.name.clone())).collect()
    }

    #[test]
    fn parses_top_level_items_with_bodies() {
        let src = r#"
            pub struct Foo { a: u32 }
            struct Tuple(u8);
            pub(crate) enum Bar { A, B(u32) }
            const N: usize = 3;
            static mut S: [u8; 2] = [0; 2];
            pub fn f(x: u32) -> u32 { x }
            mod inner { pub fn g() {} }
            use std::fmt;
        "#;
        let tree = parse(&lex(src));
        assert_eq!(
            names(&tree),
            vec![
                (ItemKind::Struct, "Foo".into()),
                (ItemKind::Struct, "Tuple".into()),
                (ItemKind::Enum, "Bar".into()),
                (ItemKind::Const, "N".into()),
                (ItemKind::Static, "S".into()),
                (ItemKind::Fn, "f".into()),
                (ItemKind::Mod, "inner".into()),
                (ItemKind::Use, String::new()),
            ]
        );
        assert!(tree[0].body.is_some() && tree[3].body.is_none());
        assert_eq!(names(&tree[6].children), vec![(ItemKind::Fn, "g".into())]);
    }

    #[test]
    fn impl_blocks_name_the_implemented_type_and_nest_methods() {
        let src = r#"
            impl Foo { fn a(&self) {} }
            impl<T: Fn(u32) -> u32> Wrapper<T> { fn b(&self) {} }
            impl Display for Foo { fn fmt(&self) {} }
        "#;
        let tree = parse(&lex(src));
        let got: Vec<(String, Vec<(ItemKind, String)>)> =
            tree.iter().map(|i| (i.name.clone(), names(&i.children))).collect();
        assert_eq!(
            got,
            vec![
                ("Foo".into(), vec![(ItemKind::Fn, "a".into())]),
                ("Wrapper".into(), vec![(ItemKind::Fn, "b".into())]),
                ("Foo".into(), vec![(ItemKind::Fn, "fmt".into())]),
            ]
        );
    }

    #[test]
    fn cfg_test_marks_propagate_into_nested_items() {
        let src = r#"
            fn prod() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn t() {}
            }
        "#;
        let tree = parse(&lex(src));
        assert!(!tree[0].cfg_test);
        assert!(tree[1].cfg_test);
        assert!(tree[1].children.iter().all(|c| c.cfg_test));
    }

    #[test]
    fn const_fn_is_a_fn_and_const_item_with_struct_literal_ends_at_semicolon() {
        let src = "const fn f() -> u32 { 1 }\nconst X: Foo = Foo { a: [1; 2] };\nfn after() {}";
        let tree = parse(&lex(src));
        assert_eq!(
            names(&tree),
            vec![
                (ItemKind::Fn, "f".into()),
                (ItemKind::Const, "X".into()),
                (ItemKind::Fn, "after".into()),
            ]
        );
    }

    #[test]
    fn spans_point_at_the_item_name() {
        let tree = parse(&lex("fn alpha() {}\n  pub fn beta() {}"));
        assert_eq!((tree[0].line, tree[0].col), (1, 4));
        assert_eq!((tree[1].line, tree[1].col), (2, 10));
    }
}
