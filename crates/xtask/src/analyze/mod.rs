//! mc-analyze: structural workspace analysis.
//!
//! Where mc-lint ([`crate::lints`]) pattern-matches the flat token
//! stream, mc-analyze parses that stream into a nested item tree
//! ([`tree`]) plus a workspace symbol index ([`index`]) and runs
//! semantic passes the flat stream cannot express:
//!
//! - **[`locks`]** — extracts every `mc-sync` lock acquisition site,
//!   approximates held-while-acquiring pairs from guard scopes, builds
//!   the acquisition graph and fails on cycles, same-lock reacquisition,
//!   unresolvable receivers, and locks acquired outside the shim seam.
//! - **[`drift`]** — cross-file exhaustiveness contracts: every
//!   `DefectClass` variant mirrored into the mc-obs defect counters,
//!   every `EventKind` variant handled by canonical export and metrics
//!   recording, every `.spec` grammar key consumed by the builder, every
//!   `ScenarioKind` backed by a committed golden spec (and a BENCH
//!   baseline when its runner emits one).
//! - **[`stale`]** — cross-references `mc-lint.allow` entries against
//!   the symbol index so entries naming moved or renamed paths/symbols
//!   fail loudly at their allowlist line.
//! - **[`rules`]** — the two scope-sensitive lint rules migrated onto
//!   the structural tree: `no-direct-fit` (the `fit_context` fn body is
//!   the one recognized seam) and `single-construction`.
//!
//! Deny-by-default like the linter, sharing the same allowlist grammar
//! and file; `cargo xtask analyze` drives it. DESIGN.md §13 describes
//! the architecture and the analyze/lint/loom division of labor.

pub mod drift;
pub mod index;
pub mod locks;
pub mod rules;
pub mod stale;
pub mod tree;

use std::fmt;
use std::fs;
use std::path::Path;

use crate::allow::{Allowlist, Suppressible};
use crate::lexer::{lex_full, Token};
use crate::lints;

/// Analyze rule names, for reports and allowlist scoping.
pub const RULE_NAMES: [&str; 10] = [
    "lock-order",
    "lock-seam",
    "counter-drift",
    "event-drift",
    "span-drift",
    "spec-drift",
    "scenario-drift",
    "stale-allow",
    "no-direct-fit",
    "single-construction",
];

/// One analysis finding: a span-accurate diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (or `<workspace>` for global findings).
    pub path: String,
    pub line: usize,
    pub col: usize,
    /// One of [`RULE_NAMES`].
    pub rule: &'static str,
    /// The symbol the finding is about (variant, key, lock, entry, ...).
    pub symbol: String,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: [{}] {}", self.path, self.line, self.col, self.rule, self.message)
    }
}

impl Suppressible for Finding {
    fn rule_name(&self) -> &str {
        self.rule
    }
    fn path(&self) -> &str {
        &self.path
    }
    fn symbol(&self) -> &str {
        &self.symbol
    }
}

/// One loaded, lexed and tree-parsed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Full-fidelity token stream ([`lex_full`]: literal text kept).
    pub tokens: Vec<Token>,
    /// Structural item tree.
    pub tree: Vec<tree::Item>,
    /// Per-token test-span mask (same exemption as the lint layer).
    pub test_mask: Vec<bool>,
}

/// The loaded workspace the passes run over.
#[derive(Debug, Default)]
pub struct Workspace {
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads every linted source file under `root` (same walk as
    /// mc-lint: `src/` of the root package and of each crate).
    ///
    /// # Errors
    /// On filesystem errors.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut sources = Vec::new();
        for path in crate::collect_sources(root)? {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            let rel = rel.to_string_lossy().replace('\\', "/");
            let src =
                fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            sources.push((rel, src));
        }
        Ok(Workspace::from_sources(sources))
    }

    /// Builds a workspace from in-memory `(path, source)` pairs — the
    /// fixture seam: tests mimic the real layout with synthetic files.
    pub fn from_sources(sources: Vec<(String, String)>) -> Workspace {
        let files = sources
            .into_iter()
            .map(|(path, src)| {
                let tokens = lex_full(&src);
                let tree = tree::parse(&tokens);
                let test_mask = lints::test_spans(&tokens);
                SourceFile { path, tokens, tree, test_mask }
            })
            .collect();
        Workspace { files }
    }

    /// The file at exactly `path`, if loaded.
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

/// Everything one analyze run produced.
#[derive(Debug)]
pub struct AnalysisReport {
    /// Files analyzed.
    pub files: usize,
    /// Lock acquisition sites the lock-order pass covered.
    pub lock_sites: usize,
    /// Findings that survived the allowlist, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Configuration errors: stale analyze-scoped allowlist entries.
    pub errors: Vec<String>,
    /// Analyze-scoped allowlist entries that suppressed something.
    pub suppressions_in_use: usize,
}

impl AnalysisReport {
    /// Whether the run passed.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.errors.is_empty()
    }

    /// Machine-readable report (JSON), stable field order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"files\":{},", self.files));
        out.push_str(&format!("\"lock_sites\":{},", self.lock_sites));
        out.push_str("\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":{},\"line\":{},\"col\":{},\"rule\":{},\"symbol\":{},\"message\":{}}}",
                json_str(&f.path),
                f.line,
                f.col,
                json_str(f.rule),
                json_str(&f.symbol),
                json_str(&f.message),
            ));
        }
        out.push_str("],\"errors\":[");
        for (i, e) in self.errors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(e));
        }
        out.push_str(&format!("],\"suppressions_in_use\":{}}}", self.suppressions_in_use));
        out
    }
}

/// Minimal JSON string encoder (the report has no exotic content).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Runs every pass over an already-loaded workspace.
///
/// Returns the raw findings (allowlist not yet applied) plus the
/// lock-site count. Split out so tests can drive synthetic workspaces.
pub fn run_passes(
    ws: &Workspace,
    artifacts: &drift::ScenarioArtifacts,
    allowlist: &Allowlist,
) -> (Vec<Finding>, usize) {
    let idx = index::SymbolIndex::build(ws);
    let lock_report = locks::check(ws);
    let mut findings = lock_report.findings;
    findings.extend(drift::counter_drift(ws));
    findings.extend(drift::event_drift(ws));
    findings.extend(drift::span_drift(ws));
    findings.extend(drift::spec_drift(ws));
    findings.extend(drift::scenario_drift(ws, artifacts));
    findings.extend(stale::check(&idx, allowlist));
    findings.extend(rules::no_direct_fit(ws));
    findings.extend(rules::single_construction(ws));
    (findings, lock_report.sites.len())
}

/// Analyzes the workspace rooted at `root` against `allowlist_text`.
///
/// # Errors
/// On a malformed allowlist, unreadable sources, or missing artifact
/// directories — configuration problems, as opposed to the findings
/// reported in the result.
pub fn run_analyze(root: &Path, allowlist_text: &str) -> Result<AnalysisReport, String> {
    let allowlist = Allowlist::parse(allowlist_text, &crate::known_rules())?;
    let ws = Workspace::load(root)?;
    let artifacts = drift::ScenarioArtifacts::load(root)?;
    let (findings, lock_sites) = run_passes(&ws, &artifacts, &allowlist);
    let (mut kept, errors) = allowlist.apply(findings, &RULE_NAMES);
    kept.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    let suppressions_in_use = allowlist.in_scope(&RULE_NAMES) - errors.len();
    Ok(AnalysisReport {
        files: ws.files.len(),
        lock_sites,
        findings: kept,
        errors,
        suppressions_in_use,
    })
}
