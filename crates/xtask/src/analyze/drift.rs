//! Cross-file exhaustiveness-drift passes.
//!
//! The reproduction's observability and scenario contracts span crates:
//! a `DefectClass` variant added in `mc-core` must grow a counter slot
//! in `mc-obs`; an `EventKind` variant must be rendered by canonical
//! export and recorded by the metrics registry; a `.spec` grammar key
//! must be read by the builder; a `ScenarioKind` must have a committed
//! golden spec, and a BENCH baseline when its runner emits one. The
//! compiler cannot see across these seams (string tables, file stems),
//! so each contract is checked structurally here and fails with a
//! span-accurate finding at the drifted declaration.
//!
//! Contract locations are pinned by path — moving one of these files is
//! itself a contract change and should fail loudly:

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use super::tree::{all_items, find, Item, ItemKind};
use super::{Finding, SourceFile, Workspace};
use crate::lexer::{Kind, Token};

/// Where the cross-file contracts live.
pub const ROBUST_RS: &str = "crates/core/src/robust.rs";
pub const EVENT_RS: &str = "crates/obs/src/event.rs";
pub const SPAN_RS: &str = "crates/obs/src/span.rs";
pub const EXPORT_RS: &str = "crates/obs/src/export.rs";
pub const METRICS_RS: &str = "crates/obs/src/metrics.rs";
pub const SPEC_RS: &str = "crates/spec/src/spec.rs";
pub const BUILDER_RS: &str = "crates/spec/src/builder.rs";
pub const RUNNER_RS: &str = "crates/spec/src/runner.rs";
pub const SCENARIOS_RS: &str = "crates/spec/src/scenarios.rs";

/// Committed scenario artifacts: golden spec stems (`specs/*.spec`) and
/// BENCH baseline tokens (`results/BENCH_<token>.json`).
#[derive(Debug, Default)]
pub struct ScenarioArtifacts {
    pub spec_stems: BTreeSet<String>,
    pub bench_tokens: BTreeSet<String>,
}

impl ScenarioArtifacts {
    /// Reads the committed artifact directories under `root`.
    ///
    /// # Errors
    /// On filesystem errors (missing directories included — a workspace
    /// without golden specs has bigger problems than drift).
    pub fn load(root: &Path) -> Result<ScenarioArtifacts, String> {
        let mut out = ScenarioArtifacts::default();
        let specs = root.join("specs");
        for entry in
            std::fs::read_dir(&specs).map_err(|e| format!("read {}: {e}", specs.display()))?
        {
            let name = entry.map_err(|e| e.to_string())?.file_name();
            if let Some(stem) = name.to_string_lossy().strip_suffix(".spec") {
                out.spec_stems.insert(stem.to_string());
            }
        }
        let results = root.join("results");
        for entry in
            std::fs::read_dir(&results).map_err(|e| format!("read {}: {e}", results.display()))?
        {
            let name = entry.map_err(|e| e.to_string())?.file_name();
            let name = name.to_string_lossy();
            if let Some(token) = name.strip_prefix("BENCH_").and_then(|n| n.strip_suffix(".json")) {
                out.bench_tokens.insert(token.to_string());
            }
        }
        Ok(out)
    }
}

fn missing_contract_file(rule: &'static str, path: &str) -> Finding {
    Finding {
        path: "<workspace>".to_string(),
        line: 0,
        col: 0,
        rule,
        symbol: path.to_string(),
        message: format!("contract file {path} is not in the workspace — moved files must be re-pinned in analyze/drift.rs"),
    }
}

/// The inner text of a string literal token (`"x"`, `r#"x"#`, ...).
fn literal_str(text: &str) -> Option<&str> {
    let open = text.find('"')?;
    let close = text.rfind('"')?;
    if close > open {
        Some(&text[open + 1..close])
    } else {
        None
    }
}

/// Variant names (with spans) of the enum `name` in `file`.
fn enum_variants(file: &SourceFile, name: &str) -> Option<Vec<(String, usize, usize)>> {
    let item = find(&file.tree, ItemKind::Enum, name)?;
    let (b0, b1) = item.body?;
    let mut out = Vec::new();
    let mut i = b0;
    let mut depth = 0i32;
    let mut expecting = true;
    while i < b1 {
        let t = &file.tokens[i];
        if t.is_punct('#') && file.tokens.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            // Skip variant attributes.
            let mut d = 0i32;
            i += 1;
            while i < b1 {
                if file.tokens[i].is_punct('[') {
                    d += 1;
                } else if file.tokens[i].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                i += 1;
            }
        } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.is_punct(',') {
            expecting = true;
        } else if depth == 0 && expecting && t.kind == Kind::Ident {
            out.push((t.text.clone(), t.line, t.col));
            expecting = false;
        }
        i += 1;
    }
    Some(out)
}

/// All `Enum::Variant` follower idents in a token range.
fn qualified_followers(
    tokens: &[Token],
    range: (usize, usize),
    enum_name: &str,
) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let (b0, b1) = range;
    for i in b0..b1 {
        if tokens[i].is_ident(enum_name)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(v) = tokens.get(i + 3).filter(|t| t.kind == Kind::Ident) {
                out.insert(v.text.clone());
            }
        }
    }
    out
}

/// All `Enum::Variant` follower idents in a token range, with the span
/// of each first occurrence (for findings that point at the arm itself).
fn qualified_followers_spanned(
    tokens: &[Token],
    range: (usize, usize),
    enum_name: &str,
) -> Vec<(String, usize, usize)> {
    let mut out: Vec<(String, usize, usize)> = Vec::new();
    let (b0, b1) = range;
    for i in b0..b1 {
        if tokens[i].is_ident(enum_name)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(v) = tokens.get(i + 3).filter(|t| t.kind == Kind::Ident) {
                if !out.iter().any(|(n, _, _)| n == &v.text) {
                    out.push((v.text.clone(), v.line, v.col));
                }
            }
        }
    }
    out
}

/// Finds the first non-test `fn name` in the file, at any nesting.
fn find_fn<'a>(file: &'a SourceFile, name: &str) -> Option<&'a Item> {
    all_items(&file.tree)
        .into_iter()
        .find(|i| i.kind == ItemKind::Fn && i.name == name && !i.cfg_test)
}

/// `DefectClass` (mc-core) must mirror into the mc-obs defect counters:
/// same cardinality as `DEFECT_CLASSES`, and the `name()` strings must
/// equal the `DEFECT_CLASS_NAMES` table both ways.
pub fn counter_drift(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(robust) = ws.file(ROBUST_RS) else {
        return vec![missing_contract_file("counter-drift", ROBUST_RS)];
    };
    let Some(event) = ws.file(EVENT_RS) else {
        return vec![missing_contract_file("counter-drift", EVENT_RS)];
    };
    let Some(variants) = enum_variants(robust, "DefectClass") else {
        return vec![missing_contract_file("counter-drift", "enum DefectClass")];
    };

    // name() arms: DefectClass::Variant => "string".
    let mut names_by_variant: BTreeMap<String, (String, usize, usize)> = BTreeMap::new();
    if let Some(f) = find_fn(robust, "name") {
        if let Some((b0, b1)) = f.body {
            let mut i = b0;
            while i + 5 < b1 {
                let t = &robust.tokens[i];
                if t.is_ident("DefectClass")
                    && robust.tokens[i + 1].is_punct(':')
                    && robust.tokens[i + 2].is_punct(':')
                    && robust.tokens[i + 3].kind == Kind::Ident
                    && robust.tokens[i + 4].is_punct('=')
                    && robust.tokens[i + 5].is_punct('>')
                {
                    if let Some(lit) = robust.tokens.get(i + 6).filter(|t| t.kind == Kind::Literal)
                    {
                        if let Some(s) = literal_str(&lit.text) {
                            names_by_variant.insert(
                                robust.tokens[i + 3].text.clone(),
                                (s.to_string(), lit.line, lit.col),
                            );
                        }
                    }
                }
                i += 1;
            }
        }
    }

    // The mc-obs side: DEFECT_CLASS_NAMES entries and DEFECT_CLASSES.
    let mut obs_names: Vec<(String, usize, usize)> = Vec::new();
    let names_const = find(&event.tree, ItemKind::Const, "DEFECT_CLASS_NAMES");
    if let Some(item) = names_const {
        for t in &event.tokens[item.start..item.end] {
            if t.kind == Kind::Literal {
                if let Some(s) = literal_str(&t.text) {
                    obs_names.push((s.to_string(), t.line, t.col));
                }
            }
        }
    } else {
        out.push(missing_contract_file("counter-drift", "const DEFECT_CLASS_NAMES"));
    }
    if let Some(item) = find(&event.tree, ItemKind::Const, "DEFECT_CLASSES") {
        let count = event.tokens[item.start..item.end]
            .iter()
            .find(|t| t.kind == Kind::Number)
            .and_then(|t| t.text.parse::<usize>().ok());
        if let Some(n) = count {
            if n != variants.len() {
                out.push(Finding {
                    path: event.path.clone(),
                    line: item.line,
                    col: item.col,
                    rule: "counter-drift",
                    symbol: "DEFECT_CLASSES".to_string(),
                    message: format!(
                        "DEFECT_CLASSES is {n} but DefectClass has {} variants — the defect \
                         counter array no longer mirrors the taxonomy",
                        variants.len()
                    ),
                });
            }
        }
    }

    let obs_set: BTreeSet<&str> = obs_names.iter().map(|(s, _, _)| s.as_str()).collect();
    for (v, line, col) in &variants {
        match names_by_variant.get(v) {
            None => out.push(Finding {
                path: robust.path.clone(),
                line: *line,
                col: *col,
                rule: "counter-drift",
                symbol: v.clone(),
                message: format!(
                    "DefectClass::{v} has no name() arm — it cannot be mirrored into the \
                     mc-obs defect counters"
                ),
            }),
            Some((s, nline, ncol)) if names_const.is_some() && !obs_set.contains(s.as_str()) => {
                out.push(Finding {
                    path: robust.path.clone(),
                    line: *nline,
                    col: *ncol,
                    rule: "counter-drift",
                    symbol: v.clone(),
                    message: format!(
                        "defect name \"{s}\" (DefectClass::{v}) is missing from mc-obs \
                         DEFECT_CLASS_NAMES — its defect counter slot does not exist"
                    ),
                });
            }
            Some(_) => {}
        }
    }
    let produced: BTreeSet<&str> = names_by_variant.values().map(|(s, _, _)| s.as_str()).collect();
    for (s, line, col) in &obs_names {
        if !produced.contains(s.as_str()) {
            out.push(Finding {
                path: event.path.clone(),
                line: *line,
                col: *col,
                rule: "counter-drift",
                symbol: s.clone(),
                message: format!(
                    "DEFECT_CLASS_NAMES entry \"{s}\" mirrors no DefectClass variant — a \
                     stale counter slot"
                ),
            });
        }
    }
    out
}

/// Every `EventKind` variant must be rendered by canonical export
/// (`export.rs::body`) and recorded by the metrics registry
/// (`metrics.rs::record_event`).
pub fn event_drift(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(event) = ws.file(EVENT_RS) else {
        return vec![missing_contract_file("event-drift", EVENT_RS)];
    };
    let Some(export) = ws.file(EXPORT_RS) else {
        return vec![missing_contract_file("event-drift", EXPORT_RS)];
    };
    let Some(metrics) = ws.file(METRICS_RS) else {
        return vec![missing_contract_file("event-drift", METRICS_RS)];
    };
    let Some(variants) = enum_variants(event, "EventKind") else {
        return vec![missing_contract_file("event-drift", "enum EventKind")];
    };
    let handled_in = |file: &SourceFile, fn_name: &str| -> Option<BTreeSet<String>> {
        let f = find_fn(file, fn_name)?;
        Some(qualified_followers(&file.tokens, f.body?, "EventKind"))
    };
    let Some(exported) = handled_in(export, "body") else {
        return vec![missing_contract_file("event-drift", "export.rs fn body")];
    };
    let Some(recorded) = handled_in(metrics, "record_event") else {
        return vec![missing_contract_file("event-drift", "metrics.rs fn record_event")];
    };
    for (v, line, col) in &variants {
        for (set, place) in [
            (&exported, "canonical export (export.rs body())"),
            (&recorded, "metrics recording (metrics.rs record_event())"),
        ] {
            if !set.contains(v) {
                out.push(Finding {
                    path: event.path.clone(),
                    line: *line,
                    col: *col,
                    rule: "event-drift",
                    symbol: v.clone(),
                    message: format!("EventKind::{v} is not handled by {place}"),
                });
            }
        }
    }
    out
}

/// Every `SpanKind` variant must be rendered by the canonical span
/// export (`export.rs::span_body`) and folded into the per-kind span
/// counters (`metrics.rs::record_span`) — and in reverse: an arm in
/// either function naming a variant the enum no longer has is a stale
/// slot that silently misattributes latency.
pub fn span_drift(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(span) = ws.file(SPAN_RS) else {
        return vec![missing_contract_file("span-drift", SPAN_RS)];
    };
    let Some(export) = ws.file(EXPORT_RS) else {
        return vec![missing_contract_file("span-drift", EXPORT_RS)];
    };
    let Some(metrics) = ws.file(METRICS_RS) else {
        return vec![missing_contract_file("span-drift", METRICS_RS)];
    };
    let Some(variants) = enum_variants(span, "SpanKind") else {
        return vec![missing_contract_file("span-drift", "enum SpanKind")];
    };
    let handled_in = |file: &SourceFile, fn_name: &str| -> Option<Vec<(String, usize, usize)>> {
        let f = find_fn(file, fn_name)?;
        Some(qualified_followers_spanned(&file.tokens, f.body?, "SpanKind"))
    };
    let Some(exported) = handled_in(export, "span_body") else {
        return vec![missing_contract_file("span-drift", "export.rs fn span_body")];
    };
    let Some(recorded) = handled_in(metrics, "record_span") else {
        return vec![missing_contract_file("span-drift", "metrics.rs fn record_span")];
    };
    for (v, line, col) in &variants {
        for (handled, place) in [
            (&exported, "canonical span export (export.rs span_body())"),
            (&recorded, "span metrics (metrics.rs record_span())"),
        ] {
            if !handled.iter().any(|(n, _, _)| n == v) {
                out.push(Finding {
                    path: span.path.clone(),
                    line: *line,
                    col: *col,
                    rule: "span-drift",
                    symbol: v.clone(),
                    message: format!("SpanKind::{v} is not handled by {place}"),
                });
            }
        }
    }
    let variant_names: BTreeSet<&str> = variants.iter().map(|(v, _, _)| v.as_str()).collect();
    for (file, handled, place) in
        [(export, &exported, "span_body"), (metrics, &recorded, "record_span")]
    {
        for (n, line, col) in handled {
            if variant_names.contains(n.as_str()) {
                continue;
            }
            out.push(Finding {
                path: file.path.clone(),
                line: *line,
                col: *col,
                rule: "span-drift",
                symbol: n.clone(),
                message: format!(
                    "{place}() handles SpanKind::{n}, which the enum no longer declares — a \
                     stale arm that misattributes spans"
                ),
            });
        }
    }
    out
}

/// Every `.spec` grammar key (a string-literal match arm in spec.rs's
/// `apply_*` section handlers, assigning a ScenarioSpec field) must be
/// consumed by the builder — a read of that field in builder.rs.
pub fn spec_drift(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(spec) = ws.file(SPEC_RS) else {
        return vec![missing_contract_file("spec-drift", SPEC_RS)];
    };
    let Some(builder) = ws.file(BUILDER_RS) else {
        return vec![missing_contract_file("spec-drift", BUILDER_RS)];
    };
    // A field is "read by the builder" when `.field` appears there.
    let reads: BTreeSet<&str> = builder
        .tokens
        .windows(2)
        .filter(|w| w[0].is_punct('.') && w[1].kind == Kind::Ident)
        .map(|w| w[1].text.as_str())
        .collect();

    for f in all_items(&spec.tree) {
        if f.kind != ItemKind::Fn || !f.name.starts_with("apply") || f.cfg_test {
            continue;
        }
        let Some((b0, b1)) = f.body else { continue };
        let mut i = b0;
        while i + 2 < b1 {
            let t = &spec.tokens[i];
            let is_arm = t.kind == Kind::Literal
                && spec.tokens[i + 1].is_punct('=')
                && spec.tokens[i + 2].is_punct('>');
            if !is_arm {
                i += 1;
                continue;
            }
            let Some(key) = literal_str(&t.text).map(str::to_string) else {
                i += 1;
                continue;
            };
            // The arm body starts after `=>` (optionally `{`); a
            // field-assigning arm reads `self(.field)+ =`.
            let mut j = i + 3;
            if spec.tokens.get(j).is_some_and(|t| t.is_punct('{')) {
                j += 1;
            }
            if spec.tokens.get(j).is_some_and(|t| t.is_ident("self")) {
                let mut field: Option<String> = None;
                let mut k = j + 1;
                while spec.tokens.get(k).is_some_and(|t| t.is_punct('.'))
                    && spec.tokens.get(k + 1).is_some_and(|t| t.kind == Kind::Ident)
                {
                    field = Some(spec.tokens[k + 1].text.clone());
                    k += 2;
                }
                let assigns = spec.tokens.get(k).is_some_and(|t| t.is_punct('='))
                    && !spec.tokens.get(k + 1).is_some_and(|t| t.is_punct('='));
                if let (Some(field), true) = (field, assigns) {
                    if !reads.contains(field.as_str()) {
                        out.push(Finding {
                            path: spec.path.clone(),
                            line: t.line,
                            col: t.col,
                            rule: "spec-drift",
                            symbol: key.clone(),
                            message: format!(
                                "spec key \"{key}\" assigns field `{field}` that the builder \
                                 never reads — the knob is silently dead"
                            ),
                        });
                    }
                }
            }
            i += 1;
        }
    }
    out
}

/// Every `ScenarioKind` must have a committed golden spec, and a BENCH
/// baseline exactly when its runner handler emits a `BenchReport`.
pub fn scenario_drift(ws: &Workspace, artifacts: &ScenarioArtifacts) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(spec) = ws.file(SPEC_RS) else {
        return vec![missing_contract_file("scenario-drift", SPEC_RS)];
    };
    let Some(runner) = ws.file(RUNNER_RS) else {
        return vec![missing_contract_file("scenario-drift", RUNNER_RS)];
    };

    // token() literal arms: ScenarioKind::V => "token".
    let mut token_of: BTreeMap<String, String> = BTreeMap::new();
    if let Some(f) = find_fn(spec, "token") {
        if let Some((b0, b1)) = f.body {
            let mut i = b0;
            while i + 6 < b1 {
                if spec.tokens[i].is_ident("ScenarioKind")
                    && spec.tokens[i + 1].is_punct(':')
                    && spec.tokens[i + 2].is_punct(':')
                    && spec.tokens[i + 3].kind == Kind::Ident
                    && spec.tokens[i + 4].is_punct('=')
                    && spec.tokens[i + 5].is_punct('>')
                    && spec.tokens[i + 6].kind == Kind::Literal
                {
                    if let Some(s) = literal_str(&spec.tokens[i + 6].text) {
                        token_of.insert(spec.tokens[i + 3].text.clone(), s.to_string());
                    }
                }
                i += 1;
            }
        }
    }

    // ALL entries: every kind the workspace claims to support, with the
    // `Table(n) -> "table<n>"` convention expanded structurally.
    let mut kinds: Vec<(String, String, usize, usize)> = Vec::new(); // (variant, token, line, col)
    if let Some(item) = find(&spec.tree, ItemKind::Const, "ALL") {
        let (s, e) = (item.start, item.end);
        let mut i = s;
        while i + 3 < e {
            if spec.tokens[i].is_ident("ScenarioKind")
                && spec.tokens[i + 1].is_punct(':')
                && spec.tokens[i + 2].is_punct(':')
                && spec.tokens[i + 3].kind == Kind::Ident
            {
                let v = &spec.tokens[i + 3];
                if v.is_ident("ALL") {
                    i += 1;
                    continue;
                }
                let token = if spec.tokens.get(i + 4).is_some_and(|t| t.is_punct('('))
                    && spec.tokens.get(i + 5).is_some_and(|t| t.kind == Kind::Number)
                {
                    format!("{}{}", v.text.to_lowercase(), spec.tokens[i + 5].text)
                } else {
                    match token_of.get(&v.text) {
                        Some(t) => t.clone(),
                        None => {
                            out.push(Finding {
                                path: spec.path.clone(),
                                line: v.line,
                                col: v.col,
                                rule: "scenario-drift",
                                symbol: v.text.clone(),
                                message: format!(
                                    "ScenarioKind::{} has no literal token() arm — its spec \
                                     token cannot be derived",
                                    v.text
                                ),
                            });
                            i += 1;
                            continue;
                        }
                    }
                };
                kinds.push((v.text.clone(), token, v.line, v.col));
            }
            i += 1;
        }
    } else {
        out.push(missing_contract_file("scenario-drift", "const ScenarioKind::ALL"));
    }

    // Dispatch arms of Runner::run: variant -> handler fn.
    let mut handler_of: BTreeMap<String, (String, usize, usize)> = BTreeMap::new();
    if let Some(f) = find_fn(runner, "run") {
        if let Some((b0, b1)) = f.body {
            let mut i = b0;
            while i + 3 < b1 {
                if runner.tokens[i].is_ident("ScenarioKind")
                    && runner.tokens[i + 1].is_punct(':')
                    && runner.tokens[i + 2].is_punct(':')
                    && runner.tokens[i + 3].kind == Kind::Ident
                {
                    let v = &runner.tokens[i + 3];
                    let mut j = i + 4;
                    // Skip a pattern payload like `(_)`.
                    if runner.tokens.get(j).is_some_and(|t| t.is_punct('(')) {
                        while j < b1 && !runner.tokens[j].is_punct(')') {
                            j += 1;
                        }
                        j += 1;
                    }
                    if runner.tokens.get(j).is_some_and(|t| t.is_punct('='))
                        && runner.tokens.get(j + 1).is_some_and(|t| t.is_punct('>'))
                    {
                        // Handler: the identifier called first in the arm.
                        let mut k = j + 2;
                        while k + 1 < b1 && !runner.tokens[k + 1].is_punct('(') {
                            k += 1;
                        }
                        if runner.tokens[k].kind == Kind::Ident {
                            handler_of.insert(
                                v.text.clone(),
                                (runner.tokens[k].text.clone(), v.line, v.col),
                            );
                        }
                    }
                }
                i += 1;
            }
        }
    }

    // Which handlers emit a BenchReport? Handlers live in runner.rs or
    // scenarios.rs.
    let emits_bench = |name: &str| -> bool {
        [Some(runner), ws.file(SCENARIOS_RS)].into_iter().flatten().any(|file| {
            find_fn(file, name).and_then(|f| f.body).is_some_and(|(b0, b1)| {
                file.tokens[b0..b1].iter().any(|t| t.is_ident("BenchReport"))
            })
        })
    };

    let mut required_bench: BTreeSet<String> = BTreeSet::new();
    for (variant, token, line, col) in &kinds {
        if !artifacts.spec_stems.contains(token) {
            out.push(Finding {
                path: spec.path.clone(),
                line: *line,
                col: *col,
                rule: "scenario-drift",
                symbol: variant.clone(),
                message: format!(
                    "ScenarioKind::{variant} has no committed golden spec specs/{token}.spec"
                ),
            });
        }
        if let Some((handler, hline, hcol)) = handler_of.get(variant) {
            if emits_bench(handler) {
                required_bench.insert(token.clone());
                if !artifacts.bench_tokens.contains(token) {
                    out.push(Finding {
                        path: runner.path.clone(),
                        line: *hline,
                        col: *hcol,
                        rule: "scenario-drift",
                        symbol: variant.clone(),
                        message: format!(
                            "scenario `{token}` emits a BenchReport (handler `{handler}`) but \
                             has no committed baseline results/BENCH_{token}.json — the bench \
                             gate cannot cover it"
                        ),
                    });
                }
            }
        }
    }

    // Reverse direction: no stale artifacts.
    let known: BTreeSet<&str> = kinds.iter().map(|(_, t, _, _)| t.as_str()).collect();
    for stem in &artifacts.spec_stems {
        if !known.contains(stem.as_str()) {
            out.push(Finding {
                path: format!("specs/{stem}.spec"),
                line: 0,
                col: 0,
                rule: "scenario-drift",
                symbol: stem.clone(),
                message: format!(
                    "golden spec specs/{stem}.spec matches no ScenarioKind token — stale \
                     artifact"
                ),
            });
        }
    }
    for token in &artifacts.bench_tokens {
        if !required_bench.contains(token) {
            out.push(Finding {
                path: format!("results/BENCH_{token}.json"),
                line: 0,
                col: 0,
                rule: "scenario-drift",
                symbol: token.clone(),
                message: format!(
                    "baseline results/BENCH_{token}.json corresponds to no BenchReport-emitting \
                     scenario — stale artifact"
                ),
            });
        }
    }
    out
}
