//! Workspace symbol index: item definitions plus per-file identifier
//! occurrence sets.
//!
//! Built once over the loaded [`Workspace`](super::Workspace) and shared
//! by the passes: the allowlist-staleness pass asks "does this symbol
//! still occur under this path prefix", the doc/report layer asks
//! "where is this item defined". Occurrences are tracked per file as a
//! set (the passes never need positions of *every* use — definitions
//! carry positions).

use std::collections::{BTreeMap, BTreeSet};

use super::tree::all_items;
use super::Workspace;
use crate::lexer::Kind;

/// Where an item is defined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Location {
    pub path: String,
    pub line: usize,
    pub col: usize,
}

/// The index: definitions by name, identifier occurrences by file.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    defs: BTreeMap<String, Vec<Location>>,
    occurrences: Vec<(String, BTreeSet<String>)>,
}

impl SymbolIndex {
    /// Indexes every file in the workspace.
    pub fn build(ws: &Workspace) -> SymbolIndex {
        let mut defs: BTreeMap<String, Vec<Location>> = BTreeMap::new();
        let mut occurrences = Vec::new();
        for file in &ws.files {
            for item in all_items(&file.tree) {
                if item.name.is_empty() {
                    continue;
                }
                defs.entry(item.name.clone()).or_default().push(Location {
                    path: file.path.clone(),
                    line: item.line,
                    col: item.col,
                });
            }
            let idents: BTreeSet<String> = file
                .tokens
                .iter()
                .filter(|t| t.kind == Kind::Ident)
                .map(|t| t.text.clone())
                .collect();
            occurrences.push((file.path.clone(), idents));
        }
        SymbolIndex { defs, occurrences }
    }

    /// Definition sites of `name`, in file order.
    pub fn defs(&self, name: &str) -> &[Location] {
        self.defs.get(name).map_or(&[], Vec::as_slice)
    }

    /// Whether any indexed file path starts with `prefix`.
    pub fn any_file_under(&self, prefix: &str) -> bool {
        self.occurrences.iter().any(|(path, _)| path.starts_with(prefix))
    }

    /// Whether identifier `ident` occurs in any file under `prefix`.
    pub fn ident_occurs_under(&self, prefix: &str, ident: &str) -> bool {
        self.occurrences
            .iter()
            .any(|(path, idents)| path.starts_with(prefix) && idents.contains(ident))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defs_and_occurrences_resolve_by_prefix() {
        let ws = Workspace::from_sources(vec![
            ("crates/a/src/lib.rs".to_string(), "pub fn alpha() { beta_helper(); }".to_string()),
            ("crates/b/src/lib.rs".to_string(), "pub struct Gamma { x: u32 }".to_string()),
        ]);
        let idx = SymbolIndex::build(&ws);
        assert_eq!(idx.defs("alpha").len(), 1);
        assert_eq!(idx.defs("alpha")[0].path, "crates/a/src/lib.rs");
        assert_eq!(idx.defs("Gamma")[0].line, 1);
        assert!(idx.any_file_under("crates/a"));
        assert!(!idx.any_file_under("crates/zzz"));
        assert!(idx.ident_occurs_under("crates/a", "beta_helper"));
        assert!(!idx.ident_occurs_under("crates/b", "beta_helper"));
        assert!(idx.ident_occurs_under("crates/b/src/lib.rs", "Gamma"));
    }
}
