//! A minimal Rust lexer, sufficient for token-level lint rules and the
//! structural passes in [`crate::analyze`].
//!
//! Produces identifiers, punctuation, literals and lifetimes with line
//! and column numbers; comments (line, nested block, doc) are dropped.
//! [`lex`] keeps string / char contents opaque so downstream rules can
//! never match inside text; [`lex_full`] preserves literal text for
//! passes that must read string contents (e.g. counter-name mirrors).
//! This is deliberately not a full parser: the lint rules in
//! [`crate::lints`] work on token patterns plus brace matching, which a
//! hand lexer models faithfully without a syntax-tree dependency.

/// What a token is, as far as the lint rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (raw identifiers lose their `r#` prefix).
    Ident,
    /// String, raw-string, byte-string, C-string or char literal.
    ///
    /// Content is opaque under [`lex`], preserved under [`lex_full`].
    Literal,
    /// Numeric literal.
    Number,
    /// `'lifetime` (distinguished from char literals).
    Lifetime,
    /// A single punctuation character (`.` `:` `{` `!` ...).
    Punct,
}

/// One lexed token: kind, text, and the 1-based line and byte column it
/// starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: Kind,
    pub text: String,
    pub line: usize,
    pub col: usize,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl Cursor<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src`, dropping comments and whitespace; literal contents are
/// blanked so token-pattern rules can never match inside text.
///
/// Unterminated strings/comments end the token stream at end of input
/// rather than erroring: lints run on code that already compiles, so
/// recovery precision is not worth the complexity.
pub fn lex(src: &str) -> Vec<Token> {
    lex_impl(src, false)
}

/// Like [`lex`] but string/char literals keep their source text
/// (including quotes and any `r#`/`b`/`c` prefix). Structural passes
/// that compare string contents against symbol tables use this variant.
pub fn lex_full(src: &str) -> Vec<Token> {
    lex_impl(src, true)
}

fn lex_impl(src: &str, keep_literal_text: bool) -> Vec<Token> {
    let mut cur = Cursor { src: src.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut out = Vec::new();
    while let Some(b) = cur.peek(0) {
        let line = cur.line;
        let col = cur.col;
        let start = cur.pos;
        let literal_text = |cur: &Cursor<'_>| {
            if keep_literal_text {
                src[start..cur.pos].to_string()
            } else {
                String::new()
            }
        };
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                while let Some(c) = cur.bump() {
                    if c == b'\n' {
                        break;
                    }
                }
            }
            b'/' if cur.peek(1) == Some(b'*') => skip_block_comment(&mut cur),
            b'r' if cur.peek(1) == Some(b'#') && cur.peek(2).is_some_and(is_ident_start) => {
                // Raw identifier r#ident — strip the prefix.
                cur.bump();
                cur.bump();
                out.push(lex_ident(&mut cur, line, col));
            }
            b'r' | b'b' | b'c' if starts_prefixed_string(&cur) => {
                lex_string_like(&mut cur);
                let text = literal_text(&cur);
                out.push(Token { kind: Kind::Literal, text, line, col });
            }
            _ if is_ident_start(b) => out.push(lex_ident(&mut cur, line, col)),
            b'0'..=b'9' => {
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if is_ident_continue(c)
                        || c == b'.' && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
                    {
                        text.push(cur.bump().unwrap_or(b'0') as char);
                    } else {
                        break;
                    }
                }
                out.push(Token { kind: Kind::Number, text, line, col });
            }
            b'"' => {
                lex_quoted(&mut cur, b'"');
                let text = literal_text(&cur);
                out.push(Token { kind: Kind::Literal, text, line, col });
            }
            b'\'' => {
                if lex_char_or_lifetime(&mut cur) {
                    let text = literal_text(&cur);
                    out.push(Token { kind: Kind::Literal, text, line, col });
                } else {
                    out.push(Token { kind: Kind::Lifetime, text: String::new(), line, col });
                }
            }
            _ => {
                cur.bump();
                out.push(Token { kind: Kind::Punct, text: (b as char).to_string(), line, col });
            }
        }
    }
    out
}

fn lex_ident(cur: &mut Cursor<'_>, line: usize, col: usize) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            text.push(cur.bump().unwrap_or(b'_') as char);
        } else {
            break;
        }
    }
    Token { kind: Kind::Ident, text, line, col }
}

fn skip_block_comment(cur: &mut Cursor<'_>) {
    cur.bump();
    cur.bump();
    let mut depth = 1usize;
    while depth > 0 {
        if cur.starts_with("/*") {
            cur.bump();
            cur.bump();
            depth += 1;
        } else if cur.starts_with("*/") {
            cur.bump();
            cur.bump();
            depth -= 1;
        } else if cur.bump().is_none() {
            return;
        }
    }
}

/// Is the cursor at a prefixed string literal? Covers raw (`r"`, `r#`),
/// byte (`b"`, `b'`, `br"`, `br#`) and C-string (`c"`, `cr"`, `cr#`)
/// forms. Plain identifiers like `crate` or `broken` do not match
/// because the prefix must be immediately followed by `"`, `'` or `#`.
fn starts_prefixed_string(cur: &Cursor<'_>) -> bool {
    let rest = &cur.src[cur.pos..];
    [&b"r\""[..], b"r#\"", b"r##", b"b\"", b"b'", b"br\"", b"br#", b"c\"", b"cr\"", b"cr#"]
        .iter()
        .any(|p| rest.starts_with(p))
}

/// Consumes a raw/byte/C string (or byte char) starting at `r`/`b`/`c`.
fn lex_string_like(cur: &mut Cursor<'_>) {
    let mut raw = false;
    while let Some(c) = cur.peek(0) {
        if c == b'r' {
            raw = true;
            cur.bump();
        } else if c == b'b' || c == b'c' {
            cur.bump();
        } else {
            break;
        }
    }
    if raw {
        let mut hashes = 0usize;
        while cur.peek(0) == Some(b'#') {
            hashes += 1;
            cur.bump();
        }
        cur.bump(); // opening quote
        let close: String = std::iter::once('"').chain(std::iter::repeat_n('#', hashes)).collect();
        while !cur.starts_with(&close) {
            if cur.bump().is_none() {
                return;
            }
        }
        for _ in 0..close.len() {
            cur.bump();
        }
    } else if cur.peek(0) == Some(b'\'') {
        lex_quoted(cur, b'\'');
    } else {
        lex_quoted(cur, b'"');
    }
}

/// Consumes a `"`- or `'`-delimited literal honoring backslash escapes.
fn lex_quoted(cur: &mut Cursor<'_>, quote: u8) {
    cur.bump();
    while let Some(c) = cur.bump() {
        if c == b'\\' {
            cur.bump();
        } else if c == quote {
            return;
        }
    }
}

/// At a `'`: consumes a char literal (true) or lifetime (false).
fn lex_char_or_lifetime(cur: &mut Cursor<'_>) -> bool {
    // 'x' or '\n' is a char; 'ident (no closing quote right after the
    // identifier) is a lifetime. ''' (char of a quote) cannot occur
    // unescaped, so a quote right after the opener means a char too.
    let next = cur.peek(1);
    if next == Some(b'\\') {
        lex_quoted(cur, b'\'');
        return true;
    }
    if next.is_some_and(is_ident_start) {
        // Scan the identifier; a closing quote makes it a char literal
        // like 'a', otherwise it is a lifetime.
        let mut ahead = 2;
        while cur.peek(ahead).is_some_and(is_ident_continue) {
            ahead += 1;
        }
        if cur.peek(ahead) == Some(b'\'') {
            for _ in 0..=ahead {
                cur.bump();
            }
            return true;
        }
        cur.bump(); // the opening quote only: leave the ident to the lexer
        return false;
    }
    // Some other single char like '9' or punctuation.
    lex_quoted(cur, b'\'');
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).into_iter().filter(|t| t.kind == Kind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // unwrap in a comment
            /* panic! in /* nested */ block */
            let s = "call .unwrap() here";
            let r = r#"panic!("x")"#;
            value.unwrap();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|i| *i == "unwrap").count(), 1);
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = toks.iter().filter(|t| t.kind == Kind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == Kind::Literal).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn raw_identifiers_lose_the_prefix() {
        assert_eq!(idents("r#type r#fn plain"), vec!["type", "fn", "plain"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n  c");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn columns_are_one_based_and_reset_per_line() {
        let toks = lex("ab cd\n  ef('x')");
        let spans: Vec<(usize, usize, &str)> =
            toks.iter().map(|t| (t.line, t.col, t.text.as_str())).collect();
        assert_eq!(
            spans,
            vec![
                (1, 1, "ab"),
                (1, 4, "cd"),
                (2, 3, "ef"),
                (2, 5, "("),
                (2, 6, ""), // the 'x' char literal, opaque under lex()
                (2, 9, ")"),
            ]
        );
    }

    #[test]
    fn multi_hash_raw_strings_terminate_at_matching_hashes() {
        // The inner "# must not close an r##-string.
        let src = r####"let s = r##"one "# two"##; tail"####;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "tail"]);
        let literals = lex(src).into_iter().filter(|t| t.kind == Kind::Literal).count();
        assert_eq!(literals, 1);
    }

    #[test]
    fn byte_chars_honor_escapes() {
        let toks = lex(r"let b = b'\''; done");
        assert_eq!(idents(r"let b = b'\''; done"), vec!["let", "b", "done"]);
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Literal).count(), 1);
    }

    #[test]
    fn c_string_literals_are_single_opaque_tokens() {
        // c"…" and cr#"…"# are literals, not a `c` ident plus a string;
        // `crate` must still lex as an identifier.
        let src = r###"let a = c"null\0"; let b = cr#"raw "c" str"#; crate::x"###;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "b", "crate", "x"]);
        let literals = lex(src).into_iter().filter(|t| t.kind == Kind::Literal).count();
        assert_eq!(literals, 2);
    }

    #[test]
    fn lex_full_preserves_literal_text() {
        let src = r#"emit("cache_hit", 'x', b"raw")"#;
        let lits: Vec<String> =
            lex_full(src).into_iter().filter(|t| t.kind == Kind::Literal).map(|t| t.text).collect();
        assert_eq!(lits, vec!["\"cache_hit\"", "'x'", "b\"raw\""]);
        // The opaque variant still blanks them.
        assert!(lex(src)
            .into_iter()
            .filter(|t| t.kind == Kind::Literal)
            .all(|t| t.text.is_empty()));
    }

    #[test]
    fn underscore_lifetime_is_a_lifetime() {
        let toks = lex("fn f(x: &'_ str) {}");
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Lifetime).count(), 1);
    }
}
