//! The mc-lint allowlist: explicit, justified suppressions.
//!
//! mc-lint is deny-by-default; the only way to keep a violation is an
//! entry here, and every entry must carry a written justification. The
//! committed allowlist lives at the workspace root (`mc-lint.allow`).
//!
//! Format, one entry per line (blank lines and `#` comments ignored):
//!
//! ```text
//! <rule> <path-prefix> <symbol|*> -- <justification>
//! ```
//!
//! - `rule`: a rule name from [`crate::lints::Rule`].
//! - `path-prefix`: workspace-relative; the entry covers every linted
//!   file under it (a file path covers exactly that file).
//! - `symbol`: the matched symbol (`expect`, `Instant::now`, ...) or `*`.
//! - The justification is mandatory — an entry without `--` text is a
//!   parse error, and an entry that suppresses nothing is itself an
//!   error, so the allowlist can only shrink stale.

use crate::lints::{Rule, Violation};

/// One parsed allowlist line.
#[derive(Debug, Clone)]
pub struct Entry {
    pub rule: Rule,
    pub path_prefix: String,
    /// Symbol to match, or `None` for `*`.
    pub symbol: Option<String>,
    pub justification: String,
    /// Source line in the allowlist file, for error reporting.
    pub line: usize,
}

impl Entry {
    fn covers(&self, v: &Violation) -> bool {
        self.rule == v.rule
            && v.path.starts_with(&self.path_prefix)
            && self.symbol.as_ref().is_none_or(|s| *s == v.symbol)
    }
}

/// A parsed allowlist plus per-entry use counts.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<Entry>,
}

impl Allowlist {
    /// Parses the allowlist text.
    ///
    /// # Errors
    /// On an unknown rule name, a malformed line, or a missing
    /// justification — a suppression nobody can read the reason for is
    /// worse than the violation it hides.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw.trim();
            if content.is_empty() || content.starts_with('#') {
                continue;
            }
            let (spec, justification) = content
                .split_once("--")
                .ok_or_else(|| format!("allowlist line {line}: missing `-- justification`"))?;
            let justification = justification.trim();
            if justification.is_empty() {
                return Err(format!("allowlist line {line}: empty justification"));
            }
            let fields: Vec<&str> = spec.split_whitespace().collect();
            let [rule, path_prefix, symbol] = fields[..] else {
                return Err(format!(
                    "allowlist line {line}: expected `<rule> <path-prefix> <symbol|*>`, got {} fields",
                    fields.len()
                ));
            };
            let rule = Rule::parse(rule)
                .ok_or_else(|| format!("allowlist line {line}: unknown rule `{rule}`"))?;
            entries.push(Entry {
                rule,
                path_prefix: path_prefix.to_string(),
                symbol: (symbol != "*").then(|| symbol.to_string()),
                justification: justification.to_string(),
                line,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Splits `violations` into kept ones and a list of unused-entry
    /// errors. Every violation covered by some entry is suppressed;
    /// every entry that covered nothing is reported.
    pub fn apply(&self, violations: Vec<Violation>) -> (Vec<Violation>, Vec<String>) {
        let mut used = vec![false; self.entries.len()];
        let mut kept = Vec::new();
        for v in violations {
            let mut suppressed = false;
            for (e, flag) in self.entries.iter().zip(used.iter_mut()) {
                if e.covers(&v) {
                    *flag = true;
                    suppressed = true;
                }
            }
            if !suppressed {
                kept.push(v);
            }
        }
        let stale = self
            .entries
            .iter()
            .zip(&used)
            .filter(|(_, used)| !**used)
            .map(|(e, _)| {
                format!(
                    "allowlist line {}: entry `{} {} {}` suppresses nothing — remove it",
                    e.line,
                    e.rule.name(),
                    e.path_prefix,
                    e.symbol.as_deref().unwrap_or("*"),
                )
            })
            .collect();
        (kept, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(rule: Rule, path: &str, symbol: &str) -> Violation {
        Violation {
            path: path.into(),
            line: 1,
            rule,
            symbol: symbol.into(),
            message: String::new(),
        }
    }

    #[test]
    fn parse_rejects_missing_justification_and_unknown_rules() {
        assert!(Allowlist::parse("no-unwrap crates/x expect").is_err());
        assert!(Allowlist::parse("no-unwrap crates/x expect --   ").is_err());
        assert!(Allowlist::parse("no-such-rule crates/x * -- why").is_err());
        assert!(Allowlist::parse("no-unwrap crates/x -- too few fields").is_err());
        let ok = Allowlist::parse("# comment\n\nno-unwrap crates/x expect -- reason\n");
        assert_eq!(ok.expect("parses").entries.len(), 1);
    }

    #[test]
    fn apply_suppresses_by_prefix_and_symbol_and_reports_stale() {
        let allow = Allowlist::parse(
            "no-unwrap crates/demo/src expect -- demo reason\n\
             no-wallclock crates/never * -- never matches\n",
        )
        .expect("parses");
        let (kept, stale) = allow.apply(vec![
            violation(Rule::NoUnwrap, "crates/demo/src/lib.rs", "expect"),
            violation(Rule::NoUnwrap, "crates/demo/src/lib.rs", "unwrap"),
            violation(Rule::NoUnwrap, "crates/other/src/lib.rs", "expect"),
        ]);
        let kept: Vec<&str> = kept.iter().map(|v| v.path.as_str()).collect();
        assert_eq!(kept, vec!["crates/demo/src/lib.rs", "crates/other/src/lib.rs"]);
        assert_eq!(stale.len(), 1);
        assert!(stale[0].contains("no-wallclock"), "{stale:?}");
    }
}
